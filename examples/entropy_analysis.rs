//! Entropy analysis of a user-defined workload: define a custom kernel
//! with the `valley_workloads` building blocks, compute its window-based
//! entropy profile (Section III), detect the entropy valley, and show how
//! the PAE mapping lifts it (the Figure 5 → Figure 10 pipeline for your
//! own code).
//!
//! Run with: `cargo run --release --example entropy_analysis`

use std::sync::Arc;
use valley::core::{AddressMapper, DramAddressMap, GddrMap, SchemeKind};
use valley::sim::{Instruction, LaneAddrs};
use valley::workloads::{analysis, KernelSpec, Workload};

fn main() {
    // A column-major kernel: warp lanes stride by a 4 KiB row pitch, and
    // consecutive TBs work on columns 1 MiB apart — the classic valley.
    let gen = Arc::new(|tb: u64, warp: usize| -> Vec<Instruction> {
        let base = tb * (1 << 20) + warp as u64 * 32 * 4096;
        vec![
            Instruction::Load(LaneAddrs::strided(base, 32, 4096)),
            Instruction::Compute { cycles: 4 },
            Instruction::Store(LaneAddrs::strided(base, 32, 4096)),
        ]
    });
    let workload = Workload::new(
        "custom-column-walk",
        vec![KernelSpec::new("colwalk", 64, 8, gen)],
    );

    let dram = GddrMap::baseline();
    let targets = dram.target_field_bits();
    let candidates = dram.non_block_bits();
    let window = 12; // TBs co-executing, the paper's SM-count heuristic

    // Profile under the BASE map.
    let profile = analysis::application_profile(&workload, window, None);
    println!("per-bit entropy under BASE (bits 29..6, MSB left):");
    print!("{}", profile.ascii_chart(6, 29));
    println!(
        "mean entropy over channel/bank bits (8-13): {:.2}",
        profile.mean_over(&targets)
    );
    println!(
        "valley score: {:.2} -> {}",
        profile.valley_score(&targets, &candidates),
        if profile.has_valley(&targets, &candidates, 0.25) {
            "ENTROPY VALLEY"
        } else {
            "no valley"
        }
    );

    // Same workload seen through the PAE mapper.
    let pae = AddressMapper::build(SchemeKind::Pae, &dram, 1);
    let mapped = analysis::application_profile(&workload, window, Some(&pae));
    println!("\nper-bit entropy under PAE:");
    print!("{}", mapped.ascii_chart(6, 29));
    println!(
        "mean entropy over channel/bank bits: {:.2} (was {:.2})",
        mapped.mean_over(&targets),
        profile.mean_over(&targets)
    );
    assert!(mapped.mean_over(&targets) > profile.mean_over(&targets));
}
