//! Driving the DRAM substrate directly: watch FR-FCFS reorder requests,
//! compare row-buffer behavior of sequential vs conflicting streams, and
//! see why activate counts (and hence activate power, Figure 16) differ.
//!
//! Run with: `cargo run --release --example dram_explorer`

use valley::dram::{DramChannel, DramConfig, DramRequest};

fn drain(ch: &mut DramChannel, until: u64) -> Vec<(u64, u64)> {
    let mut done = Vec::new();
    let mut buf = Vec::new();
    for cycle in 0..until {
        buf.clear();
        ch.tick(cycle, &mut buf);
        for c in &buf {
            done.push((c.id, c.finish));
        }
    }
    done
}

fn main() {
    // Stream A: 16 accesses to the same row of one bank (pure row hits).
    let mut same_row = DramChannel::new(DramConfig::gddr5());
    for i in 0..16 {
        same_row.try_enqueue(DramRequest {
            id: i,
            bank: 0,
            row: 7,
            is_write: false,
            arrival: 0,
        });
    }
    let done = drain(&mut same_row, 400);
    let s = same_row.stats();
    println!(
        "same-row stream:      last finish {:>4}, ACTs {}, hit rate {:.0}%",
        done.last().unwrap().1,
        s.activates,
        s.row_buffer_hit_rate() * 100.0
    );

    // Stream B: 16 accesses alternating two rows of one bank (conflicts).
    let mut ping_pong = DramChannel::new(DramConfig::gddr5());
    for i in 0..16 {
        ping_pong.try_enqueue(DramRequest {
            id: i,
            bank: 0,
            row: 7 + (i % 2) as usize,
            is_write: false,
            arrival: 0,
        });
    }
    let done = drain(&mut ping_pong, 4000);
    let s = ping_pong.stats();
    println!(
        "row-conflict stream:  last finish {:>4}, ACTs {}, hit rate {:.0}%",
        done.last().unwrap().1,
        s.activates,
        s.row_buffer_hit_rate() * 100.0
    );
    println!("  (FR-FCFS groups same-row requests, so even the ping-pong");
    println!("   stream activates each row once, not 8 times)");

    // Stream C: 16 accesses spread over 16 banks (bank-level parallelism).
    let mut banked = DramChannel::new(DramConfig::gddr5());
    for i in 0..16 {
        banked.try_enqueue(DramRequest {
            id: i,
            bank: (i % 16) as usize,
            row: 7,
            is_write: false,
            arrival: 0,
        });
    }
    let done = drain(&mut banked, 400);
    let s = banked.stats();
    println!(
        "16-bank stream:       last finish {:>4}, ACTs {}, hit rate {:.0}%",
        done.last().unwrap().1,
        s.activates,
        s.row_buffer_hit_rate() * 100.0
    );
    println!("  (activations overlap across banks; the data bus serializes");
    println!("   only the 4-cycle bursts — this is the parallelism the");
    println!("   paper's mapping schemes unlock)");
}
