//! Designing a custom mapping scheme with the BIM toolkit: build a
//! hand-crafted Binary Invertible Matrix, verify its algebraic
//! properties (invertibility, hardware cost), and race it against the
//! paper's schemes on a real benchmark.
//!
//! Run with: `cargo run --release --example custom_mapping_scheme`

use valley::core::{AddressMapper, Bim, DramAddressMap, GddrMap, SchemeKind};
use valley::sim::{GpuConfig, GpuSim};
use valley::workloads::{Benchmark, Scale};

fn main() {
    let dram = GddrMap::baseline();

    // A hand-built Broad-strategy BIM: each channel/bank output bit XORs
    // its own bit with two row bits chosen by hand (a "poor man's PAE").
    let mut bim = Bim::identity(30);
    let row_bits = dram.row_bits();
    for (k, &t) in dram.target_field_bits().iter().enumerate() {
        let r1 = row_bits[(2 * k) % row_bits.len()];
        let r2 = row_bits[(2 * k + 5) % row_bits.len()];
        bim.set_row(t, (1u64 << t) | (1u64 << r1) | (1u64 << r2));
    }
    assert!(bim.is_invertible(), "hand-built BIM must stay invertible");
    println!("custom BIM:");
    println!("  XOR gates:      {}", bim.xor_gate_count());
    println!("  XOR tree depth: {}", bim.xor_tree_depth());
    println!("  decode matrix exists: {}", bim.inverse().is_some());

    let custom = AddressMapper::from_bim(SchemeKind::Pae, bim, 1);

    // Race it on NW (test scale) against BASE, PM and the real PAE.
    let bench = Benchmark::Nw;
    println!("\nsimulating {} (test scale) ...", bench.label());
    let run = |mapper: AddressMapper| {
        let workload = Box::new(bench.workload(Scale::Test));
        GpuSim::new(GpuConfig::table1(), mapper, dram, workload).run()
    };
    let base = run(AddressMapper::build(SchemeKind::Base, &dram, 0));
    let contenders = [
        ("PM", run(AddressMapper::build(SchemeKind::Pm, &dram, 0))),
        ("PAE", run(AddressMapper::build(SchemeKind::Pae, &dram, 1))),
        ("custom", run(custom)),
    ];
    println!("  {:<8}{:>10}{:>10}", "scheme", "cycles", "speedup");
    println!("  {:<8}{:>10}{:>10.2}", "BASE", base.cycles, 1.0);
    for (name, r) in contenders {
        println!(
            "  {:<8}{:>10}{:>10.2}",
            name,
            r.cycles,
            r.speedup_over(&base)
        );
    }
}
