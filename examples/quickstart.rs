//! Quickstart: build the paper's PAE address mapper, inspect what it does
//! to a pathological (column-major) access stream, then run the full GPU
//! simulator on the Matrix Transpose benchmark under BASE and PAE and
//! compare.
//!
//! Run with: `cargo run --release --example quickstart`

use valley::core::{AddressMapper, DramAddressMap, GddrMap, PhysAddr, SchemeKind};
use valley::sim::{GpuConfig, GpuSim};
use valley::workloads::{Benchmark, Scale};

fn main() {
    // 1. The baseline Hynix GDDR5 address map (Figure 4) and the PAE
    //    mapping scheme built for it.
    let dram = GddrMap::baseline();
    let base = AddressMapper::build(SchemeKind::Base, &dram, 0);
    let pae = AddressMapper::build(SchemeKind::Pae, &dram, 1);

    // 2. A column-major walk striding whole DRAM rows (256 KiB apart):
    //    under BASE every access lands in channel 0; PAE harvests the
    //    row-bit entropy and spreads the stream.
    println!("column-major stream, (channel, bank) under BASE vs PAE:");
    for i in 0..16u64 {
        let addr = PhysAddr::new(i * 256 * 1024);
        let (b, p) = (base.map(addr), pae.map(addr));
        println!(
            "  addr {:#010x} -> BASE (ch {}, bank {:2})  |  PAE (ch {}, bank {:2})",
            addr.raw(),
            dram.controller_of(b),
            dram.bank_of(b),
            dram.controller_of(p),
            dram.bank_of(p),
        );
    }

    // 3. The mapping is a bijection: unmap recovers the original address.
    let a = PhysAddr::new(0x1234_5678 & 0x3fff_ffff);
    assert_eq!(pae.unmap(pae.map(a)), a);
    println!("\nround-trip check passed: PAE is one-to-one");

    // 4. Run the full simulator on MT (Table II) under both schemes.
    //    `Scale::Test` keeps this example fast; the experiment harness
    //    uses `Scale::Ref`.
    println!("\nsimulating MT (test scale) ...");
    let run = |kind: SchemeKind, seed: u64| {
        let mapper = AddressMapper::build(kind, &dram, seed);
        let workload = Box::new(Benchmark::Mt.workload(Scale::Test));
        GpuSim::new(GpuConfig::table1(), mapper, dram, workload).run()
    };
    let r_base = run(SchemeKind::Base, 0);
    let r_pae = run(SchemeKind::Pae, 1);
    println!(
        "  BASE: {:>9} cycles, row-buffer hit rate {:>5.1}%, channel parallelism {:.2}",
        r_base.cycles,
        r_base.row_buffer_hit_rate() * 100.0,
        r_base.channel_parallelism
    );
    println!(
        "  PAE : {:>9} cycles, row-buffer hit rate {:>5.1}%, channel parallelism {:.2}",
        r_pae.cycles,
        r_pae.row_buffer_hit_rate() * 100.0,
        r_pae.channel_parallelism
    );
    println!("  speedup: {:.2}x", r_pae.speedup_over(&r_base));
}
