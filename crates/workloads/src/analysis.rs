//! Bridges workload traces to the window-based entropy metric: walks
//! every kernel's TBs, coalesces their requests like the hardware would,
//! optionally applies an address-mapping scheme, and produces the
//! per-bit entropy profiles of Figures 5 and 10.

use valley_core::entropy::{application_entropy, kernel_entropy, TbBitStats};
use valley_core::{AddressMapper, EntropyProfile, PhysAddr};
use valley_sim::{tb_request_addresses, WorkloadSource};

/// Address bits analyzed (the 30-bit physical address space).
pub const ADDR_BITS: u8 = 30;

/// The paper's coalescing granularity for entropy analysis: requests are
/// considered at the 64 B DRAM-block granularity, so bits 6+ stay
/// meaningful (Figure 5 shows non-zero entropy at bit 6).
pub const ENTROPY_GRANULARITY: u64 = 64;

/// Computes the window-based entropy profile of one kernel of `workload`.
///
/// `window` is the concurrency window `w` (the paper uses the SM count,
/// 12). If `mapper` is given, every request address is transformed first
/// — this produces the per-scheme profiles of Figure 10.
pub fn kernel_profile(
    workload: &dyn WorkloadSource,
    kernel_index: usize,
    window: usize,
    mapper: Option<&AddressMapper>,
) -> EntropyProfile {
    let kernel = workload.kernel(kernel_index);
    let tbs: Vec<TbBitStats> = (0..kernel.num_thread_blocks())
        .map(|tb| {
            let addrs = tb_request_addresses(kernel.as_ref(), tb, ENTROPY_GRANULARITY);
            let mapped = addrs.into_iter().map(|a| match mapper {
                Some(m) => m.map(PhysAddr::new(a)).raw(),
                None => a,
            });
            TbBitStats::from_addrs(tb, ADDR_BITS, mapped)
        })
        .collect();
    kernel_entropy(&tbs, window)
}

/// Computes the application-level entropy profile of `workload`:
/// per-kernel window-based entropy, combined with request-count weights
/// (Section III-A). This regenerates one panel of Figure 5 (or, with a
/// `mapper`, of Figure 10).
pub fn application_profile(
    workload: &dyn WorkloadSource,
    window: usize,
    mapper: Option<&AddressMapper>,
) -> EntropyProfile {
    let kernels: Vec<EntropyProfile> = (0..workload.num_kernels())
        .map(|k| kernel_profile(workload, k, window, mapper))
        .collect();
    application_entropy(&kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::gen::Scale;
    use valley_core::{GddrMap, SchemeKind};

    #[test]
    fn profiles_are_normalized() {
        let w = Benchmark::Mt.workload(Scale::Test);
        let p = application_profile(&w, 12, None);
        assert_eq!(p.per_bit().len(), ADDR_BITS as usize);
        for &h in p.per_bit() {
            assert!((0.0..=1.0 + 1e-9).contains(&h));
        }
        assert!(p.requests() > 0);
    }

    #[test]
    fn mapping_changes_the_profile() {
        let w = Benchmark::Mt.workload(Scale::Test);
        let base = application_profile(&w, 12, None);
        let map = GddrMap::baseline();
        let pae = AddressMapper::build(SchemeKind::Pae, &map, 1);
        let mapped = application_profile(&w, 12, Some(&pae));
        assert_ne!(base.per_bit(), mapped.per_bit());
    }

    #[test]
    fn block_bits_have_zero_entropy() {
        // 64 B coalescing zeroes bits 0..6.
        let w = Benchmark::Sp.workload(Scale::Test);
        let p = application_profile(&w, 12, None);
        for b in 0..6 {
            assert_eq!(p.bit(b), 0.0, "block bit {b} must be constant");
        }
    }
}
