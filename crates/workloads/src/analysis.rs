//! Bridges workload traces to the window-based entropy metric: walks
//! every kernel's TBs, coalesces their requests like the hardware would,
//! optionally applies an address-mapping scheme, and produces the
//! per-bit entropy profiles of Figures 5 and 10.

use valley_compute::{backend, BvrTable, ComputeScratch};
use valley_core::entropy::{application_entropy, EntropyMethod, TbBitStats};
use valley_core::{AddressMapper, EntropyProfile};
use valley_sim::{tb_request_addresses, WorkloadSource};

/// Address bits analyzed (the 30-bit physical address space).
pub const ADDR_BITS: u8 = 30;

/// The paper's coalescing granularity for entropy analysis: requests are
/// considered at the 64 B DRAM-block granularity, so bits 6+ stay
/// meaningful (Figure 5 shows non-zero entropy at bit 6).
pub const ENTROPY_GRANULARITY: u64 = 64;

/// Computes the window-based entropy profile of one kernel of `workload`.
///
/// `window` is the concurrency window `w` (the paper uses the SM count,
/// 12). If `mapper` is given, every request address is transformed first
/// — this produces the per-scheme profiles of Figure 10.
///
/// The whole pipeline runs through the `valley-compute` backend: batch
/// BIM application, transposed per-bit BVR accumulation, and the
/// window-entropy sweep over a bit-major [`BvrTable`]. The scalar path
/// (`TbBitStats::record` + `kernel_entropy`) stays behind as the test
/// oracle below; the results are bit-exactly equal.
pub fn kernel_profile(
    workload: &dyn WorkloadSource,
    kernel_index: usize,
    window: usize,
    mapper: Option<&AddressMapper>,
) -> EntropyProfile {
    let be = backend();
    let mut scratch = ComputeScratch::new();
    let mut mapped = Vec::new();
    let kernel = workload.kernel(kernel_index);
    let tbs: Vec<TbBitStats> = (0..kernel.num_thread_blocks())
        .map(|tb| {
            let addrs = tb_request_addresses(kernel.as_ref(), tb, ENTROPY_GRANULARITY);
            let addrs: &[u64] = match mapper {
                Some(m) => {
                    be.bim_apply_batch(m.bim(), &addrs, &mut mapped, &mut scratch);
                    &mapped
                }
                None => &addrs,
            };
            let mut ones = vec![0u64; ADDR_BITS as usize];
            be.bvr_sweep(addrs, &mut ones, &mut scratch);
            TbBitStats::from_counts(tb, addrs.len() as u64, ones)
        })
        .collect();
    let table = BvrTable::from_tb_stats(&tbs);
    let mut per_bit = Vec::new();
    be.window_entropy_sweep(
        &table,
        window,
        EntropyMethod::MixtureBvr,
        &mut per_bit,
        &mut scratch,
    );
    EntropyProfile::from_per_bit(per_bit, table.requests())
}

/// Computes the application-level entropy profile of `workload`:
/// per-kernel window-based entropy, combined with request-count weights
/// (Section III-A). This regenerates one panel of Figure 5 (or, with a
/// `mapper`, of Figure 10).
pub fn application_profile(
    workload: &dyn WorkloadSource,
    window: usize,
    mapper: Option<&AddressMapper>,
) -> EntropyProfile {
    let kernels: Vec<EntropyProfile> = (0..workload.num_kernels())
        .map(|k| kernel_profile(workload, k, window, mapper))
        .collect();
    application_entropy(&kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::gen::Scale;
    use valley_core::entropy::kernel_entropy;
    use valley_core::{GddrMap, PhysAddr, SchemeKind};

    /// The pre-compute scalar pipeline, verbatim: per-address mapping,
    /// `TbBitStats::record` bit loops, `kernel_entropy`'s per-bit scans.
    /// Kept as the oracle for the vectorized path above.
    fn kernel_profile_scalar(
        workload: &dyn WorkloadSource,
        kernel_index: usize,
        window: usize,
        mapper: Option<&AddressMapper>,
    ) -> EntropyProfile {
        let kernel = workload.kernel(kernel_index);
        let tbs: Vec<TbBitStats> = (0..kernel.num_thread_blocks())
            .map(|tb| {
                let addrs = tb_request_addresses(kernel.as_ref(), tb, ENTROPY_GRANULARITY);
                let mapped = addrs.into_iter().map(|a| match mapper {
                    Some(m) => m.map(PhysAddr::new(a)).raw(),
                    None => a,
                });
                TbBitStats::from_addrs(tb, ADDR_BITS, mapped)
            })
            .collect();
        kernel_entropy(&tbs, window)
    }

    #[test]
    fn compute_path_matches_scalar_oracle_exactly() {
        // Bit-exact, not approximate: the vectorized pipeline must
        // reproduce the scalar per-bit f64s down to the last ulp, which
        // is what keeps the figure outputs byte-identical.
        let map = GddrMap::baseline();
        let all = AddressMapper::build(SchemeKind::All, &map, 1);
        for bench in [Benchmark::Mt, Benchmark::Sp] {
            let w = bench.workload(Scale::Test);
            for mapper in [None, Some(&all)] {
                for k in 0..w.num_kernels() {
                    let fast = kernel_profile(&w, k, 12, mapper);
                    let scalar = kernel_profile_scalar(&w, k, 12, mapper);
                    assert_eq!(fast.requests(), scalar.requests(), "{bench:?} kernel {k}");
                    assert_eq!(
                        fast.per_bit().len(),
                        scalar.per_bit().len(),
                        "{bench:?} kernel {k}"
                    );
                    for (b, (x, y)) in fast.per_bit().iter().zip(scalar.per_bit()).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{bench:?} kernel {k} bit {b}: {x} != {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn profiles_are_normalized() {
        let w = Benchmark::Mt.workload(Scale::Test);
        let p = application_profile(&w, 12, None);
        assert_eq!(p.per_bit().len(), ADDR_BITS as usize);
        for &h in p.per_bit() {
            assert!((0.0..=1.0 + 1e-9).contains(&h));
        }
        assert!(p.requests() > 0);
    }

    #[test]
    fn mapping_changes_the_profile() {
        let w = Benchmark::Mt.workload(Scale::Test);
        let base = application_profile(&w, 12, None);
        let map = GddrMap::baseline();
        let pae = AddressMapper::build(SchemeKind::Pae, &map, 1);
        let mapped = application_profile(&w, 12, Some(&pae));
        assert_ne!(base.per_bit(), mapped.per_bit());
    }

    #[test]
    fn block_bits_have_zero_entropy() {
        // 64 B coalescing zeroes bits 0..6.
        let w = Benchmark::Sp.workload(Scale::Test);
        let p = application_profile(&w, 12, None);
        for b in 0..6 {
            assert_eq!(p.bit(b), 0.0, "block bit {b} must be constant");
        }
    }
}
