//! The concrete workload framework: declarative kernels built from
//! per-warp instruction generators.

use std::sync::Arc;
use valley_sim::{Instruction, KernelSource, WarpProgram, WorkloadSource};

/// A function producing the instruction stream of one warp.
///
/// Must be deterministic in `(tb, warp)` — the trace is walked twice (once
/// by the entropy analyzer, once by the simulator).
pub type WarpGen = Arc<dyn Fn(u64, usize) -> Vec<Instruction> + Send + Sync>;

/// A declarative kernel: a TB grid plus a warp-instruction generator.
#[derive(Clone)]
pub struct KernelSpec {
    name: String,
    num_tbs: u64,
    warps_per_block: usize,
    gen: WarpGen,
}

impl KernelSpec {
    /// Creates a kernel of `num_tbs` thread blocks, each with
    /// `warps_per_block` warps, whose warps execute `gen(tb, warp)`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn new(
        name: impl Into<String>,
        num_tbs: u64,
        warps_per_block: usize,
        gen: WarpGen,
    ) -> Self {
        assert!(num_tbs > 0, "kernel must have at least one TB");
        assert!(warps_per_block > 0, "TBs must have at least one warp");
        KernelSpec {
            name: name.into(),
            num_tbs,
            warps_per_block,
            gen,
        }
    }
}

impl std::fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSpec")
            .field("name", &self.name)
            .field("num_tbs", &self.num_tbs)
            .field("warps_per_block", &self.warps_per_block)
            .finish_non_exhaustive()
    }
}

struct SpecKernel(Arc<KernelSpec>);

impl KernelSource for SpecKernel {
    fn name(&self) -> String {
        self.0.name.clone()
    }

    fn num_thread_blocks(&self) -> u64 {
        self.0.num_tbs
    }

    fn warps_per_block(&self) -> usize {
        self.0.warps_per_block
    }

    fn warp_program(&self, tb: u64, warp: usize) -> Box<dyn WarpProgram> {
        Box::new(VecProgram((self.0.gen)(tb, warp).into_iter()))
    }
}

struct VecProgram(std::vec::IntoIter<Instruction>);

impl WarpProgram for VecProgram {
    fn next_instruction(&mut self) -> Option<Instruction> {
        self.0.next()
    }
}

/// A complete benchmark: a named, ordered list of [`KernelSpec`]s.
///
/// Implements [`WorkloadSource`], so it plugs straight into
/// [`valley_sim::GpuSim`].
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    kernels: Vec<Arc<KernelSpec>>,
}

impl Workload {
    /// Creates a workload from its kernels (launch order).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelSpec>) -> Self {
        assert!(
            !kernels.is_empty(),
            "workload must have at least one kernel"
        );
        Workload {
            name: name.into(),
            kernels: kernels.into_iter().map(Arc::new).collect(),
        }
    }

    /// A single-kernel view of kernel `index` (used for the per-kernel
    /// entropy profiles SRAD2K1 and DWT2DK1 of Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn single_kernel(&self, index: usize) -> Workload {
        Workload {
            name: format!("{}K{}", self.name, index + 1),
            kernels: vec![self.kernels[index].clone()],
        }
    }
}

impl WorkloadSource for Workload {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    fn kernel(&self, index: usize) -> Box<dyn KernelSource> {
        Box::new(SpecKernel(self.kernels[index].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::LaneAddrs;

    fn trivial() -> Workload {
        let gen: WarpGen = Arc::new(|tb, warp| {
            vec![Instruction::Load(LaneAddrs::contiguous(
                tb * 4096 + warp as u64 * 128,
                32,
                4,
            ))]
        });
        Workload::new("T", vec![KernelSpec::new("k0", 4, 2, gen)])
    }

    #[test]
    fn workload_shape() {
        let w = trivial();
        assert_eq!(w.name(), "T");
        assert_eq!(w.num_kernels(), 1);
        let k = w.kernel(0);
        assert_eq!(k.num_thread_blocks(), 4);
        assert_eq!(k.warps_per_block(), 2);
    }

    #[test]
    fn warp_programs_are_deterministic() {
        let w = trivial();
        let k = w.kernel(0);
        let mut a = k.warp_program(2, 1);
        let mut b = k.warp_program(2, 1);
        assert_eq!(a.next_instruction(), b.next_instruction());
        assert_eq!(a.next_instruction(), None);
    }

    #[test]
    fn single_kernel_view() {
        let w = trivial();
        let k1 = w.single_kernel(0);
        assert_eq!(k1.name(), "TK1");
        assert_eq!(k1.num_kernels(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_workload_rejected() {
        let _ = Workload::new("E", vec![]);
    }
}
