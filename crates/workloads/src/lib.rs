//! # valley-workloads
//!
//! The 16 GPU-compute benchmarks of the paper's Table II, recreated as
//! deterministic synthetic trace generators (CUDA binaries and GPGPU-sim
//! traces are not available; DESIGN.md §2.5 documents the substitution).
//! Each benchmark preserves the *address structure* that drives the
//! paper's results — which bits vary inside a thread block, across the
//! concurrently-scheduled TB window, and across kernels — while scaling
//! footprints and instruction counts to simulator-friendly sizes.
//!
//! ## Quick start
//!
//! ```
//! use valley_workloads::{analysis, Benchmark, Scale};
//!
//! // Regenerate MT's Figure 5 entropy panel (window = 12 SMs).
//! let mt = Benchmark::Mt.workload(Scale::Test);
//! let profile = analysis::application_profile(&mt, 12, None);
//! assert!(profile.per_bit().len() == 30);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
mod benchmarks;
mod gen;
mod workload;

pub use benchmarks::Benchmark;
pub use gen::Scale;
pub use workload::{KernelSpec, WarpGen, Workload};
