//! Shared helpers for the benchmark generators: deterministic RNG,
//! instruction-stream building blocks and memory-region allocation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use valley_sim::{Instruction, LaneAddrs};

/// Threads per warp (matches the simulated GPU).
pub const WARP: usize = 32;
/// Bytes in a `float`.
pub const F32: u64 = 4;
/// Bytes in a `double`.
pub const F64: u64 = 8;
/// One mebibyte.
pub const MB: u64 = 1 << 20;

/// The 30-bit physical address space is carved into 64 MiB regions; each
/// benchmark array lives in its own region so arrays never alias.
pub fn region(i: u64) -> u64 {
    assert!(i < 16, "only 16 regions fit in the 1 GB address space");
    i * (64 * MB)
}

/// An explicit base address at `mb` MiB, for benchmarks whose padded
/// arrays exceed one 64 MiB region (large-pitch layouts place TB spread
/// in the high row bits, per Figure 5's high-bit entropy).
pub fn base_mb(mb: u64) -> u64 {
    assert!(mb < 1024, "base must lie inside the 1 GB address space");
    mb * MB
}

/// A deterministic RNG for `(benchmark seed, tb, warp)` — warp programs
/// must be reproducible across the entropy and timing walks.
pub fn warp_rng(seed: u64, tb: u64, warp: usize) -> StdRng {
    // SplitMix64-style mixing so nearby coordinates decorrelate.
    let mut z = seed
        .wrapping_add(tb.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add((warp as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// A compute chain of `cycles` cycles.
pub fn compute(cycles: u32) -> Instruction {
    Instruction::Compute { cycles }
}

/// A fully-coalesced warp load of 32 consecutive `elem`-byte values.
pub fn load_contig(base: u64, elem: u64) -> Instruction {
    Instruction::Load(LaneAddrs::contiguous(base, WARP, elem))
}

/// A warp load where lane `l` reads `base + l * stride` (column walks).
pub fn load_strided(base: u64, stride: u64) -> Instruction {
    Instruction::Load(LaneAddrs::strided(base, WARP, stride))
}

/// A fully-coalesced warp store.
pub fn store_contig(base: u64, elem: u64) -> Instruction {
    Instruction::Store(LaneAddrs::contiguous(base, WARP, elem))
}

/// A strided warp store.
pub fn store_strided(base: u64, stride: u64) -> Instruction {
    Instruction::Store(LaneAddrs::strided(base, WARP, stride))
}

/// A gather load from explicit per-lane addresses.
pub fn load_gather(addrs: Vec<u64>) -> Instruction {
    Instruction::Load(LaneAddrs(addrs))
}

/// Workload sizing: `Test` keeps traces tiny for unit/integration tests;
/// `Ref` is the scaled-down-but-representative configuration used by the
/// experiment harness (the paper's billion-instruction runs are scaled to
/// simulator-friendly footprints; address *structure* is preserved, see
/// DESIGN.md §2.5). `Small` uses the test-sized footprints but lives in
/// its own sweep namespace: CI and smoke sweeps run the *complete*
/// benchmark × scheme grid at `Small` without touching (or being
/// shadowed by) `Ref` results in the content-addressed store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// Minimal configuration for fast tests.
    Test,
    /// Test-sized footprints under a separate sweep namespace (full-grid
    /// smoke sweeps, CI resume checks).
    Small,
    /// Reference configuration for the experiment harness.
    Ref,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Test, Scale::Small, Scale::Ref];

    /// Picks `t` under `Test`/`Small` and `r` under `Ref`.
    pub fn pick<T>(self, t: T, r: T) -> T {
        match self {
            Scale::Test | Scale::Small => t,
            Scale::Ref => r,
        }
    }

    /// Stable lower-case identifier, used in job keys and CLI flags.
    /// Renaming a variant here silently orphans stored sweep results, so
    /// these strings are part of the result-store schema.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Ref => "ref",
        }
    }

    /// Parses a [`Scale::name`] string (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        Scale::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn regions_fit_address_space() {
        for i in 0..16 {
            assert!(region(i) + 64 * MB <= 1 << 30);
        }
    }

    #[test]
    #[should_panic(expected = "16 regions")]
    fn region_overflow_panics() {
        let _ = region(16);
    }

    #[test]
    fn warp_rng_is_deterministic_and_decorrelated() {
        let a: u64 = warp_rng(1, 2, 3).random();
        let b: u64 = warp_rng(1, 2, 3).random();
        assert_eq!(a, b);
        let c: u64 = warp_rng(1, 2, 4).random();
        assert_ne!(a, c);
        let d: u64 = warp_rng(1, 3, 3).random();
        assert_ne!(a, d);
    }

    #[test]
    fn builders_shape() {
        match load_contig(0x100, F32) {
            Instruction::Load(a) => {
                assert_eq!(a.len(), 32);
                assert_eq!(a.0[1] - a.0[0], 4);
            }
            _ => panic!("expected load"),
        }
        match store_strided(0, 4096) {
            Instruction::Store(a) => assert_eq!(a.0[31], 31 * 4096),
            _ => panic!("expected store"),
        }
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Test.pick(1, 2), 1);
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Ref.pick(1, 2), 2);
    }

    #[test]
    fn scale_names_round_trip() {
        for s in Scale::ALL {
            assert_eq!(Scale::parse(s.name()), Some(s));
            assert_eq!(Scale::parse(&s.name().to_uppercase()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Scale::parse("medium"), None);
    }
}
