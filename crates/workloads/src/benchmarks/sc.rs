//! SC — StreamCluster (Rodinia / PARSEC).
//!
//! Distance accumulation against candidate centers over a dimension-major
//! point matrix `X[d][p]` (8 KiB per dimension row). TBs are enumerated
//! dimension-minor, so concurrent TBs read different dimension rows
//! (bit 13 and above) while each TB touches only a 256 B point slice —
//! the valley pattern. Table II: 50 kernels, MPKI 3.58.

use crate::gen::{compute, load_contig, region, store_contig, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Points (columns of the dimension-major matrix).
const NP: u64 = 2048;
/// Dimensions processed per TB (one per warp).
const DIMS_PER_TB: u64 = 8;

/// Builds the SC workload: one kernel per candidate-center evaluation.
pub fn workload(scale: Scale) -> Workload {
    let dims = scale.pick(32, 256u64);
    let pblocks = scale.pick(4, 32u64);
    let evaluations = scale.pick(2, 2);
    let x = region(0); // X[d][p], 8 KiB per dimension
    let centers = region(1); // hot candidate-center vector
    let partial = region(2);

    let dchunks = dims / DIMS_PER_TB;
    let kernels = (0..evaluations)
        .map(|ev| {
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                // Dimension-minor enumeration.
                let dchunk = tb % dchunks;
                let pblk = tb / dchunks;
                let d = dchunk * DIMS_PER_TB + warp as u64;
                let row = x + d * (NP * F32);
                let p0 = pblk * 64;
                vec![
                    load_contig(row + p0 * F32, F32),
                    // Candidate-center coordinates, pitched like X so the
                    // hot reads share the dimension's high-bit structure.
                    load_contig(centers + ev as u64 * 2048 + d * (NP * F32), F32),
                    compute(6),
                    load_contig(row + (p0 + 32) * F32, F32),
                    compute(6),
                    // Per-dimension partials, pitched with the dimension.
                    store_contig(partial + d * (NP * F32) + p0 * F32, F32),
                ]
            });
            KernelSpec::new(
                format!("pgain_{ev}"),
                dchunks * pblocks,
                DIMS_PER_TB as usize,
                gen,
            )
        })
        .collect();
    Workload::new("SC", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn dimension_row_is_8kib() {
        assert_eq!(NP * F32, 8 * 1024);
    }

    #[test]
    fn tb_point_slice_is_narrow() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        // All X-matrix accesses of TB 0 (pblk 0) stay within the first
        // 256 B of each dimension row.
        for &a in addrs.iter().filter(|&&a| a < region(1)) {
            assert!(a % (8 * 1024) < 256, "point slice too wide: {a:#x}");
        }
    }

    #[test]
    fn consecutive_tbs_change_dimension() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let a0 = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let a1 = valley_sim::tb_request_addresses(k.as_ref(), 1, 64);
        // The X reads of TB1 sit exactly DIMS_PER_TB rows above TB0's.
        assert_eq!(a1[0] - a0[0], DIMS_PER_TB * 8 * 1024);
    }
}
