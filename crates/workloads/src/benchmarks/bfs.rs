//! BFS — Breadth-First Search (Rodinia).
//!
//! Level-synchronous traversal: one kernel per frontier level, with the
//! frontier growing then shrinking (a triangle over 24 levels). Node
//! metadata streams sequentially; edge targets gather randomly across an
//! 8 MiB adjacency footprint, so entropy fills the low and middle bits —
//! no valley (Figure 20). Table II: 24 kernels, MPKI 18.14.

use crate::gen::{compute, load_contig, load_gather, region, warp_rng, Scale, F32, WARP};
use crate::workload::{KernelSpec, Workload};
use rand::RngExt;
use std::sync::Arc;
use valley_sim::Instruction;

/// Adjacency-list footprint in bytes.
const EDGE_BYTES: u64 = 8 * 1024 * 1024;

/// Frontier size (in TBs) at each level: grow, plateau, shrink.
fn frontier_tbs(level: usize, peak: u64) -> u64 {
    let l = level as i64;
    let ramp = (l + 1).min(24 - l).max(1) as u64;
    (1 << ramp.min(6)).min(peak)
}

/// Builds the BFS workload: one kernel per traversal level.
pub fn workload(scale: Scale) -> Workload {
    let levels = scale.pick(4, 24);
    let peak = scale.pick(4, 32u64);
    let nodes = region(0);
    let edges = region(1);
    let dist = region(2);

    let kernels = (0..levels)
        .map(|level| {
            let tbs = frontier_tbs(level, peak);
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                let mut rng = warp_rng(0xbf5 + level as u64, tb, warp);
                let frontier_node = (level as u64 * 4096 + tb * 8 + warp as u64) * 128;
                let mut insts = vec![
                    load_contig(nodes + frontier_node % (4 * 1024 * 1024), F32),
                    compute(2),
                ];
                // Visit this node's edges: irregular neighbor gather.
                let lanes: Vec<u64> = (0..WARP)
                    .map(|_| edges + rng.random_range(0..EDGE_BYTES / 64) * 64)
                    .collect();
                insts.push(load_gather(lanes));
                insts.push(compute(3));
                // Update distances of half the discovered neighbors.
                let updates: Vec<u64> = (0..WARP / 2)
                    .map(|_| dist + rng.random_range(0..4 * 1024 * 1024 / 64) * 64)
                    .collect();
                insts.push(Instruction::Store(valley_sim::LaneAddrs(updates)));
                insts
            });
            KernelSpec::new(format!("bfs_level{level}"), tbs, 8, gen)
        })
        .collect();
    Workload::new("BFS", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn twenty_four_levels() {
        assert_eq!(workload(Scale::Ref).num_kernels(), 24);
    }

    #[test]
    fn frontier_grows_then_shrinks() {
        let early = frontier_tbs(0, 32);
        let mid = frontier_tbs(12, 32);
        let late = frontier_tbs(23, 32);
        assert!(early < mid);
        assert!(late < mid);
    }

    #[test]
    fn edge_gathers_span_footprint() {
        let w = workload(Scale::Ref);
        let k = w.kernel(12);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let edge_addrs: Vec<u64> = addrs
            .iter()
            .copied()
            .filter(|&a| (region(1)..region(2)).contains(&a))
            .collect();
        assert!(!edge_addrs.is_empty());
        let spread = edge_addrs.iter().max().unwrap() - edge_addrs.iter().min().unwrap();
        assert!(spread > EDGE_BYTES / 8);
    }

    #[test]
    fn stores_are_scattered() {
        let w = workload(Scale::Ref);
        let k = w.kernel(12);
        let mut p = k.warp_program(0, 0);
        let mut scattered = false;
        while let Some(i) = p.next_instruction() {
            if let Instruction::Store(a) = i {
                if a.0.len() == WARP / 2 {
                    scattered = true;
                }
            }
        }
        assert!(scattered);
    }
}
