//! The 16 GPU-compute benchmarks of Table II, as synthetic trace
//! generators that preserve each benchmark's *address structure* (which
//! index bits vary within a TB, across concurrent TBs, and across
//! kernels) while scaling footprints to simulator-friendly sizes.
//!
//! The first ten exhibit address-bit entropy valleys (Figure 5, top); the
//! last six concentrate their entropy in the lower-order bits and serve
//! as the non-valley control group (Figure 20).

pub mod bfs;
pub mod dwt2d;
pub mod fwt;
pub mod gs;
pub mod hs;
pub mod lm;
pub mod lps;
pub mod lu;
pub mod mt;
pub mod mum;
pub mod nn;
pub mod nw;
pub mod sc;
pub mod sp;
pub mod spmv;
pub mod srad2;

use crate::gen::Scale;
use crate::workload::Workload;

/// Identifies one of the paper's 16 benchmarks (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the benchmark names themselves
pub enum Benchmark {
    Mt,
    Lu,
    Gs,
    Nw,
    Lps,
    Sc,
    Srad2,
    Dwt2d,
    Hs,
    Sp,
    Fwt,
    Nn,
    Spmv,
    Lm,
    Mum,
    Bfs,
}

impl Benchmark {
    /// All 16 benchmarks in Table II order.
    pub const ALL: [Benchmark; 16] = [
        Benchmark::Mt,
        Benchmark::Lu,
        Benchmark::Gs,
        Benchmark::Nw,
        Benchmark::Lps,
        Benchmark::Sc,
        Benchmark::Srad2,
        Benchmark::Dwt2d,
        Benchmark::Hs,
        Benchmark::Sp,
        Benchmark::Fwt,
        Benchmark::Nn,
        Benchmark::Spmv,
        Benchmark::Lm,
        Benchmark::Mum,
        Benchmark::Bfs,
    ];

    /// The ten entropy-valley benchmarks (Figures 12–17).
    pub const VALLEY: [Benchmark; 10] = [
        Benchmark::Mt,
        Benchmark::Lu,
        Benchmark::Gs,
        Benchmark::Nw,
        Benchmark::Lps,
        Benchmark::Sc,
        Benchmark::Srad2,
        Benchmark::Dwt2d,
        Benchmark::Hs,
        Benchmark::Sp,
    ];

    /// The six non-valley benchmarks (Figure 20).
    pub const NON_VALLEY: [Benchmark; 6] = [
        Benchmark::Fwt,
        Benchmark::Nn,
        Benchmark::Spmv,
        Benchmark::Lm,
        Benchmark::Mum,
        Benchmark::Bfs,
    ];

    /// The abbreviation used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Mt => "MT",
            Benchmark::Lu => "LU",
            Benchmark::Gs => "GS",
            Benchmark::Nw => "NW",
            Benchmark::Lps => "LPS",
            Benchmark::Sc => "SC",
            Benchmark::Srad2 => "SRAD2",
            Benchmark::Dwt2d => "DWT2D",
            Benchmark::Hs => "HS",
            Benchmark::Sp => "SP",
            Benchmark::Fwt => "FWT",
            Benchmark::Nn => "NN",
            Benchmark::Spmv => "SPMV",
            Benchmark::Lm => "LM",
            Benchmark::Mum => "MUM",
            Benchmark::Bfs => "BFS",
        }
    }

    /// Parses a benchmark [`label`](Benchmark::label) (case-insensitive).
    /// The labels are stable identifiers: the sweep harness keys its
    /// content-addressed result store on them.
    pub fn parse(s: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.label().eq_ignore_ascii_case(s))
    }

    /// Whether the paper classifies this benchmark as having an entropy
    /// valley (top group of Table II / Figure 5).
    pub fn has_valley(self) -> bool {
        Benchmark::VALLEY.contains(&self)
    }

    /// Builds the benchmark's synthetic workload at the given scale.
    pub fn workload(self, scale: Scale) -> Workload {
        match self {
            Benchmark::Mt => mt::workload(scale),
            Benchmark::Lu => lu::workload(scale),
            Benchmark::Gs => gs::workload(scale),
            Benchmark::Nw => nw::workload(scale),
            Benchmark::Lps => lps::workload(scale),
            Benchmark::Sc => sc::workload(scale),
            Benchmark::Srad2 => srad2::workload(scale),
            Benchmark::Dwt2d => dwt2d::workload(scale),
            Benchmark::Hs => hs::workload(scale),
            Benchmark::Sp => sp::workload(scale),
            Benchmark::Fwt => fwt::workload(scale),
            Benchmark::Nn => nn::workload(scale),
            Benchmark::Spmv => spmv::workload(scale),
            Benchmark::Lm => lm::workload(scale),
            Benchmark::Mum => mum::workload(scale),
            Benchmark::Bfs => bfs::workload(scale),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::{Instruction, WorkloadSource};

    #[test]
    fn groups_partition_all() {
        let mut combined: Vec<Benchmark> = Benchmark::VALLEY
            .iter()
            .chain(Benchmark::NON_VALLEY.iter())
            .copied()
            .collect();
        combined.sort();
        let mut all = Benchmark::ALL.to_vec();
        all.sort();
        assert_eq!(combined, all);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Benchmark::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 16);
    }

    #[test]
    fn labels_parse_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.label()), Some(b));
            assert_eq!(Benchmark::parse(&b.label().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::parse("NOPE"), None);
    }

    /// Every benchmark builds at test scale, has kernels, and every
    /// address of its first TB fits the 30-bit physical address space.
    #[test]
    fn all_benchmarks_build_and_stay_in_address_space() {
        for b in Benchmark::ALL {
            let w = b.workload(Scale::Test);
            assert_eq!(w.name(), b.label());
            assert!(w.num_kernels() > 0, "{b} has no kernels");
            let k = w.kernel(0);
            assert!(k.num_thread_blocks() > 0, "{b} kernel 0 has no TBs");
            for warp in 0..k.warps_per_block() {
                let mut p = k.warp_program(0, warp);
                let mut insts = 0;
                while let Some(i) = p.next_instruction() {
                    insts += 1;
                    if let Instruction::Load(a) | Instruction::Store(a) = i {
                        for &addr in &a.0 {
                            assert!(
                                addr < (1 << 30),
                                "{b}: address {addr:#x} outside 1 GB space"
                            );
                        }
                    }
                }
                assert!(insts > 0, "{b}: empty warp program");
            }
        }
    }

    /// Trace determinism across walks (required by the dual consumers).
    #[test]
    fn traces_are_deterministic() {
        for b in Benchmark::ALL {
            let w = b.workload(Scale::Test);
            let k1 = w.kernel(0);
            let k2 = w.kernel(0);
            let a1 = valley_sim::tb_request_addresses(k1.as_ref(), 0, 64);
            let a2 = valley_sim::tb_request_addresses(k2.as_ref(), 0, 64);
            assert_eq!(a1, a2, "{b}: non-deterministic trace");
            assert!(!a1.is_empty(), "{b}: TB 0 issues no requests");
        }
    }
}
