//! GS — Gaussian Elimination (Rodinia).
//!
//! Per elimination step: `Fan1` computes the multiplier column, `Fan2`
//! applies the rank-1 update. The matrix is small enough to be mostly
//! LLC-resident (Table II: MPKI 0.01 despite APKI 9.09), so GS exercises
//! *LLC-slice* balance rather than DRAM: the column walks at the padded
//! 4 KiB pitch pin all concurrent requests to one slice under BASE.

use crate::gen::{
    compute, load_contig, load_strided, region, store_contig, store_strided, Scale, F32,
};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Matrix dimension.
const N: u64 = 256;
/// Padded row pitch (places the row index at bit 12 and above).
const PITCH: u64 = 4 * 1024;
/// Column chunks updated per Fan2 launch (inter-TB dimension).
const COL_CHUNKS: u64 = 4;

/// Builds the GS workload: `Fan1`/`Fan2` kernel pairs per sampled step.
pub fn workload(scale: Scale) -> Workload {
    let steps = scale.pick(3, 48);
    let step_stride = scale.pick(16, 4);
    let base = region(0);
    let mvec = region(1);

    let mut kernels = Vec::new();
    for i in 0..steps {
        let k = i as u64 * step_stride;
        // Fan1: one TB computes the multiplier column.
        let gen1 = Arc::new(move |_tb: u64, warp: usize| -> Vec<Instruction> {
            let r0 = (k + 1 + warp as u64 * 32).min(N - 32);
            vec![
                load_strided(base + r0 * PITCH + k * F32, PITCH),
                compute(5),
                store_contig(mvec + r0 * F32, F32),
            ]
        });
        kernels.push(KernelSpec::new(format!("fan1_{k}"), 1, 4, gen1));

        // Fan2: rank-1 update, gridded (row block × column chunk) with
        // the row block minor so concurrent TBs differ in the row bits.
        let rblocks = 2u64;
        let gen2 = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
            let rblk = tb % rblocks;
            let cchunk = tb / rblocks;
            let r0 = (k + 1 + rblk * 128 + warp as u64 * 32).min(N - 32);
            // Sampled trailing column; chunk offsets stay below 64 B so
            // they vanish at coalescing granularity.
            let j = (k + 1 + cchunk * 4).min(N - 1);
            let col = base + r0 * PITCH + j * F32;
            vec![
                load_contig(mvec + r0 * F32, F32),
                load_contig(base + k * PITCH + j * F32, F32), // pivot row
                load_strided(col, PITCH),
                compute(4),
                store_strided(col, PITCH),
            ]
        });
        kernels.push(KernelSpec::new(
            format!("fan2_{k}"),
            rblocks * COL_CHUNKS,
            4,
            gen2,
        ));
    }
    Workload::new("GS", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn kernel_pairs() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 96);
        assert!(w.kernel(0).name().starts_with("fan1"));
        assert!(w.kernel(1).name().starts_with("fan2"));
    }

    #[test]
    fn footprint_is_near_llc_capacity() {
        // 256 rows x 4 KiB = 1 MiB: mostly LLC-resident after warm-up.
        assert_eq!(N * PITCH, 1024 * 1024);
    }

    #[test]
    fn fan2_has_concurrent_tbs() {
        let w = workload(Scale::Ref);
        assert_eq!(w.kernel(1).num_thread_blocks(), 8);
    }

    #[test]
    fn fan2_updates_are_strided() {
        let w = workload(Scale::Ref);
        let k = w.kernel(1);
        let insts: Vec<_> = {
            let mut p = k.warp_program(0, 0);
            std::iter::from_fn(move || p.next_instruction()).collect()
        };
        let strided_stores = insts
            .iter()
            .filter(|i| matches!(i, Instruction::Store(a) if a.0[1] - a.0[0] == PITCH))
            .count();
        assert_eq!(strided_stores, 1);
    }

    #[test]
    fn row_blocks_differ_in_high_bits_only() {
        let w = workload(Scale::Ref);
        let k = w.kernel(1);
        let a0 = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let a1 = valley_sim::tb_request_addresses(k.as_ref(), 1, 64);
        // TB 0 and TB 1 differ in the row block (128 rows × 4 KiB =
        // bit 19): their first column-walk requests agree below bit 12.
        let first_col = |v: &[u64]| {
            *v.iter()
                .find(|&&a| a < region(1) && a >= PITCH)
                .expect("fan2 touches the matrix")
        };
        let (x, y) = (first_col(&a0), first_col(&a1));
        assert_eq!(x & 0xfff, y & 0xfff);
        assert_ne!(x, y);
    }
}
