//! LU — LU Decomposition (CUDA SDK).
//!
//! Right-looking factorization over a 4096×4096 double matrix (8 KiB
//! pitch, 32 MiB): each step scales the pivot column below the diagonal
//! and applies a panel update. Lanes walk the column at the row pitch
//! (bits 13–17), and the row chunks owned by concurrent warps/TBs sit
//! 2 MiB apart (bit 21 and above) — so the window's entropy lives in the
//! *high* row bits, where PM's low-row-bit XOR cannot reach it (Figure
//! 12: LU gains little from PM, much from PAE/FAE). Table II: 1022
//! kernel launches, 2.22 B instructions; we sample the step cadence.

use crate::gen::{compute, load_contig, load_strided, region, store_strided, Scale, F64};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Matrix dimension (doubles).
const N: u64 = 4096;
/// Row pitch in bytes (`N` doubles = 8 KiB if N were 1024; here 32 KiB
/// would overflow the region, so rows are stored at 8 KiB pitch with the
/// trailing 3072 doubles of each row in a second panel — the factored
/// panel we touch lives in the first 1024 columns).
const PITCH: u64 = 8 * 1024;
/// Row chunk owned by one warp: 256 rows × PITCH = 2 MiB (bit 21+).
const CHUNK_ROWS: u64 = 256;

/// Builds the LU workload: one merged scale+update kernel per step.
pub fn workload(scale: Scale) -> Workload {
    let steps = scale.pick(4, 64);
    let step_stride = scale.pick(64, 16);
    let base = region(0); // 4096 rows x 8 KiB = 32 MiB

    let kernels = (0..steps)
        .map(|i| {
            let k = i as u64 * step_stride;
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                // Warp (tb*8 + w) owns a sparse 32-row sample of its
                // 2 MiB-aligned chunk below the diagonal.
                let chunk = tb * 8 + warp as u64;
                let r0 = (k + 1 + chunk * CHUNK_ROWS) % (N - 32);
                let col_k = base + r0 * PITCH + (k % 512) * F64;
                vec![
                    // Scale column k below the pivot.
                    load_strided(col_k, PITCH),
                    compute(6),
                    store_strided(col_k, PITCH),
                    // Panel update of column k+1 with the pivot row.
                    load_contig(base + (k % (N - 1)) * PITCH + (k % 512) * F64, F64),
                    load_strided(col_k + F64, PITCH),
                    compute(4),
                    store_strided(col_k + F64, PITCH),
                ]
            });
            KernelSpec::new(format!("lud_step{k}"), 2, 8, gen)
        })
        .collect();
    Workload::new("LU", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn many_small_kernels() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 64);
        assert_eq!(w.kernel(0).num_thread_blocks(), 2);
    }

    #[test]
    fn column_walks_use_row_pitch() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let mut p = k.warp_program(0, 0);
        match p.next_instruction().unwrap() {
            Instruction::Load(a) => assert_eq!(a.0[1] - a.0[0], PITCH),
            other => panic!("expected strided load, got {other:?}"),
        }
    }

    #[test]
    fn warp_chunks_are_2mib_apart() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let first = |warp: usize| {
            let mut p = k.warp_program(0, warp);
            match p.next_instruction().unwrap() {
                Instruction::Load(a) => a.0[0],
                other => panic!("expected load, got {other:?}"),
            }
        };
        assert_eq!(first(1) - first(0), CHUNK_ROWS * PITCH);
        assert_eq!(CHUNK_ROWS * PITCH, 2 * 1024 * 1024);
    }

    #[test]
    fn footprint_is_one_region() {
        const { assert!(N * PITCH <= 64 * 1024 * 1024) };
    }
}
