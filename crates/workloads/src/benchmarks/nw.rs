//! NW — Needleman-Wunsch (Rodinia).
//!
//! Anti-diagonal wavefront over a 2D dynamic-programming table. Lanes walk
//! *along* a cell diagonal: with the DP table's row pitch padded to
//! 16 KiB + 4 B, the per-lane stride `pitch − 4` is exactly 16 KiB, so a
//! warp's 32 requests differ only at bit 14 and above — the deepest valley
//! in the suite — while the diagonal index `d` contributes only bits
//! below the coalescing granularity. Table II: 255 kernels, MPKI 5.12.

use crate::gen::{compute, load_strided, region, store_strided, Scale};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// DP-table rows/columns (cells).
const N: u64 = 1024;
/// Padded row pitch: pitch − 4 = 8 KiB makes diagonal lane strides a
/// power of two, and keeps them below bit 18 so the window's entropy
/// sits outside PM's reach (the TB chunks then land at bits 18–19,
/// which PM's first two XOR pairs do cover — hence PM's partial,
/// channel-only repair on NW).
const PITCH: u64 = 8 * 1024 + 4;
/// Lane stride along a cell diagonal.
const DIAG_STRIDE: u64 = PITCH - 4;

/// Address of DP cell `(i, d - i)` on diagonal `d`.
fn cell(base: u64, i: u64, d: u64) -> u64 {
    base + i * DIAG_STRIDE + d * 4
}

/// Builds the NW workload: one kernel per processed block diagonal.
pub fn workload(scale: Scale) -> Workload {
    let block_diags = scale.pick(3, 32);
    let dp = region(0);
    let reference = region(1);

    let kernels = (0..block_diags)
        .map(|bd| {
            // Central diagonals where the wavefront is widest.
            let d0 = (8 + bd as u64) * 32;
            let diag_len = (d0 + 1).min(N).min(2 * N - d0);
            let tbs = (diag_len / 32).clamp(1, 4);
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                // Warp handles cell chunk [i0, i0+32) of sub-diagonal d.
                let i0 = tb * 32;
                let d = d0 + warp as u64 * 4;
                vec![
                    load_strided(cell(dp, i0, d - 1), DIAG_STRIDE), // north-west inputs
                    load_strided(cell(dp, i0, d - 2), DIAG_STRIDE),
                    load_strided(cell(reference, i0, d), DIAG_STRIDE),
                    compute(6),
                    store_strided(cell(dp, i0, d), DIAG_STRIDE),
                ]
            });
            KernelSpec::new(format!("nw_diag{d0}"), tbs, 8, gen)
        })
        .collect();
    Workload::new("NW", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn diagonal_lane_stride_is_power_of_two() {
        assert!(DIAG_STRIDE.is_power_of_two());
        assert_eq!(DIAG_STRIDE, 1 << 13);
    }

    #[test]
    fn tb_requests_agree_in_bits_11_and_12() {
        // Within a TB, requests vary only at the 8 KiB lane stride
        // (bit 13+) and the sub-2 KiB `d*4` wobble (bits ≤ 10), so bits
        // 11-12 are frozen — part of the BASE bank field.
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let mask = 0b11 << 11;
        let first = addrs[0] & mask;
        for &a in &addrs {
            assert_eq!(a & mask, first);
        }
    }

    #[test]
    fn wavefront_width_tracks_diagonal() {
        let w = workload(Scale::Ref);
        assert!(w.kernel(0).num_thread_blocks() <= w.kernel(20).num_thread_blocks());
    }

    #[test]
    fn addresses_fit_address_space() {
        // Largest touched cell must stay inside the DP region (64 MiB).
        let max_addr = cell(0, N - 1, 2 * N - 2);
        assert!(max_addr < 64 * 1024 * 1024);
    }
}
