//! SRAD2 — Speckle-Reducing Anisotropic Diffusion v2 (Rodinia).
//!
//! Two stencil kernels per iteration over a 1024×1024 image with 4 KiB row
//! pitch. Warps walk image *columns* (lane stride = row pitch), so a TB's
//! requests agree in bits 8–11 while spreading over bits 12–21; both
//! kernels share this structure, which is why the paper's SRAD2K1 profile
//! matches the whole application (Figure 5g/5h). Table II: 4 kernels.

use crate::gen::{compute, load_strided, region, store_strided, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Image rows.
const ROWS: u64 = 1024;
/// Padded row pitch in bytes.
const PITCH: u64 = 4 * 1024;
/// Rows per TB: 8 warps × 32 strided lanes.
const ROWS_PER_TB: u64 = 256;

/// Builds the SRAD2 workload: (srad1, srad2) × iterations.
pub fn workload(scale: Scale) -> Workload {
    let iterations = scale.pick(1, 2);
    let cols = scale.pick(8, 32u64);
    let img = region(0);
    let deriv = region(1);

    let rblocks = ROWS / ROWS_PER_TB;
    let mut kernels = Vec::new();
    for it in 0..iterations {
        for (pass, (src, dst)) in [(img, deriv), (deriv, img)].into_iter().enumerate() {
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                // Row-block minor enumeration: concurrent TBs differ at
                // bit 20+ (r0 * PITCH), the column changes every rblocks TBs.
                let rblk = tb % rblocks;
                let c = tb / rblocks;
                let r0 = rblk * ROWS_PER_TB + warp as u64 * 32;
                let center = src + r0 * PITCH + c * F32;
                vec![
                    load_strided(center, PITCH),
                    load_strided(center + PITCH, PITCH), // south neighbors
                    load_strided(center + F32, PITCH),   // east (same lines)
                    compute(7),
                    store_strided(dst + r0 * PITCH + c * F32, PITCH),
                ]
            });
            kernels.push(KernelSpec::new(
                format!("srad{}_it{it}", pass + 1),
                rblocks * cols,
                8,
                gen,
            ));
        }
    }
    Workload::new("SRAD2", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn four_kernels_at_ref_scale() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 4);
    }

    #[test]
    fn kernels_share_column_walk_structure() {
        // The SRAD2K1-vs-SRAD2 similarity of Figure 5: both kernels walk
        // columns at the same pitch.
        let w = workload(Scale::Ref);
        for ki in 0..2 {
            let k = w.kernel(ki);
            let mut p = k.warp_program(0, 0);
            match p.next_instruction().unwrap() {
                Instruction::Load(a) => assert_eq!(a.0[1] - a.0[0], PITCH),
                other => panic!("expected strided load, got {other:?}"),
            }
        }
    }

    #[test]
    fn east_neighbor_shares_cache_lines() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 0, 128);
        // After 128 B coalescing, the +4 B east loads collapse onto the
        // center lines: expect far fewer unique lines than raw lane count.
        let unique: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        assert!(unique.len() < addrs.len());
    }
}
