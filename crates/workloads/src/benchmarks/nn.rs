//! NN — Neural Network inference (Wong et al. microbenchmark suite).
//!
//! Small hot weight matrices plus a streaming input layer: the footprint
//! is tiny, so the entropy lives in the lower-order bits and the LLC
//! absorbs almost everything (Table II: MPKI 0.2). Mapping should leave
//! NN's performance untouched (Figure 20).

use crate::gen::{compute, load_contig, region, store_contig, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Hot weight region size in bytes (fits comfortably in the LLC).
const WEIGHTS: u64 = 256 * 1024;

/// Builds the NN workload: four layer kernels.
pub fn workload(scale: Scale) -> Workload {
    let layers = scale.pick(2, 4);
    let tbs = scale.pick(8, 64u64);
    let weights = region(0);
    let acts = region(1);

    let kernels = (0..layers)
        .map(|layer| {
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                let neuron = tb * 8 + warp as u64;
                let mut insts = Vec::new();
                for i in 0..3u64 {
                    // Weight row: a 64 B-granular scatter over the hot
                    // region, so every address bit above the block offset
                    // varies (CPU-like low-bit entropy, no valley).
                    let wrow = (neuron * 2741 + i * 947) * 64 % WEIGHTS;
                    insts.extend([
                        load_contig(weights + wrow, F32),
                        load_contig(acts + (layer as u64 * 4096 + i) * 128, F32),
                        compute(20),
                    ]);
                }
                insts.push(store_contig(
                    acts + ((layer as u64 + 1) * 4096 + neuron) * 128 % (4 * 1024 * 1024),
                    F32,
                ));
                insts
            });
            KernelSpec::new(format!("layer{layer}"), tbs, 8, gen)
        })
        .collect();
    Workload::new("NN", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn four_layers() {
        assert_eq!(workload(Scale::Ref).num_kernels(), 4);
    }

    #[test]
    fn footprint_is_small() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        for tb in [0, 31, 63] {
            for &a in &valley_sim::tb_request_addresses(k.as_ref(), tb, 64) {
                // Everything inside the first two regions' first few MB.
                assert!(a < region(1) + 8 * 1024 * 1024);
            }
        }
    }

    #[test]
    fn heavy_compute_chains() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let mut p = k.warp_program(0, 0);
        let mut total_compute = 0u64;
        while let Some(i) = p.next_instruction() {
            if let Instruction::Compute { cycles } = i {
                total_compute += cycles as u64;
            }
        }
        assert!(total_compute >= 60);
    }
}
