//! MUM — MUMmerGPU sequence alignment (Rodinia).
//!
//! Pointer-chasing walks over a 16 MiB suffix tree: every step is an
//! uncorrelated gather, so entropy saturates every bit of the footprint
//! and misses dominate (Table II: MPKI 22.53, the most memory-intensive
//! benchmark). No valley — randomization cannot help what is already
//! random (Figure 20).

use crate::gen::{
    compute, load_contig, load_gather, region, store_contig, warp_rng, Scale, F32, WARP,
};
use crate::workload::{KernelSpec, Workload};
use rand::RngExt;
use std::sync::Arc;
use valley_sim::Instruction;

/// Suffix-tree footprint in bytes.
const TREE_BYTES: u64 = 16 * 1024 * 1024;
/// Tree-walk depth per query.
const DEPTH: usize = 4;

/// Builds the MUM workload: match + print kernels.
pub fn workload(scale: Scale) -> Workload {
    let tbs = scale.pick(8, 48u64);
    let tree = region(0);
    let queries = region(1);
    let results = region(2);

    let kernels = (0..2)
        .map(|phase| {
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                let mut rng = warp_rng(0x3d3 + phase as u64, tb, warp);
                let q = queries + (tb * 8 + warp as u64) * 512;
                let mut insts = vec![load_contig(q, F32), compute(4)];
                for _ in 0..DEPTH {
                    // Each lane follows its own child pointer: a fully
                    // random 64 B-aligned node address.
                    let lanes: Vec<u64> = (0..WARP)
                        .map(|_| tree + rng.random_range(0..TREE_BYTES / 64) * 64)
                        .collect();
                    insts.push(load_gather(lanes));
                    insts.push(compute(3));
                }
                insts.push(store_contig(results + (tb * 8 + warp as u64) * 128, F32));
                insts
            });
            let name = if phase == 0 {
                "mummergpu_match"
            } else {
                "mummergpu_print"
            };
            KernelSpec::new(name, tbs, 8, gen)
        })
        .collect();
    Workload::new("MUM", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn two_kernels() {
        assert_eq!(workload(Scale::Ref).num_kernels(), 2);
    }

    #[test]
    fn walks_are_random_and_wide() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let tree_addrs: Vec<u64> = addrs.iter().copied().filter(|&a| a < region(1)).collect();
        assert!(tree_addrs.len() >= DEPTH * WARP / 2);
        let min = tree_addrs.iter().min().unwrap();
        let max = tree_addrs.iter().max().unwrap();
        assert!(max - min > TREE_BYTES / 4, "gathers should span the tree");
    }

    #[test]
    fn phases_use_different_seeds() {
        let w = workload(Scale::Ref);
        let a = valley_sim::tb_request_addresses(w.kernel(0).as_ref(), 0, 64);
        let b = valley_sim::tb_request_addresses(w.kernel(1).as_ref(), 0, 64);
        assert_ne!(a, b);
    }
}
