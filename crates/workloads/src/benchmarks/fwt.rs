//! FWT — Fast Walsh Transform (CUDA SDK).
//!
//! Butterfly passes with partner offsets at every power of two: across
//! the 22 kernels the high-variability bit sweeps the whole address
//! range, so the aggregate profile has entropy everywhere and no valley
//! (Figure 5m / Figure 20). Table II: 22 kernels, MPKI 1.38.

use crate::gen::{compute, load_contig, region, store_contig, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Transform length in elements (1 MiB of data).
const N: u64 = 1 << 18;

/// Builds the FWT workload: one butterfly kernel per stage.
pub fn workload(scale: Scale) -> Workload {
    let stages = scale.pick(4, 15u32);
    let extra = scale.pick(0, 7u32); // small fix-up kernels (22 total)
    let data = region(0);

    let mut kernels = Vec::new();
    for s in 0..stages {
        let partner = (1u64 << s) * F32; // 4 B .. 512 KiB
        let tbs = 16;
        // Each TB walks a full 16 KiB chunk (8 warps × 8 iterations ×
        // 256 B), so every channel/bank bit (8-13) toggles *inside* every
        // TB — the CPU-like profile that leaves nothing for mapping to fix.
        let per_tb = 16 * 1024u64;
        debug_assert!(tbs * per_tb <= N * F32, "chunks stay inside the array");
        let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
            let mut insts = Vec::new();
            for i in 0..8u64 {
                let x = data + tb * per_tb + (warp as u64 * 8 + i) * 256;
                // Butterfly partner: XOR keeps the pair inside the array.
                let y = data + ((x - data) ^ partner);
                insts.extend([
                    load_contig(x, F32),
                    load_contig(y, F32),
                    compute(3),
                    store_contig(x, F32),
                    store_contig(y, F32),
                ]);
            }
            insts
        });
        kernels.push(KernelSpec::new(format!("fwt_stage{s}"), tbs, 8, gen));
    }
    for e in 0..extra {
        let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
            let x = data + (tb * 8 + warp as u64) * 512 + e as u64 * 128;
            vec![load_contig(x, F32), compute(4), store_contig(x, F32)]
        });
        kernels.push(KernelSpec::new(format!("fwt_fixup{e}"), 16, 8, gen));
    }
    Workload::new("FWT", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn twenty_two_kernels_at_ref_scale() {
        assert_eq!(workload(Scale::Ref).num_kernels(), 22);
    }

    #[test]
    fn partner_offset_sweeps_powers_of_two() {
        let w = workload(Scale::Ref);
        for (s, expected) in [(0usize, 4u64), (10, 4096)] {
            let k = w.kernel(s);
            let mut p = k.warp_program(0, 0);
            let a = match p.next_instruction().unwrap() {
                Instruction::Load(a) => a.0[0],
                other => panic!("expected load, got {other:?}"),
            };
            let b = match p.next_instruction().unwrap() {
                Instruction::Load(b) => b.0[0],
                other => panic!("expected load, got {other:?}"),
            };
            assert_eq!(a ^ b, expected);
        }
    }

    #[test]
    fn butterfly_stays_in_array() {
        let w = workload(Scale::Ref);
        let k = w.kernel(17);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 31, 64);
        for &a in &addrs {
            assert!(a >= region(0) && a < region(0) + N * F32);
        }
    }
}
