//! SPMV — Sparse Matrix-Vector multiply (Parboil).
//!
//! CSR traversal: streaming value/column loads plus an irregular gather of
//! the dense vector. The random gather spreads entropy uniformly over the
//! footprint's bits, so no valley forms (Figure 20). Table II: 50
//! kernels, MPKI 2.75.

use crate::gen::{
    compute, load_contig, load_gather, region, store_contig, warp_rng, Scale, F32, WARP,
};
use crate::workload::{KernelSpec, Workload};
use rand::RngExt;
use std::sync::Arc;
use valley_sim::Instruction;

/// Dense-vector footprint the gather lands in.
const X_BYTES: u64 = 4 * 1024 * 1024;

/// Builds the SPMV workload: one kernel per multiply iteration.
pub fn workload(scale: Scale) -> Workload {
    let iterations = scale.pick(2, 10);
    let tbs = scale.pick(4, 32u64);
    let vals = region(0);
    let x = region(1);
    let y = region(2);

    let kernels = (0..iterations)
        .map(|it| {
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                let mut rng = warp_rng(0x5934 + it as u64, tb, warp);
                let row = tb * 8 + warp as u64;
                let mut insts = vec![
                    // Stream the row's values and column indices.
                    load_contig(vals + row * 4096, F32),
                    load_contig(vals + row * 4096 + 2048, F32),
                ];
                // Gather x[col[j]] at random offsets.
                let lanes: Vec<u64> = (0..WARP)
                    .map(|_| x + (rng.random_range(0..X_BYTES / 4)) * F32)
                    .collect();
                insts.push(load_gather(lanes));
                insts.push(compute(6));
                insts.push(store_contig(y + row * 128, F32));
                insts
            });
            KernelSpec::new(format!("spmv_it{it}"), tbs, 8, gen)
        })
        .collect();
    Workload::new("SPMV", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn iteration_kernels() {
        assert_eq!(workload(Scale::Ref).num_kernels(), 10);
    }

    #[test]
    fn gather_is_irregular_but_bounded() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let mut p = k.warp_program(0, 0);
        let mut saw_gather = false;
        while let Some(i) = p.next_instruction() {
            if let Instruction::Load(a) = i {
                if a.0.len() == WARP {
                    let min = *a.0.iter().min().unwrap();
                    let max = *a.0.iter().max().unwrap();
                    if max - min > 4096 {
                        saw_gather = true;
                        assert!(max < region(1) + X_BYTES);
                        assert!(min >= region(1));
                    }
                }
            }
        }
        assert!(saw_gather);
    }

    #[test]
    fn gather_differs_across_tbs() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let a = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let b = valley_sim::tb_request_addresses(k.as_ref(), 1, 64);
        assert_ne!(a, b);
    }
}
