//! HS — Hotspot thermal simulation (Rodinia).
//!
//! A tiled 5-point stencil over temperature and power grids (512×512,
//! 2 KiB pitch). Tiles are 16 rows × 32 columns with row-block-minor
//! enumeration, and the benchmark is compute-heavy (Table II: APKI 0.71,
//! MPKI 0.08 — the least memory-intensive of the valley group), so the
//! valley exists but address mapping moves performance only slightly.

use crate::gen::{compute, load_contig, region, store_contig, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Grid dimension.
const N: u64 = 512;
/// Row pitch in bytes.
const PITCH: u64 = 2 * 1024;
/// Tile height in rows.
const TILE_ROWS: u64 = 16;

/// Builds the HS workload: a single fused stencil kernel.
pub fn workload(scale: Scale) -> Workload {
    let rblocks = scale.pick(4, N / TILE_ROWS);
    let cblocks = scale.pick(2, 16u64);
    let temp = region(0);
    let power = region(1);
    let out = region(2);

    let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
        let rblk = tb % rblocks;
        let cblk = tb / rblocks;
        let x = cblk * 32;
        let mut insts = Vec::new();
        for i in 0..2u64 {
            let r = rblk * TILE_ROWS + warp as u64 * 2 + i;
            let rn = r.saturating_sub(1);
            let rs = (r + 1).min(N - 1);
            insts.extend([
                load_contig(temp + r * PITCH + x * F32, F32),
                load_contig(temp + rn * PITCH + x * F32, F32),
                load_contig(temp + rs * PITCH + x * F32, F32),
                load_contig(power + r * PITCH + x * F32, F32),
                compute(16), // hotspot's long per-cell arithmetic chain
                store_contig(out + r * PITCH + x * F32, F32),
                compute(8),
            ]);
        }
        insts
    });
    let kernel = KernelSpec::new("hotspot", rblocks * cblocks, 8, gen);
    Workload::new("HS", vec![kernel])
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn single_kernel() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 1);
        assert_eq!(w.kernel(0).num_thread_blocks(), 32 * 16);
    }

    #[test]
    fn compute_dominates_instruction_mix() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let mut p = k.warp_program(0, 0);
        let mut compute_cycles = 0u64;
        let mut mem = 0u64;
        while let Some(i) = p.next_instruction() {
            match i {
                Instruction::Compute { cycles } => compute_cycles += cycles as u64,
                _ => mem += 1,
            }
        }
        assert!(compute_cycles > 4 * mem, "HS must be compute-heavy");
    }

    #[test]
    fn tile_column_extent_is_narrow() {
        // 32 floats = 128 B: the tile never spans the channel bits.
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let addrs = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        for &a in &addrs {
            assert!(a % PITCH < 256, "tile x-extent too wide: {a:#x}");
        }
    }
}
