//! LPS — 3D Laplace Solver.
//!
//! A 7-point stencil over a `64 × 128 × 32` grid with padded 4 KiB row
//! pitch and 512 KiB slab pitch. Each TB covers four x-rows at one
//! (y-block, z) coordinate; the narrow 256 B x-extent keeps bits 8–11
//! constant inside a TB while y/z place their entropy at bit 12 and
//! above. Table II: 2 kernels, MPKI 1.66.

use crate::gen::{base_mb, compute, load_contig, store_contig, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Grid x-extent in elements (256 B per row — below the channel bits).
const NX: u64 = 64;
/// Padded row (y) pitch in bytes.
const ROW_PITCH: u64 = 4 * 1024;
/// Slab (z) pitch in bytes, padded to 4 MiB: with z-minor TB scheduling
/// the concurrent window's entropy lands at bit 22 and above — high row
/// bits PM cannot tap but PAE can.
const SLAB_PITCH: u64 = 4 * 1024 * 1024;

fn at(base: u64, x: u64, y: u64, z: u64) -> u64 {
    base + z * SLAB_PITCH + y * ROW_PITCH + x * F32
}

/// Builds the LPS workload: two stencil sweeps (ping-pong buffers).
pub fn workload(scale: Scale) -> Workload {
    let ny = scale.pick(16, 128u64);
    let nz = scale.pick(4, 32u64);
    // Two 128 MiB ping-pong volumes.
    let buf = [base_mb(0), base_mb(512)];

    let kernels = (0..2)
        .map(|sweep| {
            let src = buf[sweep % 2];
            let dst = buf[(sweep + 1) % 2];
            let yblocks = ny / 4;
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                // z-minor: concurrent TBs differ in the slab (bit 22+).
                let z = tb % nz;
                let yblk = tb / nz;
                let y = yblk * 4 + warp as u64 / 2;
                let x = (warp as u64 % (NX / 32)) * 32;
                let yn = y.saturating_sub(1);
                let ys = (y + 1).min(ny - 1);
                let zd = z.saturating_sub(1);
                let zu = (z + 1).min(nz - 1);
                vec![
                    load_contig(at(src, x, y, z), F32),
                    load_contig(at(src, x, yn, z), F32),
                    load_contig(at(src, x, ys, z), F32),
                    load_contig(at(src, x, y, zd), F32),
                    load_contig(at(src, x, y, zu), F32),
                    compute(8),
                    store_contig(at(dst, x, y, z), F32),
                ]
            });
            KernelSpec::new(format!("laplace3d_{sweep}"), yblocks * nz, 8, gen)
        })
        .collect();
    Workload::new("LPS", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn two_kernels_ping_pong() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 2);
        assert_eq!(w.kernel(0).num_thread_blocks(), 32 * 32);
    }

    #[test]
    fn x_extent_stays_below_channel_bits() {
        const { assert!(NX * F32 <= 256) };
    }

    #[test]
    fn neighbors_are_row_and_slab_offsets() {
        let c = at(0, 0, 5, 2);
        assert_eq!(at(0, 0, 6, 2) - c, ROW_PITCH);
        assert_eq!(at(0, 0, 5, 3) - c, SLAB_PITCH);
    }

    #[test]
    fn boundary_tbs_clamp() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        // First TB, first warp touches y=0: the north neighbor clamps.
        let mut p = k.warp_program(0, 0);
        let first = p.next_instruction().unwrap();
        let second = p.next_instruction().unwrap();
        match (first, second) {
            (Instruction::Load(a), Instruction::Load(b)) => assert_eq!(a.0[0], b.0[0]),
            other => panic!("expected loads, got {other:?}"),
        }
    }
}
