//! DWT2D — 2D Discrete Wavelet Transform (Rodinia).
//!
//! Alternating vertical/horizontal wavelet passes over a 512×512 image
//! (2 KiB row pitch), one kernel pair per decomposition level. The
//! vertical pass pairs rows `y` and `y + half` (an offset that halves
//! each level), so the location of the high-variability bit *moves across
//! kernels* — producing the paper's broad application-level valley with
//! narrow per-kernel valleys (Figure 5i vs 5j). Table II: 10 kernels.

use crate::gen::{compute, load_contig, region, store_contig, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Image dimension in elements.
const N: u64 = 512;
/// Row pitch in bytes.
const PITCH: u64 = N * F32;

/// Builds the DWT2D workload: 5 levels × (vertical, horizontal).
pub fn workload(scale: Scale) -> Workload {
    let levels = scale.pick(2, 5u32);
    let src = region(0);
    let dst = region(1);

    let mut kernels = Vec::new();
    for level in 0..levels {
        let extent = N >> level; // active image extent at this level
        let half = extent / 2;

        // Vertical pass: combine rows y and y+half.
        let yblocks = (half / 8).max(1);
        let xblocks = (extent * F32 / 256).max(1);
        let gen_v = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
            let yblk = tb % yblocks;
            let xblk = tb / yblocks;
            let y = yblk * 8 + warp as u64;
            let x = xblk * 64 + (warp as u64 % 2) * 32;
            let x = x % extent.max(64);
            vec![
                load_contig(src + y * PITCH + x * F32, F32),
                load_contig(src + (y + half) * PITCH + x * F32, F32),
                compute(5),
                store_contig(dst + y * PITCH + x * F32, F32),
                store_contig(dst + (y + half) * PITCH + x * F32, F32),
            ]
        });
        kernels.push(KernelSpec::new(
            format!("dwt_v_l{level}"),
            yblocks * xblocks,
            8,
            gen_v,
        ));

        // Horizontal pass: combine columns x and x+half within a row.
        let rows = extent;
        let gen_h = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
            let y = (tb * 8 + warp as u64) % rows.max(1);
            let x0 = 0u64;
            vec![
                load_contig(dst + y * PITCH + x0 * F32, F32),
                load_contig(dst + y * PITCH + (x0 + half) * F32, F32),
                compute(5),
                store_contig(src + y * PITCH + x0 * F32, F32),
            ]
        });
        kernels.push(KernelSpec::new(
            format!("dwt_h_l{level}"),
            (rows / 8).max(1),
            8,
            gen_h,
        ));
    }
    Workload::new("DWT2D", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn ten_kernels_at_ref_scale() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 10);
    }

    #[test]
    fn pair_offset_halves_per_level() {
        let w = workload(Scale::Ref);
        // Vertical kernels at levels 0 and 1: row-pair offsets 256 and
        // 128 rows respectively.
        for (ki, half_rows) in [(0usize, 256u64), (2, 128)] {
            let k = w.kernel(ki);
            let mut p = k.warp_program(0, 0);
            let a = match p.next_instruction().unwrap() {
                Instruction::Load(a) => a.0[0],
                other => panic!("expected load, got {other:?}"),
            };
            let b = match p.next_instruction().unwrap() {
                Instruction::Load(b) => b.0[0],
                other => panic!("expected load, got {other:?}"),
            };
            assert_eq!(b - a, half_rows * PITCH);
        }
    }

    #[test]
    fn grids_shrink_with_level() {
        let w = workload(Scale::Ref);
        assert!(w.kernel(8).num_thread_blocks() < w.kernel(0).num_thread_blocks());
    }
}
