//! SP — Scalar Product (CUDA SDK).
//!
//! Dot products of many vector pairs. Each TB owns one pair whose vectors
//! sit at 32 KiB-aligned bases, and reads only a 256 B head segment per
//! vector, so concurrent TBs differ exclusively at bit 15 and above — a
//! wide valley with all harvestable entropy in the row bits (ideal for
//! PAE). Table II: 1 kernel, 0.12 B instructions (the smallest run).

use crate::gen::{base_mb, compute, load_contig, store_contig, Scale, F32, MB};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Per-pair allocation pitch: each pair's `A`/`B` vectors share a 1 MiB
/// arena (B at +512 KiB), so concurrent TBs differ only at bit 20 and
/// above — row-bit entropy PM's low-row XOR misses but PAE harvests.
const VEC_PITCH: u64 = MB;
/// Offset of the `B` vector inside a pair's arena.
const B_OFF: u64 = 512 * 1024;

/// Builds the SP workload: one kernel over all vector pairs.
pub fn workload(scale: Scale) -> Workload {
    let pairs = scale.pick(64, 512u64);
    let arena = base_mb(0); // pairs x 1 MiB
    let c = base_mb(640);

    let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
        let pair = arena + tb * VEC_PITCH;
        let off = warp as u64 * 128;
        vec![
            load_contig(pair + off, F32),
            load_contig(pair + B_OFF + off, F32),
            compute(6),
            load_contig(pair + off + 256, F32),
            load_contig(pair + B_OFF + off + 256, F32),
            compute(6),
            store_contig(c + tb * VEC_PITCH / 8 + off, F32),
        ]
    });
    let kernel = KernelSpec::new("scalar_prod", pairs, 2, gen);
    Workload::new("SP", vec![kernel])
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn one_kernel_many_pairs() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 1);
        assert_eq!(w.kernel(0).num_thread_blocks(), 512);
        assert_eq!(w.kernel(0).warps_per_block(), 2);
    }

    #[test]
    fn pair_loads_differ_only_at_bit20_and_above() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let a0 = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let a5 = valley_sim::tb_request_addresses(k.as_ref(), 5, 64);
        let loads =
            |v: &[u64]| -> Vec<u64> { v.iter().copied().filter(|&a| a < base_mb(640)).collect() };
        for (x, y) in loads(&a0).iter().zip(loads(&a5).iter()) {
            assert_eq!(x & (VEC_PITCH - 1), y & (VEC_PITCH - 1));
            assert_eq!(y - x, 5 * VEC_PITCH);
        }
    }

    #[test]
    fn footprint_fits_address_space() {
        // 512 pairs x 1 MiB arena = 512 MiB, plus the 64 MiB result
        // region at 640 MiB: everything below 1 GiB.
        assert!(512 * VEC_PITCH <= base_mb(640));
        assert!(base_mb(640) + 512 * VEC_PITCH / 8 < 1 << 30);
    }
}
