//! MT — Matrix Transpose (CUDA SDK).
//!
//! Reads a band of matrix `A` row-major and writes the transpose into `B`
//! column-major. The column-major writes stride by `B`'s 4 KiB row pitch,
//! so every write of a concurrently-scheduled TB window lands in the same
//! channel/bank group under the BASE map — the paper's motivating valley
//! (Figure 2, Figure 10). Rows of `A` are padded to a 32 KiB pitch, which
//! places the row index in the DRAM row bits where PAE can harvest it.
//!
//! Table II: 4 kernels (one per 64-row band here), APKI 7.44, MPKI 5.69.

use crate::gen::{base_mb, compute, load_contig, store_strided, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use std::sync::Arc;
use valley_sim::Instruction;

/// Pitch of one row of `A` in bytes. The large (pitched-allocation) row
/// stride places the row index at bit 20 and above, so concurrently
/// scheduled TBs differ in the *high* row bits — entropy PM's
/// fixed low-row-bit XOR cannot reach but PAE's broad harvest can.
const PITCH_A: u64 = 1024 * 1024;
/// Pitch of one *column* of the transposed output `B`.
const PITCH_B: u64 = 4 * 1024;
/// Rows handled per TB tile (one per warp).
const TILE_ROWS: u64 = 8;
/// Columns per TB tile (one warp-load wide).
const TILE_COLS: u64 = 32;

/// Builds the MT workload: one kernel per transposed row band.
pub fn workload(scale: Scale) -> Workload {
    let cols = scale.pick(128, 512);
    let band_rows = scale.pick(16, 64);
    let kernels_n = scale.pick(2, 4);
    // A spans 256 rows x 1 MiB pitch = 256 MiB; B (2 MiB) sits above it.
    let base_a = base_mb(0);
    let base_b = base_mb(384);

    let rblocks = band_rows / TILE_ROWS;
    let cblocks = cols / TILE_COLS;
    let kernels = (0..kernels_n)
        .map(|kid| {
            let band = kid as u64 * band_rows;
            let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
                // TB enumeration is row-block minor: concurrent TBs differ
                // in the row (high bits), not the column (low bits).
                let rblk = tb % rblocks;
                let cblk = tb / rblocks;
                let r = band + rblk * TILE_ROWS + warp as u64;
                let c0 = cblk * TILE_COLS;
                vec![
                    load_contig(base_a + r * PITCH_A + c0 * F32, F32),
                    compute(4),
                    store_strided(base_b + c0 * PITCH_B + r * F32, PITCH_B),
                    compute(2),
                ]
            });
            KernelSpec::new(
                format!("transpose_band{kid}"),
                rblocks * cblocks,
                TILE_ROWS as usize,
                gen,
            )
        })
        .collect();
    Workload::new("MT", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn shape_matches_table2() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 4);
        let k = w.kernel(0);
        assert_eq!(k.num_thread_blocks(), 8 * 16);
        assert_eq!(k.warps_per_block(), 8);
    }

    #[test]
    fn writes_are_column_major_strided() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let mut p = k.warp_program(0, 0);
        let mut saw_store = false;
        while let Some(i) = p.next_instruction() {
            if let Instruction::Store(a) = i {
                saw_store = true;
                assert_eq!(a.0[1] - a.0[0], PITCH_B);
            }
        }
        assert!(saw_store);
    }

    #[test]
    fn concurrent_tbs_share_low_order_bits() {
        // Consecutive TBs (same column block) differ only at/above bit 15
        // in their read addresses — the valley precondition.
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let a0 = valley_sim::tb_request_addresses(k.as_ref(), 0, 64);
        let a1 = valley_sim::tb_request_addresses(k.as_ref(), 1, 64);
        let read0 = a0[0]; // first request is the row-major read
        let read1 = a1[0];
        assert_eq!(read0 & 0x7fff, read1 & 0x7fff, "low bits must match");
        assert_ne!(read0, read1);
    }
}
