//! LM — LavaMD molecular dynamics (Rodinia).
//!
//! Each TB owns one particle box and repeatedly reads neighbor boxes from
//! a 512 KiB LLC-resident domain while doing heavy pairwise arithmetic:
//! very high LLC access rate with almost no DRAM traffic (Table II:
//! APKI 18.23, MPKI 0.01). The box-id randomness spreads entropy through
//! the low/middle bits — no valley (Figure 20).

use crate::gen::{compute, load_contig, region, store_contig, warp_rng, Scale, F32};
use crate::workload::{KernelSpec, Workload};
use rand::RngExt;
use std::sync::Arc;
use valley_sim::Instruction;

/// Number of particle boxes.
const BOXES: u64 = 256;
/// Bytes per box (256 boxes × 2 KiB = 512 KiB, LLC-resident).
const BOX_BYTES: u64 = 2 * 1024;
/// Neighbor boxes visited per warp.
const NEIGHBORS: usize = 8;

/// Builds the LM workload: a single force-computation kernel.
pub fn workload(scale: Scale) -> Workload {
    let tbs = scale.pick(16, BOXES);
    let boxes = region(0);
    let forces = region(1);

    let gen = Arc::new(move |tb: u64, warp: usize| -> Vec<Instruction> {
        let mut rng = warp_rng(0x1a7a, tb, warp);
        let own = boxes + tb * BOX_BYTES + warp as u64 * 256;
        let mut insts = vec![load_contig(own, F32), load_contig(own + 128, F32)];
        for _ in 0..NEIGHBORS {
            let nb: u64 = rng.random_range(0..BOXES);
            let seg = boxes + nb * BOX_BYTES + warp as u64 * 256;
            insts.extend([
                load_contig(seg, F32),
                load_contig(seg + 128, F32),
                compute(12), // pairwise force arithmetic
            ]);
        }
        insts.push(store_contig(
            forces + tb * BOX_BYTES + warp as u64 * 256,
            F32,
        ));
        insts
    });
    let kernel = KernelSpec::new("lavamd_forces", tbs, 8, gen);
    Workload::new("LM", vec![kernel])
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_sim::WorkloadSource;

    #[test]
    fn single_kernel_one_tb_per_box() {
        let w = workload(Scale::Ref);
        assert_eq!(w.num_kernels(), 1);
        assert_eq!(w.kernel(0).num_thread_blocks(), BOXES);
    }

    #[test]
    fn domain_is_llc_resident() {
        assert_eq!(BOXES * BOX_BYTES, 512 * 1024);
    }

    #[test]
    fn neighbor_reads_stay_in_domain() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        for &a in &valley_sim::tb_request_addresses(k.as_ref(), 3, 64) {
            assert!(a < region(2), "address escaped the LM regions: {a:#x}");
        }
    }

    #[test]
    fn many_more_loads_than_stores() {
        let w = workload(Scale::Ref);
        let k = w.kernel(0);
        let mut p = k.warp_program(0, 0);
        let (mut loads, mut stores) = (0, 0);
        while let Some(i) = p.next_instruction() {
            match i {
                Instruction::Load(_) => loads += 1,
                Instruction::Store(_) => stores += 1,
                _ => {}
            }
        }
        assert!(loads > 10 * stores);
    }
}
