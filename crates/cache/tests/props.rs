//! Property-based tests for the cache and MSHR substrates.

use proptest::prelude::*;
use valley_cache::{CacheConfig, MshrAllocation, MshrFile, SetAssocCache};

proptest! {
    /// Occupancy never exceeds capacity, regardless of the fill stream.
    #[test]
    fn occupancy_bounded(addrs in proptest::collection::vec(0u64..(1 << 20), 1..200)) {
        let cfg = CacheConfig::new(1024, 2, 64);
        let capacity = cfg.sets() * cfg.assoc();
        let mut c = SetAssocCache::new(cfg);
        for a in addrs {
            c.fill(a);
            prop_assert!(c.occupancy() <= capacity);
        }
    }

    /// A line just filled always hits (no spurious eviction of MRU).
    #[test]
    fn fill_then_probe_hits(addrs in proptest::collection::vec(0u64..(1 << 20), 1..100)) {
        let mut c = SetAssocCache::new(CacheConfig::new(2048, 4, 64));
        for a in addrs {
            c.fill(a);
            prop_assert!(c.probe(a), "just-filled line must hit");
        }
    }

    /// Within-associativity working sets never miss after warm-up
    /// (true-LRU guarantee).
    #[test]
    fn lru_retains_small_working_set(set_bits in 0u64..16, rounds in 1usize..8) {
        let cfg = CacheConfig::new(1024, 2, 64); // 8 sets, 2 ways
        let mut c = SetAssocCache::new(cfg);
        // Two lines in the same set (fits the associativity).
        let a = set_bits * 64;
        let b = a + (8 * 64); // same set, different tag
        c.fill(a);
        c.fill(b);
        for _ in 0..rounds {
            prop_assert!(c.probe(a));
            prop_assert!(c.probe(b));
        }
    }

    /// Hits + misses always equals the number of probes.
    #[test]
    fn stats_conservation(addrs in proptest::collection::vec(0u64..(1 << 14), 1..300)) {
        let mut c = SetAssocCache::new(CacheConfig::new(1024, 2, 64));
        for (i, a) in addrs.iter().enumerate() {
            if !c.probe(*a) {
                c.fill(*a);
            }
            let s = c.stats();
            prop_assert_eq!(s.accesses(), (i + 1) as u64);
        }
    }

    /// The MSHR file conserves waiters: everything allocated (new or
    /// merged) comes back exactly once on completion.
    #[test]
    fn mshr_waiter_conservation(
        lines in proptest::collection::vec(0u64..8, 1..60),
    ) {
        let mut m = MshrFile::new(8, 64);
        let mut expected: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for (i, &l) in lines.iter().enumerate() {
            let line = l * 64;
            match m.allocate(line, i as u64) {
                MshrAllocation::NewEntry | MshrAllocation::Merged => {
                    expected.entry(line).or_default().push(i as u64);
                }
                MshrAllocation::Stalled => {}
            }
        }
        for (line, waiters) in expected {
            prop_assert_eq!(m.complete(line), Some(waiters));
        }
        prop_assert!(m.is_empty());
    }

    /// The MSHR never reports more outstanding lines than its capacity.
    #[test]
    fn mshr_capacity_respected(lines in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut m = MshrFile::new(4, 4);
        for (i, &l) in lines.iter().enumerate() {
            let _ = m.allocate(l * 64, i as u64);
            prop_assert!(m.len() <= 4);
        }
    }
}
