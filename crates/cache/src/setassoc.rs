//! A set-associative cache with true-LRU replacement.

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use valley_cache::CacheConfig;
///
/// // The paper's per-SM L1: 16 KB, 4-way, 32 sets, 128 B lines.
/// let l1 = CacheConfig::new(16 * 1024, 4, 128);
/// assert_eq!(l1.sets(), 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: usize,
    line_bytes: u64,
}

impl CacheConfig {
    /// Creates a configuration of `size_bytes` capacity, `assoc` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the capacity is an
    /// exact multiple of `assoc * line_bytes`.
    pub fn new(size_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(
            size_bytes.is_multiple_of(assoc as u64 * line_bytes) && size_bytes > 0,
            "capacity must be a positive multiple of assoc * line size"
        );
        let cfg = CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
        };
        assert!(
            (cfg.sets() as u64).is_power_of_two(),
            "set count must be a power of two"
        );
        cfg
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of ways.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.assoc as u64 * self.line_bytes)) as usize
    }
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of valid lines evicted by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// The immutable side of a set-associative cache: the configured
/// [`CacheConfig`] plus the derived indexing constants (line shift, set
/// mask), computed once. [`SetAssocCache`] holds one of these next to
/// its mutable state (tags, LRU order, counters) — the config/state
/// split that lets many same-config caches (the batched engine's lanes,
/// one L1 per SM) derive their geometry from a single precomputed
/// value instead of each redoing the arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
}

impl CacheGeometry {
    /// Precomputes the indexing constants for `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        CacheGeometry {
            cfg,
            line_shift: cfg.line_bytes().trailing_zeros(),
            set_mask: cfg.sets() as u64 - 1,
        }
    }

    /// The source configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    /// The set index of a line-aligned address.
    #[inline]
    pub fn set_index(&self, line: u64) -> usize {
        ((line >> self.line_shift) & self.set_mask) as usize
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    addr: u64,
    dirty: bool,
}

/// A line evicted by a fill, with its dirty status (write-back caches
/// must flush dirty victims to the next level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line-aligned address.
    pub line: u64,
    /// Whether the line held unwritten-back data.
    pub dirty: bool,
}

/// A set-associative cache with true-LRU replacement and per-line dirty
/// tracking.
///
/// Tags are full line addresses, so the structure never aliases. The cache
/// stores presence and dirtiness only (no data), which is all a timing
/// simulator needs.
///
/// # Examples
///
/// ```
/// use valley_cache::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.probe(0x100));      // cold miss
/// c.fill(0x100);
/// assert!(c.probe(0x100));       // now resident
/// assert!(c.probe(0x13f));       // same 64 B line
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// Immutable geometry (see [`CacheGeometry`]).
    geom: CacheGeometry,
    /// Per set: resident lines in LRU order (front = MRU).
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_geometry(CacheGeometry::new(cfg))
    }

    /// Creates an empty cache over a precomputed [`CacheGeometry`] —
    /// builders constructing many identical caches (per-SM L1s, the
    /// batched engine's lanes) derive the geometry once and stamp out
    /// state-only instances.
    pub fn with_geometry(geom: CacheGeometry) -> Self {
        let cfg = geom.config();
        SetAssocCache {
            geom,
            sets: vec![Vec::with_capacity(cfg.assoc()); cfg.sets()],
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.geom.config()
    }

    /// The precomputed geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        self.geom.line_addr(addr)
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        self.geom.set_index(line)
    }

    /// Looks up `addr`; on a hit the line becomes most-recently used.
    /// Returns `true` on hit. Updates the statistics.
    pub fn probe(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.addr == line) {
            // Promote to MRU with one in-place rotation (equivalent to
            // remove + insert-at-front, at half the moves).
            ways[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Replays the statistics side effect of a missing [`probe`] without
    /// performing the lookup — for retry paths that can prove the outcome
    /// is unchanged since the last real probe (a miss mutates no LRU
    /// state, so the counter is the probe's only effect).
    ///
    /// [`probe`]: SetAssocCache::probe
    #[inline]
    pub fn record_retry_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Bulk form of [`SetAssocCache::record_retry_miss`] for deferred
    /// accounting of `n` elided retry cycles.
    #[inline]
    pub fn record_retry_misses(&mut self, n: u64) {
        self.stats.misses += n;
    }

    /// Checks residency without touching LRU state or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        self.sets[self.set_index(line)]
            .iter()
            .any(|l| l.addr == line)
    }

    /// Installs the line containing `addr` as MRU (clean), returning the
    /// evicted line address if the set was full. Filling an
    /// already-resident line just refreshes its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.fill_with(addr, false).map(|e| e.line)
    }

    /// Installs the line containing `addr` as MRU with the given dirty
    /// status, returning the full [`Eviction`] record of any victim.
    /// Re-filling a resident line refreshes LRU and ORs in `dirty`.
    pub fn fill_with(&mut self, addr: u64, dirty: bool) -> Option<Eviction> {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let assoc = self.geom.config().assoc();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.addr == line) {
            ways[..=pos].rotate_right(1);
            ways[0].dirty |= dirty;
            return None;
        }
        if ways.len() == assoc {
            // Rotate the LRU victim to the front and overwrite it in
            // place — one move pass instead of pop + insert-at-front.
            self.stats.evictions += 1;
            ways.rotate_right(1);
            let victim = ways[0];
            ways[0] = Line { addr: line, dirty };
            Some(Eviction {
                line: victim.addr,
                dirty: victim.dirty,
            })
        } else {
            // Cold sets grow their way vectors lazily toward `assoc`;
            // that warm-up growth is declared to the allocation audit.
            let _audit_pause =
                (ways.len() == ways.capacity()).then(valley_core::alloc_audit::pause);
            ways.insert(0, Line { addr: line, dirty });
            None
        }
    }

    /// Marks the line containing `addr` dirty (write hit in a write-back
    /// cache) and promotes it to MRU. Returns `false` if not resident.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.addr == line) {
            ways[..=pos].rotate_right(1);
            ways[0].dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes the line containing `addr` if resident; returns whether a
    /// line was removed.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.addr == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (the contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets, 2 ways, 64 B lines.
        SetAssocCache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn config_geometry() {
        let l1 = CacheConfig::new(16 * 1024, 4, 128);
        assert_eq!(l1.sets(), 32);
        let llc = CacheConfig::new(64 * 1024, 8, 128);
        assert_eq!(llc.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_bad_line() {
        let _ = CacheConfig::new(256, 2, 48);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        c.fill(0x40);
        assert!(c.probe(0x40));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = tiny();
        c.fill(0x80);
        assert!(c.probe(0x81));
        assert!(c.probe(0xbf));
        assert!(!c.probe(0xc0)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line_index % 2 == 0): 0x000, 0x100, 0x200...
        c.fill(0x000);
        c.fill(0x100);
        assert!(c.probe(0x000)); // make 0x000 MRU
        let evicted = c.fill(0x200); // evicts LRU = 0x100
        assert_eq!(evicted, Some(0x100));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
        assert!(c.contains(0x200));
    }

    #[test]
    fn fill_resident_line_is_idempotent() {
        let mut c = tiny();
        c.fill(0x40);
        assert_eq!(c.fill(0x40), None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.fill(i * 64);
        }
        assert!(c.occupancy() <= 4); // 2 sets x 2 ways
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.contains(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Lines 0x000 and 0x040 go to different sets; filling three lines
        // into set 0 never disturbs set 1.
        c.fill(0x040);
        c.fill(0x000);
        c.fill(0x100);
        c.fill(0x200);
        assert!(c.contains(0x040));
    }

    #[test]
    fn dirty_tracking_roundtrip() {
        let mut c = tiny();
        c.fill(0x000); // clean fill
        assert!(c.mark_dirty(0x000));
        assert!(!c.mark_dirty(0x999_940)); // not resident
                                           // Evicting the dirty line reports it dirty.
        c.fill(0x100); // same set
        let ev = c.fill_with(0x200, false).expect("set is full");
        assert_eq!(ev.line, 0x000);
        assert!(ev.dirty, "mark_dirty promoted 0x000 to MRU; 0x100 ... ");
    }

    #[test]
    fn fill_with_dirty_sticks_until_eviction() {
        let mut c = tiny();
        assert!(c.fill_with(0x000, true).is_none());
        // Re-filling clean must not clear the dirty bit.
        assert!(c.fill_with(0x000, false).is_none());
        c.fill(0x100); // set now [0x100, 0x000(dirty)]
        let ev = c.fill_with(0x200, false).expect("set is full");
        assert_eq!(ev.line, 0x000, "LRU victim");
        assert!(ev.dirty, "dirty bit survived the clean re-fill");
    }

    #[test]
    fn contains_does_not_touch_lru_or_stats() {
        let mut c = tiny();
        c.fill(0x000);
        c.fill(0x100);
        // contains() on LRU line must not promote it.
        assert!(c.contains(0x000) || c.contains(0x100));
        let stats_before = c.stats();
        let _ = c.contains(0x000);
        assert_eq!(c.stats(), stats_before);
    }
}
