//! Miss Status Holding Registers (MSHRs) with request merging.
//!
//! An MSHR file tracks outstanding cache misses by line address. A second
//! miss to a line that is already being fetched *merges* into the existing
//! entry instead of issuing a duplicate memory request — essential for GPU
//! L1s, where many warps touch the same lines in short order. The paper's
//! L1 configuration provides 32 MSHR entries per SM (Table I).

use std::collections::HashMap;
use valley_core::hash::FastBuildHasher;

/// Outcome of asking the MSHR file to track a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A new entry was allocated; the caller must issue the memory request.
    NewEntry,
    /// The line is already outstanding; the waiter was merged and no new
    /// memory request is needed.
    Merged,
    /// The file (or the entry's merge capacity) is full; the requester must
    /// stall and retry later.
    Stalled,
}

/// An MSHR file: outstanding miss lines, each with the waiters (opaque
/// `u64` tokens — warp ids, transaction ids, ...) to wake on fill.
///
/// # Examples
///
/// ```
/// use valley_cache::{MshrAllocation, MshrFile};
///
/// let mut m = MshrFile::new(2, 4);
/// assert_eq!(m.allocate(0x100, 7), MshrAllocation::NewEntry);
/// assert_eq!(m.allocate(0x100, 8), MshrAllocation::Merged);
/// assert_eq!(m.complete(0x100), Some(vec![7, 8]));
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    max_merges: usize,
    entries: HashMap<u64, Vec<u64>, FastBuildHasher>,
    /// Recycled waiter lists: completing an entry via
    /// [`MshrFile::complete_into`] parks its `Vec` here so a later
    /// allocation reuses it instead of hitting the allocator.
    pool: Vec<Vec<u64>>,
}

impl MshrFile {
    /// Creates a file with `capacity` entries, each holding at most
    /// `max_merges` waiters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_merges` is zero.
    pub fn new(capacity: usize, max_merges: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        assert!(max_merges > 0, "merge capacity must be non-zero");
        MshrFile {
            capacity,
            max_merges,
            entries: HashMap::with_capacity_and_hasher(capacity, Default::default()),
            pool: Vec::new(),
        }
    }

    /// Number of entry slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of outstanding lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether all entry slots are in use.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether `line` is already being fetched.
    pub fn contains(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Tracks a miss on `line` for `waiter`. See [`MshrAllocation`] for the
    /// three possible outcomes.
    pub fn allocate(&mut self, line: u64, waiter: u64) -> MshrAllocation {
        if let Some(waiters) = self.entries.get_mut(&line) {
            if waiters.len() >= self.max_merges {
                return MshrAllocation::Stalled;
            }
            // Waiter-list growth (here and below) is amortized pool
            // growth toward the merge-capacity high-water mark, and the
            // map itself may rehash under insert/remove churn even though
            // its live size is bounded; declare both to the allocation
            // audit rather than counting them as per-tick work.
            let _audit_pause =
                (waiters.len() == waiters.capacity()).then(valley_core::alloc_audit::pause);
            waiters.push(waiter);
            return MshrAllocation::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrAllocation::Stalled;
        }
        let mut waiters = self.pool.pop().unwrap_or_default();
        let _audit_pause = (waiters.len() == waiters.capacity()
            || self.entries.len() == self.entries.capacity())
        .then(valley_core::alloc_audit::pause);
        waiters.push(waiter);
        self.entries.insert(line, waiters);
        MshrAllocation::NewEntry
    }

    /// Completes the fetch of `line`, freeing its entry and returning the
    /// waiters to wake (in allocation order), or `None` if the line was not
    /// outstanding.
    pub fn complete(&mut self, line: u64) -> Option<Vec<u64>> {
        self.entries.remove(&line)
    }

    /// Allocation-free [`MshrFile::complete`]: appends the waiters of
    /// `line` to `out` (in allocation order) and recycles the entry's
    /// storage. Returns whether the line was outstanding.
    pub fn complete_into(&mut self, line: u64, out: &mut Vec<u64>) -> bool {
        match self.entries.remove(&line) {
            Some(mut waiters) => {
                // Caller-buffer and free-pool growth toward their
                // high-water marks — declared to the allocation audit.
                let _audit_pause = (out.len() + waiters.len() > out.capacity()
                    || self.pool.len() == self.pool.capacity())
                .then(valley_core::alloc_audit::pause);
                out.extend_from_slice(&waiters);
                waiters.clear();
                self.pool.push(waiters);
                true
            }
            None => false,
        }
    }

    /// The outstanding line addresses, in ascending order (the backing
    /// map is unordered; sorting here keeps every consumer — debug dumps,
    /// assertions — independent of hash-iteration order).
    pub fn outstanding_lines(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_complete() {
        let mut m = MshrFile::new(4, 8);
        assert_eq!(m.allocate(0x40, 1), MshrAllocation::NewEntry);
        assert!(m.contains(0x40));
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(0x40), Some(vec![1]));
        assert!(m.is_empty());
    }

    #[test]
    fn merging_preserves_order() {
        let mut m = MshrFile::new(4, 8);
        m.allocate(0x40, 10);
        assert_eq!(m.allocate(0x40, 11), MshrAllocation::Merged);
        assert_eq!(m.allocate(0x40, 12), MshrAllocation::Merged);
        assert_eq!(m.len(), 1, "merges must not consume entries");
        assert_eq!(m.complete(0x40), Some(vec![10, 11, 12]));
    }

    #[test]
    fn capacity_stalls_new_lines_but_not_merges() {
        let mut m = MshrFile::new(2, 8);
        m.allocate(0x000, 1);
        m.allocate(0x040, 2);
        assert!(m.is_full());
        assert_eq!(m.allocate(0x080, 3), MshrAllocation::Stalled);
        // Merging into an existing entry still works at capacity.
        assert_eq!(m.allocate(0x000, 4), MshrAllocation::Merged);
    }

    #[test]
    fn merge_capacity_stalls() {
        let mut m = MshrFile::new(2, 2);
        m.allocate(0x40, 1);
        m.allocate(0x40, 2);
        assert_eq!(m.allocate(0x40, 3), MshrAllocation::Stalled);
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m = MshrFile::new(2, 2);
        assert_eq!(m.complete(0xdead), None);
    }

    #[test]
    fn outstanding_lines_iterates_all() {
        let mut m = MshrFile::new(4, 2);
        m.allocate(0x80, 2);
        m.allocate(0x40, 1);
        assert_eq!(m.outstanding_lines(), vec![0x40, 0x80]);
    }
}
