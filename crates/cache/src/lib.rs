//! # valley-cache
//!
//! Set-associative caches with true-LRU replacement and an MSHR file with
//! request merging — the building blocks for the Valley GPU simulator's
//! per-SM L1 data caches (16 KB, 4-way, 128 B lines, 32 MSHRs) and the
//! eight LLC slices (64 KB, 8-way) of Table I.
//!
//! The crate is deliberately policy-free: it models *presence* and
//! *replacement* only. Latency, write policies and the memory-hierarchy
//! wiring live in `valley-sim`, which composes these parts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod mshr;
mod setassoc;

pub use mshr::{MshrAllocation, MshrFile};
pub use setassoc::{CacheConfig, CacheGeometry, CacheStats, Eviction, SetAssocCache};
