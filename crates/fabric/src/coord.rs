//! The sweep coordinator: expands a [`SweepSpec`], serves what the
//! store already holds, and leases the rest to remote workers with
//! crash-tolerant deadlines.
//!
//! ## Lease lifecycle
//!
//! A worker's `Request` pops up to `capacity` pending jobs that share a
//! machine (config × scale × scheme — the same grouping the local
//! batched sweep uses, so `execute_batch` applies unchanged) and wraps
//! them in a lease with a deadline. Three things can happen:
//!
//! * **`Done`** — the results are accepted (idempotently: a job that
//!   was already completed by a faster replica counts as a duplicate
//!   and is dropped; the store is content-addressed, so nothing can be
//!   stored twice) and the lease is retired.
//! * **`Failed`** — the worker's panic isolation tripped. The jobs go
//!   back to the queue with the structured [`JobFailure`] attached to
//!   telemetry; after [`CoordOptions::max_attempts`] failures a job is
//!   declared dead and reported in the serve summary instead of
//!   looping forever.
//! * **Nothing** — the worker disconnected or its deadline passed.
//!   The jobs return to the front of the queue and the re-lease is
//!   counted. A worker that later completes the stale lease anyway is
//!   handled by the idempotent path above: zero results lost, zero
//!   duplicated.
//!
//! ## Determinism
//!
//! Fresh results are buffered and committed to the store **in grid
//! expansion order** (an in-order commit cursor), no matter which
//! worker finishes first — so the shard files a distributed sweep
//! produces are identical to a local sequential `valley sweep`'s,
//! modulo only the measured `wall_ms` values. The loopback test pins
//! exactly that.
//!
//! ## Read side
//!
//! `Query` and `Status` frames are answered purely from the store and
//! the in-memory lease table; the coordinator never simulates. With
//! [`CoordOptions::linger`] it keeps answering them after the grid
//! completes, until an admin `Shutdown` frame arrives.

use crate::proto::{FailureNote, Msg, QueryFilters, Role, Telemetry, WorkerStat, PROTOCOL_VERSION};
use crate::wire::{read_frame, write_frame, WireError};
use crate::FabricError;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use valley_core::hash::FastMap;
use valley_harness::{JobFailure, JobSpec, ResultStore, StoredResult, SweepSpec, WallKind};
use valley_sim::SimReport;

/// Options controlling one serve run.
#[derive(Clone, Debug)]
pub struct CoordOptions {
    /// Lease deadline: a leased job whose worker neither completes nor
    /// fails it within this window is re-leased to the next requester.
    pub lease_ms: u64,
    /// Backoff suggested to workers when every pending job is leased.
    pub retry_ms: u64,
    /// Structured failures tolerated per job before it is declared dead
    /// (a deterministic panic would otherwise re-lease forever).
    pub max_attempts: u32,
    /// Keep serving read-side queries after the grid completes, until a
    /// `Shutdown` frame arrives. Without it the coordinator exits as
    /// soon as every job is stored.
    pub linger: bool,
    /// Print per-lease progress to stderr.
    pub verbose: bool,
}

impl Default for CoordOptions {
    fn default() -> Self {
        CoordOptions {
            lease_ms: 60_000,
            retry_ms: 500,
            max_attempts: 3,
            linger: false,
            verbose: false,
        }
    }
}

/// What one serve run accomplished.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Final telemetry snapshot.
    pub telemetry: Telemetry,
    /// Jobs that exhausted their failure attempts (empty on success).
    pub dead: Vec<JobFailure>,
    /// Wall time of the whole serve.
    pub wall: Duration,
}

impl ServeSummary {
    /// Whether every job of the grid ended up stored.
    pub fn complete(&self) -> bool {
        self.dead.is_empty()
            && self.telemetry.cache_hits + self.telemetry.executed == self.telemetry.jobs_total
    }
}

/// Per-job lifecycle within one serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Pending,
    Leased(u64),
    Done,
    Dead,
}

struct LeaseEntry {
    jobs: Vec<usize>,
    conn: u64,
    worker: String,
    deadline: Instant,
}

struct State {
    status: Vec<Slot>,
    pending: VecDeque<usize>,
    // BTreeMap: reap_expired/release_conn iterate these maps and requeue
    // jobs, so iteration order is scheduling order — keep it ordered.
    leases: BTreeMap<u64, LeaseEntry>,
    next_lease: u64,
    /// Fresh results awaiting the in-order commit cursor.
    buffered: BTreeMap<usize, (SimReport, f64, WallKind)>,
    next_commit: usize,
    attempts: Vec<u32>,
    cache_hits: u64,
    executed: u64,
    releases: u64,
    duplicates: u64,
    workers: BTreeMap<String, (u64, u64)>,
    failures: Vec<FailureNote>,
    dead: Vec<JobFailure>,
    /// Admin shutdown received (only meaning while lingering).
    shutdown: bool,
}

impl State {
    fn grid_complete(&self) -> bool {
        self.status
            .iter()
            .all(|s| matches!(s, Slot::Done | Slot::Dead))
    }

    fn telemetry(&self, jobs_total: u64) -> Telemetry {
        Telemetry {
            jobs_total,
            cache_hits: self.cache_hits,
            executed: self.executed,
            active_leases: self.leases.len() as u64,
            releases: self.releases,
            duplicates: self.duplicates,
            workers: self
                .workers
                .iter()
                .map(|(name, &(completed, failed))| WorkerStat {
                    name: name.clone(),
                    completed,
                    failed,
                })
                .collect(),
            failures: self.failures.clone(),
        }
    }
}

struct Shared<'a> {
    jobs: Vec<JobSpec>,
    index_of: FastMap<JobSpec, usize>,
    state: Mutex<State>,
    store: &'a ResultStore,
    opts: &'a CoordOptions,
    finished: AtomicBool,
    conn_seq: AtomicU64,
}

/// A bound coordinator, ready to [`Coordinator::run`]. Binding is split
/// from running so callers (tests, the CLI) can learn the actual
/// listening address before any worker connects.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds the coordinator's listener.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Coordinator> {
        Ok(Coordinator {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves the sweep: leases every job not already in the store to
    /// connecting workers, commits results in expansion order, and
    /// answers read-side queries from the store. Returns when the grid
    /// is complete (or, with [`CoordOptions::linger`], when a
    /// `Shutdown` frame arrives).
    pub fn run(
        self,
        spec: &SweepSpec,
        store: &ResultStore,
        opts: &CoordOptions,
    ) -> Result<ServeSummary, FabricError> {
        let start = Instant::now();
        let jobs = spec.expand();
        let n = jobs.len();
        let index_of: FastMap<JobSpec, usize> =
            jobs.iter().enumerate().map(|(i, &j)| (j, i)).collect();

        let mut state = State {
            status: vec![Slot::Pending; n],
            pending: VecDeque::new(),
            leases: BTreeMap::new(),
            next_lease: 1,
            buffered: BTreeMap::new(),
            next_commit: 0,
            attempts: vec![0; n],
            cache_hits: 0,
            executed: 0,
            releases: 0,
            duplicates: 0,
            workers: BTreeMap::new(),
            failures: Vec::new(),
            dead: Vec::new(),
            shutdown: false,
        };
        // Resume: everything the store already holds is done before any
        // worker connects — the fabric never re-runs a stored job.
        for (i, job) in jobs.iter().enumerate() {
            if store.get(job).is_some() {
                state.status[i] = Slot::Done;
                state.cache_hits += 1;
            } else {
                state.pending.push_back(i);
            }
        }
        advance_commit(&mut state, &jobs, store);
        if opts.verbose {
            eprintln!(
                "serve: {} job(s), {} cached, {} to lease",
                n,
                state.cache_hits,
                state.pending.len()
            );
        }
        let shared = Shared {
            jobs,
            index_of,
            state: Mutex::new(state),
            store,
            opts,
            finished: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
        };
        let wake_addr = self.local_addr()?;
        if shared.state.lock().expect("fabric state").grid_complete() && !opts.linger {
            shared.finished.store(true, Ordering::SeqCst);
        }

        if !shared.finished.load(Ordering::SeqCst) {
            std::thread::scope(|scope| -> Result<(), FabricError> {
                loop {
                    let (stream, _peer) = self.listener.accept()?;
                    if shared.finished.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    let shared = &shared;
                    let conn = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                    scope.spawn(move || {
                        // A peer dying mid-frame is normal fabric
                        // weather (that is what leases are for);
                        // only protocol violations are worth noise.
                        if let Err(WireError::Protocol(msg)) =
                            handle_conn(stream, conn, shared, wake_addr)
                        {
                            eprintln!("fabric: connection {conn}: {msg}");
                        }
                        // Whatever the exit reason, the connection's
                        // outstanding leases go back to the queue.
                        release_conn(conn, shared, wake_addr);
                    });
                }
            })?;
        }

        let state = shared.state.into_inner().expect("fabric state");
        Ok(ServeSummary {
            telemetry: state.telemetry(n as u64),
            dead: state.dead,
            wall: start.elapsed(),
        })
    }
}

/// Advances the in-order commit cursor: every contiguous completed job
/// at the cursor is flushed to the store (dead jobs are skipped), so
/// shard append order equals grid expansion order regardless of which
/// worker finished first. A store write failure demotes the job to a
/// structured dead entry rather than wedging the cursor.
fn advance_commit(state: &mut State, jobs: &[JobSpec], store: &ResultStore) {
    while state.next_commit < jobs.len() {
        let i = state.next_commit;
        match state.status[i] {
            Slot::Dead => {}
            Slot::Done => {
                if let Some((report, wall_ms, wall)) = state.buffered.remove(&i) {
                    if let Err(e) = store.put(&jobs[i], &report, wall_ms, wall) {
                        let failure = JobFailure::store_write(jobs[i], e.to_string());
                        state.failures.push(FailureNote {
                            job: jobs[i].label(),
                            kind: failure.kind,
                            message: failure.message.clone(),
                        });
                        state.status[i] = Slot::Dead;
                        state.dead.push(failure);
                        state.executed -= 1;
                    }
                }
            }
            Slot::Pending | Slot::Leased(_) => break,
        }
        state.next_commit += 1;
    }
}

/// Returns expired leases' jobs to the queue. Called lazily from the
/// `Request` path and from every read-side frame — `Status` and `Query`
/// alike — so deadlines stay honest even when the only traffic is a
/// fetch/status poller watching a stalled sweep. A waiting worker
/// additionally polls on [`CoordOptions::retry_ms`], which bounds how
/// stale a deadline check can get without any timer thread.
fn reap_expired(state: &mut State, now: Instant, verbose: bool) {
    let expired: Vec<u64> = state
        .leases
        .iter()
        .filter(|(_, l)| l.deadline <= now)
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        let lease = state.leases.remove(&id).expect("expired lease exists");
        if verbose {
            eprintln!(
                "serve: lease {id} ({} job(s), worker {}) expired — re-leasing",
                lease.jobs.len(),
                lease.worker
            );
        }
        requeue_lease_jobs(state, &lease, id);
    }
}

/// Puts a dropped lease's unfinished jobs back at the front of the
/// queue (oldest grid positions first, which keeps the in-order commit
/// buffer small) and counts the re-leases.
fn requeue_lease_jobs(state: &mut State, lease: &LeaseEntry, id: u64) {
    for &i in lease.jobs.iter().rev() {
        if state.status[i] == Slot::Leased(id) {
            state.status[i] = Slot::Pending;
            state.pending.push_front(i);
            state.releases += 1;
        }
    }
}

/// Drops every lease owned by a closed connection; wakes the accept
/// loop if that completed the grid (it cannot have — completion needs a
/// `Done` — but a lingering shutdown may be waiting on the release).
fn release_conn(conn: u64, shared: &Shared<'_>, wake_addr: SocketAddr) {
    let mut state = shared.state.lock().expect("fabric state");
    let owned: Vec<u64> = state
        .leases
        .iter()
        .filter(|(_, l)| l.conn == conn)
        .map(|(&id, _)| id)
        .collect();
    for id in owned {
        let lease = state.leases.remove(&id).expect("owned lease exists");
        if shared.opts.verbose {
            eprintln!(
                "serve: worker {} disconnected with lease {id} ({} job(s)) — re-leasing",
                lease.worker,
                lease.jobs.len()
            );
        }
        requeue_lease_jobs(&mut state, &lease, id);
    }
    drop(state);
    maybe_finish(shared, wake_addr);
}

/// Checks for completion and, when the serve is over, trips the
/// `finished` flag and pokes the accept loop with a throwaway
/// connection so it can observe the flag.
fn maybe_finish(shared: &Shared<'_>, wake_addr: SocketAddr) {
    let state = shared.state.lock().expect("fabric state");
    let over = if shared.opts.linger {
        state.shutdown
    } else {
        state.grid_complete() || state.shutdown
    };
    drop(state);
    if over && !shared.finished.swap(true, Ordering::SeqCst) {
        // Unblock `accept`; if the listener already went away there is
        // nothing to wake.
        let _ = TcpStream::connect(wake_addr);
    }
}

/// Serves one connection until the peer disconnects, the serve
/// finishes, or a protocol violation occurs. Strict request/reply: one
/// frame in, one frame out.
fn handle_conn(
    stream: TcpStream,
    conn: u64,
    shared: &Shared<'_>,
    wake_addr: SocketAddr,
) -> Result<(), WireError> {
    // A short read timeout lets the loop notice `finished` between
    // frames — an idle peer cannot pin the coordinator open forever.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);

    let mut peer_name = format!("conn-{conn}");
    let mut greeted = false;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(e) if e.is_timeout() => {
                if shared.finished.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(WireError::Io(_)) => return Ok(()), // peer went away
            Err(e) => return Err(e),
        };
        let msg = Msg::from_json(&frame).map_err(WireError::Protocol)?;
        let reply = match msg {
            Msg::Hello {
                version,
                role,
                name,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(WireError::Protocol(format!(
                        "peer speaks protocol v{version}, this coordinator v{PROTOCOL_VERSION}"
                    )));
                }
                if role == Role::Worker {
                    peer_name = name;
                    let mut state = shared.state.lock().expect("fabric state");
                    state.workers.entry(peer_name.clone()).or_insert((0, 0));
                }
                greeted = true;
                Msg::Ack {
                    stored: 0,
                    duplicates: 0,
                }
            }
            _ if !greeted => {
                return Err(WireError::Protocol(
                    "first frame on a connection must be hello".into(),
                ))
            }
            Msg::Request { capacity } => handle_request(shared, conn, &peer_name, capacity),
            Msg::Done { lease, results } => {
                let reply = handle_done(shared, &peer_name, lease, results);
                maybe_finish(shared, wake_addr);
                reply
            }
            Msg::Failed { lease, failures } => {
                let reply = handle_failed(shared, &peer_name, lease, failures);
                maybe_finish(shared, wake_addr);
                reply
            }
            Msg::Query { filters } => {
                // The fetch path reaps too: a client polling for
                // results must not let an expired lease pin its jobs
                // while idle workers wait for them to re-queue.
                {
                    let mut state = shared.state.lock().expect("fabric state");
                    reap_expired(&mut state, Instant::now(), shared.opts.verbose);
                }
                Msg::Results {
                    records: shared
                        .store
                        .entries()
                        .into_iter()
                        .filter(|r| filters.matches(r))
                        .collect(),
                }
            }
            Msg::Status => {
                let mut state = shared.state.lock().expect("fabric state");
                reap_expired(&mut state, Instant::now(), shared.opts.verbose);
                Msg::Telemetry(state.telemetry(shared.jobs.len() as u64))
            }
            Msg::Shutdown => {
                shared.state.lock().expect("fabric state").shutdown = true;
                let _ = write_frame(
                    &mut writer,
                    &Msg::Ack {
                        stored: 0,
                        duplicates: 0,
                    }
                    .to_json(),
                );
                maybe_finish(shared, wake_addr);
                return Ok(());
            }
            other => {
                return Err(WireError::Protocol(format!(
                    "unexpected message from peer: {other:?}"
                )))
            }
        };
        write_frame(&mut writer, &reply.to_json())?;
    }
}

/// Grants a lease of up to `capacity` same-machine pending jobs, or
/// tells the worker to wait / go home.
fn handle_request(shared: &Shared<'_>, conn: u64, worker: &str, capacity: u64) -> Msg {
    let capacity = capacity.clamp(1, 4096) as usize;
    let mut state = shared.state.lock().expect("fabric state");
    reap_expired(&mut state, Instant::now(), shared.opts.verbose);
    if state.grid_complete() || (state.pending.is_empty() && state.leases.is_empty()) {
        // The second disjunct covers an abandoned grid (dead jobs only):
        // nothing will ever become pending again, so workers go home.
        return Msg::Drained;
    }
    // The pending deque can hold stale indices: a reaped lease's job
    // re-queues as pending, and a later stale `Done` for it flips the
    // status to done while the queue slot remains. Leasing such a job
    // again would double-execute it, so skip anything no longer pending.
    let first = loop {
        let Some(i) = state.pending.pop_front() else {
            return Msg::Wait {
                retry_ms: shared.opts.retry_ms,
            };
        };
        if state.status[i] == Slot::Pending {
            break i;
        }
    };
    // Same grouping as the local batched sweep: jobs in one lease share
    // (config, scale, scheme), so the worker can run them as one
    // `BatchSim` and per-lane results stay bit-identical.
    let machine = |i: usize| {
        let j = &shared.jobs[i];
        (j.config, j.scale, j.scheme)
    };
    let mut taken = vec![first];
    if capacity > 1 {
        let mut rest = VecDeque::new();
        while taken.len() < capacity {
            let Some(i) = state.pending.pop_front() else {
                break;
            };
            if state.status[i] != Slot::Pending {
                continue;
            }
            if machine(i) == machine(first) {
                taken.push(i);
            } else {
                rest.push_back(i);
            }
        }
        // Non-matching jobs keep their queue order ahead of the tail.
        while let Some(i) = rest.pop_back() {
            state.pending.push_front(i);
        }
    }
    let lease = state.next_lease;
    state.next_lease += 1;
    let deadline = Instant::now() + Duration::from_millis(shared.opts.lease_ms);
    for &i in &taken {
        state.status[i] = Slot::Leased(lease);
    }
    state.leases.insert(
        lease,
        LeaseEntry {
            jobs: taken.clone(),
            conn,
            worker: worker.to_string(),
            deadline,
        },
    );
    if shared.opts.verbose {
        eprintln!(
            "serve: lease {lease} -> {worker}: {} job(s) ({}, ...)",
            taken.len(),
            shared.jobs[taken[0]]
        );
    }
    Msg::Lease {
        lease,
        deadline_ms: shared.opts.lease_ms,
        jobs: taken.iter().map(|&i| shared.jobs[i]).collect(),
    }
}

/// Accepts a lease's results idempotently and advances the in-order
/// store commit.
fn handle_done(shared: &Shared<'_>, worker: &str, lease: u64, results: Vec<StoredResult>) -> Msg {
    let mut state = shared.state.lock().expect("fabric state");
    let mut stored = 0u64;
    let mut duplicates = 0u64;
    for r in results {
        let Some(&i) = shared.index_of.get(&r.spec) else {
            // Not part of this grid — a confused or stale worker. The
            // result is dropped; completing it would corrupt the
            // expansion-order commit.
            eprintln!(
                "fabric: dropping result for job outside the grid: {}",
                r.spec
            );
            continue;
        };
        match state.status[i] {
            Slot::Done | Slot::Dead => duplicates += 1,
            _ => {
                state.status[i] = Slot::Done;
                state.buffered.insert(i, (r.report, r.wall_ms, r.wall));
                state.executed += 1;
                stored += 1;
                state.workers.entry(worker.to_string()).or_insert((0, 0)).0 += 1;
            }
        }
    }
    state.duplicates += duplicates;
    // Retire the lease; any of its jobs *not* in the results (a partial
    // completion would be a worker bug, but the queue must not leak
    // them) go back to pending.
    if let Some(entry) = state.leases.remove(&lease) {
        requeue_lease_jobs(&mut state, &entry, lease);
    }
    advance_commit(&mut state, &shared.jobs, shared.store);
    if shared.opts.verbose {
        eprintln!(
            "serve: lease {lease} done by {worker}: {stored} stored, {duplicates} duplicate(s) \
             ({} / {} committed)",
            state.next_commit,
            shared.jobs.len()
        );
    }
    Msg::Ack { stored, duplicates }
}

/// Records a lease's structured failures and re-queues (or kills) the
/// jobs.
fn handle_failed(shared: &Shared<'_>, worker: &str, lease: u64, failures: Vec<JobFailure>) -> Msg {
    let mut state = shared.state.lock().expect("fabric state");
    let entry = state.leases.remove(&lease);
    let mut acked = 0u64;
    for failure in failures {
        let Some(&i) = shared.index_of.get(&failure.spec) else {
            continue;
        };
        if matches!(state.status[i], Slot::Done | Slot::Dead) {
            continue;
        }
        acked += 1;
        state.workers.entry(worker.to_string()).or_insert((0, 0)).1 += 1;
        state.failures.push(FailureNote {
            job: failure.spec.label(),
            kind: failure.kind,
            message: failure.message.clone(),
        });
        state.attempts[i] += 1;
        if state.attempts[i] >= shared.opts.max_attempts {
            state.status[i] = Slot::Dead;
            state.dead.push(failure);
        } else {
            state.status[i] = Slot::Pending;
            state.pending.push_front(i);
        }
    }
    // Leaked lease jobs without an explicit failure entry go back too.
    if let Some(entry) = entry {
        requeue_lease_jobs(&mut state, &entry, lease);
    }
    advance_commit(&mut state, &shared.jobs, shared.store);
    if shared.opts.verbose {
        eprintln!("serve: lease {lease} FAILED on {worker}: {acked} job(s) affected");
    }
    Msg::Ack {
        stored: 0,
        duplicates: 0,
    }
}

/// Convenience: bind, run, and summarize in one call (what `valley
/// serve` does).
pub fn serve(
    addr: impl ToSocketAddrs,
    spec: &SweepSpec,
    store: &ResultStore,
    opts: &CoordOptions,
) -> Result<ServeSummary, FabricError> {
    let coordinator = Coordinator::bind(addr)?;
    coordinator.run(spec, store, opts)
}

/// Trivially-correct filter reuse for the read side (kept here so the
/// CLI and tests share one definition with the protocol).
pub fn filter_store(store: &ResultStore, filters: &QueryFilters) -> Vec<StoredResult> {
    store
        .entries()
        .into_iter()
        .filter(|r| filters.matches(r))
        .collect()
}
