//! Read-side clients: fetch stored results, read fabric telemetry, and
//! request an admin shutdown — all answered by the coordinator purely
//! from its store and lease table (the read side never simulates).

use crate::proto::{Msg, QueryFilters, Role, Telemetry};
use crate::wire::WireError;
use crate::FabricError;
use valley_harness::StoredResult;

/// How a client reaches the coordinator.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Client name, for the coordinator's logs.
    pub name: String,
    /// Connection attempts before giving up.
    pub connect_attempts: u32,
    /// Base reconnect backoff in milliseconds.
    pub backoff_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            name: format!("client-{}", std::process::id()),
            connect_attempts: 10,
            backoff_ms: 200,
        }
    }
}

fn roundtrip(addr: &str, opts: &ClientOptions, msg: &Msg) -> Result<Msg, FabricError> {
    let mut conn = crate::worker::connect_with_backoff(
        addr,
        &opts.name,
        Role::Client,
        opts.connect_attempts,
        opts.backoff_ms,
    )?;
    Ok(conn.roundtrip(msg)?)
}

/// Fetches every stored result matching `filters` from the coordinator
/// at `addr`, in the store's canonical order.
pub fn fetch(
    addr: &str,
    filters: &QueryFilters,
    opts: &ClientOptions,
) -> Result<Vec<StoredResult>, FabricError> {
    match roundtrip(
        addr,
        opts,
        &Msg::Query {
            filters: filters.clone(),
        },
    )? {
        Msg::Results { records } => Ok(records),
        other => Err(WireError::Protocol(format!("query answered with {other:?}")).into()),
    }
}

/// Reads the coordinator's live telemetry.
pub fn fabric_status(addr: &str, opts: &ClientOptions) -> Result<Telemetry, FabricError> {
    match roundtrip(addr, opts, &Msg::Status)? {
        Msg::Telemetry(t) => Ok(t),
        other => Err(WireError::Protocol(format!("status answered with {other:?}")).into()),
    }
}

/// Asks a (lingering) coordinator to exit.
pub fn shutdown(addr: &str, opts: &ClientOptions) -> Result<(), FabricError> {
    match roundtrip(addr, opts, &Msg::Shutdown)? {
        Msg::Ack { .. } => Ok(()),
        other => Err(WireError::Protocol(format!("shutdown answered with {other:?}")).into()),
    }
}
