//! Length-prefixed JSON framing over a byte stream.
//!
//! Every fabric message travels as one *frame*: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON (one
//! [`valley_sim::json::Json`] value, the same hand-rolled encoding the
//! result store uses — no new wire format, no new dependencies). The
//! functions are generic over `Read`/`Write`, so the loopback tests can
//! frame through in-memory buffers and the property tests can prove the
//! encode→frame→decode round trip bit-identical without a socket.
//!
//! A length prefix makes partial reads unambiguous: a peer that dies
//! mid-frame leaves a short read, which surfaces as a [`WireError::Io`]
//! at the receiver — the coordinator treats that exactly like a
//! disconnect and re-leases the dead peer's jobs.

use std::io::{Read, Write};
use valley_sim::json::{self, Json};

/// Hard cap on one frame's payload, in bytes. A full small-scale grid of
/// reports is well under a megabyte; anything near this limit is a
/// corrupt or hostile length prefix, not a real message.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Errors from reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes short reads mid-frame —
    /// the signature of a peer dying, and read timeouts surfaced by a
    /// socket with `set_read_timeout`).
    Io(std::io::Error),
    /// The frame was transported intact but its payload is not the JSON
    /// (or not the message shape) the protocol expects.
    Protocol(String),
}

impl WireError {
    /// Whether this error is a read timeout (the coordinator's handler
    /// loops poll with a socket read timeout so they can notice
    /// shutdown; a timeout is "no frame yet", not a dead peer).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "fabric wire I/O error: {e}"),
            WireError::Protocol(msg) => write!(f, "fabric protocol error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one JSON value as a frame and flushes the stream.
pub fn write_frame(w: &mut impl Write, value: &Json) -> Result<(), WireError> {
    let payload = value.to_json_string();
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            WireError::Protocol(format!("frame of {} bytes exceeds the cap", payload.len()))
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and parses its payload. Blocks until a full frame
/// arrives (or the stream's read timeout fires between frames).
pub fn read_frame(r: &mut impl Read) -> Result<Json, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| WireError::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    json::parse(text).map_err(|e| WireError::Protocol(format!("frame payload is not JSON: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let values = [
            Json::Obj(vec![("t".into(), Json::Str("hello".into()))]),
            Json::Arr(vec![Json::UInt(u64::MAX), Json::Num(0.5)]),
            Json::Str("with \"escapes\" \n".into()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            write_frame(&mut buf, v).unwrap();
        }
        let mut cursor = &buf[..];
        for v in &values {
            assert_eq!(read_frame(&mut cursor).unwrap(), *v);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn short_read_mid_frame_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Str("truncated".into())).unwrap();
        let mut cursor = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(msg)) if msg.contains("cap")
        ));
    }
}
