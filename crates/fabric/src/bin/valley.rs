//! The `valley` CLI: drive the sweep engine, its content-addressed
//! result store, and the distributed sweep fabric from the command line.
//!
//! ```text
//! valley sweep   [--scale S] [--benches B] [--schemes C] [--seeds N,..]
//!                [--configs K,..] [--workers N] [--batch N] [--results DIR]
//!                [--force] [--quiet] [--expect-cached PCT]
//! valley status  [--results DIR] [--fabric HOST:PORT] [--lint]
//! valley query   [--bench B] [--scheme C] [--scale S] [--seed N]
//!                [--config K] [--results DIR]
//! valley figures [--scale S] [--seed N] [--set valley|nonvalley|all]
//!                [--results DIR]
//! valley gc      [--results DIR] [--expect-clean]
//! valley serve   --addr HOST:PORT [grid flags] [--results DIR]
//!                [--lease-ms N] [--max-attempts N] [--linger] [--quiet]
//! valley work    --addr HOST:PORT [--name W] [--batch N] [--sim-threads N]
//!                [--quiet]
//! valley fetch   --addr HOST:PORT [grid flags] [--figures]
//!                [--expect-cached PCT] [--shutdown]
//! ```
//!
//! `sweep` runs the grid (resuming from the store), `status` summarizes
//! the store (including `--force` duplicates and orphaned-schema records
//! awaiting `gc`) or, with `--fabric`, a live coordinator's telemetry,
//! `query` prints matching stored results, `figures` renders the
//! headline tables — speedup, row-buffer hit rate, channel parallelism,
//! and the Figure 11/16 DRAM power tables (the power model is a pure
//! function of the stored report) — *exclusively* from stored results;
//! it never simulates. `gc` compacts the shards, dropping superseded
//! duplicates and schema orphans.
//!
//! The fabric trio: `serve` leases a sweep's uncached jobs to remote
//! workers with crash-tolerant deadlines and merges results into the
//! store in grid order; `work` executes leases via the unchanged local
//! engines; `fetch` is the read-side network endpoint — query and
//! figure tables straight from the coordinator's store, never
//! simulating.

use std::collections::BTreeMap;
use std::process::ExitCode;
use valley_core::hash::FastMap;
use valley_core::SchemeKind;
use valley_fabric::{
    fabric_status, fetch, run_worker, shutdown, ClientOptions, CoordOptions, Coordinator,
    QueryFilters, WorkerOptions,
};
use valley_harness::util::{amean, hmean, row, scheme_header};
use valley_harness::{
    default_results_dir, parse_scheme, run_sweep, ConfigId, JobSpec, ResultStore, StoreOptions,
    StoredResult, SweepOptions, SweepSpec, WallKind, DEFAULT_SEED,
};
use valley_power::DramPowerModel;
use valley_sim::Batching;
use valley_workloads::{Benchmark, Scale};

const USAGE: &str = "\
valley — sharded, resumable sweep engine for the Valley reproduction

USAGE:
  valley sweep   [--scale test|small|ref] [--benches all|valley|nonvalley|MT,LU,..]
                 [--schemes all|BASE,PAE,..] [--seeds 1,2,3] [--configs table1,stacked,sms24]
                 [--workers N] [--sim-threads N] [--batch N] [--results DIR]
                 [--force] [--quiet] [--expect-cached PCT] [--max-shard-bytes N]
  valley status  [--results DIR] [--fabric HOST:PORT] [--lint]
  valley query   [--bench MT] [--scheme PAE] [--scale ref] [--seed 1] [--config table1]
                 [--results DIR]
  valley figures [--scale test|small|ref] [--seed N] [--set valley|nonvalley|all]
                 [--results DIR]
  valley gc      [--results DIR] [--expect-clean]
  valley serve   --addr HOST:PORT [--scale S] [--benches B] [--schemes C]
                 [--seeds N,..] [--configs K,..] [--results DIR] [--lease-ms N]
                 [--retry-ms N] [--max-attempts N] [--linger] [--quiet]
                 [--max-shard-bytes N]
  valley work    --addr HOST:PORT [--name W] [--batch N] [--sim-threads N]
                 [--connect-attempts N] [--backoff-ms N] [--quiet]
  valley fetch   --addr HOST:PORT [--scale S] [--benches B] [--schemes C]
                 [--seeds N,..] [--configs K,..] [--figures]
                 [--expect-cached PCT] [--shutdown] [--quiet]

The store defaults to $VALLEY_RESULTS_DIR, else ./results. A sweep skips
every job already in the store; `--expect-cached 95` additionally fails
the invocation if fewer than 95% of the jobs were cache hits (CI uses
this to prove the resume path works). `--sim-threads N` runs each
simulation on the phase-parallel engine with N shards (bit-identical to
sequential for every N — also settable via $VALLEY_SIM_THREADS).
`--batch N` runs pending jobs that share a machine configuration through
the lockstep batched engine, up to N simulations per batch (bit-identical
per lane for every N — also settable via $VALLEY_SIM_BATCH; batch width
is never part of a job key). `--max-shard-bytes N` auto-compacts the
store at open when any shard
file exceeds N bytes. `figures` reads the store only — run the matching
sweep first. `gc` compacts the shards: duplicate keys left behind by
`sweep --force` (only the newest survives a load anyway) and records
orphaned by a schema change are dropped; `--expect-clean` fails if
anything had to be removed (CI runs it after the double sweep to prove a
clean store stays clean).

Fabric: `serve` expands the grid, skips stored keys, and leases the rest
to connecting workers over std-TCP with `--lease-ms` deadlines — a
worker that panics, stalls, or disconnects mid-job loses nothing (the
job is re-leased; duplicate completions are dropped idempotently), and
results are committed to the store in grid order, so the distributed
store matches a local sequential sweep. `--linger` keeps the read side
up after the grid completes, until `fetch --shutdown`. `work` executes
leases with the unchanged local engines (`--batch`/$VALLEY_SIM_BATCH
asks for lockstep-batchable leases, `--sim-threads`/$VALLEY_SIM_THREADS
picks the intra-sim engine). `fetch` is the read-side endpoint: it
prints the grid's stored results (or `--figures` tables) fetched from
the coordinator — never simulating — and `--expect-cached PCT` fails
unless at least PCT% of the requested grid was already served from the
store (CI uses it to prove the read path is a pure cache read).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "sweep" => cmd_sweep(rest),
        "status" => cmd_status(rest),
        "query" => cmd_query(rest),
        "figures" => cmd_figures(rest),
        "gc" => cmd_gc(rest),
        "serve" => cmd_serve(rest),
        "work" => cmd_work(rest),
        "fetch" => cmd_fetch(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--flag value` parser: returns the map and rejects unknown
/// or valueless flags.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument '{arg}'"));
        };
        if !allowed.contains(&name) {
            return Err(format!("unknown flag '--{name}'"));
        }
        // Boolean flags take no value.
        if matches!(
            name,
            "force" | "quiet" | "expect-clean" | "linger" | "figures" | "shutdown" | "lint"
        ) {
            flags.insert(name.to_string(), String::new());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag '--{name}' needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn parse_scale(flags: &BTreeMap<String, String>) -> Result<Scale, String> {
    match flags.get("scale") {
        None => Ok(Scale::Ref),
        Some(s) => Scale::parse(s).ok_or_else(|| format!("unknown scale '{s}' (test|small|ref)")),
    }
}

fn parse_benches(flags: &BTreeMap<String, String>) -> Result<Vec<Benchmark>, String> {
    match flags.get("benches").map(String::as_str) {
        None | Some("all") => Ok(Benchmark::ALL.to_vec()),
        Some("valley") => Ok(Benchmark::VALLEY.to_vec()),
        Some("nonvalley") => Ok(Benchmark::NON_VALLEY.to_vec()),
        Some(csv) => csv
            .split(',')
            .map(|s| Benchmark::parse(s).ok_or_else(|| format!("unknown benchmark '{s}'")))
            .collect(),
    }
}

fn parse_schemes(flags: &BTreeMap<String, String>) -> Result<Vec<SchemeKind>, String> {
    match flags.get("schemes").map(String::as_str) {
        None | Some("all") => Ok(SchemeKind::ALL_SCHEMES.to_vec()),
        Some(csv) => csv
            .split(',')
            .map(|s| parse_scheme(s).ok_or_else(|| format!("unknown scheme '{s}'")))
            .collect(),
    }
}

fn parse_seeds(flags: &BTreeMap<String, String>) -> Result<Vec<u64>, String> {
    match flags.get("seeds") {
        None => Ok(vec![DEFAULT_SEED]),
        Some(csv) => csv
            .split(',')
            .map(|s| s.parse().map_err(|_| format!("bad seed '{s}'")))
            .collect(),
    }
}

fn parse_configs(flags: &BTreeMap<String, String>) -> Result<Vec<ConfigId>, String> {
    match flags.get("configs") {
        None => Ok(vec![ConfigId::Table1]),
        Some(csv) => csv
            .split(',')
            .map(|s| ConfigId::parse(s).ok_or_else(|| format!("unknown config '{s}'")))
            .collect(),
    }
}

/// Expands the sweep-shaped grid flags shared by `sweep`, `serve` and
/// `fetch`.
fn parse_grid(flags: &BTreeMap<String, String>) -> Result<SweepSpec, String> {
    Ok(SweepSpec {
        benches: parse_benches(flags)?,
        schemes: parse_schemes(flags)?,
        seeds: parse_seeds(flags)?,
        scale: parse_scale(flags)?,
        configs: parse_configs(flags)?,
    })
}

fn open_store(flags: &BTreeMap<String, String>) -> Result<ResultStore, String> {
    let dir = flags
        .get("results")
        .map(Into::into)
        .unwrap_or_else(default_results_dir);
    let max_shard_bytes = flags
        .get("max-shard-bytes")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("bad byte count '{v}' for --max-shard-bytes"))
        })
        .transpose()?;
    ResultStore::open_with_options(dir, StoreOptions { max_shard_bytes }).map_err(|e| e.to_string())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "scale",
            "benches",
            "schemes",
            "seeds",
            "configs",
            "workers",
            "sim-threads",
            "batch",
            "results",
            "force",
            "quiet",
            "expect-cached",
            "max-shard-bytes",
        ],
    )?;
    if let Some(n) = flags.get("sim-threads") {
        n.parse::<usize>()
            .map_err(|_| format!("bad thread count '{n}' for --sim-threads"))?;
        // `GpuSim::run` reads the knob per run; setting the env threads
        // it through `execute_job` without widening the job key (results
        // are bit-identical for every value, so cached results stay
        // valid).
        std::env::set_var("VALLEY_SIM_THREADS", n);
    }
    let spec = parse_grid(&flags)?;
    let scale = spec.scale;
    let workers = flags
        .get("workers")
        .map(|w| {
            w.parse::<usize>()
                .map_err(|_| format!("bad worker count '{w}'"))
        })
        .transpose()?;
    // 0 defers to $VALLEY_SIM_BATCH inside run_sweep (mirroring how
    // --sim-threads and $VALLEY_SIM_THREADS compose): the flag, when
    // given, wins over the environment.
    let batch = flags
        .get("batch")
        .map(|n| {
            n.parse::<usize>()
                .map_err(|_| format!("bad batch width '{n}' for --batch"))
                .map(|n| n.max(1))
        })
        .transpose()?
        .unwrap_or(0);
    let expect_cached: Option<f64> = flags
        .get("expect-cached")
        .map(|p| p.parse().map_err(|_| format!("bad percentage '{p}'")))
        .transpose()?;

    let store = open_store(&flags)?;
    let opts = SweepOptions {
        workers,
        verbose: !flags.contains_key("quiet"),
        force: flags.contains_key("force"),
        batch,
    };
    let outcome = run_sweep(&spec, &store, &opts).map_err(|e| e.to_string())?;

    let executed_ms = outcome
        .jobs
        .iter()
        .filter(|j| !j.cached)
        .map(|j| j.wall_ms)
        .sum::<f64>()
        .max(0.0); // an empty sum can be -0.0, which formats as "-0"
    println!(
        "sweep: {} jobs at scale {} — {} cache hit(s), {} executed ({:.1}% hit rate) \
         in {:.2?} ({:.0} ms simulating)",
        outcome.jobs.len(),
        scale,
        outcome.cache_hits,
        outcome.executed,
        outcome.hit_rate() * 100.0,
        outcome.wall,
        executed_ms,
    );
    println!(
        "store: {} result(s) in {}",
        store.len(),
        store.dir().display()
    );

    if let Some(pct) = expect_cached {
        let actual = outcome.hit_rate() * 100.0;
        if actual < pct {
            return Err(format!(
                "expected ≥ {pct}% cache hits but measured {actual:.1}% — \
                 the resume path did not serve stored results"
            ));
        }
        println!("cache-hit check passed: {actual:.1}% ≥ {pct}%");
    }
    Ok(())
}

fn results_dir(flags: &BTreeMap<String, String>) -> std::path::PathBuf {
    flags
        .get("results")
        .map(Into::into)
        .unwrap_or_else(default_results_dir)
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["results", "fabric", "lint"])?;
    if flags.contains_key("lint") {
        // The invariant set this build enforces: lint tool version plus
        // the fingerprint of the pinned schema manifest. Two deployments
        // printing the same line run under the same schema contract.
        println!(
            "lint: valley-lint {} schema-manifest {:016x}",
            valley_lint::LINT_VERSION,
            valley_lint::manifest_hash()
        );
        return Ok(());
    }
    if let Some(addr) = flags.get("fabric") {
        return fabric_status_report(addr);
    }
    // Which analytics compute plane this build runs its BIM/entropy
    // sweeps on (today always the bit-sliced CPU backend; a GPU backend
    // would slot in behind the same trait and report here).
    let be = valley_compute::backend();
    println!("compute: {} (tile width {})", be.name(), be.tile_width());
    let dir = results_dir(&flags);
    // A lenient scan instead of a strict open: a store full of schema
    // orphans should *report* its state (and point at `gc`), not error.
    let scan = valley_harness::scan(&dir).map_err(|e| e.to_string())?;
    println!(
        "store: {} ({} result(s))",
        dir.display(),
        scan.records.len()
    );

    let mut by_group: BTreeMap<(String, String), usize> = BTreeMap::new();
    for e in &scan.records {
        *by_group
            .entry((e.spec.scale.name().to_string(), e.spec.config.name()))
            .or_insert(0) += 1;
    }
    if !by_group.is_empty() {
        println!("\n{:<10}{:<12}{:>8}", "scale", "config", "results");
        for ((scale, config), n) in &by_group {
            println!("{scale:<10}{config:<12}{n:>8}");
        }
    }

    // Wall-attribution telemetry, straight from the records' `wall`
    // field: only measured walls are genuine per-job timings; averaged
    // walls are equal shares of a lockstep batch's wall, and cloned
    // walls mark lanes served by an identical lane's simulation (batch
    // width itself is pure scheduling and never part of a job key).
    let mut averaged = 0usize;
    let mut cloned = 0usize;
    for e in &scan.records {
        match e.wall {
            WallKind::Measured => {}
            WallKind::Averaged => averaged += 1,
            WallKind::Cloned => cloned += 1,
        }
    }
    if averaged + cloned > 0 {
        println!(
            "\nbatched runs: {averaged} result(s) carry an averaged batch wall, \
             {cloned} were cloned from an identical lane ({} of {} measured)",
            scan.records.len() - averaged - cloned,
            scan.records.len()
        );
    }

    let total: u64 = scan.shard_bytes.iter().sum();
    let populated = scan.shard_bytes.iter().filter(|&&b| b > 0).count();
    println!(
        "\nshards: {populated}/{} populated, {total} bytes on disk",
        scan.shard_bytes.len()
    );
    println!(
        "hygiene: {} duplicate record(s) (--force debris), {} orphaned-schema record(s), \
         {} truncated tail(s)",
        scan.duplicates, scan.orphans, scan.truncated
    );
    if scan.duplicates + scan.orphans + scan.truncated > 0 {
        println!("run `valley gc` to compact");
    }
    Ok(())
}

fn cmd_gc(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["results", "expect-clean"])?;
    let dir = results_dir(&flags);
    let report = valley_harness::gc(&dir).map_err(|e| e.to_string())?;
    println!(
        "gc: {} kept, {} removed ({} duplicate(s), {} orphan(s), {} truncated tail(s)) in {}",
        report.kept,
        report.removed(),
        report.duplicates_removed,
        report.orphans_removed,
        report.truncated_removed,
        dir.display(),
    );
    println!(
        "{} shard(s) rewritten, {} -> {} bytes on disk",
        report.shards_rewritten, report.bytes_before, report.bytes_after
    );
    if flags.contains_key("expect-clean") && report.removed() > 0 {
        return Err(format!(
            "expected a clean store but gc removed {} record(s)",
            report.removed()
        ));
    }
    // The compacted store must still open (and serve) cleanly.
    let store = ResultStore::open(&dir).map_err(|e| e.to_string())?;
    println!("store reopens cleanly: {} result(s)", store.len());
    Ok(())
}

fn matches_filters(e: &StoredResult, flags: &BTreeMap<String, String>) -> bool {
    let eq = |key: &str, actual: &str| {
        flags
            .get(key)
            .is_none_or(|want| want.eq_ignore_ascii_case(actual))
    };
    eq("bench", e.spec.bench.label())
        && eq("scheme", e.spec.scheme.label())
        && eq("scale", e.spec.scale.name())
        && eq("config", &e.spec.config.name())
        && flags
            .get("seed")
            .is_none_or(|want| want.parse() == Ok(e.spec.seed))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &["bench", "scheme", "scale", "seed", "config", "results"],
    )?;
    let store = open_store(&flags)?;
    let matching: Vec<StoredResult> = store
        .entries()
        .into_iter()
        .filter(|e| matches_filters(e, &flags))
        .collect();
    print_result_table(&matching);
    println!("{} result(s)", matching.len());
    Ok(())
}

/// The shared result table (`query` locally, `fetch` over the wire).
fn print_result_table<'a>(rows: impl IntoIterator<Item = &'a StoredResult>) {
    println!(
        "{:<8}{:<8}{:>6}  {:<7}{:<9}{:>12}{:>8}{:>10}{:>10}  {:<9}",
        "bench", "scheme", "seed", "scale", "config", "cycles", "ipc", "rbhit%", "wall_ms", "wall"
    );
    for e in rows {
        println!(
            "{:<8}{:<8}{:>6}  {:<7}{:<9}{:>12}{:>8.3}{:>10.1}{:>10.1}  {:<9}",
            e.spec.bench.label(),
            e.spec.scheme.label(),
            e.spec.seed,
            e.spec.scale.name(),
            e.spec.config.name(),
            e.report.cycles,
            e.report.ipc(),
            e.report.row_buffer_hit_rate() * 100.0,
            e.wall_ms,
            e.wall.as_str(),
        );
    }
}

fn cmd_figures(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["scale", "seed", "set", "results"])?;
    let scale = parse_scale(&flags)?;
    let seed: u64 = match flags.get("seed") {
        None => DEFAULT_SEED,
        Some(s) => s.parse().map_err(|_| format!("bad seed '{s}'"))?,
    };
    let benches: Vec<Benchmark> = match flags.get("set").map(String::as_str) {
        None | Some("valley") => Benchmark::VALLEY.to_vec(),
        Some("nonvalley") => Benchmark::NON_VALLEY.to_vec(),
        Some("all") => Benchmark::ALL.to_vec(),
        Some(other) => return Err(format!("unknown set '{other}' (valley|nonvalley|all)")),
    };
    let store = open_store(&flags)?;

    // Pure cache read: collect every (bench, scheme) report or fail with
    // the exact sweep command that would fill the gap.
    let suite = collect_suite(
        &benches,
        scale,
        seed,
        |job| store.get(job),
        &format!("run `valley sweep --scale {scale}` first — figures never simulate"),
    )?;
    println!(
        "figures from store {} (scale {scale}, seed {seed}; pure cache read)",
        store.dir().display()
    );
    render_figures(&suite, &benches);
    Ok(())
}

/// Collects the complete (bench × scheme) suite the figure tables need,
/// from any result source — the local store for `figures`, a fetched
/// record set for `fetch --figures`. Fails with the first gap and the
/// caller's hint for filling it.
fn collect_suite(
    benches: &[Benchmark],
    scale: Scale,
    seed: u64,
    get: impl Fn(&JobSpec) -> Option<StoredResult>,
    hint: &str,
) -> Result<BTreeMap<(Benchmark, SchemeKind), StoredResult>, String> {
    let mut suite = BTreeMap::new();
    let mut missing = Vec::new();
    let spec = SweepSpec::new(benches, &SchemeKind::ALL_SCHEMES, scale).with_seeds(&[seed]);
    for job in spec.expand() {
        match get(&job) {
            Some(e) => {
                suite.insert((job.bench, job.scheme), e);
            }
            None => missing.push(job.label()),
        }
    }
    if !missing.is_empty() {
        return Err(format!(
            "{} of {} results missing (e.g. {}); {hint}",
            missing.len(),
            benches.len() * SchemeKind::ALL_SCHEMES.len(),
            missing[0],
        ));
    }
    Ok(suite)
}

/// Renders the headline figure tables from a complete suite (shared by
/// `figures` and `fetch --figures` — neither ever simulates).
fn render_figures(suite: &BTreeMap<(Benchmark, SchemeKind), StoredResult>, benches: &[Benchmark]) {
    let schemes = SchemeKind::ALL_SCHEMES;
    let table = |title: &str,
                 metric: &dyn Fn(&StoredResult) -> f64,
                 agg: &dyn Fn(&[f64]) -> f64,
                 agg_label: &str,
                 precision: usize| {
        println!("\n{title}");
        println!("{}", scheme_header("bench", &schemes, 8));
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for &b in benches {
            let vals: Vec<f64> = schemes.iter().map(|&s| metric(&suite[&(b, s)])).collect();
            for (c, v) in vals.iter().enumerate() {
                cols[c].push(*v);
            }
            println!("{}", row(b.label(), &vals, 8, precision));
        }
        let aggs: Vec<f64> = cols.iter().map(|c| agg(c)).collect();
        println!("{}", row(agg_label, &aggs, 8, precision));
    };

    table(
        "Speedup over BASE (Figure 12/20)",
        &|e| {
            let base = &suite[&(e.spec.bench, SchemeKind::Base)];
            e.report.speedup_over(&base.report)
        },
        &hmean,
        "HMEAN",
        2,
    );
    table(
        "DRAM row-buffer hit rate % (Figure 15)",
        &|e| e.report.row_buffer_hit_rate() * 100.0,
        &amean,
        "AVG",
        1,
    );
    table(
        "Channel-level parallelism (Figure 14b)",
        &|e| e.report.channel_parallelism,
        &amean,
        "AVG",
        2,
    );

    // Power tables (Figures 11/16): the DRAM power model is a pure
    // function of the stored report, so these render from the store
    // like everything else — `figures` never simulates, for power
    // either.
    let model = DramPowerModel::gddr5();
    println!("\nNormalized execution time vs normalized DRAM power (Figure 11)");
    println!(
        "{:<8}{:>16}{:>18}",
        "scheme", "norm exec time", "norm DRAM power"
    );
    for &s in &schemes {
        let mut times = Vec::new();
        let mut powers = Vec::new();
        for &b in benches {
            let base = &suite[&(b, SchemeKind::Base)].report;
            let r = &suite[&(b, s)].report;
            times.push(r.cycles as f64 / base.cycles as f64);
            powers.push(model.evaluate(r).total() / model.evaluate(base).total());
        }
        println!(
            "{:<8}{:>16.3}{:>18.3}",
            s.label(),
            amean(&times),
            amean(&powers)
        );
    }
    println!("\nDRAM power breakdown in Watts, averaged over benchmarks (Figure 16)");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "scheme", "background", "activate", "read", "write", "total"
    );
    for &s in &schemes {
        let (mut bg, mut act, mut rd, mut wr) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for &b in benches {
            let p = model.evaluate(&suite[&(b, s)].report);
            bg.push(p.background);
            act.push(p.activate);
            rd.push(p.read);
            wr.push(p.write);
        }
        let (bg, act, rd, wr) = (amean(&bg), amean(&act), amean(&rd), amean(&wr));
        println!(
            "{:<8}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>12.1}",
            s.label(),
            bg,
            act,
            rd,
            wr,
            bg + act + rd + wr
        );
    }
}

// ---------------------------------------------------------------------
// Fabric subcommands
// ---------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "scale",
            "benches",
            "schemes",
            "seeds",
            "configs",
            "results",
            "lease-ms",
            "retry-ms",
            "max-attempts",
            "linger",
            "quiet",
            "max-shard-bytes",
        ],
    )?;
    let addr = flags
        .get("addr")
        .ok_or("serve needs --addr HOST:PORT (use port 0 for an ephemeral port)")?;
    let spec = parse_grid(&flags)?;
    let store = open_store(&flags)?;
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        flags
            .get(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad value '{v}' for --{key}"))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let defaults = CoordOptions::default();
    let opts = CoordOptions {
        lease_ms: parse_u64("lease-ms", defaults.lease_ms)?.max(1),
        retry_ms: parse_u64("retry-ms", defaults.retry_ms)?.max(1),
        max_attempts: u32::try_from(parse_u64("max-attempts", u64::from(defaults.max_attempts))?)
            .map_err(|_| "bad value for --max-attempts".to_string())?
            .max(1),
        linger: flags.contains_key("linger"),
        verbose: !flags.contains_key("quiet"),
    };
    let coordinator =
        Coordinator::bind(addr.as_str()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = coordinator.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serve: listening on {local} — {} job(s) at scale {}{}",
        spec.expand().len(),
        spec.scale,
        if opts.linger {
            " (lingering until `valley fetch --shutdown`)"
        } else {
            ""
        },
    );
    let summary = coordinator
        .run(&spec, &store, &opts)
        .map_err(|e| e.to_string())?;
    let t = &summary.telemetry;
    println!(
        "serve: {} job(s) — {} cache hit(s), {} executed by {} worker(s), \
         {} re-lease(s), {} duplicate completion(s) in {:.2?}",
        t.jobs_total,
        t.cache_hits,
        t.executed,
        t.workers.len(),
        t.releases,
        t.duplicates,
        summary.wall,
    );
    println!(
        "store: {} result(s) in {}",
        store.len(),
        store.dir().display()
    );
    if !summary.complete() {
        let mut msg = format!(
            "{} job(s) died after exhausting their attempts:",
            summary.dead.len()
        );
        for f in &summary.dead {
            msg.push_str(&format!("\n  {f}"));
        }
        return Err(msg);
    }
    Ok(())
}

fn cmd_work(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "name",
            "batch",
            "sim-threads",
            "connect-attempts",
            "backoff-ms",
            "quiet",
        ],
    )?;
    let addr = flags.get("addr").ok_or("work needs --addr HOST:PORT")?;
    if let Some(n) = flags.get("sim-threads") {
        n.parse::<usize>()
            .map_err(|_| format!("bad thread count '{n}' for --sim-threads"))?;
        // Same contract as `sweep --sim-threads`: the intra-sim engine is
        // bit-identical for every thread count, so it is pure scheduling
        // and never widens a job key.
        std::env::set_var("VALLEY_SIM_THREADS", n);
    }
    // The lease capacity mirrors `sweep --batch`: the flag wins, else
    // $VALLEY_SIM_BATCH, else single-job leases.
    let capacity = match flags.get("batch") {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("bad batch width '{n}' for --batch"))?
            .max(1),
        None => Batching::from_env().width().max(1),
    };
    let defaults = WorkerOptions::default();
    let opts = WorkerOptions {
        name: flags.get("name").cloned().unwrap_or(defaults.name),
        capacity,
        connect_attempts: flags
            .get("connect-attempts")
            .map(|v| {
                v.parse::<u32>()
                    .map_err(|_| format!("bad value '{v}' for --connect-attempts"))
            })
            .transpose()?
            .unwrap_or(defaults.connect_attempts)
            .max(1),
        backoff_ms: flags
            .get("backoff-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad value '{v}' for --backoff-ms"))
            })
            .transpose()?
            .unwrap_or(defaults.backoff_ms)
            .max(1),
        verbose: !flags.contains_key("quiet"),
    };
    let summary = run_worker(addr, &opts).map_err(|e| e.to_string())?;
    println!(
        "work: drained — {} lease(s), {} job(s) completed, {} failed",
        summary.leases, summary.completed, summary.failed
    );
    Ok(())
}

fn cmd_fetch(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "scale",
            "benches",
            "schemes",
            "seeds",
            "configs",
            "figures",
            "expect-cached",
            "shutdown",
            "quiet",
        ],
    )?;
    let addr = flags.get("addr").ok_or("fetch needs --addr HOST:PORT")?;
    let spec = parse_grid(&flags)?;
    let grid = spec.expand();
    let copts = ClientOptions::default();
    // One coarse scale filter on the wire, exact grid intersection here:
    // the coordinator's read side stays a dumb store scan.
    let filters = QueryFilters {
        scale: Some(spec.scale),
        ..QueryFilters::default()
    };
    let records = fetch(addr, &filters, &copts).map_err(|e| e.to_string())?;
    let by_spec: FastMap<JobSpec, StoredResult> =
        records.into_iter().map(|r| (r.spec, r)).collect();
    let have: Vec<&StoredResult> = grid.iter().filter_map(|j| by_spec.get(j)).collect();
    if !flags.contains_key("quiet") {
        print_result_table(have.iter().copied());
    }
    println!(
        "fetch: {}/{} of the requested grid served from the coordinator's store",
        have.len(),
        grid.len()
    );
    if let Some(p) = flags.get("expect-cached") {
        let pct: f64 = p.parse().map_err(|_| format!("bad percentage '{p}'"))?;
        let actual = have.len() as f64 * 100.0 / grid.len().max(1) as f64;
        if actual < pct {
            return Err(format!(
                "expected ≥ {pct}% of the grid stored but measured {actual:.1}% — \
                 the fetch path did not serve stored results"
            ));
        }
        println!("cache check passed: {actual:.1}% ≥ {pct}%");
    }
    if flags.contains_key("figures") {
        let [seed] = spec.seeds[..] else {
            return Err("`fetch --figures` needs exactly one seed (--seeds N)".into());
        };
        let suite = collect_suite(
            &spec.benches,
            spec.scale,
            seed,
            |job| by_spec.get(job).cloned(),
            "run the distributed sweep first — fetch never simulates",
        )?;
        println!(
            "figures fetched from {addr} (scale {}, seed {seed}; pure cache read)",
            spec.scale
        );
        render_figures(&suite, &spec.benches);
    }
    if flags.contains_key("shutdown") {
        shutdown(addr, &copts).map_err(|e| e.to_string())?;
        println!("fetch: coordinator acknowledged shutdown");
    }
    Ok(())
}

/// Renders live coordinator telemetry (`valley status --fabric`).
fn fabric_status_report(addr: &str) -> Result<(), String> {
    let t = fabric_status(addr, &ClientOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "fabric {addr}: {}/{} job(s) stored ({} cache hit(s), {} executed)",
        t.cache_hits + t.executed,
        t.jobs_total,
        t.cache_hits,
        t.executed
    );
    println!(
        "leases: {} active, {} re-lease(s), {} duplicate completion(s)",
        t.active_leases, t.releases, t.duplicates
    );
    if !t.workers.is_empty() {
        println!("\n{:<24}{:>10}{:>8}", "worker", "completed", "failed");
        for w in &t.workers {
            println!("{:<24}{:>10}{:>8}", w.name, w.completed, w.failed);
        }
    }
    if !t.failures.is_empty() {
        println!("\nfailures ({}):", t.failures.len());
        for f in &t.failures {
            println!("  {} [{}]: {}", f.job, f.kind, f.message);
        }
    }
    Ok(())
}
