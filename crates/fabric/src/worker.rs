//! The fabric worker: lease, execute, report, repeat.
//!
//! A worker is a thin network shell around the harness's existing
//! executors — [`execute_job`] for single-job leases and
//! [`execute_batch`] for same-machine batches — so every local engine
//! knob composes with remote execution: `VALLEY_SIM_THREADS` picks the
//! phase-parallel engine inside each simulation, and the worker's
//! `--batch` capacity asks the coordinator for lockstep-batchable
//! leases. Panics are caught per lease and reported as structured
//! [`JobFailure`]s, so a crashed job is re-leased with its reason
//! attached instead of silently vanishing.

use crate::proto::{Msg, Role, PROTOCOL_VERSION};
use crate::wire::{read_frame, write_frame, WireError};
use crate::FabricError;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use valley_harness::{execute_batch_timed, JobFailure, JobSpec, StoredResult};

/// Options controlling one worker run.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Telemetry name (stable across reconnects).
    pub name: String,
    /// Widest same-machine batch to accept per lease (the distributed
    /// analogue of `valley sweep --batch`).
    pub capacity: usize,
    /// Connection attempts before giving up (the coordinator may start
    /// after the worker).
    pub connect_attempts: u32,
    /// Base reconnect backoff in milliseconds (doubles per attempt,
    /// capped at 5 s).
    pub backoff_ms: u64,
    /// Print per-lease progress to stderr.
    pub verbose: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: format!("worker-{}", std::process::id()),
            capacity: 1,
            connect_attempts: 25,
            backoff_ms: 200,
            verbose: false,
        }
    }
}

/// What one worker run accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases completed successfully.
    pub leases: u64,
    /// Jobs executed and reported.
    pub completed: u64,
    /// Jobs whose execution panicked (reported as structured failures).
    pub failed: u64,
}

/// One framed connection to the coordinator (shared with the read-side
/// clients in [`crate::client`]).
pub(crate) struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: &str, name: &str, role: Role) -> Result<Conn, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut conn = Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        match conn.roundtrip(&Msg::Hello {
            version: PROTOCOL_VERSION,
            role,
            name: name.to_string(),
        })? {
            Msg::Ack { .. } => Ok(conn),
            other => Err(WireError::Protocol(format!(
                "coordinator answered hello with {other:?}"
            ))),
        }
    }

    pub(crate) fn roundtrip(&mut self, msg: &Msg) -> Result<Msg, WireError> {
        write_frame(&mut self.writer, &msg.to_json())?;
        let reply = read_frame(&mut self.reader)?;
        Msg::from_json(&reply).map_err(WireError::Protocol)
    }
}

/// Connects with exponential backoff — the coordinator may not be up
/// yet (CI starts both concurrently).
pub(crate) fn connect_with_backoff(
    addr: &str,
    name: &str,
    role: Role,
    attempts: u32,
    backoff_ms: u64,
) -> Result<Conn, FabricError> {
    let mut delay = Duration::from_millis(backoff_ms.max(1));
    let mut last: Option<WireError> = None;
    for attempt in 0..attempts.max(1) {
        match Conn::open(addr, name, role) {
            Ok(conn) => return Ok(conn),
            Err(e @ WireError::Protocol(_)) => return Err(e.into()),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < attempts.max(1) {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_secs(5));
                }
            }
        }
    }
    Err(last.expect("at least one connection attempt").into())
}

/// Runs a worker against the coordinator at `addr` until the grid is
/// drained. Connection loss mid-lease is survivable by design: the
/// coordinator re-leases the jobs, and any results this worker manages
/// to deliver late are dropped idempotently.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerSummary, FabricError> {
    let mut summary = WorkerSummary::default();
    let mut reconnects_left = opts.connect_attempts;
    let mut ever_connected = false;
    'session: loop {
        // Reconnects after a successful session get a short budget: an
        // unreachable coordinator then means it exited — and it only
        // exits once the grid is complete (or an admin shut it down) —
        // so the worker is done, not broken.
        let attempts = if ever_connected {
            reconnects_left.min(3)
        } else {
            reconnects_left
        };
        let mut conn =
            match connect_with_backoff(addr, &opts.name, Role::Worker, attempts, opts.backoff_ms) {
                Ok(conn) => conn,
                Err(FabricError::Wire(WireError::Io(_))) if ever_connected => {
                    if opts.verbose {
                        eprintln!(
                            "work: coordinator gone after {} lease(s) — serve complete",
                            summary.leases
                        );
                    }
                    return Ok(summary);
                }
                Err(e) => return Err(e),
            };
        ever_connected = true;
        loop {
            let reply = match conn.roundtrip(&Msg::Request {
                capacity: opts.capacity.max(1) as u64,
            }) {
                Ok(reply) => reply,
                Err(WireError::Io(_)) if reconnects_left > 1 => {
                    // The coordinator went away mid-conversation; any
                    // lease we held will be re-issued. Try again.
                    reconnects_left -= 1;
                    continue 'session;
                }
                Err(e) => return Err(e.into()),
            };
            match reply {
                Msg::Drained => {
                    if opts.verbose {
                        eprintln!("work: drained after {} lease(s)", summary.leases);
                    }
                    return Ok(summary);
                }
                Msg::Wait { retry_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 10_000)));
                }
                Msg::Lease { lease, jobs, .. } => {
                    let report = execute_lease(lease, &jobs, opts, &mut summary);
                    match conn.roundtrip(&report) {
                        Ok(Msg::Ack { .. }) => {}
                        Ok(other) => {
                            return Err(WireError::Protocol(format!(
                                "coordinator answered a lease report with {other:?}"
                            ))
                            .into())
                        }
                        Err(WireError::Io(_)) if reconnects_left > 1 => {
                            reconnects_left -= 1;
                            continue 'session;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                other => {
                    return Err(WireError::Protocol(format!(
                        "coordinator answered a work request with {other:?}"
                    ))
                    .into())
                }
            }
        }
    }
}

/// Executes one lease with panic isolation and builds the report frame.
fn execute_lease(
    lease: u64,
    jobs: &[JobSpec],
    opts: &WorkerOptions,
    summary: &mut WorkerSummary,
) -> Msg {
    if opts.verbose {
        eprintln!(
            "work: lease {lease}: {} job(s) ({}, ...)",
            jobs.len(),
            jobs[0]
        );
    }
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| execute_batch_timed(jobs)));
    let elapsed = start.elapsed();
    match outcome {
        Ok(lanes) => {
            // Same attribution rule as the local batched sweep: the
            // executor measures what it can and flags the rest — lone
            // jobs are measured, lockstep lanes carry an averaged share
            // of the batch wall, cloned lanes ~0.
            summary.leases += 1;
            summary.completed += jobs.len() as u64;
            if opts.verbose {
                eprintln!("work: lease {lease} done in {elapsed:.2?}");
            }
            Msg::Done {
                lease,
                results: jobs
                    .iter()
                    .zip(lanes)
                    .map(|(&spec, lane)| StoredResult {
                        spec,
                        report: lane.report,
                        wall_ms: lane.wall_ms,
                        wall: lane.wall,
                    })
                    .collect(),
            }
        }
        Err(panic) => {
            let message = panic_message(panic.as_ref());
            summary.failed += jobs.len() as u64;
            if opts.verbose {
                eprintln!("work: lease {lease} PANICKED: {message}");
            }
            Msg::Failed {
                lease,
                failures: jobs
                    .iter()
                    .map(|&spec| JobFailure::panic(spec, message.clone()))
                    .collect(),
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|m| (*m).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}
