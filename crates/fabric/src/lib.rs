//! # valley-fabric
//!
//! The distributed sweep fabric: a coordinator/worker protocol that
//! scales the harness's sweep engine across machines, over std-only
//! TCP with length-prefixed JSON frames (the store's own hand-rolled
//! encoding — no new dependencies, no new wire vocabulary).
//!
//! * [`wire`] — framing: 4-byte big-endian length + one JSON value;
//! * [`proto`] — the typed request/reply messages ([`Msg`]) and their
//!   exact JSON round trip;
//! * [`coord`] — the coordinator: expands a sweep, skips stored keys,
//!   leases jobs with crash-tolerant deadlines, commits results in
//!   grid expansion order, and serves the read-side `query`/`status`
//!   endpoints purely from the store;
//! * [`worker`] — the worker loop: a network shell around
//!   `execute_job`/`execute_batch`, so `--batch` and
//!   `VALLEY_SIM_THREADS` compose with remote execution;
//! * [`client`] — read-side fetch/status/shutdown.
//!
//! The failure model in one sentence: a worker that panics, stalls
//! past its lease deadline, or disconnects mid-job loses nothing —
//! the job is re-leased (with the structured reason in telemetry when
//! the worker could still report it), and duplicate completions are
//! dropped idempotently because job identity is the content-addressed
//! [`valley_harness::JobKey`]. See `docs/harness.md` for the protocol
//! reference.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod coord;
pub mod proto;
pub mod wire;
pub mod worker;

pub use client::{fabric_status, fetch, shutdown, ClientOptions};
pub use coord::{serve, CoordOptions, Coordinator, ServeSummary};
pub use proto::{FailureNote, Msg, QueryFilters, Role, Telemetry, WorkerStat, PROTOCOL_VERSION};
pub use wire::{read_frame, write_frame, WireError, MAX_FRAME_BYTES};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};

use valley_harness::StoreError;

/// Errors from fabric operations.
#[derive(Debug)]
pub enum FabricError {
    /// Transport or protocol failure.
    Wire(WireError),
    /// The result store rejected a read or write.
    Store(StoreError),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Wire(e) => write!(f, "{e}"),
            FabricError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<WireError> for FabricError {
    fn from(e: WireError) -> Self {
        FabricError::Wire(e)
    }
}

impl From<StoreError> for FabricError {
    fn from(e: StoreError) -> Self {
        FabricError::Store(e)
    }
}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> Self {
        FabricError::Wire(WireError::Io(e))
    }
}
