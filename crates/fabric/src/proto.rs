//! The fabric protocol: typed request/reply messages and their JSON
//! encoding.
//!
//! Every connection starts with a [`Msg::Hello`] naming the peer's
//! [`Role`]; after that the protocol is strict request/reply — the peer
//! sends one frame and the coordinator answers with exactly one frame,
//! so framing never desynchronizes and a reply can always be attributed.
//! Job specs and reports reuse the harness's canonical field encoding
//! (`bench`/`scheme`/`seed`/`scale`/`config`, [`SimReport::to_json_value`]),
//! so the wire format is the store's record vocabulary over
//! [`crate::wire`] frames — property tests pin the encode→frame→decode
//! round trip bit-identical.

use valley_harness::{parse_scheme, ConfigId};
use valley_harness::{FailureKind, JobFailure, JobSpec, StoredResult, WallKind};
use valley_sim::json::Json;
use valley_sim::SimReport;
use valley_workloads::{Benchmark, Scale};

/// Protocol version, carried in every [`Msg::Hello`]. A coordinator
/// rejects mismatched peers loudly instead of misparsing their frames.
/// v2 added the `wall` attribution field to result records (see
/// [`WallKind`]); a v1 peer would drop it silently, so the version gates
/// it out.
pub const PROTOCOL_VERSION: u32 = 2;

/// What a connecting peer is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Executes leased jobs and returns reports.
    Worker,
    /// Read-side consumer: queries, status, admin shutdown.
    Client,
}

impl Role {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Worker => "worker",
            Role::Client => "client",
        }
    }

    /// Parses a [`Role::name`] string.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "worker" => Some(Role::Worker),
            "client" => Some(Role::Client),
            _ => None,
        }
    }
}

/// Read-side query filters; `None` matches everything on that axis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryFilters {
    /// Benchmark filter.
    pub bench: Option<Benchmark>,
    /// Scheme filter.
    pub scheme: Option<valley_core::SchemeKind>,
    /// Scale filter.
    pub scale: Option<Scale>,
    /// Seed filter.
    pub seed: Option<u64>,
    /// Config filter.
    pub config: Option<ConfigId>,
}

impl QueryFilters {
    /// Whether a stored result passes every set filter.
    pub fn matches(&self, r: &StoredResult) -> bool {
        self.bench.is_none_or(|b| b == r.spec.bench)
            && self.scheme.is_none_or(|s| s == r.spec.scheme)
            && self.scale.is_none_or(|s| s == r.spec.scale)
            && self.seed.is_none_or(|s| s == r.spec.seed)
            && self.config.is_none_or(|c| c == r.spec.config)
    }
}

/// Per-worker fabric telemetry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// The worker's self-reported name (stable across reconnects).
    pub name: String,
    /// Jobs this worker completed (accepted results only; a duplicate
    /// completion of an already-stored job does not count).
    pub completed: u64,
    /// Structured failures this worker reported.
    pub failed: u64,
}

/// One recorded job failure, for `valley status` and the serve summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureNote {
    /// The failed job's human label.
    pub job: String,
    /// The structured failure kind ([`FailureKind::name`]).
    pub kind: FailureKind,
    /// Human-readable detail.
    pub message: String,
}

/// A snapshot of the coordinator's state, served to `valley status
/// --fabric` and returned in the serve summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    /// Jobs in the sweep grid.
    pub jobs_total: u64,
    /// Jobs already in the store when the coordinator started.
    pub cache_hits: u64,
    /// Jobs completed by workers this serve (excludes cache hits).
    pub executed: u64,
    /// Leases currently outstanding.
    pub active_leases: u64,
    /// Jobs returned to the queue after a lease timed out or its worker
    /// disconnected.
    pub releases: u64,
    /// Completions for jobs that were already done (idempotently
    /// dropped — the store is content-addressed, nothing is lost).
    pub duplicates: u64,
    /// Per-worker statistics, sorted by worker name.
    pub workers: Vec<WorkerStat>,
    /// Structured failures recorded so far (includes re-leased crashes).
    pub failures: Vec<FailureNote>,
}

/// One fabric message. See the module docs for the request/reply
/// pairing; [`Msg::to_json`] / [`Msg::from_json`] are exact inverses.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// First frame on every connection.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// What the peer is.
        role: Role,
        /// Peer name (telemetry key for workers).
        name: String,
    },
    /// Worker asks for work; `capacity` is the widest same-machine batch
    /// it will accept (its `--batch` width).
    Request {
        /// Maximum jobs per lease.
        capacity: u64,
    },
    /// Coordinator grants a lease on a batch of same-machine jobs.
    Lease {
        /// Lease id, echoed back in [`Msg::Done`] / [`Msg::Failed`].
        lease: u64,
        /// Milliseconds until the coordinator may re-lease these jobs.
        deadline_ms: u64,
        /// The leased jobs (all sharing config × scale × scheme, so the
        /// worker can run them through `execute_batch`).
        jobs: Vec<JobSpec>,
    },
    /// Coordinator has jobs outstanding but none available; retry after
    /// the backoff.
    Wait {
        /// Suggested retry backoff in milliseconds.
        retry_ms: u64,
    },
    /// The grid is complete (or abandoned): the worker should exit.
    Drained,
    /// Worker returns the results of a lease.
    Done {
        /// The lease being completed.
        lease: u64,
        /// One result per leased job.
        results: Vec<StoredResult>,
    },
    /// Worker reports a structured failure for a leased batch; the
    /// coordinator re-leases the jobs (up to its attempt cap) with the
    /// reason attached to telemetry.
    Failed {
        /// The lease that failed.
        lease: u64,
        /// The structured failures, one per affected job.
        failures: Vec<JobFailure>,
    },
    /// Generic acknowledgement. `stored`/`duplicates` report what a
    /// [`Msg::Done`] actually changed (idempotency is observable).
    Ack {
        /// Results accepted and queued for the store.
        stored: u64,
        /// Results dropped because the job was already done.
        duplicates: u64,
    },
    /// Read-side query, answered purely from the store.
    Query {
        /// The filters.
        filters: QueryFilters,
    },
    /// Reply to [`Msg::Query`].
    Results {
        /// Matching stored results, in the store's canonical order.
        records: Vec<StoredResult>,
    },
    /// Read-side telemetry request.
    Status,
    /// Reply to [`Msg::Status`].
    Telemetry(Telemetry),
    /// Admin: ask a lingering coordinator to exit.
    Shutdown,
}

// ---------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------

/// Encodes a job spec with the store's canonical field vocabulary.
pub fn job_to_json(spec: &JobSpec) -> Json {
    Json::Obj(vec![
        ("bench".into(), Json::Str(spec.bench.label().into())),
        ("scheme".into(), Json::Str(spec.scheme.label().into())),
        ("seed".into(), Json::UInt(spec.seed)),
        ("scale".into(), Json::Str(spec.scale.name().into())),
        ("config".into(), Json::Str(spec.config.name())),
    ])
}

/// Decodes [`job_to_json`]. Unknown names fail loudly — a mixed-version
/// fleet must not silently run the wrong experiment.
pub fn job_from_json(v: &Json) -> Result<JobSpec, String> {
    let text = |key: &str| -> Result<&str, String> {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("job field '{key}' missing or not a string"))
    };
    let bench_name = text("bench")?;
    let bench =
        Benchmark::parse(bench_name).ok_or_else(|| format!("unknown benchmark '{bench_name}'"))?;
    let scheme_name = text("scheme")?;
    let scheme =
        parse_scheme(scheme_name).ok_or_else(|| format!("unknown scheme '{scheme_name}'"))?;
    let scale_name = text("scale")?;
    let scale = Scale::parse(scale_name).ok_or_else(|| format!("unknown scale '{scale_name}'"))?;
    let config_name = text("config")?;
    let config =
        ConfigId::parse(config_name).ok_or_else(|| format!("unknown config '{config_name}'"))?;
    let seed = v
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("job field 'seed' missing or not an integer")?;
    Ok(JobSpec {
        bench,
        scheme,
        seed,
        scale,
        config,
    })
}

/// Encodes a stored result (job + wall time + attribution + report).
pub fn record_to_json(r: &StoredResult) -> Json {
    Json::Obj(vec![
        ("job".into(), job_to_json(&r.spec)),
        ("wall_ms".into(), Json::Num(r.wall_ms)),
        ("wall".into(), Json::Str(r.wall.as_str().into())),
        ("report".into(), r.report.to_json_value()),
    ])
}

/// Decodes [`record_to_json`].
pub fn record_from_json(v: &Json) -> Result<StoredResult, String> {
    let spec = job_from_json(v.get("job").ok_or("record has no job")?)?;
    let wall_ms = v
        .get("wall_ms")
        .and_then(Json::as_f64)
        .ok_or("record field 'wall_ms' missing or not a number")?;
    let wall_name = v
        .get("wall")
        .and_then(Json::as_str)
        .ok_or("record field 'wall' missing or not a string")?;
    let wall =
        WallKind::parse(wall_name).ok_or_else(|| format!("unknown wall kind '{wall_name}'"))?;
    let report = SimReport::from_json_value(v.get("report").ok_or("record has no report")?)?;
    Ok(StoredResult {
        spec,
        report,
        wall_ms,
        wall,
    })
}

fn failure_to_json(f: &JobFailure) -> Json {
    Json::Obj(vec![
        ("job".into(), job_to_json(&f.spec)),
        ("kind".into(), Json::Str(f.kind.name().into())),
        ("message".into(), Json::Str(f.message.clone())),
    ])
}

fn failure_from_json(v: &Json) -> Result<JobFailure, String> {
    let spec = job_from_json(v.get("job").ok_or("failure has no job")?)?;
    let kind_name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("failure field 'kind' missing or not a string")?;
    let kind = FailureKind::parse(kind_name)
        .ok_or_else(|| format!("unknown failure kind '{kind_name}'"))?;
    let message = v
        .get("message")
        .and_then(Json::as_str)
        .ok_or("failure field 'message' missing or not a string")?
        .to_string();
    Ok(JobFailure {
        spec,
        kind,
        message,
    })
}

fn telemetry_to_json(t: &Telemetry) -> Json {
    Json::Obj(vec![
        ("jobs_total".into(), Json::UInt(t.jobs_total)),
        ("cache_hits".into(), Json::UInt(t.cache_hits)),
        ("executed".into(), Json::UInt(t.executed)),
        ("active_leases".into(), Json::UInt(t.active_leases)),
        ("releases".into(), Json::UInt(t.releases)),
        ("duplicates".into(), Json::UInt(t.duplicates)),
        (
            "workers".into(),
            Json::Arr(
                t.workers
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(w.name.clone())),
                            ("completed".into(), Json::UInt(w.completed)),
                            ("failed".into(), Json::UInt(w.failed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "failures".into(),
            Json::Arr(
                t.failures
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("job".into(), Json::Str(f.job.clone())),
                            ("kind".into(), Json::Str(f.kind.name().into())),
                            ("message".into(), Json::Str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn telemetry_from_json(v: &Json) -> Result<Telemetry, String> {
    let int = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("telemetry field '{key}' missing or not an integer"))
    };
    let workers = v
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("telemetry field 'workers' missing or not an array")?
        .iter()
        .map(|w| {
            Ok(WorkerStat {
                name: w
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("worker stat has no name")?
                    .to_string(),
                completed: w
                    .get("completed")
                    .and_then(Json::as_u64)
                    .ok_or("worker stat has no completed count")?,
                failed: w
                    .get("failed")
                    .and_then(Json::as_u64)
                    .ok_or("worker stat has no failed count")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let failures = v
        .get("failures")
        .and_then(Json::as_arr)
        .ok_or("telemetry field 'failures' missing or not an array")?
        .iter()
        .map(|f| {
            let kind_name = f
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("failure note has no kind")?;
            Ok(FailureNote {
                job: f
                    .get("job")
                    .and_then(Json::as_str)
                    .ok_or("failure note has no job")?
                    .to_string(),
                kind: FailureKind::parse(kind_name)
                    .ok_or_else(|| format!("unknown failure kind '{kind_name}'"))?,
                message: f
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("failure note has no message")?
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Telemetry {
        jobs_total: int("jobs_total")?,
        cache_hits: int("cache_hits")?,
        executed: int("executed")?,
        active_leases: int("active_leases")?,
        releases: int("releases")?,
        duplicates: int("duplicates")?,
        workers,
        failures,
    })
}

fn filters_to_json(f: &QueryFilters) -> Json {
    let mut members = Vec::new();
    if let Some(b) = f.bench {
        members.push(("bench".to_string(), Json::Str(b.label().into())));
    }
    if let Some(s) = f.scheme {
        members.push(("scheme".to_string(), Json::Str(s.label().into())));
    }
    if let Some(s) = f.scale {
        members.push(("scale".to_string(), Json::Str(s.name().into())));
    }
    if let Some(s) = f.seed {
        members.push(("seed".to_string(), Json::UInt(s)));
    }
    if let Some(c) = f.config {
        members.push(("config".to_string(), Json::Str(c.name())));
    }
    Json::Obj(members)
}

fn filters_from_json(v: &Json) -> Result<QueryFilters, String> {
    let mut f = QueryFilters::default();
    if let Some(name) = v.get("bench").map(|b| b.as_str().ok_or("bad bench filter")) {
        f.bench = Some(Benchmark::parse(name?).ok_or("unknown bench filter")?);
    }
    if let Some(name) = v
        .get("scheme")
        .map(|s| s.as_str().ok_or("bad scheme filter"))
    {
        f.scheme = Some(parse_scheme(name?).ok_or("unknown scheme filter")?);
    }
    if let Some(name) = v.get("scale").map(|s| s.as_str().ok_or("bad scale filter")) {
        f.scale = Some(Scale::parse(name?).ok_or("unknown scale filter")?);
    }
    if let Some(seed) = v.get("seed") {
        f.seed = Some(seed.as_u64().ok_or("bad seed filter")?);
    }
    if let Some(name) = v
        .get("config")
        .map(|c| c.as_str().ok_or("bad config filter"))
    {
        f.config = Some(ConfigId::parse(name?).ok_or("unknown config filter")?);
    }
    Ok(f)
}

impl Msg {
    /// Encodes the message as one JSON value (the frame payload).
    pub fn to_json(&self) -> Json {
        let tag = |t: &str| ("t".to_string(), Json::Str(t.into()));
        match self {
            Msg::Hello {
                version,
                role,
                name,
            } => Json::Obj(vec![
                tag("hello"),
                ("version".into(), Json::UInt(u64::from(*version))),
                ("role".into(), Json::Str(role.name().into())),
                ("name".into(), Json::Str(name.clone())),
            ]),
            Msg::Request { capacity } => Json::Obj(vec![
                tag("request"),
                ("capacity".into(), Json::UInt(*capacity)),
            ]),
            Msg::Lease {
                lease,
                deadline_ms,
                jobs,
            } => Json::Obj(vec![
                tag("lease"),
                ("lease".into(), Json::UInt(*lease)),
                ("deadline_ms".into(), Json::UInt(*deadline_ms)),
                (
                    "jobs".into(),
                    Json::Arr(jobs.iter().map(job_to_json).collect()),
                ),
            ]),
            Msg::Wait { retry_ms } => Json::Obj(vec![
                tag("wait"),
                ("retry_ms".into(), Json::UInt(*retry_ms)),
            ]),
            Msg::Drained => Json::Obj(vec![tag("drained")]),
            Msg::Done { lease, results } => Json::Obj(vec![
                tag("done"),
                ("lease".into(), Json::UInt(*lease)),
                (
                    "results".into(),
                    Json::Arr(results.iter().map(record_to_json).collect()),
                ),
            ]),
            Msg::Failed { lease, failures } => Json::Obj(vec![
                tag("failed"),
                ("lease".into(), Json::UInt(*lease)),
                (
                    "failures".into(),
                    Json::Arr(failures.iter().map(failure_to_json).collect()),
                ),
            ]),
            Msg::Ack { stored, duplicates } => Json::Obj(vec![
                tag("ack"),
                ("stored".into(), Json::UInt(*stored)),
                ("duplicates".into(), Json::UInt(*duplicates)),
            ]),
            Msg::Query { filters } => Json::Obj(vec![
                tag("query"),
                ("filters".into(), filters_to_json(filters)),
            ]),
            Msg::Results { records } => Json::Obj(vec![
                tag("results"),
                (
                    "records".into(),
                    Json::Arr(records.iter().map(record_to_json).collect()),
                ),
            ]),
            Msg::Status => Json::Obj(vec![tag("status")]),
            Msg::Telemetry(t) => Json::Obj(vec![
                tag("telemetry"),
                ("telemetry".into(), telemetry_to_json(t)),
            ]),
            Msg::Shutdown => Json::Obj(vec![tag("shutdown")]),
        }
    }

    /// Decodes [`Msg::to_json`]. Every malformed shape fails loudly.
    pub fn from_json(v: &Json) -> Result<Msg, String> {
        let t = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or("message has no 't' tag")?;
        let int = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("message field '{key}' missing or not an integer"))
        };
        let arr = |key: &str| -> Result<&[Json], String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("message field '{key}' missing or not an array"))
        };
        match t {
            "hello" => {
                let role_name = v
                    .get("role")
                    .and_then(Json::as_str)
                    .ok_or("hello has no role")?;
                Ok(Msg::Hello {
                    version: u32::try_from(int("version")?)
                        .map_err(|_| "hello version out of range".to_string())?,
                    role: Role::parse(role_name)
                        .ok_or_else(|| format!("unknown role '{role_name}'"))?,
                    name: v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("hello has no name")?
                        .to_string(),
                })
            }
            "request" => Ok(Msg::Request {
                capacity: int("capacity")?,
            }),
            "lease" => Ok(Msg::Lease {
                lease: int("lease")?,
                deadline_ms: int("deadline_ms")?,
                jobs: arr("jobs")?
                    .iter()
                    .map(job_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "wait" => Ok(Msg::Wait {
                retry_ms: int("retry_ms")?,
            }),
            "drained" => Ok(Msg::Drained),
            "done" => Ok(Msg::Done {
                lease: int("lease")?,
                results: arr("results")?
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "failed" => Ok(Msg::Failed {
                lease: int("lease")?,
                failures: arr("failures")?
                    .iter()
                    .map(failure_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "ack" => Ok(Msg::Ack {
                stored: int("stored")?,
                duplicates: int("duplicates")?,
            }),
            "query" => Ok(Msg::Query {
                filters: filters_from_json(v.get("filters").ok_or("query has no filters")?)?,
            }),
            "results" => Ok(Msg::Results {
                records: arr("records")?
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "status" => Ok(Msg::Status),
            "telemetry" => Ok(Msg::Telemetry(telemetry_from_json(
                v.get("telemetry").ok_or("telemetry message has no body")?,
            )?)),
            "shutdown" => Ok(Msg::Shutdown),
            other => Err(format!("unknown message tag '{other}'")),
        }
    }
}
