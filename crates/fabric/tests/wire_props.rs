//! Property tests for the fabric wire format: every protocol message —
//! and in particular the [`JobSpec`] and [`StoredResult`] payloads that
//! carry the science — must survive encode → frame → decode
//! bit-identically. A fleet whose frames drift even one bit would store
//! results under the wrong keys, so these properties are the fabric's
//! foundation.

use proptest::prelude::*;
use valley_cache::CacheStats;
use valley_core::SchemeKind;
use valley_dram::DramStats;
use valley_fabric::proto::{
    job_from_json, job_to_json, record_from_json, record_to_json, Msg, QueryFilters, Role,
    Telemetry, WorkerStat, PROTOCOL_VERSION,
};
use valley_fabric::wire::{read_frame, write_frame, WireError};
use valley_fabric::{FailureNote, WorkerOptions};
use valley_harness::{ConfigId, FailureKind, JobFailure, JobSpec, StoredResult, WallKind};

const WALL_KINDS: [WallKind; 3] = [WallKind::Measured, WallKind::Averaged, WallKind::Cloned];
use valley_sim::json::Json;
use valley_sim::{EpochHist, SimReport};
use valley_workloads::{Benchmark, Scale};

const SCALES: [Scale; 3] = [Scale::Test, Scale::Small, Scale::Ref];
const CONFIGS: [ConfigId; 4] = [
    ConfigId::Table1,
    ConfigId::Stacked,
    ConfigId::Sms(24),
    ConfigId::Sms(48),
];

fn job(bench: usize, scheme: usize, seed: u64, scale: usize, config: usize) -> JobSpec {
    JobSpec {
        bench: Benchmark::ALL[bench % Benchmark::ALL.len()],
        scheme: SchemeKind::ALL_SCHEMES[scheme % SchemeKind::ALL_SCHEMES.len()],
        seed,
        scale: SCALES[scale % SCALES.len()],
        config: CONFIGS[config % CONFIGS.len()],
    }
}

/// A synthetic report exercising the full field vocabulary, including
/// `u64` counters beyond f64's exact integer range.
fn report(cycles: u64, big: u64, frac: f64, spec: &JobSpec) -> SimReport {
    SimReport {
        benchmark: spec.bench.label().to_string(),
        scheme: spec.scheme.label().to_string(),
        cycles,
        truncated: cycles.is_multiple_of(2),
        warp_instructions: big,
        thread_instructions: big.wrapping_mul(32),
        memory_transactions: cycles / 2,
        l1: CacheStats {
            hits: big / 3,
            misses: cycles,
            evictions: 7,
        },
        llc: CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
        },
        noc_latency: frac * 100.0,
        llc_parallelism: frac * 8.0,
        channel_parallelism: frac * 4.0,
        bank_parallelism: frac * 16.0,
        dram: DramStats {
            activates: big,
            precharges: big / 2,
            reads: cycles,
            writes: cycles / 3,
            row_hits: 5,
            row_empties: 6,
            row_conflicts: 7,
            busy_cycles: big,
            data_bus_cycles: big / 5,
            total_cycles: big,
            total_latency: big,
        },
        kernels: (cycles % 97) as usize,
        dram_cycles: big,
        dram_channels: 4,
        core_clock_ghz: 1.4,
        dram_clock_ghz: 0.924,
        num_sms: 12,
        sm_busy_fraction: frac,
        epoch_hist: EpochHist {
            lengths: [cycles, big / 7, cycles / 3, 1, 0, 2, big / 11, 8],
            in_flight_multi: cycles / 5,
        },
    }
}

/// Encode → frame-write → frame-read → decode; returns the decoded
/// value and asserts the reread frame is byte-identical to the sent one.
fn frame_round_trip(v: &Json) -> Json {
    let mut buf = Vec::new();
    write_frame(&mut buf, v).expect("write_frame to memory");
    let back = read_frame(&mut buf.as_slice()).expect("read_frame from memory");
    let mut rebuf = Vec::new();
    write_frame(&mut rebuf, &back).expect("re-encode");
    assert_eq!(buf, rebuf, "frame bytes drifted across a round trip");
    back
}

proptest! {
    /// Job specs survive encode → frame → decode exactly, for every
    /// bench × scheme × scale × config and arbitrary 64-bit seeds.
    #[test]
    fn job_spec_round_trip(
        bench in 0usize..64,
        scheme in 0usize..64,
        seed in 0u64..=u64::MAX,
        scale in 0usize..8,
        config in 0usize..8,
    ) {
        let spec = job(bench, scheme, seed, scale, config);
        let back = job_from_json(&frame_round_trip(&job_to_json(&spec))).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// Stored results (job + report + wall time + attribution) survive
    /// the frame round trip bit-identically — including counters above
    /// 2^53, the exact f64 bits of `wall_ms`, and every `wall` kind.
    #[test]
    fn stored_result_round_trip(
        bench in 0usize..64,
        cycles in 0u64..=u64::MAX,
        big in (1u64 << 53)..=u64::MAX,
        frac in 0.0f64..=1.0,
        wall_ms in 0.0f64..1e9,
        wall_kind in 0usize..3,
    ) {
        let spec = job(bench, bench / 7, cycles, bench / 3, bench / 5);
        let r = StoredResult {
            spec,
            report: report(cycles, big, frac, &spec),
            wall_ms,
            wall: WALL_KINDS[wall_kind],
        };
        let back = record_from_json(&frame_round_trip(&record_to_json(&r))).unwrap();
        prop_assert_eq!(back.spec, r.spec);
        prop_assert_eq!(back.wall_ms.to_bits(), r.wall_ms.to_bits());
        prop_assert_eq!(back.wall, r.wall);
        prop_assert_eq!(back.report.epoch_hist, r.report.epoch_hist);
        prop_assert_eq!(back.report, r.report);
    }

    /// Every protocol message round-trips exactly through its frame.
    #[test]
    fn msg_round_trip(
        variant in 0usize..13,
        n in 0u64..=u64::MAX,
        m in 0u64..1_000_000,
        bench in 0usize..64,
        frac in 0.0f64..=1.0,
    ) {
        let spec = job(bench, bench / 2, n, bench, bench / 3);
        let msg = match variant {
            0 => Msg::Hello {
                version: PROTOCOL_VERSION,
                role: if n % 2 == 0 { Role::Worker } else { Role::Client },
                name: format!("peer-{m} \"quoted\"\n😀"),
            },
            1 => Msg::Request { capacity: n },
            2 => Msg::Lease {
                lease: n,
                deadline_ms: m,
                jobs: vec![spec, job(bench + 1, bench / 2, n ^ 1, bench, bench / 3)],
            },
            3 => Msg::Wait { retry_ms: m },
            4 => Msg::Drained,
            5 => Msg::Done {
                lease: n,
                results: vec![StoredResult {
                    spec,
                    report: report(n, (1 << 53) | n, frac, &spec),
                    wall_ms: frac * 1e4,
                    wall: WALL_KINDS[(n % 3) as usize],
                }],
            },
            6 => Msg::Failed {
                lease: n,
                failures: vec![JobFailure {
                    spec,
                    kind: if n % 2 == 0 { FailureKind::Panic } else { FailureKind::StoreWrite },
                    message: format!("lane {m} panicked:\n\t\"{frac}\""),
                }],
            },
            7 => Msg::Ack { stored: n, duplicates: m },
            8 => Msg::Query {
                filters: QueryFilters {
                    bench: (n % 2 == 0).then_some(spec.bench),
                    scheme: (n % 3 == 0).then_some(spec.scheme),
                    scale: (n % 5 == 0).then_some(spec.scale),
                    seed: (n % 7 == 0).then_some(m),
                    config: (n % 11 == 0).then_some(spec.config),
                },
            },
            9 => Msg::Results {
                records: vec![StoredResult {
                    spec,
                    report: report(m, (1 << 54) | m, frac, &spec),
                    wall_ms: frac,
                    wall: WALL_KINDS[(m % 3) as usize],
                }],
            },
            10 => Msg::Status,
            11 => Msg::Telemetry(Telemetry {
                jobs_total: n,
                cache_hits: m,
                executed: n / 2,
                active_leases: n % 17,
                releases: m / 3,
                duplicates: m % 5,
                workers: vec![WorkerStat {
                    name: format!("w{m}"),
                    completed: n / 3,
                    failed: m / 7,
                }],
                failures: vec![FailureNote {
                    job: spec.label(),
                    kind: FailureKind::Panic,
                    message: "index out of bounds".into(),
                }],
            }),
            _ => Msg::Shutdown,
        };
        let back = Msg::from_json(&frame_round_trip(&msg.to_json())).unwrap();
        prop_assert_eq!(back, msg);
    }
}

/// A peer speaking a different protocol version is detectable before
/// any payload parsing: the version survives the frame exactly.
#[test]
fn hello_version_is_exact() {
    for version in [0, 1, 2, u32::MAX] {
        let msg = Msg::Hello {
            version,
            role: Role::Worker,
            name: WorkerOptions::default().name,
        };
        let Msg::Hello { version: back, .. } =
            Msg::from_json(&frame_round_trip(&msg.to_json())).unwrap()
        else {
            panic!("hello decoded as a different variant");
        };
        assert_eq!(back, version);
    }
}

/// Frames larger than the protocol cap are refused on read — a
/// corrupted length prefix cannot make the coordinator allocate
/// gigabytes.
#[test]
fn oversized_frame_is_refused() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&u32::MAX.to_be_bytes());
    buf.extend_from_slice(b"junk");
    match read_frame(&mut buf.as_slice()) {
        Err(WireError::Protocol(msg)) => assert!(msg.contains("frame"), "{msg}"),
        other => panic!("oversized frame accepted: {other:?}"),
    }
}

/// A frame truncated mid-payload fails as an I/O error (the peer died),
/// never as a misparse.
#[test]
fn truncated_frame_fails_loudly() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &Msg::Status.to_json()).unwrap();
    buf.truncate(buf.len() - 1);
    assert!(matches!(
        read_frame(&mut buf.as_slice()),
        Err(WireError::Io(_))
    ));
}
