//! End-to-end fabric tests over 127.0.0.1: a coordinator and in-process
//! workers exercising the real TCP protocol. Pins the two headline
//! guarantees — a distributed sweep's store is identical to a local
//! sequential sweep's (shard-for-shard, modulo only the `wall_ms` value
//! and its `wall` attribution), and a worker killed mid-job loses
//! nothing: its lease is re-issued and the grid completes with zero
//! lost and zero duplicated results.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use valley_core::SchemeKind;
use valley_fabric::{
    read_frame, run_worker, write_frame, CoordOptions, Coordinator, Msg, QueryFilters, Role,
    ServeSummary, WorkerOptions, PROTOCOL_VERSION,
};
use valley_harness::{
    execute_batch, run_sweep, JobFailure, ResultStore, StoredResult, SweepOptions, SweepSpec,
    WallKind,
};
use valley_workloads::{Benchmark, Scale};

/// A fresh store directory that cleans itself up.
struct TempStore(std::path::PathBuf);

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let dir =
            std::env::temp_dir().join(format!("valley-fabric-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempStore(dir)
    }

    fn open(&self) -> ResultStore {
        ResultStore::open(&self.0).expect("store opens")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Four test-scale jobs in two same-machine groups (config × scale ×
/// scheme), so `--batch 2` leases exercise the grouped path.
fn grid() -> SweepSpec {
    SweepSpec::new(
        &[Benchmark::Sp, Benchmark::Mt],
        &[SchemeKind::Base, SchemeKind::Pae],
        Scale::Test,
    )
}

fn quiet(worker: &str) -> WorkerOptions {
    WorkerOptions {
        name: worker.to_string(),
        verbose: false,
        ..WorkerOptions::default()
    }
}

fn coord_opts() -> CoordOptions {
    CoordOptions {
        verbose: false,
        ..CoordOptions::default()
    }
}

/// A hand-driven protocol peer for fault injection: speaks real frames
/// over a real socket but does exactly (and only) what each test says.
struct RawPeer {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RawPeer {
    fn connect(addr: &str, name: &str) -> RawPeer {
        let stream = TcpStream::connect(addr).expect("raw peer connects");
        let mut peer = RawPeer {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        };
        let ack = peer.roundtrip(&Msg::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Worker,
            name: name.to_string(),
        });
        assert!(matches!(ack, Msg::Ack { .. }), "hello rejected: {ack:?}");
        peer
    }

    fn roundtrip(&mut self, msg: &Msg) -> Msg {
        write_frame(&mut self.writer, &msg.to_json()).expect("raw peer writes");
        let reply = read_frame(&mut self.reader).expect("raw peer reads");
        Msg::from_json(&reply).expect("raw peer decodes")
    }

    fn lease(&mut self, capacity: u64) -> (u64, Vec<valley_harness::JobSpec>) {
        match self.roundtrip(&Msg::Request { capacity }) {
            Msg::Lease { lease, jobs, .. } => (lease, jobs),
            other => panic!("expected a lease, got {other:?}"),
        }
    }
}

/// Runs a coordinator over `spec`/`store` while `drive` injects faults
/// and workers; returns the serve summary.
fn serve_while(
    spec: &SweepSpec,
    store: &ResultStore,
    opts: &CoordOptions,
    drive: impl FnOnce(&str) + Send,
) -> ServeSummary {
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    std::thread::scope(|s| {
        let serve = s.spawn(move || coordinator.run(spec, store, opts));
        drive(&addr);
        serve.join().expect("serve thread").expect("serve succeeds")
    })
}

/// Replaces the `wall_ms` value and its `wall` attribution — the only
/// fields of a stored record that depend on how (and how fast) the job
/// was executed rather than on what it computed — with placeholders.
fn normalize_wall(line: &str) -> String {
    let mut out = line.to_string();
    for (field, placeholder) in [("\"wall_ms\":", "0"), ("\"wall\":", "\"x\"")] {
        let start = out.find(field).expect("record has wall fields") + field.len();
        let end = start + out[start..].find(',').expect("wall field is not last");
        out = format!("{}{placeholder}{}", &out[..start], &out[end..]);
    }
    out
}

/// Both stores' shard files, as (file name → wall-normalized contents).
fn normalized_shards(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<String>> {
    let mut shards = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("store dir lists") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(entry.path()).expect("shard reads");
        shards.insert(name, text.lines().map(normalize_wall).collect());
    }
    shards
}

/// Tentpole acceptance: a sweep distributed over two loopback workers
/// produces shard files identical to a local sequential sweep's — same
/// file names, same records, same order — modulo only `wall_ms`.
#[test]
fn distributed_store_matches_local_sequential_sweep() {
    let spec = grid();

    let local = TempStore::new("local");
    run_sweep(
        &spec,
        &local.open(),
        &SweepOptions {
            workers: Some(1),
            verbose: false,
            ..SweepOptions::default()
        },
    )
    .expect("local sweep");

    let remote = TempStore::new("remote");
    let store = remote.open();
    let summary = serve_while(&spec, &store, &coord_opts(), |addr| {
        std::thread::scope(|s| {
            s.spawn(|| run_worker(addr, &quiet("w1")).expect("worker 1"));
            s.spawn(|| run_worker(addr, &quiet("w2")).expect("worker 2"));
        });
    });

    assert!(summary.complete(), "grid incomplete: {summary:?}");
    assert_eq!(summary.telemetry.executed, 4);
    assert_eq!(summary.telemetry.cache_hits, 0);
    assert_eq!(summary.telemetry.duplicates, 0);
    assert_eq!(normalized_shards(&local.0), normalized_shards(&remote.0));

    // Resume: a second serve over the full store completes without any
    // worker connecting at all.
    let resumed = {
        let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind loopback");
        coordinator
            .run(&spec, &store, &coord_opts())
            .expect("resumed serve")
    };
    assert!(resumed.complete());
    assert_eq!(resumed.telemetry.cache_hits, 4);
    assert_eq!(resumed.telemetry.executed, 0);
}

/// Batched leases (`capacity > 1`) group same-machine jobs and produce
/// the same store as single-job leases.
#[test]
fn batched_leases_match_unbatched_store() {
    let spec = grid();
    let single = TempStore::new("single-lease");
    let store = single.open();
    serve_while(&spec, &store, &coord_opts(), |addr| {
        run_worker(addr, &quiet("solo")).expect("worker");
    });

    let batched = TempStore::new("batched-lease");
    let bstore = batched.open();
    let summary = serve_while(&spec, &bstore, &coord_opts(), |addr| {
        run_worker(
            addr,
            &WorkerOptions {
                capacity: 2,
                ..quiet("wide")
            },
        )
        .expect("batched worker");
    });
    assert!(summary.complete());
    assert_eq!(
        normalized_shards(&single.0),
        normalized_shards(&batched.0),
        "lease batching changed the stored results"
    );
}

/// A worker killed mid-job loses nothing: the dropped connection's
/// lease is re-issued to a healthy worker and the grid completes with
/// zero lost and zero duplicated results.
#[test]
fn killed_worker_mid_job_loses_nothing() {
    let spec = grid();
    let tmp = TempStore::new("killed");
    let store = tmp.open();
    let summary = serve_while(&spec, &store, &coord_opts(), |addr| {
        // The victim takes a lease and dies without reporting.
        let mut victim = RawPeer::connect(addr, "victim");
        let (_lease, jobs) = victim.lease(1);
        assert_eq!(jobs.len(), 1);
        drop(victim);
        // A healthy worker drains the whole grid, including the
        // re-leased job.
        run_worker(addr, &quiet("healthy")).expect("healthy worker");
    });
    assert!(summary.complete(), "grid incomplete: {summary:?}");
    assert_eq!(summary.telemetry.executed, 4, "a result was lost");
    assert_eq!(summary.telemetry.duplicates, 0, "a result was duplicated");
    assert!(
        summary.telemetry.releases >= 1,
        "the victim's lease was never re-issued"
    );
    assert_eq!(store.len(), 4);
    let healthy = summary
        .telemetry
        .workers
        .iter()
        .find(|w| w.name == "healthy")
        .expect("healthy worker in telemetry");
    assert_eq!(healthy.completed, 4);
}

/// A worker that stalls past its lease deadline is reaped: the job is
/// re-leased, and the stale worker's late completion is dropped
/// idempotently.
#[test]
fn expired_lease_is_reaped_and_late_completion_is_idempotent() {
    let spec = grid();
    let tmp = TempStore::new("expired");
    let store = tmp.open();
    // Linger keeps the coordinator answering after the grid completes,
    // so the stale worker's late `Done` is deterministically processed
    // (and then `Shutdown` ends the serve).
    let opts = CoordOptions {
        lease_ms: 50,
        linger: true,
        ..coord_opts()
    };
    let summary = serve_while(&spec, &store, &opts, |addr| {
        let mut stalled = RawPeer::connect(addr, "stalled");
        let (lease, jobs) = stalled.lease(1);
        // Outlive the deadline, then let a healthy worker drain the
        // grid (re-leasing our job on its first request).
        std::thread::sleep(std::time::Duration::from_millis(120));
        run_worker(addr, &quiet("healthy")).expect("healthy worker");
        // The stale completion arrives after the job is already done:
        // dropped idempotently, reported in the ack.
        let results = execute_batch(&jobs)
            .into_iter()
            .zip(&jobs)
            .map(|(report, &spec)| StoredResult {
                spec,
                report,
                wall_ms: 1.0,
                wall: WallKind::Measured,
            })
            .collect();
        match stalled.roundtrip(&Msg::Done { lease, results }) {
            Msg::Ack { stored, duplicates } => {
                assert_eq!(stored, 0, "a stale result was stored twice");
                assert_eq!(duplicates, 1);
            }
            other => panic!("expected an ack, got {other:?}"),
        }
        match stalled.roundtrip(&Msg::Shutdown) {
            Msg::Ack { .. } => {}
            other => panic!("expected a shutdown ack, got {other:?}"),
        }
    });
    assert!(summary.complete(), "grid incomplete: {summary:?}");
    assert_eq!(summary.telemetry.executed, 4);
    assert_eq!(summary.telemetry.duplicates, 1);
    assert!(
        summary.telemetry.releases >= 1,
        "expired lease never reaped"
    );
    assert_eq!(store.len(), 4);
}

/// The fetch path reaps too: with every job of the grid stuck behind
/// expired leases, a read-side `Query` alone re-queues them — the
/// releases are counted at query time, before any worker asks for work
/// or reports in — and the stale worker's late completions still land
/// through the idempotent stale-done path. If only the request path
/// reaped, the late `Done` frames would retire their own leases
/// normally and the final `releases` count would fall short.
#[test]
fn query_path_reaps_expired_leases() {
    let spec = grid();
    let tmp = TempStore::new("query-reap");
    let store = tmp.open();
    let opts = CoordOptions {
        lease_ms: 50,
        linger: true,
        ..coord_opts()
    };
    let summary = serve_while(&spec, &store, &opts, |addr| {
        // The victim leases the whole grid (two same-machine leases of
        // two jobs each), then stalls past both deadlines.
        let mut victim = RawPeer::connect(addr, "victim");
        let (lease_a, jobs_a) = victim.lease(2);
        let (lease_b, jobs_b) = victim.lease(2);
        assert_eq!(
            jobs_a.len() + jobs_b.len(),
            4,
            "the grid was not fully leased"
        );
        std::thread::sleep(std::time::Duration::from_millis(120));
        // A fetch-only watcher triggers the reap: no Request, no Status.
        let mut watcher = RawPeer::connect(addr, "watcher");
        match watcher.roundtrip(&Msg::Query {
            filters: QueryFilters::default(),
        }) {
            Msg::Results { records } => assert!(records.is_empty(), "nothing is stored yet"),
            other => panic!("expected results, got {other:?}"),
        }
        // The victim's late completions arrive after its leases were
        // reaped; the jobs re-queued at query time, so the results are
        // accepted through the stale-done path.
        for (lease, jobs) in [(lease_a, jobs_a), (lease_b, jobs_b)] {
            let results = execute_batch(&jobs)
                .into_iter()
                .zip(&jobs)
                .map(|(report, &spec)| StoredResult {
                    spec,
                    report,
                    wall_ms: 1.0,
                    wall: WallKind::Measured,
                })
                .collect();
            match victim.roundtrip(&Msg::Done { lease, results }) {
                Msg::Ack { stored, duplicates } => {
                    assert_eq!(stored, 2, "a late completion was lost");
                    assert_eq!(duplicates, 0);
                }
                other => panic!("expected an ack, got {other:?}"),
            }
        }
        match victim.roundtrip(&Msg::Shutdown) {
            Msg::Ack { .. } => {}
            other => panic!("expected a shutdown ack, got {other:?}"),
        }
    });
    assert!(summary.complete(), "grid incomplete: {summary:?}");
    assert_eq!(summary.telemetry.executed, 4);
    assert_eq!(summary.telemetry.duplicates, 0);
    assert_eq!(
        summary.telemetry.releases, 4,
        "the fetch path did not reap the expired leases"
    );
    assert_eq!(summary.telemetry.active_leases, 0);
    assert_eq!(store.len(), 4);
}

/// A worker-reported panic re-leases the job with the structured reason
/// attached to telemetry; the grid still completes.
#[test]
fn structured_failure_is_re_leased_with_reason() {
    let spec = grid();
    let tmp = TempStore::new("failure");
    let store = tmp.open();
    let summary = serve_while(&spec, &store, &coord_opts(), |addr| {
        let mut flaky = RawPeer::connect(addr, "flaky");
        let (lease, jobs) = flaky.lease(1);
        let failures = jobs
            .iter()
            .map(|&spec| JobFailure::panic(spec, "injected crash".to_string()))
            .collect();
        match flaky.roundtrip(&Msg::Failed { lease, failures }) {
            Msg::Ack { .. } => {}
            other => panic!("expected an ack, got {other:?}"),
        }
        run_worker(addr, &quiet("healthy")).expect("healthy worker");
    });
    assert!(summary.complete(), "the failed job was never re-leased");
    assert_eq!(summary.telemetry.executed, 4);
    assert_eq!(store.len(), 4);
    let note = summary
        .telemetry
        .failures
        .iter()
        .find(|f| f.message == "injected crash")
        .expect("structured failure reason in telemetry");
    assert_eq!(note.kind, valley_harness::FailureKind::Panic);
    let flaky = summary
        .telemetry
        .workers
        .iter()
        .find(|w| w.name == "flaky")
        .expect("flaky worker in telemetry");
    assert_eq!(flaky.failed, 1);
}

/// A job that fails deterministically on every attempt is declared dead
/// after `max_attempts` instead of re-leasing forever; the rest of the
/// grid still completes and the serve reports the dead job.
#[test]
fn deterministic_failure_dies_after_max_attempts() {
    let spec = grid();
    let tmp = TempStore::new("dead");
    let store = tmp.open();
    let opts = CoordOptions {
        max_attempts: 2,
        ..coord_opts()
    };
    let summary = serve_while(&spec, &store, &opts, |addr| {
        let mut flaky = RawPeer::connect(addr, "flaky");
        let (mut lease, jobs) = flaky.lease(1);
        let poisoned = jobs[0];
        for attempt in 0..2 {
            let failures = vec![JobFailure::panic(poisoned, "always crashes".to_string())];
            match flaky.roundtrip(&Msg::Failed { lease, failures }) {
                Msg::Ack { .. } => {}
                other => panic!("expected an ack, got {other:?}"),
            }
            if attempt == 0 {
                // Re-lease the same job (it went back to the queue
                // front) and fail it a second, final time.
                let (release, rejobs) = flaky.lease(1);
                assert_eq!(rejobs, jobs, "the failed job was not re-leased first");
                lease = release;
            }
        }
        run_worker(addr, &quiet("healthy")).expect("healthy worker");
    });
    assert!(!summary.complete(), "a dead job must fail the serve");
    assert_eq!(summary.dead.len(), 1);
    assert_eq!(summary.dead[0].message, "always crashes");
    // The other three jobs all made it into the store.
    assert_eq!(summary.telemetry.executed, 3);
    assert_eq!(store.len(), 3);
}
