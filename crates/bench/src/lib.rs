//! # valley-bench
//!
//! The experiment harness: shared driver code used by the per-figure
//! binaries in `src/bin/` (one per table/figure of the paper) and by the
//! Criterion micro-benchmarks in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;

use std::collections::BTreeMap;
use valley_core::{AddressMapper, GddrMap, SchemeKind, StackedMap};
use valley_sim::{GpuConfig, GpuSim, SimReport};
use valley_workloads::{Benchmark, Scale};

/// The BIM seed used for the headline results (the paper generates three
/// random BIMs per scheme and reports the best; Figure 19 shows the
/// spread — regenerate it with `fig19_bim_sensitivity`).
pub const DEFAULT_SEED: u64 = 1;

/// Runs one (benchmark, scheme) simulation on the baseline GDDR5 GPU.
pub fn run_one(bench: Benchmark, scheme: SchemeKind, seed: u64, scale: Scale) -> SimReport {
    run_one_with(bench, scheme, seed, scale, GpuConfig::table1())
}

/// Runs one simulation with an explicit GPU configuration (SM sweeps).
pub fn run_one_with(
    bench: Benchmark,
    scheme: SchemeKind,
    seed: u64,
    scale: Scale,
    cfg: GpuConfig,
) -> SimReport {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, seed);
    let sim = GpuSim::new(cfg, mapper, map, Box::new(bench.workload(scale)));
    sim.run()
}

/// Runs one simulation with an explicit, possibly hand-built mapper
/// (ablations: density-constrained or profile-guided BIMs).
pub fn run_custom(
    bench: Benchmark,
    mapper: AddressMapper,
    cfg: GpuConfig,
    scale: Scale,
) -> SimReport {
    let map = GddrMap::baseline();
    GpuSim::new(cfg, mapper, map, Box::new(bench.workload(scale))).run()
}

/// Runs one simulation on the 3D-stacked memory configuration
/// (Figure 18, rightmost group).
pub fn run_one_stacked(bench: Benchmark, scheme: SchemeKind, seed: u64, scale: Scale) -> SimReport {
    let map = StackedMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, seed);
    let sim = GpuSim::new(
        GpuConfig::stacked(),
        mapper,
        map,
        Box::new(bench.workload(scale)),
    );
    sim.run()
}

/// A suite of simulation results keyed by (benchmark, scheme).
pub type Suite = BTreeMap<(Benchmark, SchemeKind), SimReport>;

/// Runs the cross product of `benches × schemes` on a thread pool (each
/// simulation is independent), printing progress and per-job wall time to
/// stderr.
///
/// A panicking simulation does not take the suite down or silently drop
/// its job: every worker catches panics, the survivors keep draining the
/// queue, and the collected failures are reported together at the end.
///
/// # Panics
///
/// Panics after all jobs have been attempted if any simulation panicked,
/// with a summary naming every failed (benchmark, scheme) pair — a suite
/// with holes would silently skew every downstream figure.
pub fn run_suite(benches: &[Benchmark], schemes: &[SchemeKind], scale: Scale) -> Suite {
    let jobs: Vec<(Benchmark, SchemeKind)> = benches
        .iter()
        .flat_map(|&b| schemes.iter().map(move |&s| (b, s)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Suite::new());
    let failures = std::sync::Mutex::new(Vec::<String>::new());
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len())
        .max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(b, s)) = jobs.get(i) else { break };
                eprintln!("  running {b} / {s} ...");
                let start = std::time::Instant::now();
                match std::panic::catch_unwind(|| run_one(b, s, DEFAULT_SEED, scale)) {
                    Ok(r) => {
                        eprintln!("    {b}/{s} finished in {:.2?}", start.elapsed());
                        if r.truncated {
                            eprintln!("    WARNING: {b}/{s} hit the cycle limit");
                        }
                        results
                            .lock()
                            .expect("no panics while holding the lock")
                            .insert((b, s), r);
                    }
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|m| (*m).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        eprintln!(
                            "    ERROR: {b}/{s} panicked after {:.2?}: {msg}",
                            start.elapsed()
                        );
                        failures
                            .lock()
                            .expect("no panics while holding the lock")
                            .push(format!("{b}/{s}: {msg}"));
                    }
                }
            });
        }
    });
    let failures = failures.into_inner().expect("all workers joined");
    assert!(
        failures.is_empty(),
        "{} of {} suite jobs panicked:\n  {}",
        failures.len(),
        jobs.len(),
        failures.join("\n  ")
    );
    results.into_inner().expect("all workers joined")
}

/// The six schemes in the paper's presentation order.
pub fn all_schemes() -> Vec<SchemeKind> {
    SchemeKind::ALL_SCHEMES.to_vec()
}

/// Speedup of `scheme` over BASE for `bench` within a suite.
///
/// # Panics
///
/// Panics if either run is missing from the suite.
pub fn speedup(suite: &Suite, bench: Benchmark, scheme: SchemeKind) -> f64 {
    let base = &suite[&(bench, SchemeKind::Base)];
    suite[&(bench, scheme)].speedup_over(base)
}

/// Arithmetic mean.
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Harmonic mean (the paper's HMEAN for speedups).
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        0.0
    } else {
        xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
    }
}

/// Renders one row of a fixed-width table.
pub fn row(label: &str, values: &[f64], width: usize, precision: usize) -> String {
    let mut s = format!("{label:<10}");
    for v in values {
        s.push_str(&format!("{v:>width$.precision$}"));
    }
    s
}

/// Prints a header row for a scheme-column table.
pub fn scheme_header(label: &str, schemes: &[SchemeKind], width: usize) -> String {
    let mut s = format!("{label:<10}");
    for sc in schemes {
        s.push_str(&format!("{:>width$}", sc.label()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((hmean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(hmean(&[2.0, 2.0]) > 1.99);
        assert_eq!(hmean(&[]), 0.0);
        assert_eq!(hmean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn formatting() {
        let h = scheme_header("bench", &[SchemeKind::Base, SchemeKind::Pae], 8);
        assert!(h.contains("BASE") && h.contains("PAE"));
        let r = row("MT", &[1.0, 2.5], 8, 2);
        assert!(r.contains("1.00") && r.contains("2.50"));
    }

    #[test]
    fn smoke_run_tiny_sim() {
        // An end-to-end run of the smallest benchmark at test scale.
        let r = run_one(Benchmark::Sp, SchemeKind::Base, 1, Scale::Test);
        assert!(!r.truncated, "tiny run must terminate");
        assert!(r.cycles > 0);
        assert!(r.memory_transactions > 0);
        assert!(r.warp_instructions > 0);
    }
}
