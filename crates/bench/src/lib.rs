//! # valley-bench
//!
//! The experiment layer: shared figure printers used by the per-figure
//! binaries in `src/bin/` (one per table/figure of the paper) and by the
//! Criterion micro-benchmarks in `benches/`.
//!
//! Since the `valley-harness` refactor this crate is a *thin consumer*
//! of the sweep engine: [`run_suite`] builds a
//! [`SweepSpec`](valley_harness::SweepSpec), hands it to
//! [`valley_harness::run_sweep`], and returns cached
//! [`SimReport`]s — the ad-hoc thread-pool driver that used to live here
//! is gone. Every figure binary therefore resumes from the persistent
//! result store under `results/` (override with `$VALLEY_RESULTS_DIR`):
//! the first binary to need a (benchmark, scheme) simulation pays for
//! it, every later one is a pure cache read.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;

use std::collections::BTreeMap;
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_harness::{
    execute_job, run_sweep, ConfigId, JobSpec, ResultStore, SweepOptions, SweepSpec,
};
use valley_sim::{GpuConfig, GpuSim, SimReport};
use valley_workloads::{Benchmark, Scale};

pub use valley_harness::util::{amean, hmean, row, scheme_header};
pub use valley_harness::DEFAULT_SEED;

/// Runs one (benchmark, scheme) simulation on the baseline GDDR5 GPU.
/// Direct execution — no store involved; sweeps should use [`run_suite`].
pub fn run_one(bench: Benchmark, scheme: SchemeKind, seed: u64, scale: Scale) -> SimReport {
    execute_job(&JobSpec {
        bench,
        scheme,
        seed,
        scale,
        config: ConfigId::Table1,
    })
}

/// Runs one simulation with an explicit GPU configuration (SM sweeps).
pub fn run_one_with(
    bench: Benchmark,
    scheme: SchemeKind,
    seed: u64,
    scale: Scale,
    cfg: GpuConfig,
) -> SimReport {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, seed);
    let sim = GpuSim::new(cfg, mapper, map, Box::new(bench.workload(scale)));
    sim.run()
}

/// Runs one simulation with an explicit, possibly hand-built mapper
/// (ablations: density-constrained or profile-guided BIMs).
pub fn run_custom(
    bench: Benchmark,
    mapper: AddressMapper,
    cfg: GpuConfig,
    scale: Scale,
) -> SimReport {
    let map = GddrMap::baseline();
    GpuSim::new(cfg, mapper, map, Box::new(bench.workload(scale))).run()
}

/// Runs one simulation on the 3D-stacked memory configuration
/// (Figure 18, rightmost group).
pub fn run_one_stacked(bench: Benchmark, scheme: SchemeKind, seed: u64, scale: Scale) -> SimReport {
    execute_job(&JobSpec {
        bench,
        scheme,
        seed,
        scale,
        config: ConfigId::Stacked,
    })
}

/// A suite of simulation results keyed by (benchmark, scheme).
pub type Suite = BTreeMap<(Benchmark, SchemeKind), SimReport>;

/// Runs the cross product of `benches × schemes` through the sweep
/// harness against the default result store ([`default_results_dir`]):
/// already-stored jobs are served from disk, the rest run in parallel on
/// the work-stealing pool with per-job panic isolation, and every fresh
/// result is persisted for the next consumer.
///
/// # Panics
///
/// Panics after all jobs have been attempted if any simulation panicked
/// (naming every failed pair — a suite with holes would silently skew
/// every downstream figure), or if the result store cannot be
/// opened/written.
pub fn run_suite(benches: &[Benchmark], schemes: &[SchemeKind], scale: Scale) -> Suite {
    let dir = valley_harness::default_results_dir();
    let store = ResultStore::open(&dir)
        .unwrap_or_else(|e| panic!("cannot open result store {}: {e}", dir.display()));
    run_suite_with_store(benches, schemes, scale, &store)
}

/// Runs an arbitrary [`SweepSpec`] — any benchmarks × schemes × seeds ×
/// configs grid — through the sweep harness against the default result
/// store, returning per-job outcomes in expansion order. This is what
/// the sensitivity figures (fig18's SM-count/3D-stacked grid, fig19's
/// multi-seed BIM grid) use so their points are cached like every other
/// experiment instead of silently re-simulating on each invocation.
///
/// # Panics
///
/// Panics if any job fails or the store cannot be opened/written (same
/// contract as [`run_suite`]).
pub fn run_spec(spec: &SweepSpec) -> Vec<valley_harness::JobOutcome> {
    let dir = valley_harness::default_results_dir();
    let store = ResultStore::open(&dir)
        .unwrap_or_else(|e| panic!("cannot open result store {}: {e}", dir.display()));
    run_spec_with_store(spec, &store)
}

/// [`run_spec`] against an already-open store — callers running several
/// specs (fig19's BASE reference + multi-seed grid) open and parse the
/// shards once instead of once per spec.
///
/// # Panics
///
/// Same contract as [`run_spec`].
pub fn run_spec_with_store(
    spec: &SweepSpec,
    store: &ResultStore,
) -> Vec<valley_harness::JobOutcome> {
    // batch: 0 defers to $VALLEY_SIM_BATCH — figure-driving sweeps
    // batch when the environment asks, exactly like VALLEY_SIM_THREADS.
    let opts = SweepOptions {
        workers: None,
        verbose: true,
        force: false,
        batch: 0,
    };
    match run_sweep(spec, store, &opts) {
        Ok(outcome) => outcome.jobs,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_suite`] against an explicit store (tests, scratch sweeps).
///
/// # Panics
///
/// Same contract as [`run_suite`].
pub fn run_suite_with_store(
    benches: &[Benchmark],
    schemes: &[SchemeKind],
    scale: Scale,
    store: &ResultStore,
) -> Suite {
    let spec = SweepSpec::new(benches, schemes, scale);
    // batch: 0 defers to $VALLEY_SIM_BATCH — figure-driving sweeps
    // batch when the environment asks, exactly like VALLEY_SIM_THREADS.
    let opts = SweepOptions {
        workers: None,
        verbose: true,
        force: false,
        batch: 0,
    };
    match run_sweep(&spec, store, &opts) {
        Ok(outcome) => outcome
            .jobs
            .into_iter()
            .map(|j| ((j.spec.bench, j.spec.scheme), j.report))
            .collect(),
        Err(e) => panic!("{e}"),
    }
}

/// The six schemes in the paper's presentation order.
pub fn all_schemes() -> Vec<SchemeKind> {
    SchemeKind::ALL_SCHEMES.to_vec()
}

/// Speedup of `scheme` over BASE for `bench` within a suite.
///
/// # Panics
///
/// Panics if either run is missing from the suite.
pub fn speedup(suite: &Suite, bench: Benchmark, scheme: SchemeKind) -> f64 {
    let base = &suite[&(bench, SchemeKind::Base)];
    suite[&(bench, scheme)].speedup_over(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_tiny_sim() {
        // An end-to-end run of the smallest benchmark at test scale.
        let r = run_one(Benchmark::Sp, SchemeKind::Base, 1, Scale::Test);
        assert!(!r.truncated, "tiny run must terminate");
        assert!(r.cycles > 0);
        assert!(r.memory_transactions > 0);
        assert!(r.warp_instructions > 0);
    }

    #[test]
    fn run_one_matches_harness_execution_exactly() {
        // `run_one` is a thin wrapper over `execute_job`; the two paths
        // must stay bit-identical or cached suite results would diverge
        // from direct runs.
        let direct = run_one(Benchmark::Sp, SchemeKind::Pae, DEFAULT_SEED, Scale::Test);
        let via_harness = execute_job(&JobSpec {
            bench: Benchmark::Sp,
            scheme: SchemeKind::Pae,
            seed: DEFAULT_SEED,
            scale: Scale::Test,
            config: ConfigId::Table1,
        });
        assert_eq!(direct, via_harness);
    }
}
