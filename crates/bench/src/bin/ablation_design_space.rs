//! Ablation: the Broad-BIM design space beyond the paper.
//!
//! (a) **Input density** — how many page-address bits each channel/bank
//!     output row XORs together. The paper samples each input with
//!     probability 1/2 (expected 9 of 18); here we pin the row weight to
//!     2/4/6/9/12/18 and measure both the speedup and the XOR-gate cost,
//!     exposing the robustness-vs-hardware-cost trade-off behind the
//!     paper's "harvest entropy from broad ranges" argument.
//!
//! (b) **Profile-guided harvesting** — an extension: include each input
//!     bit with probability proportional to its *measured* window entropy
//!     instead of uniformly. With enough density the uniform scheme
//!     already saturates, so guidance mainly helps at low densities.

use valley_bench::{hmean, run_custom, run_one, DEFAULT_SEED};
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_sim::GpuConfig;
use valley_workloads::{analysis, Benchmark, Scale};

const SUBSET: [Benchmark; 3] = [Benchmark::Mt, Benchmark::Nw, Benchmark::Sp];

fn main() {
    let map = GddrMap::baseline();
    let mut base_cycles = std::collections::BTreeMap::new();
    for b in SUBSET {
        eprintln!("  BASE / {b} ...");
        base_cycles.insert(b, run_one(b, SchemeKind::Base, 0, Scale::Ref).cycles);
    }
    let speedup_of = |mapper: AddressMapper| {
        let gates = mapper.bim().xor_gate_count();
        let mut speedups = Vec::new();
        for b in SUBSET {
            let r = run_custom(b, mapper.clone(), GpuConfig::table1(), Scale::Ref);
            speedups.push(base_cycles[&b] as f64 / r.cycles as f64);
        }
        (hmean(&speedups), gates)
    };

    println!("Ablation (a): PAE input density (subset: MT, NW, SP)");
    println!("{:<10}{:>10}{:>12}", "density", "speedup", "XOR gates");
    for density in [2usize, 4, 6, 9, 12, 17] {
        eprintln!("  density {density} ...");
        let (s, g) = speedup_of(AddressMapper::pae_with_density(&map, DEFAULT_SEED, density));
        println!("{:<10}{:>10.2}{:>12}", density, s, g);
    }
    let (s, g) = speedup_of(AddressMapper::build(SchemeKind::Pae, &map, DEFAULT_SEED));
    println!("{:<10}{:>10.2}{:>12}", "paper", s, g);

    println!("\nAblation (b): profile-guided vs uniform harvesting");
    println!("{:<22}{:>10}{:>12}", "variant", "speedup", "XOR gates");
    // Derive per-bit weights from the subset's aggregate BASE profiles.
    let profiles: Vec<_> = SUBSET
        .iter()
        .map(|b| analysis::application_profile(&b.workload(Scale::Ref), 12, None))
        .collect();
    let global = valley_core::entropy::global_mean_profile(&profiles);
    for (name, mapper) in [
        (
            "uniform PAE",
            AddressMapper::build(SchemeKind::Pae, &map, DEFAULT_SEED),
        ),
        (
            "guided PAE",
            AddressMapper::guided(SchemeKind::Pae, &map, global.per_bit(), DEFAULT_SEED),
        ),
        (
            "uniform FAE",
            AddressMapper::build(SchemeKind::Fae, &map, DEFAULT_SEED),
        ),
        (
            "guided FAE",
            AddressMapper::guided(SchemeKind::Fae, &map, global.per_bit(), DEFAULT_SEED),
        ),
    ] {
        eprintln!("  {name} ...");
        let (s, g) = speedup_of(mapper);
        println!("{:<22}{:>10.2}{:>12}", name, s, g);
    }
}
