//! Figure 14: memory-level parallelism under the six mapping schemes —
//! (a) LLC-level, (b) channel-level, (c) bank-level (per channel).
//!
//! Paper shape: PAE/FAE/ALL raise all three; the total outstanding
//! parallelism is the product of (b) and (c).

use valley_bench::{all_schemes, figures, run_suite};
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::VALLEY, &all_schemes(), Scale::Ref);
    figures::fig14(&suite);
}
