//! Table II: workload characterization — LLC APKI, LLC MPKI, kernel
//! count and dynamic instruction count under the BASE mapping, next to
//! the paper's reported values (our traces are scaled; see DESIGN.md).

use valley_bench::{run_one, DEFAULT_SEED};
use valley_core::SchemeKind;
use valley_workloads::{Benchmark, Scale};

/// (paper APKI, paper MPKI, paper #kernels, paper #insns in billions).
fn paper_row(b: Benchmark) -> (f64, f64, u64, f64) {
    match b {
        Benchmark::Mt => (7.44, 5.69, 4, 0.19),
        Benchmark::Lu => (12.32, 1.97, 1022, 2.22),
        Benchmark::Gs => (9.09, 0.01, 510, 0.43),
        Benchmark::Nw => (5.25, 5.12, 255, 0.21),
        Benchmark::Lps => (2.27, 1.66, 2, 2.33),
        Benchmark::Sc => (4.24, 3.58, 50, 1.71),
        Benchmark::Srad2 => (3.29, 1.85, 4, 2.43),
        Benchmark::Dwt2d => (1.56, 1.21, 10, 0.33),
        Benchmark::Hs => (0.71, 0.08, 1, 1.3),
        Benchmark::Sp => (2.17, 2.16, 1, 0.12),
        Benchmark::Fwt => (2.69, 1.38, 22, 4.38),
        Benchmark::Nn => (2.33, 0.2, 4, 0.31),
        Benchmark::Spmv => (5.95, 2.75, 50, 0.19),
        Benchmark::Lm => (18.23, 0.01, 1, 2.11),
        Benchmark::Mum => (25.63, 22.53, 2, 0.23),
        Benchmark::Bfs => (26.92, 18.14, 24, 0.46),
    }
}

fn main() {
    println!("Table II: workload characterization (BASE mapping, Ref scale)");
    println!(
        "{:<8}{:>9}{:>9}{:>7}{:>10}   |{:>9}{:>9}{:>7}{:>9}",
        "bench", "APKI", "MPKI", "#knls", "#insns", "paper", "paper", "paper", "paper"
    );
    println!(
        "{:<8}{:>9}{:>9}{:>7}{:>10}   |{:>9}{:>9}{:>7}{:>9}",
        "", "", "", "", "(M)", "APKI", "MPKI", "#knls", "#insns(B)"
    );
    for b in Benchmark::ALL {
        eprintln!("  characterizing {b} ...");
        let r = run_one(b, SchemeKind::Base, DEFAULT_SEED, Scale::Ref);
        let (papki, pmpki, pknls, pinsns) = paper_row(b);
        println!(
            "{:<8}{:>9.2}{:>9.2}{:>7}{:>10.2}   |{:>9.2}{:>9.2}{:>7}{:>9.2}",
            b.label(),
            r.apki(),
            r.mpki(),
            r.kernels,
            r.thread_instructions as f64 / 1e6,
            papki,
            pmpki,
            pknls,
            pinsns
        );
    }
    println!("\n(traces are scaled: absolute counts differ; the memory-intensity");
    println!(" ordering and valley/non-valley split are the reproduced properties)");
}
