//! Figure 10: MT's entropy distribution under the six address mapping
//! schemes. PAE and FAE must remove the valley in the channel/bank bits
//! (8–13); ALL additionally raises the row/column bits.

use valley_bench::DEFAULT_SEED;
use valley_core::{AddressMapper, DramAddressMap, GddrMap, SchemeKind};
use valley_workloads::{analysis, Benchmark, Scale};

fn main() {
    let window = 12;
    let map = GddrMap::baseline();
    let targets = map.target_field_bits();
    let mt = Benchmark::Mt.workload(Scale::Ref);

    println!("Figure 10: MT entropy under the six mapping schemes (w = {window})");
    println!("bits 29 (left) .. 6 (right); bank+channel bits are 8-13\n");

    for kind in SchemeKind::ALL_SCHEMES {
        let mapper = AddressMapper::build(kind, &map, DEFAULT_SEED);
        let p = analysis::application_profile(&mt, window, Some(&mapper));
        println!(
            "--- {} (mean H* over ch/bank bits: {:.2})",
            kind.label(),
            p.mean_over(&targets)
        );
        print!("{}", p.ascii_chart(6, 29));
        println!();
    }

    // The paper's qualitative claim, as a check: PAE and FAE lift the
    // valley that BASE/PM/RMP leave in the target bits.
    let mean_for = |kind: SchemeKind| {
        let mapper = AddressMapper::build(kind, &map, DEFAULT_SEED);
        analysis::application_profile(&mt, window, Some(&mapper)).mean_over(&targets)
    };
    let base = mean_for(SchemeKind::Base);
    let pae = mean_for(SchemeKind::Pae);
    let fae = mean_for(SchemeKind::Fae);
    println!("mean target-bit entropy: BASE {base:.2} -> PAE {pae:.2}, FAE {fae:.2}");
    assert!(pae > base + 0.2, "PAE must lift the valley");
    assert!(fae > base + 0.2, "FAE must lift the valley");
}
