//! Figure 15: DRAM row-buffer hit rate under the six mapping schemes.
//!
//! Paper shape: PAE achieves the highest hit rate (it balances load while
//! keeping same-row requests in the same bank); FAE and ALL degrade
//! locality by scattering column-bit-differing (same-row) requests to
//! different banks.

use valley_bench::{all_schemes, figures, run_suite};
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::VALLEY, &all_schemes(), Scale::Ref);
    figures::fig15(&suite);
    println!("\npaper shape: PAE has the highest average hit rate; FAE/ALL degrade it");
}
