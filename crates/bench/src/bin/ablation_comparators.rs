//! Ablation: extra Remap-strategy comparators from the related work.
//!
//! * **MOP** — minimalist open-page (Kaseridis et al.), the paper's cited
//!   Remap instance: channel/bank bits move just above the block offset.
//!   Great for streaming (CPU-style) access; on GPU valley workloads the
//!   bits it promotes are often as starved as the originals.
//! * **RMP-profile** — RMP re-derived from *this suite's* measured global
//!   entropy profile instead of the paper's fixed bits 8-11/15/16,
//!   showing how fragile static remapping is to the profiling set.

use valley_bench::{hmean, run_custom, run_one, DEFAULT_SEED};
use valley_core::{AddressMapper, DramAddressMap, GddrMap, SchemeKind};
use valley_sim::GpuConfig;
use valley_workloads::{analysis, Benchmark, Scale};

const SUBSET: [Benchmark; 4] = [
    Benchmark::Mt,
    Benchmark::Nw,
    Benchmark::Srad2,
    Benchmark::Sp,
];

fn main() {
    let map = GddrMap::baseline();
    let mut base_cycles = std::collections::BTreeMap::new();
    for b in SUBSET {
        eprintln!("  BASE / {b} ...");
        base_cycles.insert(b, run_one(b, SchemeKind::Base, 0, Scale::Ref).cycles);
    }
    let eval = |name: &str, mapper: AddressMapper| {
        let mut speedups = Vec::new();
        for b in SUBSET {
            eprintln!("  {name} / {b} ...");
            let r = run_custom(b, mapper.clone(), GpuConfig::table1(), Scale::Ref);
            speedups.push(base_cycles[&b] as f64 / r.cycles as f64);
        }
        println!("{:<14}{:>10.2}", name, hmean(&speedups));
    };

    // Derive this suite's own global-entropy hot bits for RMP.
    let profiles: Vec<_> = SUBSET
        .iter()
        .map(|b| analysis::application_profile(&b.workload(Scale::Ref), 12, None))
        .collect();
    let global = valley_core::entropy::global_mean_profile(&profiles);
    let hot = global.top_bits(&map.non_block_bits(), map.target_field_bits().len());
    println!("suite-derived RMP hot bits: {hot:?} (paper used 8-11, 15, 16)\n");

    println!("{:<14}{:>10}", "scheme", "HMEAN");
    eval("MOP", AddressMapper::minimalist_open_page(&map));
    eval("RMP-paper", AddressMapper::build(SchemeKind::Rmp, &map, 0));
    eval("RMP-profile", AddressMapper::rmp_from_hot_bits(&map, &hot));
    eval("PM", AddressMapper::build(SchemeKind::Pm, &map, 0));
    eval(
        "PAE",
        AddressMapper::build(SchemeKind::Pae, &map, DEFAULT_SEED),
    );
    println!("\nexpected: all static remaps trail PAE; a better profile helps RMP");
    println!("but cannot adapt to per-application valleys (the paper's argument).");
}
