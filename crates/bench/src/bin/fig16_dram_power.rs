//! Figure 16: DRAM power breakdown (background / activate / read / write)
//! under the six mapping schemes.
//!
//! Paper shape: address mapping primarily moves the **activate**
//! component; FAE and ALL increase it substantially, PAE stays near BASE.

use valley_bench::{all_schemes, figures, run_suite};
use valley_power::DramPowerModel;
use valley_workloads::{Benchmark, Scale};

fn main() {
    let schemes = all_schemes();
    let suite = run_suite(&Benchmark::VALLEY, &schemes, Scale::Ref);
    figures::fig16(&suite);

    println!("\nper-benchmark activate power (Watts):");
    let model = DramPowerModel::gddr5();
    print!("{:<8}", "bench");
    for &s in &schemes {
        print!("{:>8}", s.label());
    }
    println!();
    for b in Benchmark::VALLEY {
        print!("{:<8}", b.label());
        for &s in &schemes {
            print!("{:>8.1}", model.evaluate(&suite[&(b, s)]).activate);
        }
        println!();
    }
}
