//! Ablation: sensitivity of the window-based entropy metric to the
//! window size `w` (Section III-A sets `w` = the SM count, arguing the
//! GTO scheduler keeps roughly one TB per SM issuing concurrently).
//!
//! Sweeping `w` on MT shows the Figure-3 effect at application scale: a
//! too-small window under-reports inter-TB entropy; past the level of
//! real TB concurrency the profile saturates.

use valley_core::DramAddressMap;
use valley_workloads::{analysis, Benchmark, Scale};

fn main() {
    let map = valley_core::GddrMap::baseline();
    let targets = map.target_field_bits();
    let candidates = map.non_block_bits();

    println!("Entropy-window ablation (MT, BASE map)");
    println!(
        "{:<8}{:>18}{:>16}{:>10}",
        "window", "H*(ch/bank bits)", "valley score", "valley?"
    );
    for w in [1usize, 2, 4, 8, 12, 16, 24, 48] {
        let mt = Benchmark::Mt.workload(Scale::Ref);
        let p = analysis::application_profile(&mt, w, None);
        println!(
            "{:<8}{:>18.3}{:>16.2}{:>10}",
            w,
            p.mean_over(&targets),
            p.valley_score(&targets, &candidates),
            if p.has_valley(&targets, &candidates, 0.25) {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("\npaper: w = #SMs (12) under GTO; larger windows raise measured");
    println!("inter-TB entropy (Figure 3's w=2 vs w=4 example at benchmark scale)");
}
