//! Ablation: LLC write policy (write-through vs write-back).
//!
//! This reproduction's baseline LLC is write-through/no-allocate, which
//! forwards every store to DRAM (DESIGN.md §2.6 flags the resulting DRAM
//! write inflation). A write-back/write-validate LLC filters repeated
//! stores but emits dirty-eviction writebacks. The interesting question
//! for the paper's thesis: does the mapping-scheme ordering survive the
//! policy change? (It should — the valley is in the *addresses*, not in
//! the write policy.)

use valley_bench::{hmean, run_custom, DEFAULT_SEED};
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_power::DramPowerModel;
use valley_sim::{GpuConfig, LlcWritePolicy};
use valley_workloads::{Benchmark, Scale};

const SUBSET: [Benchmark; 3] = [Benchmark::Mt, Benchmark::Srad2, Benchmark::Dwt2d];

fn main() {
    let map = GddrMap::baseline();
    let model = DramPowerModel::gddr5();

    println!("Ablation: LLC write policy (subset: MT, SRAD2, DWT2D — store-heavy)\n");
    println!(
        "{:<15}{:<8}{:>12}{:>14}{:>14}",
        "LLC policy", "scheme", "HMEAN spd", "DRAM writes", "DRAM power W"
    );
    for (policy, pname) in [
        (LlcWritePolicy::WriteThrough, "write-through"),
        (LlcWritePolicy::WriteBack, "write-back"),
    ] {
        let cfg = GpuConfig::table1().with_llc_write_policy(policy);
        let mut base_cycles = std::collections::BTreeMap::new();
        for b in SUBSET {
            eprintln!("  {pname} / BASE / {b} ...");
            let r = run_custom(
                b,
                AddressMapper::build(SchemeKind::Base, &map, 0),
                cfg.clone(),
                Scale::Ref,
            );
            base_cycles.insert(b, r.cycles);
        }
        for scheme in [
            SchemeKind::Base,
            SchemeKind::Pm,
            SchemeKind::Pae,
            SchemeKind::Fae,
        ] {
            let mut speedups = Vec::new();
            let mut writes = 0u64;
            let mut power = Vec::new();
            for b in SUBSET {
                eprintln!("  {pname} / {scheme} / {b} ...");
                let r = run_custom(
                    b,
                    AddressMapper::build(scheme, &map, DEFAULT_SEED),
                    cfg.clone(),
                    Scale::Ref,
                );
                speedups.push(base_cycles[&b] as f64 / r.cycles as f64);
                writes += r.dram.writes;
                power.push(model.evaluate(&r).total());
            }
            println!(
                "{:<15}{:<8}{:>12.2}{:>14}{:>14.1}",
                pname,
                scheme.label(),
                hmean(&speedups),
                writes,
                power.iter().sum::<f64>() / power.len() as f64
            );
        }
    }
    println!("\nexpected: write-back cuts DRAM writes; PAE > PM > BASE under both policies");
}
