//! Ablation: substrate-policy orthogonality.
//!
//! The paper argues address mapping is orthogonal to memory-request
//! scheduling (Section VII) and ties its entropy-window heuristic to GTO
//! warp scheduling (Section III-A). This ablation swaps both substrate
//! policies and checks that the PAE-over-BASE gain survives:
//!
//! * warp scheduler: GTO (paper) vs loose round-robin (LRR);
//! * DRAM scheduler: FR-FCFS (paper) vs plain FCFS.

use valley_bench::{hmean, run_custom, DEFAULT_SEED};
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_dram::SchedulingPolicy;
use valley_sim::{GpuConfig, WarpScheduler};
use valley_workloads::{Benchmark, Scale};

const SUBSET: [Benchmark; 3] = [Benchmark::Mt, Benchmark::Srad2, Benchmark::Sp];

fn run_pair(warp: WarpScheduler, dram: SchedulingPolicy) -> (f64, f64) {
    let map = GddrMap::baseline();
    let mut cfg = GpuConfig::table1().with_scheduler(warp);
    cfg.dram.policy = dram;
    let mut speedups = Vec::new();
    let mut hitrates = Vec::new();
    for b in SUBSET {
        let base = run_custom(
            b,
            AddressMapper::build(SchemeKind::Base, &map, 0),
            cfg.clone(),
            Scale::Ref,
        );
        let pae = run_custom(
            b,
            AddressMapper::build(SchemeKind::Pae, &map, DEFAULT_SEED),
            cfg.clone(),
            Scale::Ref,
        );
        speedups.push(pae.speedup_over(&base));
        hitrates.push(pae.row_buffer_hit_rate());
    }
    (
        hmean(&speedups),
        hitrates.iter().sum::<f64>() / hitrates.len() as f64,
    )
}

fn main() {
    println!("Ablation: PAE speedup over BASE under substrate-policy swaps");
    println!("(subset: MT, SRAD2, SP)\n");
    println!(
        "{:<12}{:<12}{:>14}{:>18}",
        "warp sched", "DRAM sched", "PAE speedup", "PAE row-hit rate"
    );
    for (w, wname) in [(WarpScheduler::Gto, "GTO"), (WarpScheduler::Lrr, "LRR")] {
        for (d, dname) in [
            (SchedulingPolicy::FrFcfs, "FR-FCFS"),
            (SchedulingPolicy::Fcfs, "FCFS"),
        ] {
            eprintln!("  {wname} + {dname} ...");
            let (s, hr) = run_pair(w, d);
            println!("{:<12}{:<12}{:>14.2}{:>17.1}%", wname, dname, s, hr * 100.0);
        }
    }
    println!("\nexpected: the mapping gain survives every combination (orthogonality);");
    println!("FCFS shows lower row-hit rates (no row-hit-first reordering).");
}
