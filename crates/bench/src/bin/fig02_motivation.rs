//! Figure 2 / Section II worked example: row-major vs column-major TB
//! allocation, the DRAM channel distribution each produces, the
//! state-of-the-art PM scheme's partial fix, and the Broad BIM's perfect
//! channel balance.

use valley_core::Bim;

/// The 6-bit example address map: the two LSBs select the channel.
fn channel(addr: u64) -> usize {
    (addr & 0b11) as usize
}

fn distribution(label: &str, addrs: &[u64], xform: &Bim) {
    let mut chans = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (i, &a) in addrs.iter().enumerate() {
        chans[channel(xform.apply(a))].push(i + 1);
    }
    println!("{label}:");
    for (c, reqs) in chans.iter().enumerate() {
        let reqs = if reqs.is_empty() {
            "None".to_string()
        } else {
            reqs.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        println!("  Ch. {c}: {reqs}");
    }
}

fn main() {
    // Figure 2c: TB-RM2 walks consecutive addresses; TB-CM0 strides by 8
    // elements (the column-major first TB).
    let tb_rm2: Vec<u64> = (16..24).collect();
    let tb_cm0: Vec<u64> = (0..8).map(|i| i * 8).collect();

    let identity = Bim::identity(6);
    distribution("TB-RM2 (row-major), BASE", &tb_rm2, &identity);
    distribution("TB-CM0 (column-major), BASE", &tb_cm0, &identity);

    // Figure 2c's PM matrix: channel bits XORed with one row bit each
    // (bit0 <- bit0 ^ bit3, bit1 <- bit1 ^ bit4).
    let mut pm = Bim::identity(6);
    pm.set_row(0, 0b001001);
    pm.set_row(1, 0b010010);
    distribution("TB-CM0, PM", &tb_cm0, &pm);

    // Figure 2c's Broad BIM, converted to LSB-first row masks: the
    // paper's bottom row produces the new bit 0 from b5^b4^b3^b0, and
    // its fifth row produces bit 1 from b5^b3^b1.
    let broad = Bim::checked_invertible(vec![
        0b111001, // out0 = b5 ^ b4 ^ b3 ^ b0
        0b101010, // out1 = b5 ^ b3 ^ b1
        0b000100, 0b001000, 0b010000, 0b100000,
    ])
    .expect("the example BIM is invertible");
    distribution("TB-CM0, Broad BIM", &tb_cm0, &broad);

    // The paper's observation in numbers:
    let count = |addrs: &[u64], x: &Bim| {
        let mut n = [0usize; 4];
        for &a in addrs {
            n[channel(x.apply(a))] += 1;
        }
        n
    };
    let base = count(&tb_cm0, &identity);
    let fixed = count(&tb_cm0, &broad);
    println!("\nTB-CM0 channel counts under BASE: {base:?} (all on one channel)");
    println!("TB-CM0 channel counts under Broad BIM: {fixed:?} (perfect balance)");
    assert_eq!(base, [8, 0, 0, 0]);
    assert_eq!(fixed, [2, 2, 2, 2]);
}
