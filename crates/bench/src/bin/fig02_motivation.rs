//! Figure 2 / Section II worked example: row-major vs column-major TB
//! allocation, the DRAM channel distribution each produces, the
//! state-of-the-art PM scheme's partial fix, and the Broad BIM's perfect
//! channel balance.
//!
//! Thin consumer: the rendering lives in [`valley_bench::figures`] and
//! is pinned byte-for-byte by the golden tests.

fn main() {
    print!("{}", valley_bench::figures::fig02_text());
}
