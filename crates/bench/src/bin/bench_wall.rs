//! Wall-time benchmark of the simulation suite, for the repository's
//! perf trajectory: writes `BENCH_suite.json` (machine-readable) and a
//! human summary to stdout.
//!
//! Two sections feed the trajectory:
//!
//! * the historical Test-scale suite timing, run on the work-stealing
//!   pool *without* store persistence — the same work the pre-harness
//!   `run_suite` timed, so `mcycles_per_second` stays comparable across
//!   PRs and measures the simulator, not the store;
//! * a harness-driven `Scale::Ref` smoke slice run twice against a
//!   scratch store — cold (all simulated) and warm (all cache hits) —
//!   recording per-job wall times and cache-hit counts, i.e. the cost of
//!   a sweep and the cost of resuming one.
//!
//! Run with: `cargo run --release -p valley-bench --bin bench_wall`

use std::time::Instant;
use valley_core::SchemeKind;
use valley_harness::{execute_job, pool, run_sweep, ResultStore, SweepOptions, SweepSpec};
use valley_sim::json::Json;
use valley_workloads::{Benchmark, Scale};

fn main() {
    let scratch = std::env::temp_dir().join(format!("valley-bench-wall-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    // A representative slice of the full sweep: a valley benchmark (MT),
    // a streaming one (SP) and a random one (MUM), under the baseline and
    // the paper's headline scheme.
    let benches = [Benchmark::Mt, Benchmark::Sp, Benchmark::Mum];
    let schemes = [SchemeKind::Base, SchemeKind::Pae];

    // Historical trajectory: pool-parallel simulation only, no store.
    let test_jobs = SweepSpec::new(&benches, &schemes, Scale::Test).expand();
    let start = Instant::now();
    let reports = pool::run_jobs(
        test_jobs.len(),
        pool::default_workers(test_jobs.len()),
        |i| execute_job(&test_jobs[i]),
        |_| {},
    );
    let wall = start.elapsed();
    let reports: Vec<_> = reports
        .into_iter()
        .map(|r| r.expect("test-scale suite job panicked"))
        .collect();

    let jobs = reports.len();
    let total_cycles: u64 = reports.iter().map(|r| r.cycles).sum();
    let sim_mcps = total_cycles as f64 / 1e6 / wall.as_secs_f64();
    println!(
        "bench_wall: {jobs} jobs, {total_cycles} simulated cycles in {wall:.2?} \
         ({sim_mcps:.2} Mcycles/s)"
    );

    // Harness smoke slice at Ref scale: cold sweep, then resumed sweep.
    let store = ResultStore::open(&scratch).expect("scratch store opens");
    let spec = SweepSpec::new(&benches, &schemes, Scale::Ref);
    let quiet = SweepOptions {
        workers: None,
        verbose: false,
        force: false,
    };
    let cold = run_sweep(&spec, &store, &quiet).expect("cold smoke sweep");
    let warm = run_sweep(&spec, &store, &quiet).expect("warm smoke sweep");
    println!(
        "harness smoke (ref scale, {} jobs): cold {:.2?} ({} executed), \
         warm {:.2?} ({} cache hits)",
        cold.jobs.len(),
        cold.wall,
        cold.executed,
        warm.wall,
        warm.cache_hits,
    );

    let cycles_per_job = test_jobs
        .iter()
        .zip(&reports)
        .map(|(j, r)| (format!("{}/{}", j.bench, j.scheme), Json::UInt(r.cycles)))
        .collect();
    let smoke_walls = cold
        .jobs
        .iter()
        .map(|j| {
            (
                format!("{}/{}", j.spec.bench, j.spec.scheme),
                Json::Num((j.wall_ms * 1e3).round() / 1e3),
            )
        })
        .collect();
    let snapshot = Json::Obj(vec![
        (
            "suite".into(),
            Json::Str("mt+sp+mum x base+pae @ test scale".into()),
        ),
        ("jobs".into(), Json::UInt(jobs as u64)),
        ("wall_seconds".into(), Json::Num(wall.as_secs_f64())),
        ("simulated_cycles".into(), Json::UInt(total_cycles)),
        (
            "mcycles_per_second".into(),
            Json::Num((sim_mcps * 1e3).round() / 1e3),
        ),
        ("cycles_per_job".into(), Json::Obj(cycles_per_job)),
        (
            "harness_smoke".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str("mt+sp+mum x base+pae @ ref scale".into()),
                ),
                ("jobs".into(), Json::UInt(cold.jobs.len() as u64)),
                (
                    "cold_wall_seconds".into(),
                    Json::Num(cold.wall.as_secs_f64()),
                ),
                ("cold_cache_hits".into(), Json::UInt(cold.cache_hits as u64)),
                (
                    "warm_wall_seconds".into(),
                    Json::Num(warm.wall.as_secs_f64()),
                ),
                ("warm_cache_hits".into(), Json::UInt(warm.cache_hits as u64)),
                ("job_wall_ms".into(), Json::Obj(smoke_walls)),
            ]),
        ),
    ]);
    let mut json = snapshot.to_json_string();
    json.push('\n');
    std::fs::write("BENCH_suite.json", &json).expect("writing BENCH_suite.json");
    println!("wrote BENCH_suite.json");

    std::fs::remove_dir_all(&scratch).ok();
}
