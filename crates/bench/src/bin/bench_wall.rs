//! Wall-time benchmark of the simulation suite, for the repository's
//! perf trajectory: writes `BENCH_suite.json` (machine-readable) and a
//! human summary to stdout.
//!
//! Two sections feed the trajectory:
//!
//! * the historical Test-scale suite timing, run on the work-stealing
//!   pool *without* store persistence — the same work the pre-harness
//!   `run_suite` timed, so `mcycles_per_second` stays comparable across
//!   PRs and measures the simulator, not the store;
//! * a harness-driven `Scale::Ref` smoke slice run twice against a
//!   scratch store — cold (all simulated) and warm (all cache hits) —
//!   recording per-job wall times and cache-hit counts, i.e. the cost of
//!   a sweep and the cost of resuming one.
//!
//! Run with: `cargo run --release -p valley-bench --bin bench_wall`
//!
//! With `--gate PCT` (CI), the freshly measured Ref-scale smoke slice is
//! compared against the committed `BENCH_suite.json` *before* it is
//! overwritten: if the per-job geomean of cold wall times regressed by
//! more than `PCT` percent, the run fails. Only **measured** per-job
//! walls are fingerprinted that way — batched lanes carry averaged
//! shares of one batch wall (see [`valley_harness::WallKind`]), so the
//! batched rows gate on their median sweep walls instead. Wall-clock
//! gating is noisy by nature, so CI uses a generous threshold (25%)
//! meant to catch real order-of-magnitude regressions, not jitter.

use std::time::Instant;
use valley_compute::{matgen, BvrTable, ComputeBackend, ComputeScratch, CpuBackend};
use valley_core::entropy::{Bvr, EntropyMethod};
use valley_core::SchemeKind;
use valley_harness::{
    execute_job, pool, run_sweep, ResultStore, SweepOptions, SweepSpec, WallKind,
};
use valley_sim::json::{self, Json};
use valley_workloads::{Benchmark, Scale};

/// Reads a section's per-job smoke wall times from the committed
/// snapshot, if present.
fn committed_smoke_walls(section: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string("BENCH_suite.json").ok()?;
    let v = json::parse(&text).ok()?;
    let walls = v.get(section)?.get("job_wall_ms")?;
    match walls {
        Json::Obj(entries) => Some(
            entries
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                .collect(),
        ),
        _ => None,
    }
}

/// Reads a batched section's committed median cold sweep wall, if
/// present. Batched lanes only carry averaged wall shares, never
/// measured per-job walls, so their sections gate on this median.
fn committed_median(section: &str) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_suite.json").ok()?;
    let v = json::parse(&text).ok()?;
    v.get(section)?.get("cold_wall_seconds_median")?.as_f64()
}

/// Geometric mean of new/old per-job wall ratios over the jobs present
/// in both snapshots.
fn smoke_regression_ratio(old: &[(String, f64)], new: &[(String, f64)]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (name, new_ms) in new {
        let Some((_, old_ms)) = old.iter().find(|(k, _)| k == name) else {
            continue;
        };
        if *old_ms > 0.0 && *new_ms > 0.0 {
            log_sum += (new_ms / old_ms).ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate_pct: Option<f64> = match args.as_slice() {
        [] => None,
        [flag, pct] if flag == "--gate" => {
            Some(pct.parse().expect("--gate takes a percentage, e.g. 25"))
        }
        other => panic!("unknown arguments {other:?} (usage: bench_wall [--gate PCT])"),
    };
    let committed = gate_pct.and_then(|_| committed_smoke_walls("harness_smoke"));
    let committed_batched = gate_pct.and_then(|_| committed_median("harness_smoke_batched"));
    let committed_soa = gate_pct.and_then(|_| committed_median("harness_smoke_batched_soa"));
    let committed_kbim = gate_pct.and_then(|_| committed_median("kernel_bim_bitsliced"));
    let committed_ksweep = gate_pct.and_then(|_| committed_median("kernel_entropy_sweep"));
    // The sequential rows (and the --gate comparison against committed
    // sequential baselines) must run on the sequential engine even when
    // the caller's environment sets VALLEY_SIM_THREADS; snapshot the
    // ambient value, clear it, and restore it after the sequential
    // sections.
    let ambient_sim_threads = std::env::var_os("VALLEY_SIM_THREADS");
    std::env::remove_var("VALLEY_SIM_THREADS");
    let scratch = std::env::temp_dir().join(format!("valley-bench-wall-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    // A representative slice of the full sweep: a valley benchmark (MT),
    // a streaming one (SP) and a random one (MUM), under the baseline and
    // the paper's headline scheme.
    let benches = [Benchmark::Mt, Benchmark::Sp, Benchmark::Mum];
    let schemes = [SchemeKind::Base, SchemeKind::Pae];

    // Historical trajectory: pool-parallel simulation only, no store.
    let test_jobs = SweepSpec::new(&benches, &schemes, Scale::Test).expand();
    let start = Instant::now();
    let reports = pool::run_jobs(
        test_jobs.len(),
        pool::default_workers(test_jobs.len()),
        |i| execute_job(&test_jobs[i]),
        |_| {},
    );
    let wall = start.elapsed();
    let reports: Vec<_> = reports
        .into_iter()
        .map(|r| r.expect("test-scale suite job panicked"))
        .collect();

    let jobs = reports.len();
    let total_cycles: u64 = reports.iter().map(|r| r.cycles).sum();
    let sim_mcps = total_cycles as f64 / 1e6 / wall.as_secs_f64();
    println!(
        "bench_wall: {jobs} jobs, {total_cycles} simulated cycles in {wall:.2?} \
         ({sim_mcps:.2} Mcycles/s)"
    );

    // Harness smoke slice at Ref scale: cold sweep, then resumed sweep.
    let store = ResultStore::open(&scratch).expect("scratch store opens");
    let spec = SweepSpec::new(&benches, &schemes, Scale::Ref);
    // `batch: 1` pins the per-job sequential path even when the caller's
    // environment sets VALLEY_SIM_BATCH (the option, when non-zero, wins
    // over the knob).
    let quiet = SweepOptions {
        workers: None,
        verbose: false,
        force: false,
        batch: 1,
    };
    let cold = run_sweep(&spec, &store, &quiet).expect("cold smoke sweep");
    let warm = run_sweep(&spec, &store, &quiet).expect("warm smoke sweep");
    println!(
        "harness smoke (ref scale, {} jobs): cold {:.2?} ({} executed), \
         warm {:.2?} ({} cache hits)",
        cold.jobs.len(),
        cold.wall,
        cold.executed,
        warm.wall,
        warm.cache_hits,
    );

    // Parallel-mode smoke row: the same Ref slice, cold, on the
    // phase-parallel engine (4 shards). Results are bit-identical to the
    // sequential rows by construction (the engine's contract); the wall
    // times track what `VALLEY_SIM_THREADS=4` buys — or costs — on this
    // machine, next to the sequential row.
    let par_scratch =
        std::env::temp_dir().join(format!("valley-bench-wall-par-{}", std::process::id()));
    std::fs::remove_dir_all(&par_scratch).ok();
    let par_store = ResultStore::open(&par_scratch).expect("parallel scratch store opens");
    std::env::set_var("VALLEY_SIM_THREADS", "4");
    let par_cold = run_sweep(&spec, &par_store, &quiet).expect("parallel smoke sweep");
    match &ambient_sim_threads {
        Some(v) => std::env::set_var("VALLEY_SIM_THREADS", v),
        None => std::env::remove_var("VALLEY_SIM_THREADS"),
    }
    for (seq, par) in cold.jobs.iter().zip(&par_cold.jobs) {
        assert_eq!(
            seq.report, par.report,
            "parallel engine diverged on {} — bit-identity broken",
            seq.spec
        );
    }
    // The wake-gate subsystem's observable win: the Ref-smoke slice is
    // memory-saturated for long stretches (MT and MUM park every SM on
    // MSHRs while replies stream back), and the per-unit wake gates must
    // turn those stretches into multi-cycle epochs *while replies are in
    // flight* — the regime the old global-minimum horizon pinned at one
    // cycle per epoch.
    let in_flight_multi: u64 = par_cold
        .jobs
        .iter()
        .map(|j| j.report.epoch_hist.in_flight_multi)
        .sum();
    let multi: u64 = par_cold
        .jobs
        .iter()
        .map(|j| j.report.epoch_hist.multi_cycle())
        .sum();
    assert!(
        in_flight_multi > 0,
        "no multi-cycle epoch overlapped an in-flight reply anywhere in \
         the Ref smoke slice — the per-unit wake gates are not extending \
         the parallel engine's horizon"
    );
    println!(
        "harness smoke parallel (4 shards): cold {:.2?} ({} executed; \
         {multi} multi-cycle epochs, {in_flight_multi} with replies in flight)",
        par_cold.wall, par_cold.executed,
    );
    std::fs::remove_dir_all(&par_scratch).ok();

    // Batched-engine smoke row: the Ref slice widened to a same-config
    // multi-seed group (seeds 1–3 — the paper's best-of-3 shape), cold,
    // through the lockstep batched engine. `--batch 9` makes each
    // scheme's nine jobs (3 benches × 3 seeds) one batch: the BASE
    // group's seeds collapse to one simulation per bench (deterministic
    // schemes never read the seed — see `execute_batch`), the PAE group
    // runs all nine lanes in lockstep. Per-lane results are
    // bit-identical to the sequential rows by the engine's contract;
    // the wall times track what batching buys on ONE worker, where
    // lane dedupe and amortization — shared fast-forward, shared config
    // and map, resident hot-loop state — are the only levers, not pool
    // parallelism. Sequential and batched runs interleave and the
    // medians are compared, so drift in machine load hits both
    // measurements evenly.
    const BATCH_ROUNDS: usize = 3;
    const BATCH_WIDTH: usize = 9;
    let seeds_spec = spec.clone().with_seeds(&[1, 2, 3]);
    let one_seq = SweepOptions {
        workers: Some(1),
        verbose: false,
        force: true,
        batch: 1,
    };
    let one_bat = SweepOptions {
        workers: Some(1),
        verbose: false,
        force: true,
        batch: BATCH_WIDTH,
    };
    let bat_scratch =
        std::env::temp_dir().join(format!("valley-bench-wall-bat-{}", std::process::id()));
    std::fs::remove_dir_all(&bat_scratch).ok();
    let bat_store = ResultStore::open(&bat_scratch).expect("batched scratch store opens");
    let seq1_scratch =
        std::env::temp_dir().join(format!("valley-bench-wall-seq1-{}", std::process::id()));
    std::fs::remove_dir_all(&seq1_scratch).ok();
    let seq1_store = ResultStore::open(&seq1_scratch).expect("1-worker scratch store opens");
    let mut seq_walls = Vec::new();
    let mut bat_walls = Vec::new();
    let mut seq_cold = None;
    let mut bat_cold = None;
    for _ in 0..BATCH_ROUNDS {
        let s = run_sweep(&seeds_spec, &seq1_store, &one_seq).expect("1-worker sequential sweep");
        seq_walls.push(s.wall.as_secs_f64());
        seq_cold = Some(s);
        let b = run_sweep(&seeds_spec, &bat_store, &one_bat).expect("batched smoke sweep");
        bat_walls.push(b.wall.as_secs_f64());
        bat_cold = Some(b);
    }
    let seq_cold = seq_cold.expect("at least one sequential round ran");
    let bat_cold = bat_cold.expect("at least one batched round ran");
    std::fs::remove_dir_all(&bat_scratch).ok();
    std::fs::remove_dir_all(&seq1_scratch).ok();
    for (seq, bat) in seq_cold.jobs.iter().zip(&bat_cold.jobs) {
        assert_eq!(
            seq.report, bat.report,
            "batched engine diverged on {} — bit-identity broken",
            seq.spec
        );
    }
    // Wall attribution sanity: every sequential job carries a measured
    // wall, and no lockstep lane claims one — batched lanes get averaged
    // shares of the batch wall (or a zero cloned share), never a
    // per-lane measurement, so the gate below must not fingerprint them.
    assert!(
        seq_cold.jobs.iter().all(|j| j.wall.is_measured()),
        "a sequential job's wall is not flagged as measured"
    );
    let averaged_lanes = bat_cold
        .jobs
        .iter()
        .filter(|j| j.wall == WallKind::Averaged)
        .count();
    let cloned_lanes = bat_cold
        .jobs
        .iter()
        .filter(|j| j.wall == WallKind::Cloned)
        .count();
    assert!(
        !bat_cold.jobs.iter().any(|j| j.wall.is_measured()),
        "a lockstep batch lane claims a measured wall — attribution broken"
    );
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        xs[xs.len() / 2]
    };
    let seq_median = median(&mut seq_walls);
    let bat_median = median(&mut bat_walls);
    let batch_speedup = seq_median / bat_median;
    println!(
        "harness smoke batched (seeds 1-3, --batch {BATCH_WIDTH}, 1 worker, median of \
         {BATCH_ROUNDS}): cold {:.0} ms vs sequential {:.0} ms — {batch_speedup:.2}x \
         ({averaged_lanes} averaged + {cloned_lanes} cloned lane walls)",
        bat_median * 1e3,
        seq_median * 1e3,
    );

    // Composed batch × threads smoke row: the same widened slice,
    // `--batch 9` *and* VALLEY_SIM_THREADS=2, so each batch splits into
    // two lockstep lane groups ticked concurrently under the shared
    // epoch tape. Results stay bit-identical; the row tracks what the
    // composition buys (or costs) next to the 1-thread batched row on
    // this machine.
    let soa_scratch =
        std::env::temp_dir().join(format!("valley-bench-wall-soa-{}", std::process::id()));
    std::fs::remove_dir_all(&soa_scratch).ok();
    let soa_store = ResultStore::open(&soa_scratch).expect("composed scratch store opens");
    std::env::set_var("VALLEY_SIM_THREADS", "2");
    let mut soa_walls = Vec::new();
    let mut soa_cold = None;
    for _ in 0..BATCH_ROUNDS {
        let r = run_sweep(&seeds_spec, &soa_store, &one_bat).expect("composed batched sweep");
        soa_walls.push(r.wall.as_secs_f64());
        soa_cold = Some(r);
    }
    match &ambient_sim_threads {
        Some(v) => std::env::set_var("VALLEY_SIM_THREADS", v),
        None => std::env::remove_var("VALLEY_SIM_THREADS"),
    }
    let soa_cold = soa_cold.expect("at least one composed round ran");
    std::fs::remove_dir_all(&soa_scratch).ok();
    for (seq, soa) in seq_cold.jobs.iter().zip(&soa_cold.jobs) {
        assert_eq!(
            seq.report, soa.report,
            "composed batch x threads engine diverged on {} — bit-identity broken",
            seq.spec
        );
    }
    let soa_median = median(&mut soa_walls);
    let soa_speedup = seq_median / soa_median;
    println!(
        "harness smoke batched soa (seeds 1-3, --batch {BATCH_WIDTH}, VALLEY_SIM_THREADS=2, \
         median of {BATCH_ROUNDS}): cold {:.0} ms vs sequential {:.0} ms — {soa_speedup:.2}x",
        soa_median * 1e3,
        seq_median * 1e3,
    );

    // Compute-plane kernel rows: the bit-sliced BIM batch kernel against
    // the scalar per-address loop on a dense full-rank 30-bit matrix
    // (the mapping schemes are identity-heavy and ride the sparse fast
    // path, where both backends run the same code). Scalar and
    // bit-sliced reps interleave round by round and the medians are
    // compared, so machine-load drift hits both measurements evenly —
    // the same discipline as the batched-engine rows above.
    const KERNEL_ROUNDS: usize = 5;
    const KERNEL_REPS: usize = 64;
    let kernel_bim = matgen::dense_invertible(30, 1);
    let kernel_addrs: Vec<u64> = {
        let mut a = 0x1234_5678u64;
        (0..4096)
            .map(|_| {
                a = (a.wrapping_mul(0x9e37_79b9) ^ a) & 0x3fff_ffff;
                a
            })
            .collect()
    };
    let scalar_be = CpuBackend::with_sparse_cutoff(usize::MAX);
    let sliced_be = CpuBackend::with_sparse_cutoff(0);
    let mut kscratch = ComputeScratch::new();
    let mut kout = Vec::new();
    let mut kernel_scalar_walls = Vec::new();
    let mut kernel_sliced_walls = Vec::new();
    for _ in 0..KERNEL_ROUNDS {
        let t = Instant::now();
        for _ in 0..KERNEL_REPS {
            scalar_be.bim_apply_batch(&kernel_bim, &kernel_addrs, &mut kout, &mut kscratch);
        }
        kernel_scalar_walls.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..KERNEL_REPS {
            sliced_be.bim_apply_batch(&kernel_bim, &kernel_addrs, &mut kout, &mut kscratch);
        }
        kernel_sliced_walls.push(t.elapsed().as_secs_f64());
    }
    let kernel_scalar_median = median(&mut kernel_scalar_walls);
    let kernel_sliced_median = median(&mut kernel_sliced_walls);
    let kernel_speedup = kernel_scalar_median / kernel_sliced_median;
    println!(
        "kernel bim bitsliced (dense30, {} addrs x {KERNEL_REPS} reps, median of \
         {KERNEL_ROUNDS}): {:.2} ms vs scalar {:.2} ms — {kernel_speedup:.2}x",
        kernel_addrs.len(),
        kernel_sliced_median * 1e3,
        kernel_scalar_median * 1e3,
    );
    assert!(
        kernel_speedup >= 4.0,
        "bit-sliced bim_apply_batch is only {kernel_speedup:.2}x the scalar loop on a dense \
         full-rank matrix (acceptance floor is 4x)"
    );

    // The all-bits window-entropy sweep over a fig05-shaped table
    // (30 address bits x 1024 TBs, the paper's window of 12).
    const SWEEP_REPS: usize = 16;
    let sweep_rows: Vec<Vec<Bvr>> = (0..30)
        .map(|bit| (0..1024u64).map(|i| Bvr::new((i + bit) % 13, 16)).collect())
        .collect();
    let sweep_table = BvrTable::from_bit_rows(&sweep_rows, 1024);
    let mut sweep_out = Vec::new();
    let mut sweep_walls = Vec::new();
    for _ in 0..KERNEL_ROUNDS {
        let t = Instant::now();
        for _ in 0..SWEEP_REPS {
            sliced_be.window_entropy_sweep(
                &sweep_table,
                12,
                EntropyMethod::MixtureBvr,
                &mut sweep_out,
                &mut kscratch,
            );
        }
        sweep_walls.push(t.elapsed().as_secs_f64());
    }
    let sweep_median = median(&mut sweep_walls);
    println!(
        "kernel entropy sweep (30 bits x 1024 TBs, w=12 mixture x {SWEEP_REPS} reps, median \
         of {KERNEL_ROUNDS}): {:.2} ms",
        sweep_median * 1e3,
    );

    let cycles_per_job = test_jobs
        .iter()
        .zip(&reports)
        .map(|(j, r)| (format!("{}/{}", j.bench, j.scheme), Json::UInt(r.cycles)))
        .collect();
    let smoke_walls = cold
        .jobs
        .iter()
        .map(|j| {
            (
                format!("{}/{}", j.spec.bench, j.spec.scheme),
                Json::Num((j.wall_ms * 1e3).round() / 1e3),
            )
        })
        .collect();
    let par_smoke_walls = par_cold
        .jobs
        .iter()
        .map(|j| {
            (
                format!("{}/{}", j.spec.bench, j.spec.scheme),
                Json::Num((j.wall_ms * 1e3).round() / 1e3),
            )
        })
        .collect();
    let snapshot = Json::Obj(vec![
        (
            "suite".into(),
            Json::Str("mt+sp+mum x base+pae @ test scale".into()),
        ),
        ("jobs".into(), Json::UInt(jobs as u64)),
        ("wall_seconds".into(), Json::Num(wall.as_secs_f64())),
        ("simulated_cycles".into(), Json::UInt(total_cycles)),
        (
            "mcycles_per_second".into(),
            Json::Num((sim_mcps * 1e3).round() / 1e3),
        ),
        ("cycles_per_job".into(), Json::Obj(cycles_per_job)),
        (
            "harness_smoke".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str("mt+sp+mum x base+pae @ ref scale".into()),
                ),
                ("jobs".into(), Json::UInt(cold.jobs.len() as u64)),
                (
                    "cold_wall_seconds".into(),
                    Json::Num(cold.wall.as_secs_f64()),
                ),
                ("cold_cache_hits".into(), Json::UInt(cold.cache_hits as u64)),
                (
                    "warm_wall_seconds".into(),
                    Json::Num(warm.wall.as_secs_f64()),
                ),
                ("warm_cache_hits".into(), Json::UInt(warm.cache_hits as u64)),
                ("job_wall_ms".into(), Json::Obj(smoke_walls)),
            ]),
        ),
        (
            "harness_smoke_parallel".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str("mt+sp+mum x base+pae @ ref scale, VALLEY_SIM_THREADS=4".into()),
                ),
                ("sim_threads".into(), Json::UInt(4)),
                ("jobs".into(), Json::UInt(par_cold.jobs.len() as u64)),
                (
                    "cold_wall_seconds".into(),
                    Json::Num(par_cold.wall.as_secs_f64()),
                ),
                ("job_wall_ms".into(), Json::Obj(par_smoke_walls)),
                ("multi_cycle_epochs".into(), Json::UInt(multi)),
                (
                    "multi_cycle_epochs_with_replies_in_flight".into(),
                    Json::UInt(in_flight_multi),
                ),
            ]),
        ),
        (
            "harness_smoke_batched".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str(
                        "mt+sp+mum x base+pae x seeds 1-3 @ ref scale, --batch 9, 1 worker".into(),
                    ),
                ),
                ("batch".into(), Json::UInt(BATCH_WIDTH as u64)),
                ("jobs".into(), Json::UInt(bat_cold.jobs.len() as u64)),
                ("rounds".into(), Json::UInt(BATCH_ROUNDS as u64)),
                (
                    "cold_wall_seconds_median".into(),
                    Json::Num((bat_median * 1e6).round() / 1e6),
                ),
                (
                    "sequential_wall_seconds_median".into(),
                    Json::Num((seq_median * 1e6).round() / 1e6),
                ),
                (
                    "speedup_vs_sequential".into(),
                    Json::Num((batch_speedup * 1e3).round() / 1e3),
                ),
                // Per-lane walls are *attributions* (averaged shares of
                // one batch wall, or zero for cloned lanes), not
                // measurements, so they are counted here rather than
                // recorded as a `job_wall_ms` fingerprint.
                ("averaged_lanes".into(), Json::UInt(averaged_lanes as u64)),
                ("cloned_lanes".into(), Json::UInt(cloned_lanes as u64)),
            ]),
        ),
        (
            "harness_smoke_batched_soa".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str(
                        "mt+sp+mum x base+pae x seeds 1-3 @ ref scale, --batch 9, \
                         VALLEY_SIM_THREADS=2, 1 worker"
                            .into(),
                    ),
                ),
                ("batch".into(), Json::UInt(BATCH_WIDTH as u64)),
                ("sim_threads".into(), Json::UInt(2)),
                ("jobs".into(), Json::UInt(soa_cold.jobs.len() as u64)),
                ("rounds".into(), Json::UInt(BATCH_ROUNDS as u64)),
                (
                    "cold_wall_seconds_median".into(),
                    Json::Num((soa_median * 1e6).round() / 1e6),
                ),
                (
                    "sequential_wall_seconds_median".into(),
                    Json::Num((seq_median * 1e6).round() / 1e6),
                ),
                (
                    "speedup_vs_sequential".into(),
                    Json::Num((soa_speedup * 1e3).round() / 1e3),
                ),
            ]),
        ),
        (
            "kernel_bim_bitsliced".into(),
            Json::Obj(vec![
                (
                    "case".into(),
                    Json::Str(format!(
                        "dense30 full-rank, {} addrs x {KERNEL_REPS} reps, interleaved",
                        kernel_addrs.len()
                    )),
                ),
                ("rounds".into(), Json::UInt(KERNEL_ROUNDS as u64)),
                (
                    "cold_wall_seconds_median".into(),
                    Json::Num((kernel_sliced_median * 1e6).round() / 1e6),
                ),
                (
                    "scalar_wall_seconds_median".into(),
                    Json::Num((kernel_scalar_median * 1e6).round() / 1e6),
                ),
                (
                    "speedup_vs_scalar".into(),
                    Json::Num((kernel_speedup * 1e3).round() / 1e3),
                ),
            ]),
        ),
        (
            "kernel_entropy_sweep".into(),
            Json::Obj(vec![
                (
                    "case".into(),
                    Json::Str(format!(
                        "30 bits x 1024 TBs, w=12 mixture x {SWEEP_REPS} reps"
                    )),
                ),
                ("rounds".into(), Json::UInt(KERNEL_ROUNDS as u64)),
                (
                    "cold_wall_seconds_median".into(),
                    Json::Num((sweep_median * 1e6).round() / 1e6),
                ),
            ]),
        ),
    ]);
    let mut json = snapshot.to_json_string();
    json.push('\n');
    std::fs::write("BENCH_suite.json", &json).expect("writing BENCH_suite.json");
    println!("wrote BENCH_suite.json");

    std::fs::remove_dir_all(&scratch).ok();

    if let Some(pct) = gate_pct {
        let fresh: Vec<(String, f64)> = cold
            .jobs
            .iter()
            .map(|j| (format!("{}/{}", j.spec.bench, j.spec.scheme), j.wall_ms))
            .collect();
        match committed
            .as_deref()
            .and_then(|c| smoke_regression_ratio(c, &fresh))
        {
            Some(ratio) => {
                println!(
                    "smoke gate: per-job cold wall geomean is {ratio:.3}x the committed \
                     BENCH_suite.json (threshold {:.3}x)",
                    1.0 + pct / 100.0
                );
                assert!(
                    ratio <= 1.0 + pct / 100.0,
                    "Ref-scale smoke slice regressed {:.1}% (> {pct}%) vs committed BENCH_suite.json",
                    (ratio - 1.0) * 100.0
                );
            }
            None => println!(
                "smoke gate: no comparable committed BENCH_suite.json — gate skipped \
                 (first run on this branch?)"
            ),
        }
        // The batched rows gate on their median sweep walls, never on
        // per-lane wall shares: lanes carry attributions of one batch
        // wall (averaged or cloned), and fingerprinting those as
        // per-job measurements is exactly the bug the `wall` field
        // exists to prevent. A regressed median means the lockstep
        // engine itself got slower.
        let gate_median = |label: &str, committed: Option<f64>, fresh: f64| match committed {
            Some(old) if old > 0.0 => {
                let ratio = fresh / old;
                println!(
                    "{label} smoke gate: median cold wall is {ratio:.3}x the committed \
                     BENCH_suite.json (threshold {:.3}x)",
                    1.0 + pct / 100.0
                );
                assert!(
                    ratio <= 1.0 + pct / 100.0,
                    "{label} Ref-scale smoke slice regressed {:.1}% (> {pct}%) vs committed \
                     BENCH_suite.json",
                    (ratio - 1.0) * 100.0
                );
            }
            _ => println!(
                "{label} smoke gate: no comparable committed BENCH_suite.json — gate skipped \
                 (first {label} run on this branch?)"
            ),
        };
        gate_median("batched", committed_batched, bat_median);
        gate_median("batched-soa", committed_soa, soa_median);
        gate_median("kernel-bim", committed_kbim, kernel_sliced_median);
        gate_median("kernel-sweep", committed_ksweep, sweep_median);
    }
}
