//! Wall-time benchmark of the simulation suite, for the repository's
//! perf trajectory: writes `BENCH_suite.json` (machine-readable) and a
//! human summary to stdout.
//!
//! Two sections feed the trajectory:
//!
//! * the historical Test-scale suite timing, run on the work-stealing
//!   pool *without* store persistence — the same work the pre-harness
//!   `run_suite` timed, so `mcycles_per_second` stays comparable across
//!   PRs and measures the simulator, not the store;
//! * a harness-driven `Scale::Ref` smoke slice run twice against a
//!   scratch store — cold (all simulated) and warm (all cache hits) —
//!   recording per-job wall times and cache-hit counts, i.e. the cost of
//!   a sweep and the cost of resuming one.
//!
//! Run with: `cargo run --release -p valley-bench --bin bench_wall`
//!
//! With `--gate PCT` (CI), the freshly measured Ref-scale smoke slice is
//! compared against the committed `BENCH_suite.json` *before* it is
//! overwritten: if the per-job geomean of cold wall times regressed by
//! more than `PCT` percent, the run fails. Wall-clock gating is noisy by
//! nature, so CI uses a generous threshold (25%) meant to catch real
//! order-of-magnitude regressions, not jitter.

use std::time::Instant;
use valley_core::SchemeKind;
use valley_harness::{execute_job, pool, run_sweep, ResultStore, SweepOptions, SweepSpec};
use valley_sim::json::{self, Json};
use valley_workloads::{Benchmark, Scale};

/// Reads the committed snapshot's per-job smoke wall times, if present.
fn committed_smoke_walls() -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string("BENCH_suite.json").ok()?;
    let v = json::parse(&text).ok()?;
    let walls = v.get("harness_smoke")?.get("job_wall_ms")?;
    match walls {
        Json::Obj(entries) => Some(
            entries
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                .collect(),
        ),
        _ => None,
    }
}

/// Geometric mean of new/old per-job wall ratios over the jobs present
/// in both snapshots.
fn smoke_regression_ratio(old: &[(String, f64)], new: &[(String, f64)]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (name, new_ms) in new {
        let Some((_, old_ms)) = old.iter().find(|(k, _)| k == name) else {
            continue;
        };
        if *old_ms > 0.0 && *new_ms > 0.0 {
            log_sum += (new_ms / old_ms).ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate_pct: Option<f64> = match args.as_slice() {
        [] => None,
        [flag, pct] if flag == "--gate" => {
            Some(pct.parse().expect("--gate takes a percentage, e.g. 25"))
        }
        other => panic!("unknown arguments {other:?} (usage: bench_wall [--gate PCT])"),
    };
    let committed = gate_pct.and_then(|_| committed_smoke_walls());
    // The sequential rows (and the --gate comparison against committed
    // sequential baselines) must run on the sequential engine even when
    // the caller's environment sets VALLEY_SIM_THREADS; snapshot the
    // ambient value, clear it, and restore it after the sequential
    // sections.
    let ambient_sim_threads = std::env::var_os("VALLEY_SIM_THREADS");
    std::env::remove_var("VALLEY_SIM_THREADS");
    let scratch = std::env::temp_dir().join(format!("valley-bench-wall-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    // A representative slice of the full sweep: a valley benchmark (MT),
    // a streaming one (SP) and a random one (MUM), under the baseline and
    // the paper's headline scheme.
    let benches = [Benchmark::Mt, Benchmark::Sp, Benchmark::Mum];
    let schemes = [SchemeKind::Base, SchemeKind::Pae];

    // Historical trajectory: pool-parallel simulation only, no store.
    let test_jobs = SweepSpec::new(&benches, &schemes, Scale::Test).expand();
    let start = Instant::now();
    let reports = pool::run_jobs(
        test_jobs.len(),
        pool::default_workers(test_jobs.len()),
        |i| execute_job(&test_jobs[i]),
        |_| {},
    );
    let wall = start.elapsed();
    let reports: Vec<_> = reports
        .into_iter()
        .map(|r| r.expect("test-scale suite job panicked"))
        .collect();

    let jobs = reports.len();
    let total_cycles: u64 = reports.iter().map(|r| r.cycles).sum();
    let sim_mcps = total_cycles as f64 / 1e6 / wall.as_secs_f64();
    println!(
        "bench_wall: {jobs} jobs, {total_cycles} simulated cycles in {wall:.2?} \
         ({sim_mcps:.2} Mcycles/s)"
    );

    // Harness smoke slice at Ref scale: cold sweep, then resumed sweep.
    let store = ResultStore::open(&scratch).expect("scratch store opens");
    let spec = SweepSpec::new(&benches, &schemes, Scale::Ref);
    let quiet = SweepOptions {
        workers: None,
        verbose: false,
        force: false,
    };
    let cold = run_sweep(&spec, &store, &quiet).expect("cold smoke sweep");
    let warm = run_sweep(&spec, &store, &quiet).expect("warm smoke sweep");
    println!(
        "harness smoke (ref scale, {} jobs): cold {:.2?} ({} executed), \
         warm {:.2?} ({} cache hits)",
        cold.jobs.len(),
        cold.wall,
        cold.executed,
        warm.wall,
        warm.cache_hits,
    );

    // Parallel-mode smoke row: the same Ref slice, cold, on the
    // phase-parallel engine (4 shards). Results are bit-identical to the
    // sequential rows by construction (the engine's contract); the wall
    // times track what `VALLEY_SIM_THREADS=4` buys — or costs — on this
    // machine, next to the sequential row.
    let par_scratch =
        std::env::temp_dir().join(format!("valley-bench-wall-par-{}", std::process::id()));
    std::fs::remove_dir_all(&par_scratch).ok();
    let par_store = ResultStore::open(&par_scratch).expect("parallel scratch store opens");
    std::env::set_var("VALLEY_SIM_THREADS", "4");
    let par_cold = run_sweep(&spec, &par_store, &quiet).expect("parallel smoke sweep");
    match &ambient_sim_threads {
        Some(v) => std::env::set_var("VALLEY_SIM_THREADS", v),
        None => std::env::remove_var("VALLEY_SIM_THREADS"),
    }
    for (seq, par) in cold.jobs.iter().zip(&par_cold.jobs) {
        assert_eq!(
            seq.report, par.report,
            "parallel engine diverged on {} — bit-identity broken",
            seq.spec
        );
    }
    // The wake-gate subsystem's observable win: the Ref-smoke slice is
    // memory-saturated for long stretches (MT and MUM park every SM on
    // MSHRs while replies stream back), and the per-unit wake gates must
    // turn those stretches into multi-cycle epochs *while replies are in
    // flight* — the regime the old global-minimum horizon pinned at one
    // cycle per epoch.
    let in_flight_multi: u64 = par_cold
        .jobs
        .iter()
        .map(|j| j.report.epoch_hist.in_flight_multi)
        .sum();
    let multi: u64 = par_cold
        .jobs
        .iter()
        .map(|j| j.report.epoch_hist.multi_cycle())
        .sum();
    assert!(
        in_flight_multi > 0,
        "no multi-cycle epoch overlapped an in-flight reply anywhere in \
         the Ref smoke slice — the per-unit wake gates are not extending \
         the parallel engine's horizon"
    );
    println!(
        "harness smoke parallel (4 shards): cold {:.2?} ({} executed; \
         {multi} multi-cycle epochs, {in_flight_multi} with replies in flight)",
        par_cold.wall, par_cold.executed,
    );
    std::fs::remove_dir_all(&par_scratch).ok();

    let cycles_per_job = test_jobs
        .iter()
        .zip(&reports)
        .map(|(j, r)| (format!("{}/{}", j.bench, j.scheme), Json::UInt(r.cycles)))
        .collect();
    let smoke_walls = cold
        .jobs
        .iter()
        .map(|j| {
            (
                format!("{}/{}", j.spec.bench, j.spec.scheme),
                Json::Num((j.wall_ms * 1e3).round() / 1e3),
            )
        })
        .collect();
    let par_smoke_walls = par_cold
        .jobs
        .iter()
        .map(|j| {
            (
                format!("{}/{}", j.spec.bench, j.spec.scheme),
                Json::Num((j.wall_ms * 1e3).round() / 1e3),
            )
        })
        .collect();
    let snapshot = Json::Obj(vec![
        (
            "suite".into(),
            Json::Str("mt+sp+mum x base+pae @ test scale".into()),
        ),
        ("jobs".into(), Json::UInt(jobs as u64)),
        ("wall_seconds".into(), Json::Num(wall.as_secs_f64())),
        ("simulated_cycles".into(), Json::UInt(total_cycles)),
        (
            "mcycles_per_second".into(),
            Json::Num((sim_mcps * 1e3).round() / 1e3),
        ),
        ("cycles_per_job".into(), Json::Obj(cycles_per_job)),
        (
            "harness_smoke".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str("mt+sp+mum x base+pae @ ref scale".into()),
                ),
                ("jobs".into(), Json::UInt(cold.jobs.len() as u64)),
                (
                    "cold_wall_seconds".into(),
                    Json::Num(cold.wall.as_secs_f64()),
                ),
                ("cold_cache_hits".into(), Json::UInt(cold.cache_hits as u64)),
                (
                    "warm_wall_seconds".into(),
                    Json::Num(warm.wall.as_secs_f64()),
                ),
                ("warm_cache_hits".into(), Json::UInt(warm.cache_hits as u64)),
                ("job_wall_ms".into(), Json::Obj(smoke_walls)),
            ]),
        ),
        (
            "harness_smoke_parallel".into(),
            Json::Obj(vec![
                (
                    "slice".into(),
                    Json::Str("mt+sp+mum x base+pae @ ref scale, VALLEY_SIM_THREADS=4".into()),
                ),
                ("sim_threads".into(), Json::UInt(4)),
                ("jobs".into(), Json::UInt(par_cold.jobs.len() as u64)),
                (
                    "cold_wall_seconds".into(),
                    Json::Num(par_cold.wall.as_secs_f64()),
                ),
                ("job_wall_ms".into(), Json::Obj(par_smoke_walls)),
                ("multi_cycle_epochs".into(), Json::UInt(multi)),
                (
                    "multi_cycle_epochs_with_replies_in_flight".into(),
                    Json::UInt(in_flight_multi),
                ),
            ]),
        ),
    ]);
    let mut json = snapshot.to_json_string();
    json.push('\n');
    std::fs::write("BENCH_suite.json", &json).expect("writing BENCH_suite.json");
    println!("wrote BENCH_suite.json");

    std::fs::remove_dir_all(&scratch).ok();

    if let Some(pct) = gate_pct {
        let fresh: Vec<(String, f64)> = cold
            .jobs
            .iter()
            .map(|j| (format!("{}/{}", j.spec.bench, j.spec.scheme), j.wall_ms))
            .collect();
        match committed
            .as_deref()
            .and_then(|c| smoke_regression_ratio(c, &fresh))
        {
            Some(ratio) => {
                println!(
                    "smoke gate: per-job cold wall geomean is {ratio:.3}x the committed \
                     BENCH_suite.json (threshold {:.3}x)",
                    1.0 + pct / 100.0
                );
                assert!(
                    ratio <= 1.0 + pct / 100.0,
                    "Ref-scale smoke slice regressed {:.1}% (> {pct}%) vs committed BENCH_suite.json",
                    (ratio - 1.0) * 100.0
                );
            }
            None => println!(
                "smoke gate: no comparable committed BENCH_suite.json — gate skipped \
                 (first run on this branch?)"
            ),
        }
    }
}
