//! Wall-time benchmark of a small simulation suite, for the repository's
//! perf trajectory: writes `BENCH_suite.json` (machine-readable) and a
//! human summary to stdout.
//!
//! Run with: `cargo run --release -p valley-bench --bin bench_wall`

use std::time::Instant;
use valley_bench::run_suite;
use valley_core::SchemeKind;
use valley_workloads::{Benchmark, Scale};

fn main() {
    // A representative slice of the full sweep: a valley benchmark (MT),
    // a streaming one (SP) and a random one (MUM), under the baseline and
    // the paper's headline scheme.
    let benches = [Benchmark::Mt, Benchmark::Sp, Benchmark::Mum];
    let schemes = [SchemeKind::Base, SchemeKind::Pae];

    let start = Instant::now();
    let suite = run_suite(&benches, &schemes, Scale::Test);
    let wall = start.elapsed();

    let jobs = suite.len();
    let total_cycles: u64 = suite.values().map(|r| r.cycles).sum();
    let sim_mcps = total_cycles as f64 / 1e6 / wall.as_secs_f64();
    println!(
        "bench_wall: {jobs} jobs, {total_cycles} simulated cycles in {wall:.2?} \
         ({sim_mcps:.2} Mcycles/s)"
    );

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut per_job = String::new();
    for ((b, s), r) in &suite {
        if !per_job.is_empty() {
            per_job.push_str(", ");
        }
        per_job.push_str(&format!("\"{b}/{s}\": {}", r.cycles));
    }
    let json = format!(
        "{{\n  \"suite\": \"mt+sp+mum x base+pae @ test scale\",\n  \
         \"jobs\": {jobs},\n  \"wall_seconds\": {:.6},\n  \
         \"simulated_cycles\": {total_cycles},\n  \
         \"mcycles_per_second\": {sim_mcps:.3},\n  \
         \"cycles_per_job\": {{ {per_job} }}\n}}\n",
        wall.as_secs_f64()
    );
    std::fs::write("BENCH_suite.json", &json).expect("writing BENCH_suite.json");
    println!("wrote BENCH_suite.json");
}
