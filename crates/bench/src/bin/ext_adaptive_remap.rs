//! Extension experiment: per-kernel adaptive remapping.
//!
//! The paper observes that entropy valleys *move* across kernels and
//! phases (Section III-B, DWT2D vs DWT2DK1) and answers with a single
//! static Broad BIM robust to that movement. The natural follow-up (cf.
//! the cited DReAM work) is to *re-derive* the BIM at each kernel
//! boundary from that kernel's own entropy profile. This binary
//! estimates the ceiling of such a scheme:
//!
//! * **static PAE** — one BIM for the whole application (the paper);
//! * **adaptive PAE** — each kernel simulated under a profile-guided BIM
//!   built from its own window-entropy profile, plus a per-remap penalty
//!   (data must physically move when the DRAM mapping changes; we charge
//!   a configurable flat cost per remap rather than modeling migration).
//!
//! Adaptive kernel runs are chained as independent simulations, which
//! forfeits cross-kernel cache warmth (a second, smaller handicap on top
//! of the remap penalty; the static run keeps its warmth).

use valley_bench::{run_one, DEFAULT_SEED};
use valley_core::{AddressMapper, SchemeKind};
use valley_sim::GpuConfig;
use valley_workloads::{analysis, Benchmark, Scale};

/// Flat cost charged per remap (cycles): a placeholder for data
/// migration / mapping-table switch overhead.
const REMAP_PENALTY: u64 = 100_000;

const SUBSET: [Benchmark; 3] = [Benchmark::Dwt2d, Benchmark::Mt, Benchmark::Lps];

fn main() {
    println!("Extension: per-kernel adaptive remapping vs static PAE");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>9}",
        "bench", "BASE cyc", "static PAE", "adaptive", "remaps"
    );
    for b in SUBSET {
        eprintln!("  {b}: BASE ...");
        let base = run_one(b, SchemeKind::Base, 0, Scale::Ref);
        eprintln!("  {b}: static PAE ...");
        let statik = run_one(b, SchemeKind::Pae, DEFAULT_SEED, Scale::Ref);

        // Adaptive: per-kernel guided BIM.
        let workload = b.workload(Scale::Ref);
        let map = valley_core::GddrMap::baseline();
        let mut total = 0u64;
        let mut remaps = 0u64;
        let kernels = valley_sim::WorkloadSource::num_kernels(&workload);
        for k in 0..kernels {
            let single = workload.single_kernel(k);
            let profile = analysis::application_profile(&single, 12, None);
            let mapper =
                AddressMapper::guided(SchemeKind::Pae, &map, profile.per_bit(), DEFAULT_SEED);
            remaps += 1;
            eprintln!("  {b}: adaptive kernel {k}/{kernels} ...");
            let r = {
                let map2 = valley_core::GddrMap::baseline();
                valley_sim::GpuSim::new(GpuConfig::table1(), mapper, map2, Box::new(single)).run()
            };
            total += r.cycles;
        }
        let adaptive = total + remaps * REMAP_PENALTY;
        println!(
            "{:<8}{:>12}{:>12}{:>12}{:>9}",
            b.label(),
            base.cycles,
            statik.cycles,
            adaptive,
            remaps
        );
        println!(
            "{:<8}{:>12}{:>12.2}{:>12.2}",
            "",
            "speedup:",
            base.cycles as f64 / statik.cycles as f64,
            base.cycles as f64 / adaptive as f64
        );
    }
    println!(
        "\nremap penalty charged: {REMAP_PENALTY} cycles per kernel boundary.\n\
         expected: adaptivity rarely beats the static Broad BIM — the paper's\n\
         robustness argument — and pays the migration cost on many-kernel apps."
    );
}
