//! Figure 11: normalized execution time vs normalized DRAM power for the
//! six mapping schemes, averaged over the valley benchmarks.
//!
//! Paper shape: PAE ≈ BASE's DRAM power (+3%) at a large speedup; FAE and
//! ALL are slightly faster but pay +35% / +45% DRAM power; PM and RMP sit
//! between BASE and PAE on performance.

use valley_bench::{all_schemes, figures, run_suite};
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::VALLEY, &all_schemes(), Scale::Ref);
    figures::fig11(&suite);
    println!("\npaper: PAE +3% DRAM power, FAE +35%, ALL +45%, PM +8%, RMP +16%");
}
