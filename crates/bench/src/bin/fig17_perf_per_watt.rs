//! Figure 17: normalized performance per Watt (total GPU + DRAM system
//! power) under the six mapping schemes.
//!
//! Paper shape: PAE is the most power-efficient scheme (1.39× over BASE,
//! 1.25× over PM); FAE and ALL trail it despite similar performance
//! because of their activate-power overhead.

use valley_bench::{all_schemes, figures, run_suite};
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::VALLEY, &all_schemes(), Scale::Ref);
    figures::fig17(&suite);
    println!("\npaper: PAE 1.39x, FAE 1.36x, ALL 1.31x over BASE; PAE/PM = 1.25x");
}
