//! Figure 13: (a) average NoC packet latency and (b) LLC miss rate for
//! the valley benchmarks under the six mapping schemes.
//!
//! Paper shape: PAE/FAE/ALL dramatically reduce NoC packet latency and
//! substantially reduce the LLC miss rate by de-hot-spotting the slices.

use valley_bench::{all_schemes, figures, run_suite};
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::VALLEY, &all_schemes(), Scale::Ref);
    figures::fig13a(&suite);
    figures::fig13b(&suite);
}
