//! Figure 19: sensitivity to the randomly generated BIM — three random
//! BIMs per scheme (PAE, FAE, ALL), average speedup over BASE.
//!
//! Paper shape: FAE and ALL are insensitive to the specific BIM; PAE is
//! slightly more sensitive (it draws from fewer input bits), but even its
//! worst BIM is a substantial improvement.
//!
//! Uses the same 4-benchmark subset as Figure 18.

use valley_bench::{hmean, run_one, DEFAULT_SEED};
use valley_core::SchemeKind;
use valley_workloads::{Benchmark, Scale};

const SUBSET: [Benchmark; 4] = [
    Benchmark::Mt,
    Benchmark::Nw,
    Benchmark::Srad2,
    Benchmark::Sp,
];

fn main() {
    let schemes = [SchemeKind::Pae, SchemeKind::Fae, SchemeKind::All];
    let seeds = [DEFAULT_SEED, DEFAULT_SEED + 1, DEFAULT_SEED + 2];

    let mut base_cycles = std::collections::BTreeMap::new();
    for b in SUBSET {
        eprintln!("  BASE / {b} ...");
        base_cycles.insert(
            b,
            run_one(b, SchemeKind::Base, DEFAULT_SEED, Scale::Ref).cycles,
        );
    }

    println!("Figure 19: HMEAN speedup for three random BIMs per scheme");
    println!("{:<8}{:>8}{:>8}{:>8}", "scheme", "BIM-1", "BIM-2", "BIM-3");
    for s in schemes {
        print!("{:<8}", s.label());
        for seed in seeds {
            let mut speedups = Vec::new();
            for b in SUBSET {
                eprintln!("  {s} seed {seed} / {b} ...");
                let r = run_one(b, s, seed, Scale::Ref);
                speedups.push(base_cycles[&b] as f64 / r.cycles as f64);
            }
            print!("{:>8.2}", hmean(&speedups));
        }
        println!();
    }
    println!("\npaper: different BIMs lead to similar improvements; PAE slightly more sensitive");
}
