//! Figure 19: sensitivity to the randomly generated BIM — three random
//! BIMs per scheme (PAE, FAE, ALL), average speedup over BASE.
//!
//! Paper shape: FAE and ALL are insensitive to the specific BIM; PAE is
//! slightly more sensitive (it draws from fewer input bits), but even its
//! worst BIM is a substantial improvement.
//!
//! Uses the same 4-benchmark subset as Figure 18. The grid runs as two
//! harness [`SweepSpec`]s — the BASE reference points (seed-independent,
//! so only the default seed) and the multi-seed randomized-scheme grid —
//! against the shared result store, so the seed sweep is cached like
//! every other experiment instead of silently re-simulating.

use std::collections::BTreeMap;
use valley_bench::{hmean, run_spec_with_store, DEFAULT_SEED};
use valley_core::SchemeKind;
use valley_harness::{ResultStore, SweepSpec};
use valley_workloads::{Benchmark, Scale};

const SUBSET: [Benchmark; 4] = [
    Benchmark::Mt,
    Benchmark::Nw,
    Benchmark::Srad2,
    Benchmark::Sp,
];

fn main() {
    let schemes = [SchemeKind::Pae, SchemeKind::Fae, SchemeKind::All];
    let seeds = [DEFAULT_SEED, DEFAULT_SEED + 1, DEFAULT_SEED + 2];

    let dir = valley_harness::default_results_dir();
    let store = ResultStore::open(&dir)
        .unwrap_or_else(|e| panic!("cannot open result store {}: {e}", dir.display()));

    // BASE ignores the BIM seed; one sweep at the default seed provides
    // the reference cycle counts (shared with fig12/fig18's cache keys).
    let base = run_spec_with_store(
        &SweepSpec::new(&SUBSET, &[SchemeKind::Base], Scale::Ref),
        &store,
    );
    let base_cycles: BTreeMap<Benchmark, u64> = base
        .iter()
        .map(|j| (j.spec.bench, j.report.cycles))
        .collect();

    let jobs = run_spec_with_store(
        &SweepSpec::new(&SUBSET, &schemes, Scale::Ref).with_seeds(&seeds),
        &store,
    );
    let cycles: BTreeMap<(SchemeKind, u64, Benchmark), u64> = jobs
        .iter()
        .map(|j| ((j.spec.scheme, j.spec.seed, j.spec.bench), j.report.cycles))
        .collect();

    println!("Figure 19: HMEAN speedup for three random BIMs per scheme");
    println!("{:<8}{:>8}{:>8}{:>8}", "scheme", "BIM-1", "BIM-2", "BIM-3");
    for s in schemes {
        print!("{:<8}", s.label());
        for seed in seeds {
            let speedups: Vec<f64> = SUBSET
                .iter()
                .map(|&b| base_cycles[&b] as f64 / cycles[&(s, seed, b)] as f64)
                .collect();
            print!("{:>8.2}", hmean(&speedups));
        }
        println!();
    }
    println!("\npaper: different BIMs lead to similar improvements; PAE slightly more sensitive");
}
