//! Figure 5: window-based entropy distribution of all 16 benchmarks plus
//! the SRAD2K1 and DWT2DK1 kernels, under the BASE (Hynix) address map.
//!
//! Prints one ASCII panel per benchmark (MSB left, like the paper), the
//! mean entropy over the bank+channel bits (gray bits, 8–13) and the
//! valley score/classification.

use valley_core::DramAddressMap;
use valley_sim::WorkloadSource;
use valley_workloads::{analysis, Benchmark, Scale};

fn main() {
    let window = 12; // the SM-count heuristic of Section III-A
    let map = valley_core::GddrMap::baseline();
    let targets = map.target_field_bits();
    let candidates = map.non_block_bits();

    println!("Figure 5: per-bit window-based entropy (BASE map, w = {window})");
    println!("bits 29 (left) .. 6 (right); bank+channel bits are 8-13\n");

    let mut panels: Vec<(String, Box<dyn WorkloadSource>)> = Vec::new();
    for b in Benchmark::ALL {
        panels.push((b.label().to_string(), Box::new(b.workload(Scale::Ref))));
        if b == Benchmark::Srad2 || b == Benchmark::Dwt2d {
            let k1 = b.workload(Scale::Ref).single_kernel(0);
            panels.push((k1.name(), Box::new(k1)));
        }
    }

    for (name, w) in panels {
        let p = analysis::application_profile(w.as_ref(), window, None);
        let score = p.valley_score(&targets, &candidates);
        let has = p.has_valley(&targets, &candidates, 0.25);
        println!(
            "--- {name}  (requests: {}, mean H* over ch/bank bits: {:.2}, valley score: {:.2}{})",
            p.requests(),
            p.mean_over(&targets),
            score,
            if has { ", VALLEY" } else { "" }
        );
        print!("{}", p.ascii_chart(6, 29));
        println!();
    }
}
