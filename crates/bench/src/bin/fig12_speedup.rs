//! Figure 12: per-benchmark speedup over BASE for the ten entropy-valley
//! benchmarks under PM, RMP, PAE, FAE and ALL, plus the harmonic mean.
//!
//! Paper shape: PAE/FAE/ALL ≈ 1.5× average (up to ~7.5× for MT/LU),
//! PM ≈ 1.16×, RMP ≈ 1.21×.

use valley_bench::{all_schemes, hmean, run_suite, scheme_header, speedup};
use valley_core::SchemeKind;
use valley_workloads::{Benchmark, Scale};

fn main() {
    let schemes = all_schemes();
    let suite = run_suite(&Benchmark::VALLEY, &schemes, Scale::Ref);

    println!("\nFigure 12: speedup over BASE (valley benchmarks)");
    println!("{}", scheme_header("bench", &schemes, 8));
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for b in Benchmark::VALLEY {
        let mut vals = Vec::new();
        for (i, &s) in schemes.iter().enumerate() {
            let sp = speedup(&suite, b, s);
            per_scheme[i].push(sp);
            vals.push(sp);
        }
        println!("{}", valley_bench::row(b.label(), &vals, 8, 2));
    }
    let hmeans: Vec<f64> = per_scheme.iter().map(|v| hmean(v)).collect();
    println!("{}", valley_bench::row("HMEAN", &hmeans, 8, 2));

    // Context line matching the paper's headline claims.
    let pae = hmeans[schemes.iter().position(|&s| s == SchemeKind::Pae).unwrap()];
    let fae = hmeans[schemes.iter().position(|&s| s == SchemeKind::Fae).unwrap()];
    let pm = hmeans[schemes.iter().position(|&s| s == SchemeKind::Pm).unwrap()];
    println!(
        "\npaper: PAE 1.52x, FAE 1.56x, ALL 1.54x, PM 1.16x, RMP 1.21x (HMEAN over valley set)"
    );
    println!(
        "measured: PAE {pae:.2}x, FAE {fae:.2}x; PAE over PM: {:.2}x (paper: 1.31x)",
        pae / pm
    );
}
