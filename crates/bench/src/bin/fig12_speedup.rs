//! Figure 12: per-benchmark speedup over BASE for the ten entropy-valley
//! benchmarks under PM, RMP, PAE, FAE and ALL, plus the harmonic mean.
//!
//! Paper shape: PAE/FAE/ALL ≈ 1.5× average (up to ~7.5× for MT/LU),
//! PM ≈ 1.16×, RMP ≈ 1.21×.
//!
//! Thin harness consumer: the suite comes from the sweep engine's
//! result store (`results/`), so a second invocation — or any other
//! figure binary needing the same grid — is a pure cache read. The table
//! rendering is pinned byte-for-byte by the golden tests.

use valley_bench::{all_schemes, figures, run_suite};
use valley_core::SchemeKind;
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::VALLEY, &all_schemes(), Scale::Ref);

    print!(
        "{}",
        figures::fig12_text(&suite, "Figure 12: speedup over BASE (valley benchmarks)")
    );

    // Context line matching the paper's headline claims, from the same
    // aggregation that produced the table's HMEAN row.
    let hmeans = figures::fig12_hmeans(&suite);
    let of = |kind: SchemeKind| {
        hmeans
            .iter()
            .find(|(s, _)| *s == kind)
            .map(|&(_, h)| h)
            .expect("scheme present in suite")
    };
    let (pae, fae, pm) = (of(SchemeKind::Pae), of(SchemeKind::Fae), of(SchemeKind::Pm));
    println!(
        "\npaper: PAE 1.52x, FAE 1.56x, ALL 1.54x, PM 1.16x, RMP 1.21x (HMEAN over valley set)"
    );
    println!(
        "measured: PAE {pae:.2}x, FAE {fae:.2}x; PAE over PM: {:.2}x (paper: 1.31x)",
        pae / pm
    );
}
