//! Figure 18: performance sensitivity to SM count (12/24/48 with
//! conventional GDDR5) and to 3D-stacked memory (64 SMs, 64 vaults).
//!
//! Paper shape: PAE/FAE/ALL improve performance consistently across SM
//! counts and memory organizations; RMP collapses toward BASE on the
//! 3D-stacked configuration.
//!
//! To keep runtime in check, this sweep uses a 4-benchmark representative
//! subset of the valley group (documented in EXPERIMENTS.md).

use valley_bench::{all_schemes, hmean, run_one_stacked, run_one_with, DEFAULT_SEED};
use valley_core::SchemeKind;
use valley_sim::GpuConfig;
use valley_workloads::{Benchmark, Scale};

const SUBSET: [Benchmark; 4] = [
    Benchmark::Mt,
    Benchmark::Nw,
    Benchmark::Srad2,
    Benchmark::Sp,
];

fn main() {
    let schemes = all_schemes();

    println!("Figure 18: HMEAN speedup over BASE (subset: MT, NW, SRAD2, SP)\n");
    print!("{:<24}", "config");
    for &s in &schemes {
        print!("{:>8}", s.label());
    }
    println!();

    for sms in [12usize, 24, 48] {
        let cfg = GpuConfig::table1().with_sms(sms);
        let mut base_cycles = std::collections::BTreeMap::new();
        for b in SUBSET {
            eprintln!("  {sms} SMs / BASE / {b} ...");
            let r = run_one_with(b, SchemeKind::Base, DEFAULT_SEED, Scale::Ref, cfg.clone());
            base_cycles.insert(b, r.cycles);
        }
        let mut row = Vec::new();
        for &s in &schemes {
            let mut speedups = Vec::new();
            for b in SUBSET {
                let r = if s == SchemeKind::Base {
                    None
                } else {
                    eprintln!("  {sms} SMs / {s} / {b} ...");
                    Some(run_one_with(b, s, DEFAULT_SEED, Scale::Ref, cfg.clone()))
                };
                let cycles = r.map_or(base_cycles[&b], |r| r.cycles);
                speedups.push(base_cycles[&b] as f64 / cycles as f64);
            }
            row.push(hmean(&speedups));
        }
        print!("{:<24}", format!("{sms} SMs conv. DRAM"));
        for v in row {
            print!("{v:>8.2}");
        }
        println!();
    }

    // 3D-stacked: 64 SMs, 64 vaults, wider NoC.
    let mut base_cycles = std::collections::BTreeMap::new();
    for b in SUBSET {
        eprintln!("  stacked / BASE / {b} ...");
        base_cycles.insert(
            b,
            run_one_stacked(b, SchemeKind::Base, DEFAULT_SEED, Scale::Ref).cycles,
        );
    }
    print!("{:<24}", "64 SMs 3D DRAM");
    for &s in &schemes {
        let mut speedups = Vec::new();
        for b in SUBSET {
            let cycles = if s == SchemeKind::Base {
                base_cycles[&b]
            } else {
                eprintln!("  stacked / {s} / {b} ...");
                run_one_stacked(b, s, DEFAULT_SEED, Scale::Ref).cycles
            };
            speedups.push(base_cycles[&b] as f64 / cycles as f64);
        }
        print!("{:>8.2}", hmean(&speedups));
    }
    println!();
    println!("\npaper: consistent PAE/FAE/ALL gains at every SM count; RMP ~ BASE on 3D-stacked");
}
