//! Figure 18: performance sensitivity to SM count (12/24/48 with
//! conventional GDDR5) and to 3D-stacked memory (64 SMs, 64 vaults).
//!
//! Paper shape: PAE/FAE/ALL improve performance consistently across SM
//! counts and memory organizations; RMP collapses toward BASE on the
//! 3D-stacked configuration.
//!
//! To keep runtime in check, this sweep uses a 4-benchmark representative
//! subset of the valley group (documented in EXPERIMENTS.md).
//!
//! The whole grid goes through the sweep harness as one multi-config
//! [`SweepSpec`] (`table1` doubles as the 12-SM point, `sms24`/`sms48`
//! are [`ConfigId::Sms`], the rightmost group is [`ConfigId::Stacked`]),
//! so every point lands in — and on re-runs is served from — the shared
//! result store instead of being silently re-simulated.

use std::collections::BTreeMap;
use valley_bench::{all_schemes, hmean, run_spec, DEFAULT_SEED};
use valley_core::SchemeKind;
use valley_harness::{ConfigId, JobOutcome, SweepSpec};
use valley_workloads::{Benchmark, Scale};

const SUBSET: [Benchmark; 4] = [
    Benchmark::Mt,
    Benchmark::Nw,
    Benchmark::Srad2,
    Benchmark::Sp,
];

fn main() {
    let schemes = all_schemes();
    // GpuConfig::table1() has 12 SMs, so the 12-SM point *is* the
    // baseline config — sharing its cache key with every other figure.
    let configs = [
        (ConfigId::Table1, "12 SMs conv. DRAM"),
        (ConfigId::Sms(24), "24 SMs conv. DRAM"),
        (ConfigId::Sms(48), "48 SMs conv. DRAM"),
        (ConfigId::Stacked, "64 SMs 3D DRAM"),
    ];

    let spec = SweepSpec::new(&SUBSET, &schemes, Scale::Ref)
        .with_seeds(&[DEFAULT_SEED])
        .with_configs(&configs.map(|(c, _)| c));
    let jobs = run_spec(&spec);
    let cycles: BTreeMap<(ConfigId, Benchmark, SchemeKind), u64> = jobs
        .iter()
        .map(|j: &JobOutcome| {
            (
                (j.spec.config, j.spec.bench, j.spec.scheme),
                j.report.cycles,
            )
        })
        .collect();

    println!("Figure 18: HMEAN speedup over BASE (subset: MT, NW, SRAD2, SP)\n");
    print!("{:<24}", "config");
    for &s in &schemes {
        print!("{:>8}", s.label());
    }
    println!();

    for (config, label) in configs {
        print!("{label:<24}");
        for &s in &schemes {
            let speedups: Vec<f64> = SUBSET
                .iter()
                .map(|&b| {
                    cycles[&(config, b, SchemeKind::Base)] as f64 / cycles[&(config, b, s)] as f64
                })
                .collect();
            print!("{:>8.2}", hmean(&speedups));
        }
        println!();
    }
    println!("\npaper: consistent PAE/FAE/ALL gains at every SM count; RMP ~ BASE on 3D-stacked");
}
