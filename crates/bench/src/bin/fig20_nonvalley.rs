//! Figure 20: normalized performance for the six non-entropy-valley
//! benchmarks.
//!
//! Paper shape: address mapping has a relatively minor impact; PAE and
//! FAE give small average improvements and no benchmark regresses badly.

use valley_bench::{all_schemes, figures, run_suite};
use valley_workloads::{Benchmark, Scale};

fn main() {
    let suite = run_suite(&Benchmark::NON_VALLEY, &all_schemes(), Scale::Ref);
    figures::fig12(
        &suite,
        "Figure 20: speedup over BASE (non-valley benchmarks)",
    );
    println!("\npaper: all schemes within a few percent of BASE on this group");
}
