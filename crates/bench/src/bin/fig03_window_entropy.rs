//! Figure 3 worked example: window-based entropy of 8 TBs whose BVRs are
//! 0,0,1,1,0,0,1,1 under window sizes 2 and 4, plus footnote 1's window.
//!
//! Thin consumer: the rendering lives in [`valley_bench::figures`]
//! (routed through the `valley-compute` backend) and is pinned
//! byte-for-byte by the golden tests.

fn main() {
    print!("{}", valley_bench::figures::fig03_text());
}
