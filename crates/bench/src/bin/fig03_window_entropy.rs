//! Figure 3 worked example: window-based entropy of 8 TBs whose BVRs are
//! 0,0,1,1,0,0,1,1 under window sizes 2 and 4, plus footnote 1's window.

use valley_core::entropy::{shannon_entropy, window_entropy, Bvr};

fn main() {
    let bvrs: Vec<Bvr> = [0u64, 0, 1, 1, 0, 0, 1, 1]
        .iter()
        .map(|&o| Bvr::new(o, 1))
        .collect();

    println!("Figure 3: sorted TB BVRs = 0 0 1 1 0 0 1 1\n");
    for w in [2usize, 4] {
        let h = window_entropy(&bvrs, w);
        println!("window size {w}: H* = {h:.4}");
    }
    println!("\npaper: H* = 3/7 = 0.43 for w=2 and H* = 5/5 = 1 for w=4");

    // Footnote 1: a window of three TBs, BVRs {0, 0, 1}.
    let h = shannon_entropy(&[2.0 / 3.0, 1.0 / 3.0]);
    println!("\nfootnote 1: window with BVRs (0,0,1) -> H_W = {h:.2} (paper: 0.92)");

    assert!((window_entropy(&bvrs, 2) - 3.0 / 7.0).abs() < 1e-12);
    assert!((window_entropy(&bvrs, 4) - 1.0).abs() < 1e-12);
}
