//! Table I: the simulated GPU architecture, as configured in this
//! reproduction.

use valley_core::DramAddressMap;
use valley_sim::GpuConfig;

fn main() {
    let c = GpuConfig::table1();
    let map = valley_core::GddrMap::baseline();

    println!("Table I: simulated GPU architecture");
    println!("--- SM configuration");
    println!("  SMs:                {}", c.num_sms);
    println!("  core clock:         {} GHz", c.core_clock_ghz);
    println!("  warp size:          {}", c.warp_size);
    println!(
        "  max warps/threads:  {} warps, {} threads per SM",
        c.max_warps_per_sm, c.max_threads_per_sm
    );
    println!("  schedulers:         {} (GTO)", c.issue_width);
    println!(
        "  L1 data cache:      {} KB, {}-way, {} sets, {} B lines, {} MSHRs",
        c.l1.size_bytes() / 1024,
        c.l1.assoc(),
        c.l1.sets(),
        c.l1.line_bytes(),
        c.l1_mshrs
    );
    println!(
        "  LLC:                {} KB total ({} slices x {} KB, {}-way), {}-cycle latency",
        c.llc_slices as u64 * c.llc_slice.size_bytes() / 1024,
        c.llc_slices,
        c.llc_slice.size_bytes() / 1024,
        c.llc_slice.assoc(),
        c.llc_latency
    );
    println!(
        "  NoC:                {}x{} crossbar @ {} GHz, 32 B channels",
        c.num_sms, c.llc_slices, c.noc_clock_ghz
    );
    println!("--- DRAM configuration");
    println!(
        "  {} channels x {} banks, {} rows x {} columns, {} GHz",
        map.num_controllers(),
        map.banks_per_controller(),
        map.rows_per_bank(),
        map.columns_per_row(),
        c.dram.clock_ghz
    );
    let t = c.dram.timing;
    println!(
        "  timing: CL {} tRCD {} tRP {} tRAS {} tRRD {} tCCD {} burst {}",
        t.cl, t.trcd, t.trp, t.tras, t.trrd, t.tccd, t.tburst
    );
    println!(
        "  bandwidth: {:.1} GB/s",
        32.0 * c.dram.clock_ghz * map.num_controllers() as f64
    );
    println!("  scheduling: FR-FCFS, open page");
    println!("--- Address map (Figure 4, LSB -> MSB)");
    println!("  block[5:0] col_lo[7:6] channel[9:8] bank[13:10] col_hi[17:14] row[29:18]");
}
