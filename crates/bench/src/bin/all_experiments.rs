//! One-shot driver: regenerates every table and figure of the paper's
//! evaluation in a single invocation, pulling the valley and non-valley
//! suites through the sweep harness (simulated once, then served from
//! the `results/` store — a re-run is a pure cache read) and reusing
//! them across figures.
//!
//! The output of this binary is the basis of `EXPERIMENTS.md`.

use valley_bench::{all_schemes, figures, run_suite};
use valley_core::DramAddressMap;
use valley_sim::WorkloadSource;
use valley_workloads::{analysis, Benchmark, Scale};

fn main() {
    println!("================================================================");
    println!(" Valley reproduction: all experiments");
    println!("================================================================");

    // --- Entropy analyses (no simulation needed) ---
    entropy_figures();

    // --- Simulation suites ---
    let schemes = all_schemes();
    eprintln!("running valley suite (10 benchmarks x 6 schemes)...");
    let valley = run_suite(&Benchmark::VALLEY, &schemes, Scale::Ref);
    eprintln!("running non-valley suite (6 benchmarks x 6 schemes)...");
    let nonvalley = run_suite(&Benchmark::NON_VALLEY, &schemes, Scale::Ref);

    figures::fig11(&valley);
    figures::fig12(&valley, "Figure 12: speedup over BASE (valley benchmarks)");
    figures::fig13a(&valley);
    figures::fig13b(&valley);
    figures::fig14(&valley);
    figures::fig15(&valley);
    figures::fig16(&valley);
    figures::fig17(&valley);
    figures::fig12(
        &nonvalley,
        "Figure 20: speedup over BASE (non-valley benchmarks)",
    );

    println!("\n(figures 18 and 19 are longer sweeps; run fig18_sensitivity and");
    println!(" fig19_bim_sensitivity; Table I/II via table1_config / table2_workloads)");
}

fn entropy_figures() {
    let window = 12;
    let map = valley_core::GddrMap::baseline();
    let targets = map.target_field_bits();
    let candidates = map.non_block_bits();

    println!("\nFigure 5: per-bit entropy summary (BASE map, w = {window})");
    println!(
        "{:<10}{:>12}{:>14}{:>10}{:>10}",
        "bench", "requests", "H*(ch/bank)", "valley", "paper"
    );
    let mut panels: Vec<(String, Box<dyn WorkloadSource>, bool)> = Vec::new();
    for b in Benchmark::ALL {
        panels.push((
            b.label().to_string(),
            Box::new(b.workload(Scale::Ref)),
            b.has_valley(),
        ));
        if b == Benchmark::Srad2 || b == Benchmark::Dwt2d {
            let k1 = b.workload(Scale::Ref).single_kernel(0);
            panels.push((k1.name(), Box::new(k1), true));
        }
    }
    for (name, w, paper_valley) in panels {
        let p = analysis::application_profile(w.as_ref(), window, None);
        let has = p.has_valley(&targets, &candidates, 0.25);
        println!(
            "{:<10}{:>12}{:>14.2}{:>10}{:>10}",
            name,
            p.requests(),
            p.mean_over(&targets),
            if has { "yes" } else { "no" },
            if paper_valley { "yes" } else { "no" }
        );
    }

    println!("\nFigure 10: MT mean channel/bank-bit entropy per scheme");
    let mt = Benchmark::Mt.workload(Scale::Ref);
    for kind in valley_core::SchemeKind::ALL_SCHEMES {
        let mapper = valley_core::AddressMapper::build(kind, &map, valley_bench::DEFAULT_SEED);
        let p = analysis::application_profile(&mt, window, Some(&mapper));
        println!("  {:<6} {:.3}", kind.label(), p.mean_over(&targets));
    }
}
