//! Shared figure printers: each function renders one paper artifact from
//! a previously-run [`Suite`], so `all_experiments` can run the
//! simulations once and print everything.

use crate::{amean, hmean, row, scheme_header, speedup, Suite};
use valley_core::SchemeKind;
use valley_power::{perf_per_watt, DramPowerModel};
use valley_sim::SimReport;
use valley_workloads::Benchmark;

fn schemes_of(suite: &Suite) -> Vec<SchemeKind> {
    let mut s: Vec<SchemeKind> = suite.keys().map(|&(_, s)| s).collect();
    s.sort();
    s.dedup();
    // Present in the paper's order.
    SchemeKind::ALL_SCHEMES
        .into_iter()
        .filter(|k| s.contains(k))
        .collect()
}

fn benches_of(suite: &Suite) -> Vec<Benchmark> {
    let mut b: Vec<Benchmark> = suite.keys().map(|&(b, _)| b).collect();
    b.sort();
    b.dedup();
    Benchmark::ALL
        .into_iter()
        .filter(|x| b.contains(x))
        .collect()
}

/// Generic per-benchmark × per-scheme metric table with a final
/// aggregate row (`agg` = arithmetic or harmonic mean).
fn metric_table(
    title: &str,
    suite: &Suite,
    metric: impl Fn(&SimReport) -> f64,
    agg: impl Fn(&[f64]) -> f64,
    agg_label: &str,
    precision: usize,
) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    println!("\n{title}");
    println!("{}", scheme_header("bench", &schemes, 8));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &b in &benches {
        let vals: Vec<f64> = schemes.iter().map(|&s| metric(&suite[&(b, s)])).collect();
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        println!("{}", row(b.label(), &vals, 8, precision));
    }
    let aggs: Vec<f64> = cols.iter().map(|c| agg(c)).collect();
    println!("{}", row(agg_label, &aggs, 8, precision));
}

/// Figure 11: normalized execution time vs normalized DRAM power,
/// averaged over the suite's benchmarks.
pub fn fig11(suite: &Suite) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    let model = DramPowerModel::gddr5();
    println!("\nFigure 11: normalized execution time vs normalized DRAM power");
    println!(
        "{:<8}{:>16}{:>18}",
        "scheme", "norm exec time", "norm DRAM power"
    );
    for &s in &schemes {
        let mut times = Vec::new();
        let mut powers = Vec::new();
        for &b in &benches {
            let base = &suite[&(b, SchemeKind::Base)];
            let r = &suite[&(b, s)];
            times.push(r.cycles as f64 / base.cycles as f64);
            powers.push(model.evaluate(r).total() / model.evaluate(base).total());
        }
        println!(
            "{:<8}{:>16.3}{:>18.3}",
            s.label(),
            amean(&times),
            amean(&powers)
        );
    }
}

/// Figure 12 (or 20 for the non-valley suite): speedup over BASE.
pub fn fig12(suite: &Suite, title: &str) {
    print!("{}", fig12_text(suite, title));
}

/// [`fig12`] as a string — golden tests pin this byte-for-byte against
/// pre-harness-refactor snapshots, so the formatting must not drift.
pub fn fig12_text(suite: &Suite, title: &str) -> String {
    fig12_render(suite, title).0
}

/// The per-scheme HMEAN speedups of the suite, in the same scheme order
/// as [`fig12_text`]'s columns — the single source for both the table's
/// HMEAN row and any headline context lines.
pub fn fig12_hmeans(suite: &Suite) -> Vec<(SchemeKind, f64)> {
    fig12_render(suite, "").1
}

fn fig12_render(suite: &Suite, title: &str) -> (String, Vec<(SchemeKind, f64)>) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    let mut out = String::new();
    out.push_str(&format!("\n{title}\n"));
    out.push_str(&format!("{}\n", scheme_header("bench", &schemes, 8)));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &b in &benches {
        let vals: Vec<f64> = schemes.iter().map(|&s| speedup(suite, b, s)).collect();
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        out.push_str(&format!("{}\n", row(b.label(), &vals, 8, 2)));
    }
    let hm: Vec<f64> = cols.iter().map(|c| hmean(c)).collect();
    out.push_str(&format!("{}\n", row("HMEAN", &hm, 8, 2)));
    (out, schemes.into_iter().zip(hm).collect())
}

/// Figure 13a: mean NoC packet latency in core cycles.
pub fn fig13a(suite: &Suite) {
    metric_table(
        "Figure 13a: average NoC packet latency (core cycles)",
        suite,
        |r| r.noc_latency,
        amean,
        "AVG",
        1,
    );
}

/// Figure 13b: LLC miss rate (%).
pub fn fig13b(suite: &Suite) {
    metric_table(
        "Figure 13b: LLC miss rate (%)",
        suite,
        |r| r.llc_miss_rate() * 100.0,
        amean,
        "AVG",
        1,
    );
}

/// Figure 14a/b/c: LLC-, channel- and bank-level parallelism.
pub fn fig14(suite: &Suite) {
    metric_table(
        "Figure 14a: LLC-level parallelism (busy slices)",
        suite,
        |r| r.llc_parallelism,
        amean,
        "AVG",
        2,
    );
    metric_table(
        "Figure 14b: channel-level parallelism (busy channels)",
        suite,
        |r| r.channel_parallelism,
        amean,
        "AVG",
        2,
    );
    metric_table(
        "Figure 14c: bank-level parallelism (busy banks per busy channel)",
        suite,
        |r| r.bank_parallelism,
        amean,
        "AVG",
        2,
    );
}

/// Figure 15: DRAM row-buffer hit rate (%).
pub fn fig15(suite: &Suite) {
    metric_table(
        "Figure 15: DRAM row-buffer hit rate (%)",
        suite,
        |r| r.row_buffer_hit_rate() * 100.0,
        amean,
        "AVG",
        1,
    );
}

/// Figure 16: DRAM power breakdown, averaged over benchmarks.
pub fn fig16(suite: &Suite) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    let model = DramPowerModel::gddr5();
    println!("\nFigure 16: DRAM power breakdown (Watts), averaged over benchmarks");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "scheme", "background", "activate", "read", "write", "total"
    );
    for &s in &schemes {
        let (mut bg, mut act, mut rd, mut wr) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for &b in &benches {
            let p = model.evaluate(&suite[&(b, s)]);
            bg.push(p.background);
            act.push(p.activate);
            rd.push(p.read);
            wr.push(p.write);
        }
        let (bg, act, rd, wr) = (amean(&bg), amean(&act), amean(&rd), amean(&wr));
        println!(
            "{:<8}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>12.1}",
            s.label(),
            bg,
            act,
            rd,
            wr,
            bg + act + rd + wr
        );
    }
}

/// Figure 2 / Section II worked example: row-major vs column-major TB
/// allocation, the DRAM channel distribution each produces, the PM
/// scheme's partial fix, and the Broad BIM's perfect channel balance.
/// Pure BIM arithmetic — no simulation; golden tests pin the output
/// byte-for-byte against the pre-harness-refactor snapshot.
///
/// # Panics
///
/// Panics if the worked example stops reproducing the paper's channel
/// counts (the asserts at the end are part of the figure's claim).
pub fn fig02_text() -> String {
    use valley_core::Bim;

    // The 6-bit example address map: the two LSBs select the channel.
    let channel = |addr: u64| (addr & 0b11) as usize;

    let distribution = |label: &str, addrs: &[u64], xform: &Bim| -> String {
        let mut chans = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for (i, &a) in addrs.iter().enumerate() {
            chans[channel(xform.apply(a))].push(i + 1);
        }
        let mut out = format!("{label}:\n");
        for (c, reqs) in chans.iter().enumerate() {
            let reqs = if reqs.is_empty() {
                "None".to_string()
            } else {
                reqs.iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("  Ch. {c}: {reqs}\n"));
        }
        out
    };

    let mut out = String::new();

    // Figure 2c: TB-RM2 walks consecutive addresses; TB-CM0 strides by 8
    // elements (the column-major first TB).
    let tb_rm2: Vec<u64> = (16..24).collect();
    let tb_cm0: Vec<u64> = (0..8).map(|i| i * 8).collect();

    let identity = Bim::identity(6);
    out.push_str(&distribution(
        "TB-RM2 (row-major), BASE",
        &tb_rm2,
        &identity,
    ));
    out.push_str(&distribution(
        "TB-CM0 (column-major), BASE",
        &tb_cm0,
        &identity,
    ));

    // Figure 2c's PM matrix: channel bits XORed with one row bit each
    // (bit0 <- bit0 ^ bit3, bit1 <- bit1 ^ bit4).
    let mut pm = Bim::identity(6);
    pm.set_row(0, 0b001001);
    pm.set_row(1, 0b010010);
    out.push_str(&distribution("TB-CM0, PM", &tb_cm0, &pm));

    // Figure 2c's Broad BIM, converted to LSB-first row masks: the
    // paper's bottom row produces the new bit 0 from b5^b4^b3^b0, and
    // its fifth row produces bit 1 from b5^b3^b1.
    let broad = Bim::checked_invertible(vec![
        0b111001, // out0 = b5 ^ b4 ^ b3 ^ b0
        0b101010, // out1 = b5 ^ b3 ^ b1
        0b000100, 0b001000, 0b010000, 0b100000,
    ])
    .expect("the example BIM is invertible");
    out.push_str(&distribution("TB-CM0, Broad BIM", &tb_cm0, &broad));

    // The paper's observation in numbers:
    let count = |addrs: &[u64], x: &Bim| {
        let mut n = [0usize; 4];
        for &a in addrs {
            n[channel(x.apply(a))] += 1;
        }
        n
    };
    let base = count(&tb_cm0, &identity);
    let fixed = count(&tb_cm0, &broad);
    out.push_str(&format!(
        "\nTB-CM0 channel counts under BASE: {base:?} (all on one channel)\n"
    ));
    out.push_str(&format!(
        "TB-CM0 channel counts under Broad BIM: {fixed:?} (perfect balance)\n"
    ));
    assert_eq!(base, [8, 0, 0, 0]);
    assert_eq!(fixed, [2, 2, 2, 2]);
    out
}

/// Figure 3 worked example: window-based entropy of 8 TBs whose BVRs
/// are 0,0,1,1,0,0,1,1 under window sizes 2 and 4, plus footnote 1's
/// window. The sweep runs through the [`valley_compute::ComputeBackend`]
/// trait (a one-bit [`valley_compute::BvrTable`]); the golden test pins
/// the output byte-for-byte against the scalar-era snapshot.
///
/// # Panics
///
/// Panics if the computed entropies stop reproducing the paper's values
/// (the asserts are part of the figure's claim).
pub fn fig03_text() -> String {
    use valley_compute::{backend, BvrTable, ComputeScratch};
    use valley_core::entropy::{shannon_entropy, Bvr, EntropyMethod};

    let bvrs: Vec<Bvr> = [0u64, 0, 1, 1, 0, 0, 1, 1]
        .iter()
        .map(|&o| Bvr::new(o, 1))
        .collect();
    let table = BvrTable::from_bit_rows(&[bvrs], 8);
    let mut scratch = ComputeScratch::new();
    let mut sweep = Vec::new();

    let mut out = String::new();
    out.push_str("Figure 3: sorted TB BVRs = 0 0 1 1 0 0 1 1\n\n");
    let mut stars = Vec::new();
    for w in [2usize, 4] {
        backend().window_entropy_sweep(
            &table,
            w,
            EntropyMethod::MixtureBvr,
            &mut sweep,
            &mut scratch,
        );
        let h = sweep[0];
        stars.push(h);
        out.push_str(&format!("window size {w}: H* = {h:.4}\n"));
    }
    out.push_str("\npaper: H* = 3/7 = 0.43 for w=2 and H* = 5/5 = 1 for w=4\n");

    // Footnote 1: a window of three TBs, BVRs {0, 0, 1}.
    let h = shannon_entropy(&[2.0 / 3.0, 1.0 / 3.0]);
    out.push_str(&format!(
        "\nfootnote 1: window with BVRs (0,0,1) -> H_W = {h:.2} (paper: 0.92)\n"
    ));

    assert!((stars[0] - 3.0 / 7.0).abs() < 1e-12);
    assert!((stars[1] - 1.0).abs() < 1e-12);
    out
}

/// Figure 17: normalized performance per Watt.
pub fn fig17(suite: &Suite) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    println!("\nFigure 17: normalized performance per Watt (GPU + DRAM)");
    println!("{}", scheme_header("bench", &schemes, 8));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &b in &benches {
        let base = &suite[&(b, SchemeKind::Base)];
        let vals: Vec<f64> = schemes
            .iter()
            .map(|&s| perf_per_watt(&suite[&(b, s)], base))
            .collect();
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        println!("{}", row(b.label(), &vals, 8, 2));
    }
    let hm: Vec<f64> = cols.iter().map(|c| hmean(c)).collect();
    println!("{}", row("HMEAN", &hm, 8, 2));
}
