//! Shared figure printers: each function renders one paper artifact from
//! a previously-run [`Suite`], so `all_experiments` can run the
//! simulations once and print everything.

use crate::{amean, hmean, row, scheme_header, speedup, Suite};
use valley_core::SchemeKind;
use valley_power::{perf_per_watt, DramPowerModel};
use valley_sim::SimReport;
use valley_workloads::Benchmark;

fn schemes_of(suite: &Suite) -> Vec<SchemeKind> {
    let mut s: Vec<SchemeKind> = suite.keys().map(|&(_, s)| s).collect();
    s.sort();
    s.dedup();
    // Present in the paper's order.
    SchemeKind::ALL_SCHEMES
        .into_iter()
        .filter(|k| s.contains(k))
        .collect()
}

fn benches_of(suite: &Suite) -> Vec<Benchmark> {
    let mut b: Vec<Benchmark> = suite.keys().map(|&(b, _)| b).collect();
    b.sort();
    b.dedup();
    Benchmark::ALL
        .into_iter()
        .filter(|x| b.contains(x))
        .collect()
}

/// Generic per-benchmark × per-scheme metric table with a final
/// aggregate row (`agg` = arithmetic or harmonic mean).
fn metric_table(
    title: &str,
    suite: &Suite,
    metric: impl Fn(&SimReport) -> f64,
    agg: impl Fn(&[f64]) -> f64,
    agg_label: &str,
    precision: usize,
) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    println!("\n{title}");
    println!("{}", scheme_header("bench", &schemes, 8));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &b in &benches {
        let vals: Vec<f64> = schemes.iter().map(|&s| metric(&suite[&(b, s)])).collect();
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        println!("{}", row(b.label(), &vals, 8, precision));
    }
    let aggs: Vec<f64> = cols.iter().map(|c| agg(c)).collect();
    println!("{}", row(agg_label, &aggs, 8, precision));
}

/// Figure 11: normalized execution time vs normalized DRAM power,
/// averaged over the suite's benchmarks.
pub fn fig11(suite: &Suite) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    let model = DramPowerModel::gddr5();
    println!("\nFigure 11: normalized execution time vs normalized DRAM power");
    println!(
        "{:<8}{:>16}{:>18}",
        "scheme", "norm exec time", "norm DRAM power"
    );
    for &s in &schemes {
        let mut times = Vec::new();
        let mut powers = Vec::new();
        for &b in &benches {
            let base = &suite[&(b, SchemeKind::Base)];
            let r = &suite[&(b, s)];
            times.push(r.cycles as f64 / base.cycles as f64);
            powers.push(model.evaluate(r).total() / model.evaluate(base).total());
        }
        println!(
            "{:<8}{:>16.3}{:>18.3}",
            s.label(),
            amean(&times),
            amean(&powers)
        );
    }
}

/// Figure 12 (or 20 for the non-valley suite): speedup over BASE.
pub fn fig12(suite: &Suite, title: &str) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    println!("\n{title}");
    println!("{}", scheme_header("bench", &schemes, 8));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &b in &benches {
        let vals: Vec<f64> = schemes.iter().map(|&s| speedup(suite, b, s)).collect();
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        println!("{}", row(b.label(), &vals, 8, 2));
    }
    let hm: Vec<f64> = cols.iter().map(|c| hmean(c)).collect();
    println!("{}", row("HMEAN", &hm, 8, 2));
}

/// Figure 13a: mean NoC packet latency in core cycles.
pub fn fig13a(suite: &Suite) {
    metric_table(
        "Figure 13a: average NoC packet latency (core cycles)",
        suite,
        |r| r.noc_latency,
        amean,
        "AVG",
        1,
    );
}

/// Figure 13b: LLC miss rate (%).
pub fn fig13b(suite: &Suite) {
    metric_table(
        "Figure 13b: LLC miss rate (%)",
        suite,
        |r| r.llc_miss_rate() * 100.0,
        amean,
        "AVG",
        1,
    );
}

/// Figure 14a/b/c: LLC-, channel- and bank-level parallelism.
pub fn fig14(suite: &Suite) {
    metric_table(
        "Figure 14a: LLC-level parallelism (busy slices)",
        suite,
        |r| r.llc_parallelism,
        amean,
        "AVG",
        2,
    );
    metric_table(
        "Figure 14b: channel-level parallelism (busy channels)",
        suite,
        |r| r.channel_parallelism,
        amean,
        "AVG",
        2,
    );
    metric_table(
        "Figure 14c: bank-level parallelism (busy banks per busy channel)",
        suite,
        |r| r.bank_parallelism,
        amean,
        "AVG",
        2,
    );
}

/// Figure 15: DRAM row-buffer hit rate (%).
pub fn fig15(suite: &Suite) {
    metric_table(
        "Figure 15: DRAM row-buffer hit rate (%)",
        suite,
        |r| r.row_buffer_hit_rate() * 100.0,
        amean,
        "AVG",
        1,
    );
}

/// Figure 16: DRAM power breakdown, averaged over benchmarks.
pub fn fig16(suite: &Suite) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    let model = DramPowerModel::gddr5();
    println!("\nFigure 16: DRAM power breakdown (Watts), averaged over benchmarks");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "scheme", "background", "activate", "read", "write", "total"
    );
    for &s in &schemes {
        let (mut bg, mut act, mut rd, mut wr) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for &b in &benches {
            let p = model.evaluate(&suite[&(b, s)]);
            bg.push(p.background);
            act.push(p.activate);
            rd.push(p.read);
            wr.push(p.write);
        }
        let (bg, act, rd, wr) = (amean(&bg), amean(&act), amean(&rd), amean(&wr));
        println!(
            "{:<8}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>12.1}",
            s.label(),
            bg,
            act,
            rd,
            wr,
            bg + act + rd + wr
        );
    }
}

/// Figure 17: normalized performance per Watt.
pub fn fig17(suite: &Suite) {
    let schemes = schemes_of(suite);
    let benches = benches_of(suite);
    println!("\nFigure 17: normalized performance per Watt (GPU + DRAM)");
    println!("{}", scheme_header("bench", &schemes, 8));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &b in &benches {
        let base = &suite[&(b, SchemeKind::Base)];
        let vals: Vec<f64> = schemes
            .iter()
            .map(|&s| perf_per_watt(&suite[&(b, s)], base))
            .collect();
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        println!("{}", row(b.label(), &vals, 8, 2));
    }
    let hm: Vec<f64> = cols.iter().map(|c| hmean(c)).collect();
    println!("{}", row("HMEAN", &hm, 8, 2));
}
