//! Criterion bench: the address-mapping unit's software cost — one
//! `Bim::apply` per coalesced transaction. The hardware analogue is a
//! single-cycle XOR tree (Figure 7); this bench confirms the software
//! model is cheap enough to run inside the simulator's hot loop.
//!
//! The batch group pits the scalar per-address loop against the
//! bit-sliced tile path of `valley-compute`. The mapping schemes are
//! identity-heavy and ride the sparse fast path, which used to be the
//! *only* thing this bench measured; the dense full-rank and half-dense
//! matrices from `matgen` are the cases where the bit-sliced win (or a
//! sparse-path regression) actually shows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use valley_compute::{matgen, ComputeBackend, ComputeScratch, CpuBackend};
use valley_core::{AddressMapper, Bim, GddrMap, SchemeKind};

/// One batch of pseudo-random 30-bit addresses (the profiler feeds the
/// kernels thousands of coalesced lines per TB).
fn addr_batch(len: usize) -> Vec<u64> {
    let mut a = 0x1234_5678u64;
    (0..len)
        .map(|_| {
            a = (a.wrapping_mul(0x9e37_79b9) ^ a) & 0x3fff_ffff;
            a
        })
        .collect()
}

fn bim_batch(c: &mut Criterion) {
    let map = GddrMap::baseline();
    let addrs = addr_batch(4096);
    let scalar = CpuBackend::with_sparse_cutoff(usize::MAX);
    let sliced = CpuBackend::with_sparse_cutoff(0);
    let mut group = c.benchmark_group("bim_apply_batch");
    let cases: Vec<(&str, Bim)> = vec![
        ("dense30", matgen::dense_invertible(30, 1)),
        ("half_dense30", matgen::half_dense_invertible(30, 1)),
        (
            "sparse_all",
            AddressMapper::build(SchemeKind::All, &map, 1).bim().clone(),
        ),
    ];
    for (label, bim) in &cases {
        for (cfg, be) in [("scalar", &scalar), ("bitsliced", &sliced)] {
            let mut out = Vec::new();
            let mut scratch = ComputeScratch::new();
            group.bench_function(format!("{label}_{cfg}"), |b| {
                b.iter(|| {
                    be.bim_apply_batch(black_box(bim), black_box(&addrs), &mut out, &mut scratch);
                    black_box(out.last().copied())
                })
            });
        }
    }
    group.finish();
}

fn bim_throughput(c: &mut Criterion) {
    let map = GddrMap::baseline();
    let mut group = c.benchmark_group("bim_apply");
    for kind in SchemeKind::ALL_SCHEMES {
        let mapper = AddressMapper::build(kind, &map, 1);
        group.bench_function(kind.label(), |b| {
            let mut addr = 0x1234_5678u64 & 0x3fff_ffff;
            b.iter(|| {
                addr = (addr.wrapping_mul(0x9e37_79b9) ^ addr) & 0x3fff_ffff;
                black_box(mapper.map(valley_core::PhysAddr::new(black_box(addr))))
            })
        });
    }
    group.finish();

    // Decode direction (the inverse BIM).
    c.bench_function("bim_unmap_pae", |b| {
        let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
        b.iter(|| {
            black_box(mapper.unmap(valley_core::PhysAddr::new(black_box(
                0x2bad_f00d & 0x3fff_ffff,
            ))))
        })
    });

    // Scheme construction (rejection sampling until invertible).
    c.bench_function("build_pae_mapper", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(AddressMapper::build(SchemeKind::Pae, &map, seed))
        })
    });
}

criterion_group!(benches, bim_throughput, bim_batch);
criterion_main!(benches);
