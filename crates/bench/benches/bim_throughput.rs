//! Criterion bench: the address-mapping unit's software cost — one
//! `Bim::apply` per coalesced transaction. The hardware analogue is a
//! single-cycle XOR tree (Figure 7); this bench confirms the software
//! model is cheap enough to run inside the simulator's hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use valley_core::{AddressMapper, GddrMap, SchemeKind};

fn bim_throughput(c: &mut Criterion) {
    let map = GddrMap::baseline();
    let mut group = c.benchmark_group("bim_apply");
    for kind in SchemeKind::ALL_SCHEMES {
        let mapper = AddressMapper::build(kind, &map, 1);
        group.bench_function(kind.label(), |b| {
            let mut addr = 0x1234_5678u64 & 0x3fff_ffff;
            b.iter(|| {
                addr = (addr.wrapping_mul(0x9e37_79b9) ^ addr) & 0x3fff_ffff;
                black_box(mapper.map(valley_core::PhysAddr::new(black_box(addr))))
            })
        });
    }
    group.finish();

    // Decode direction (the inverse BIM).
    c.bench_function("bim_unmap_pae", |b| {
        let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
        b.iter(|| {
            black_box(mapper.unmap(valley_core::PhysAddr::new(black_box(
                0x2bad_f00d & 0x3fff_ffff,
            ))))
        })
    });

    // Scheme construction (rejection sampling until invertible).
    c.bench_function("build_pae_mapper", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(AddressMapper::build(SchemeKind::Pae, &map, seed))
        })
    });
}

criterion_group!(benches, bim_throughput);
criterion_main!(benches);
