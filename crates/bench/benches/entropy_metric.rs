//! Criterion bench: the window-based entropy metric (Section III) —
//! per-bit sliding-window cost and a whole-application profile.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use valley_core::entropy::{window_entropy, window_entropy_method, Bvr, EntropyMethod, TbBitStats};
use valley_workloads::{analysis, Benchmark, Scale};

fn entropy_metric(c: &mut Criterion) {
    // One address bit over 1024 TBs, window 12 (the paper's setup).
    let bvrs: Vec<Bvr> = (0..1024u64).map(|i| Bvr::new(i % 13, 16)).collect();
    c.bench_function("window_entropy_1024tbs_w12_mixture", |b| {
        b.iter(|| black_box(window_entropy(black_box(&bvrs), 12)))
    });
    c.bench_function("window_entropy_1024tbs_w12_distinct", |b| {
        b.iter(|| {
            black_box(window_entropy_method(
                black_box(&bvrs),
                12,
                EntropyMethod::DistinctBvr,
            ))
        })
    });

    // A wide window (the 3D-stacked configuration runs 64+ SMs, and the
    // window-size ablation sweeps to 128): the regime where the rolling
    // O(n) implementation's asymptotic win over O(n·w) shows fully.
    c.bench_function("window_entropy_1024tbs_w128_mixture", |b| {
        b.iter(|| black_box(window_entropy(black_box(&bvrs), 128)))
    });
    c.bench_function("window_entropy_1024tbs_w128_distinct", |b| {
        b.iter(|| {
            black_box(window_entropy_method(
                black_box(&bvrs),
                128,
                EntropyMethod::DistinctBvr,
            ))
        })
    });

    // Recording cost: one 30-bit address into a TB's bit statistics.
    c.bench_function("tb_bitstats_record", |b| {
        let mut stats = TbBitStats::new(0, 30);
        let mut a = 0x1357_9bdfu64;
        b.iter(|| {
            a = a.wrapping_mul(0x9e37_79b9) & 0x3fff_ffff;
            stats.record(black_box(a));
        })
    });

    // A full Figure-5 panel at test scale (trace walk + 30-bit analysis).
    c.bench_function("application_profile_mt_test", |b| {
        let w = Benchmark::Mt.workload(Scale::Test);
        b.iter(|| black_box(analysis::application_profile(black_box(&w), 12, None)))
    });
}

/// The vectorized compute plane against its scalar oracles: transposed
/// all-bits-at-once BVR accumulation vs 30 per-bit scans, and the
/// bit-major window-entropy sweep with reused scratch.
fn compute_sweeps(c: &mut Criterion) {
    use valley_compute::{backend, BvrTable, ComputeScratch};

    let addrs: Vec<u64> = {
        let mut a = 0x1357_9bdfu64;
        (0..4096)
            .map(|_| {
                a = a.wrapping_mul(0x9e37_79b9) & 0x3fff_ffff;
                a
            })
            .collect()
    };

    // Scalar oracle: TbBitStats::record loops all 30 bits per address.
    c.bench_function("bvr_accumulate_4096addrs_scalar", |b| {
        b.iter(|| {
            let mut stats = TbBitStats::new(0, 30);
            for &a in &addrs {
                stats.record(black_box(a));
            }
            black_box(stats.requests())
        })
    });
    c.bench_function("bvr_accumulate_4096addrs_bitsliced", |b| {
        let mut scratch = ComputeScratch::new();
        b.iter(|| {
            let mut ones = [0u64; 30];
            backend().bvr_sweep(black_box(&addrs), &mut ones, &mut scratch);
            black_box(ones[29])
        })
    });

    // All 30 bit rows of a 1024-TB kernel in one sweep (the fig05/fig10
    // inner loop after the profiler rewire).
    let rows: Vec<Vec<Bvr>> = (0..30)
        .map(|bit| (0..1024u64).map(|i| Bvr::new((i + bit) % 13, 16)).collect())
        .collect();
    let table = BvrTable::from_bit_rows(&rows, 1024);
    c.bench_function("window_entropy_sweep_30bits_1024tbs_w12", |b| {
        let mut scratch = ComputeScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            backend().window_entropy_sweep(
                black_box(&table),
                12,
                EntropyMethod::MixtureBvr,
                &mut out,
                &mut scratch,
            );
            black_box(out.last().copied())
        })
    });
}

criterion_group!(benches, entropy_metric, compute_sweeps);
criterion_main!(benches);
