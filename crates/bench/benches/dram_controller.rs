//! Criterion bench: the FR-FCFS GDDR5 channel under three canonical
//! streams — row-hit, row-conflict and bank-parallel — measuring the
//! simulator-side cost of the DRAM substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use valley_dram::{DramChannel, DramConfig, DramRequest};

fn drive(pattern: impl Fn(u64) -> (usize, usize)) -> u64 {
    let mut ch = DramChannel::new(DramConfig::gddr5());
    let mut next = 0u64;
    let mut done = 0u64;
    let mut cycle = 0u64;
    let mut buf = Vec::new();
    while done < 512 {
        if next < 512 {
            let (bank, row) = pattern(next);
            if ch.try_enqueue(DramRequest {
                id: next,
                bank,
                row,
                is_write: next.is_multiple_of(4),
                arrival: cycle,
            }) {
                next += 1;
            }
        }
        buf.clear();
        ch.tick(cycle, &mut buf);
        done += buf.len() as u64;
        cycle += 1;
    }
    cycle
}

fn dram_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_512_requests");
    group.bench_function("row_hits", |b| b.iter(|| black_box(drive(|_| (0, 5)))));
    group.bench_function("row_conflicts", |b| {
        b.iter(|| black_box(drive(|i| (0, (i % 2) as usize))))
    });
    group.bench_function("bank_parallel", |b| {
        b.iter(|| black_box(drive(|i| ((i % 16) as usize, (i / 16) as usize))))
    });
    group.finish();
}

criterion_group!(benches, dram_controller);
criterion_main!(benches);
