//! Criterion bench: full-system simulation throughput — one small (test
//! scale) benchmark per mapping scheme, end to end. This is the knob that
//! bounds how large the Ref-scale experiment sweeps can be.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_sim::{GpuConfig, GpuSim};
use valley_workloads::{Benchmark, Scale};

fn run(bench: Benchmark, scheme: SchemeKind) -> u64 {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, 1);
    let sim = GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(bench.workload(Scale::Test)),
    );
    sim.run().cycles
}

fn end_to_end_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_test_scale");
    group.sample_size(10);
    for scheme in [
        SchemeKind::Base,
        SchemeKind::Pm,
        SchemeKind::Pae,
        SchemeKind::Fae,
    ] {
        group.bench_function(format!("mt_{}", scheme.label()), |b| {
            b.iter(|| black_box(run(Benchmark::Mt, scheme)))
        });
    }
    group.bench_function("sp_base", |b| {
        b.iter(|| black_box(run(Benchmark::Sp, SchemeKind::Base)))
    });
    group.bench_function("mum_pae", |b| {
        b.iter(|| black_box(run(Benchmark::Mum, SchemeKind::Pae)))
    });
    group.finish();
}

criterion_group!(benches, end_to_end_small);
criterion_main!(benches);
