//! Golden tests pinning figure output across the harness refactor.
//!
//! The snapshot files under `tests/golden/` were captured from the
//! *pre-refactor* binaries (commit `8d907f2`, direct `run_suite` driver,
//! Test scale). The harness-backed paths must reproduce them
//! byte-for-byte — both on a cold store (fresh simulation through the
//! work-stealing pool) and on a warm store (pure cache read through the
//! JSON round trip), so the store's serialization provably does not
//! perturb a single digit of any figure.

use valley_bench::{all_schemes, figures, run_suite_with_store};
use valley_harness::ResultStore;
use valley_workloads::{Benchmark, Scale};

const FIG12_TITLE: &str = "Figure 12: speedup over BASE (valley benchmarks)";

#[test]
fn fig02_output_is_byte_identical_to_pre_refactor_snapshot() {
    assert_eq!(
        figures::fig02_text(),
        include_str!("golden/fig02_motivation.txt")
    );
}

#[test]
fn fig03_output_is_byte_identical_to_pre_compute_snapshot() {
    // Captured from the scalar `window_entropy` path before the sweep
    // moved behind the valley-compute backend.
    assert_eq!(
        figures::fig03_text(),
        include_str!("golden/fig03_window_entropy.txt")
    );
}

#[test]
fn fig12_harness_output_is_byte_identical_cold_and_cached() {
    let golden = include_str!("golden/fig12_speedup_test_scale.txt");
    let dir = std::env::temp_dir().join(format!("valley-golden-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let store = ResultStore::open(&dir).expect("store opens");

    // Cold: every job simulated through the harness pool.
    let suite = run_suite_with_store(&Benchmark::VALLEY, &all_schemes(), Scale::Test, &store);
    assert_eq!(
        figures::fig12_text(&suite, FIG12_TITLE),
        golden,
        "cold harness suite diverges from the pre-refactor snapshot"
    );

    // Warm: the same grid served exclusively from the store (reopened,
    // so the reports have been through the JSON round trip on disk).
    drop(store);
    let store = ResultStore::open(&dir).expect("store reopens");
    assert_eq!(store.len(), Benchmark::VALLEY.len() * all_schemes().len());
    let cached = run_suite_with_store(&Benchmark::VALLEY, &all_schemes(), Scale::Test, &store);
    assert_eq!(
        figures::fig12_text(&cached, FIG12_TITLE),
        golden,
        "cached (store-served) suite diverges from the pre-refactor snapshot"
    );

    std::fs::remove_dir_all(&dir).ok();
}
