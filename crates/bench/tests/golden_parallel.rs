//! Golden tests re-run under `VALLEY_SIM_THREADS=4`: the phase-parallel
//! engine must reproduce the committed fig02/fig12 snapshots byte for
//! byte, pinning the determinism guarantee at the figure level in both
//! execution modes (sequential golden runs live in `golden_figures.rs`).
//!
//! This lives in its own integration-test binary so the environment
//! variable cannot leak into other test binaries' processes. Both tests
//! set the variable (idempotently) because test execution order within
//! the binary is not guaranteed.

use valley_bench::{all_schemes, figures, run_suite_with_store};
use valley_harness::ResultStore;
use valley_workloads::{Benchmark, Scale};

const FIG12_TITLE: &str = "Figure 12: speedup over BASE (valley benchmarks)";

fn enable_parallel_sim() {
    std::env::set_var("VALLEY_SIM_THREADS", "4");
}

#[test]
fn fig02_output_is_byte_identical_under_parallel_sim() {
    enable_parallel_sim();
    assert_eq!(
        figures::fig02_text(),
        include_str!("golden/fig02_motivation.txt"),
        "fig02 under VALLEY_SIM_THREADS=4 diverges from the golden snapshot"
    );
}

#[test]
fn fig12_output_is_byte_identical_under_parallel_sim() {
    enable_parallel_sim();
    let golden = include_str!("golden/fig12_speedup_test_scale.txt");
    let dir = std::env::temp_dir().join(format!("valley-golden-par-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Cold: every job simulated on the phase-parallel engine.
    let store = ResultStore::open(&dir).expect("store opens");
    let suite = run_suite_with_store(&Benchmark::VALLEY, &all_schemes(), Scale::Test, &store);
    assert_eq!(
        figures::fig12_text(&suite, FIG12_TITLE),
        golden,
        "cold parallel-engine suite diverges from the golden snapshot"
    );

    // Warm: served from the store written by parallel runs (the stored
    // bytes must be indistinguishable from sequential ones).
    drop(store);
    let store = ResultStore::open(&dir).expect("store reopens");
    assert_eq!(store.len(), Benchmark::VALLEY.len() * all_schemes().len());
    let cached = run_suite_with_store(&Benchmark::VALLEY, &all_schemes(), Scale::Test, &store);
    assert_eq!(
        figures::fig12_text(&cached, FIG12_TITLE),
        golden,
        "store-served parallel-engine suite diverges from the golden snapshot"
    );

    std::fs::remove_dir_all(&dir).ok();
}
