//! Binary Invertible Matrices (BIMs) over GF(2).
//!
//! The paper observes (Section IV-A) that every one-to-one address mapping
//! built from AND and XOR operations can be written as a matrix–vector
//! product over GF(2): `a_out = BIM × a_in`, where multiplication is AND and
//! addition is XOR. Invertibility of the matrix guarantees the mapping is a
//! bijection on the address space, so no two input addresses collide.
//!
//! A [`Bim`] of dimension `n ≤ 64` stores one `u64` mask per output bit:
//! output bit `i` is the XOR (parity) of the input bits selected by
//! `row(i)`. This is exactly the hardware realization in Figure 7 — input
//! lines selected where the matrix has ones, combined by a tree of XOR
//! gates — so [`Bim::apply`] also serves as a faithful cost model for the
//! mapping unit.

use std::fmt;

/// Errors produced when constructing a [`Bim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BimError {
    /// The requested dimension is zero or exceeds 64 bits.
    Dimension(usize),
    /// A row mask selects input bits at or above the matrix dimension.
    RowOutOfRange {
        /// Index of the offending row.
        row: usize,
        /// The offending mask.
        mask: u64,
    },
    /// The matrix is singular (rank < n), so it cannot represent a
    /// one-to-one address mapping.
    Singular,
}

impl fmt::Display for BimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BimError::Dimension(n) => write!(f, "invalid BIM dimension {n} (must be 1..=64)"),
            BimError::RowOutOfRange { row, mask } => {
                write!(
                    f,
                    "row {row} mask {mask:#x} selects bits outside the matrix"
                )
            }
            BimError::Singular => write!(f, "matrix is singular over GF(2)"),
        }
    }
}

impl std::error::Error for BimError {}

/// A square binary matrix over GF(2), stored row-wise as bit masks.
///
/// # Examples
///
/// The Broad-strategy example of Figure 6d/6e (5-bit address
/// `r2 r1 r0 c b`, with the new channel bit `c_out = r2 ⊕ r1 ⊕ r0 ⊕ c`):
///
/// ```
/// use valley_core::Bim;
///
/// // Bit order (LSB first): b=0, c=1, r0=2, r1=3, r2=4.
/// let mut m = Bim::identity(5);
/// m.set_row(1, 0b11110); // c_out = r2^r1^r0^c
/// m.set_row(0, 0b01101); // b_out = r1^r0^b
/// assert!(m.is_invertible());
///
/// let inv = m.inverse().unwrap();
/// let addr = 0b10110;
/// assert_eq!(inv.apply(m.apply(addr)), addr);
/// ```
#[derive(Clone)]
pub struct Bim {
    n: u8,
    rows: Vec<u64>,
    /// Cached: bits whose row is the identity row (`row(i) == 1 << i`).
    /// `apply` copies them with one AND instead of a parity reduction.
    identity_mask: u64,
    /// Cached: the non-identity rows as `(output bit, mask)` pairs — the
    /// only rows that need XOR-tree evaluation in `apply`. Mapping schemes
    /// modify a handful of target bits, so this is short (empty for BASE).
    special: Vec<(u8, u64)>,
}

impl PartialEq for Bim {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.rows == other.rows
    }
}

impl Eq for Bim {}

impl std::hash::Hash for Bim {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.rows.hash(state);
    }
}

impl Bim {
    /// The identity matrix of dimension `n` (the BASE mapping).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 64.
    pub fn identity(n: u8) -> Self {
        assert!((1..=64).contains(&n), "BIM dimension must be 1..=64");
        Bim::from_parts(n, (0..n).map(|i| 1u64 << i).collect())
    }

    /// Internal constructor: builds the `apply` fast-path cache.
    fn from_parts(n: u8, rows: Vec<u64>) -> Self {
        let mut bim = Bim {
            n,
            rows,
            identity_mask: 0,
            special: Vec::new(),
        };
        bim.rebuild_cache();
        bim
    }

    fn rebuild_cache(&mut self) {
        self.identity_mask = 0;
        self.special.clear();
        for (i, &mask) in self.rows.iter().enumerate() {
            if mask == 1u64 << i {
                self.identity_mask |= 1u64 << i;
            } else {
                self.special.push((i as u8, mask));
            }
        }
    }

    /// Builds a matrix from explicit row masks (row `i` produces output
    /// bit `i`). The matrix is *not* required to be invertible here; use
    /// [`Bim::is_invertible`] or [`Bim::checked_invertible`] to validate.
    ///
    /// # Errors
    ///
    /// Returns [`BimError::Dimension`] for invalid sizes and
    /// [`BimError::RowOutOfRange`] if a mask selects bits at or above `n`.
    pub fn from_rows(rows: Vec<u64>) -> Result<Self, BimError> {
        let n = rows.len();
        if n == 0 || n > 64 {
            return Err(BimError::Dimension(n));
        }
        let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        for (i, &mask) in rows.iter().enumerate() {
            if mask & !limit != 0 {
                return Err(BimError::RowOutOfRange { row: i, mask });
            }
        }
        Ok(Bim::from_parts(n as u8, rows))
    }

    /// Like [`Bim::from_rows`] but additionally requires invertibility.
    ///
    /// # Errors
    ///
    /// Returns [`BimError::Singular`] for singular matrices, plus the
    /// errors of [`Bim::from_rows`].
    pub fn checked_invertible(rows: Vec<u64>) -> Result<Self, BimError> {
        let m = Bim::from_rows(rows)?;
        if m.is_invertible() {
            Ok(m)
        } else {
            Err(BimError::Singular)
        }
    }

    /// The dimension of the matrix.
    #[inline]
    pub fn n(&self) -> u8 {
        self.n
    }

    /// The mask of input bits feeding output bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[inline]
    pub fn row(&self, i: u8) -> u64 {
        self.rows[i as usize]
    }

    /// The cached mask of output bits whose row is the identity row
    /// (`row(i) == 1 << i`). [`Bim::apply`] copies these bits with a single
    /// AND; batch kernels (`valley-compute`) use the same cache to copy
    /// identity planes instead of XOR-reducing them.
    #[inline]
    pub fn identity_rows_mask(&self) -> u64 {
        self.identity_mask
    }

    /// The cached non-identity rows as `(output bit, mask)` pairs — the only
    /// rows that need parity evaluation. Sorted by output bit.
    #[inline]
    pub fn special_rows(&self) -> &[(u8, u64)] {
        &self.special
    }

    /// Replaces the row for output bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or if `mask` selects bits at or above `n`.
    pub fn set_row(&mut self, i: u8, mask: u64) {
        assert!(i < self.n, "row index out of range");
        let limit = if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        };
        assert!(mask & !limit == 0, "row mask selects bits outside matrix");
        self.rows[i as usize] = mask;
        self.rebuild_cache();
    }

    /// Applies the matrix to an address: output bit `i` is the parity of
    /// the input bits selected by row `i`.
    ///
    /// This mirrors the single-cycle XOR-tree hardware of Figure 7.
    #[inline]
    pub fn apply(&self, addr: u64) -> u64 {
        let mut out = addr & self.identity_mask;
        for &(i, mask) in &self.special {
            out |= (((mask & addr).count_ones() as u64) & 1) << i;
        }
        out
    }

    /// The rank of the matrix over GF(2).
    pub fn rank(&self) -> u8 {
        let mut rows = self.rows.clone();
        let mut rank = 0u8;
        for col in 0..self.n {
            let pivot = (rank as usize..rows.len()).find(|&r| rows[r] >> col & 1 == 1);
            if let Some(p) = pivot {
                rows.swap(rank as usize, p);
                let pivot_row = rows[rank as usize];
                for (r, row) in rows.iter_mut().enumerate() {
                    if r != rank as usize && *row >> col & 1 == 1 {
                        *row ^= pivot_row;
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Whether the matrix is invertible (full rank over GF(2)).
    pub fn is_invertible(&self) -> bool {
        self.rank() == self.n
    }

    /// Whether this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, &m)| m == 1u64 << i)
    }

    /// Computes the inverse matrix, or `None` if singular.
    ///
    /// The inverse is the decode direction: hardware that must recover the
    /// original address (e.g. for debugging or refresh bookkeeping) applies
    /// the inverse BIM, which is again a tree of XOR gates.
    pub fn inverse(&self) -> Option<Bim> {
        // Gauss-Jordan over GF(2) with an augmented identity.
        let n = self.n as usize;
        let mut a = self.rows.clone();
        let mut inv: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
        for col in 0..n {
            let pivot = (col..n).find(|&r| a[r] >> col & 1 == 1)?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let (pa, pi) = (a[col], inv[col]);
            for r in 0..n {
                if r != col && a[r] >> col & 1 == 1 {
                    a[r] ^= pa;
                    inv[r] ^= pi;
                }
            }
        }
        Some(Bim::from_parts(self.n, inv))
    }

    /// Matrix product `self × other` (apply `other` first, then `self`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn compose(&self, other: &Bim) -> Bim {
        assert_eq!(self.n, other.n, "BIM dimensions must match");
        // Row i of the product selects input bits via other's rows.
        let rows = self
            .rows
            .iter()
            .map(|&mask| {
                let mut acc = 0u64;
                let mut m = mask;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    acc ^= other.rows[j];
                    m &= m - 1;
                }
                acc
            })
            .collect();
        Bim::from_parts(self.n, rows)
    }

    /// The number of ones in the matrix — a proxy for the XOR-gate count of
    /// the hardware realization (each row with `k` ones needs `k-1`
    /// two-input XOR gates).
    pub fn popcount(&self) -> u32 {
        self.rows.iter().map(|r| r.count_ones()).sum()
    }

    /// An estimate of the two-input XOR gates required in hardware.
    pub fn xor_gate_count(&self) -> u32 {
        self.rows
            .iter()
            .map(|r| r.count_ones().saturating_sub(1))
            .sum()
    }

    /// XOR-tree depth of the widest row — the critical path of the mapping
    /// unit in gate levels (ceil(log2(k)) for a row with k inputs).
    pub fn xor_tree_depth(&self) -> u32 {
        self.rows
            .iter()
            .map(|r| {
                let k = r.count_ones();
                if k <= 1 {
                    0
                } else {
                    32 - (k - 1).leading_zeros()
                }
            })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Debug for Bim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Bim(n={}) [msb row first]", self.n)?;
        for i in (0..self.n).rev() {
            writeln!(
                f,
                "  out[{:2}] <- {:0width$b}",
                i,
                self.rows[i as usize],
                width = self.n as usize
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for Bim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let id = Bim::identity(30);
        assert!(id.is_identity());
        assert!(id.is_invertible());
        assert_eq!(id.rank(), 30);
        for &a in &[0u64, 1, 0x2aaa_aaaa, 0x3fff_ffff] {
            assert_eq!(id.apply(a), a);
        }
    }

    #[test]
    fn figure6_broad_example() {
        // Figure 6d/6e, bit order LSB first: b=0, c=1, r0=2, r1=3, r2=4.
        let m = Bim::checked_invertible(vec![
            0b01101, // b_out = r1 ^ r0 ^ b
            0b11110, // c_out = r2 ^ r1 ^ r0 ^ c
            0b00100, // r0
            0b01000, // r1
            0b10000, // r2
        ])
        .unwrap();
        // Figure 6e: input (r2,r1,r0,c,b) = ... the mapping only rewrites
        // c and b. Check a concrete vector: r2=1,r1=1,r0=1,c=0,b=0.
        let a = 0b11100u64;
        let out = m.apply(a);
        // c_out = 1^1^1^0 = 1; b_out = 1^1^0 = 0; r bits unchanged.
        assert_eq!(out, 0b11110);
    }

    #[test]
    fn figure2_bim_example() {
        // Figure 2c: the 6x6 BIM (shown MSB-row first in the paper):
        //   1 0 0 0 0 0
        //   0 1 0 0 0 0
        //   0 0 1 0 0 0
        //   0 0 0 1 0 0
        //   1 0 1 0 1 0
        //   1 1 1 0 0 1
        // With paper columns ordered MSB..LSB, convert to LSB-first masks.
        // Paper row k (from top, k=0 is MSB output) has ones in columns
        // (from left, col 0 is MSB input).
        let paper_rows = [
            [1, 0, 0, 0, 0, 0],
            [0, 1, 0, 0, 0, 0],
            [0, 0, 1, 0, 0, 0],
            [0, 0, 0, 1, 0, 0],
            [1, 0, 1, 0, 1, 0],
            [1, 1, 1, 0, 0, 1],
        ];
        let n = 6;
        let mut rows = vec![0u64; n];
        for (k, cols) in paper_rows.iter().enumerate() {
            let out_bit = n - 1 - k; // paper row 0 produces the MSB
            for (c, &v) in cols.iter().enumerate() {
                if v == 1 {
                    let in_bit = n - 1 - c;
                    rows[out_bit] |= 1 << in_bit;
                }
            }
        }
        let m = Bim::checked_invertible(rows).unwrap();
        // Paper: 111000 -> 111001.
        assert_eq!(m.apply(0b111000), 0b111001);
        // And the full TB-CM0 request set becomes perfectly channel-balanced
        // (Figure 2e): channel bits are the two LSBs here.
        let tb_cm0: [u64; 8] = [
            0b000000, 0b001000, 0b010000, 0b011000, 0b100000, 0b101000, 0b110000, 0b111000,
        ];
        let mut chan_counts = [0usize; 4];
        for &a in &tb_cm0 {
            chan_counts[(m.apply(a) & 0b11) as usize] += 1;
        }
        assert_eq!(chan_counts, [2, 2, 2, 2]);
    }

    #[test]
    fn singular_matrix_detected() {
        // Two identical rows.
        let m = Bim::from_rows(vec![0b01, 0b01]).unwrap();
        assert!(!m.is_invertible());
        assert_eq!(m.rank(), 1);
        assert!(m.inverse().is_none());
        assert_eq!(
            Bim::checked_invertible(vec![0b01, 0b01]),
            Err(BimError::Singular)
        );
    }

    #[test]
    fn zero_row_is_singular() {
        let m = Bim::from_rows(vec![0b10, 0b00]).unwrap();
        assert!(!m.is_invertible());
    }

    #[test]
    fn inverse_roundtrip() {
        let mut m = Bim::identity(8);
        m.set_row(0, 0b1010_0001);
        m.set_row(3, 0b0100_1010);
        assert!(m.is_invertible());
        let inv = m.inverse().unwrap();
        for a in 0..256u64 {
            assert_eq!(inv.apply(m.apply(a)), a);
            assert_eq!(m.apply(inv.apply(a)), a);
        }
        // Composition with the inverse is the identity.
        assert!(m.compose(&inv).is_identity());
        assert!(inv.compose(&m).is_identity());
    }

    #[test]
    fn compose_matches_sequential_apply() {
        let mut a = Bim::identity(6);
        a.set_row(1, 0b110010);
        let mut b = Bim::identity(6);
        b.set_row(4, 0b010011);
        let ab = a.compose(&b);
        for addr in 0..64u64 {
            assert_eq!(ab.apply(addr), a.apply(b.apply(addr)));
        }
    }

    #[test]
    fn from_rows_validation() {
        assert_eq!(Bim::from_rows(vec![]), Err(BimError::Dimension(0)));
        assert_eq!(
            Bim::from_rows(vec![0b100, 0b001]),
            Err(BimError::RowOutOfRange {
                row: 0,
                mask: 0b100
            })
        );
    }

    #[test]
    fn hardware_cost_metrics() {
        let mut m = Bim::identity(6);
        assert_eq!(m.xor_gate_count(), 0);
        assert_eq!(m.xor_tree_depth(), 0);
        m.set_row(0, 0b111111); // 6 inputs -> 5 gates, depth 3
        assert_eq!(m.xor_gate_count(), 5);
        assert_eq!(m.xor_tree_depth(), 3);
        assert_eq!(m.popcount(), 5 + 6);
    }

    #[test]
    fn bijectivity_exhaustive_small() {
        // An invertible matrix must permute the whole space.
        let mut m = Bim::identity(10);
        m.set_row(2, 0b11_0000_0100);
        m.set_row(7, 0b10_1010_0000);
        assert!(m.is_invertible());
        let mut seen = vec![false; 1 << 10];
        for a in 0..(1u64 << 10) {
            let out = m.apply(a) as usize;
            assert!(!seen[out], "collision at {a}");
            seen[out] = true;
        }
    }

    #[test]
    fn error_display() {
        let e = BimError::Singular;
        assert_eq!(e.to_string(), "matrix is singular over GF(2)");
    }
}
