//! A fast multiplicative hasher for simulator-internal integer keys.
//!
//! Hot paths (the MSHR files, the rolling entropy count-map) hash small
//! fixed-size keys millions of times per run. The keys are simulator
//! data, not attacker-controlled, so SipHash's DoS hardening is wasted
//! cost there; this SplitMix64-style mix is a few instructions per word.

use std::hash::{BuildHasherDefault, Hasher};

/// A non-cryptographic hasher for small integer-structured keys.
#[derive(Default)]
pub struct FastHasher(u64);

/// `BuildHasher` for [`FastHasher`], for `HashMap::with_hasher` use.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` with the deterministic [`FastHasher`]. Unlike the default
/// `RandomState`, iteration order is a pure function of the insertion
/// sequence — no per-process seed — which is what `valley-lint`'s
/// `default-hasher` rule demands of every map in the workspace. Order is
/// still arbitrary: sort before letting it reach output.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` with the deterministic [`FastHasher`]; see [`FastMap`].
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut h = (self.0 ^ x).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distributes_and_roundtrips() {
        let mut m: HashMap<u64, u64, FastBuildHasher> = HashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
    }
}
