//! Steady-state allocation auditing (feature `alloc-audit`).
//!
//! The engine contract says the tick loops allocate nothing once
//! warmed up: per-tick component APIs append into caller-provided
//! buffers that reach their high-water mark during warmup. This module
//! gives that claim runtime teeth. A counting `#[global_allocator]` in
//! the audit test binary reports every heap allocation to [`on_alloc`];
//! the drive loops report their cycle to [`note_cycle`]; and the few
//! *legitimate* allocation sites inside the measured window — workload
//! instruction generation handing over fresh lane-address vectors,
//! transaction-arena growth, kernel loading — bracket themselves with
//! [`pause`], declaring "this is input generation or pool growth, not
//! engine work". The audit tests then assert the engine allocates
//! **zero** bytes over the back quarter of a run.
//!
//! With the feature disabled (the default), every function here is an
//! empty `#[inline]` body: the hot loops carry no cost.
//!
//! The counters are process-global, so audit tests must serialize (the
//! test binary uses a mutex) and run the engine single-threaded.

#[cfg(feature = "alloc-audit")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    /// Allocations observed while armed and unpaused (the violations).
    pub static SPAN_ALLOCS: AtomicU64 = AtomicU64::new(0);
    /// Allocations observed while armed but paused (the declared sites).
    pub static PAUSED_ALLOCS: AtomicU64 = AtomicU64::new(0);
    /// All allocations since process start (proves the counter works).
    pub static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
    /// Cycle window [start, end) in which the audit is armed.
    pub static WINDOW_START: AtomicU64 = AtomicU64::new(u64::MAX);
    pub static WINDOW_END: AtomicU64 = AtomicU64::new(u64::MAX);
    pub static ARMED: AtomicBool = AtomicBool::new(false);
    pub static PAUSE_DEPTH: AtomicUsize = AtomicUsize::new(0);

    pub fn relaxed() -> Ordering {
        Ordering::Relaxed
    }
}

/// RAII guard from [`pause`]; allocations while any guard lives are
/// counted as declared, not as violations.
#[must_use]
pub struct PauseGuard(());

impl Drop for PauseGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "alloc-audit")]
        imp::PAUSE_DEPTH.fetch_sub(1, imp::relaxed());
    }
}

/// Declares a legitimate allocation region (input generation, pool
/// growth) inside the measured window.
#[inline]
pub fn pause() -> PauseGuard {
    #[cfg(feature = "alloc-audit")]
    imp::PAUSE_DEPTH.fetch_add(1, imp::relaxed());
    PauseGuard(())
}

/// Called by the audit test's global allocator on every allocation.
#[inline]
pub fn on_alloc() {
    #[cfg(feature = "alloc-audit")]
    {
        imp::TOTAL_ALLOCS.fetch_add(1, imp::relaxed());
        if imp::ARMED.load(imp::relaxed()) {
            if imp::PAUSE_DEPTH.load(imp::relaxed()) == 0 {
                imp::SPAN_ALLOCS.fetch_add(1, imp::relaxed());
            } else {
                imp::PAUSED_ALLOCS.fetch_add(1, imp::relaxed());
            }
        }
    }
}

/// Sets the audited cycle window `[start, end)` and clears the span
/// counters. Call before running the engine.
#[inline]
pub fn set_window(start: u64, end: u64) {
    #[cfg(not(feature = "alloc-audit"))]
    let _ = (start, end);
    #[cfg(feature = "alloc-audit")]
    {
        imp::SPAN_ALLOCS.store(0, imp::relaxed());
        imp::PAUSED_ALLOCS.store(0, imp::relaxed());
        imp::WINDOW_START.store(start, imp::relaxed());
        imp::WINDOW_END.store(end, imp::relaxed());
        imp::ARMED.store(false, imp::relaxed());
    }
}

/// Drive-loop hook: arms/disarms the audit as `cycle` crosses the
/// window bounds. Called once per outer loop iteration.
#[inline]
pub fn note_cycle(cycle: u64) {
    #[cfg(not(feature = "alloc-audit"))]
    let _ = cycle;
    #[cfg(feature = "alloc-audit")]
    {
        let armed = imp::ARMED.load(imp::relaxed());
        if !armed {
            if cycle >= imp::WINDOW_START.load(imp::relaxed())
                && cycle < imp::WINDOW_END.load(imp::relaxed())
            {
                imp::ARMED.store(true, imp::relaxed());
            }
        } else if cycle >= imp::WINDOW_END.load(imp::relaxed()) {
            imp::ARMED.store(false, imp::relaxed());
        }
    }
}

/// Drive-loop hook: unconditionally disarms (loop exit — everything
/// after, report building included, is allowed to allocate).
#[inline]
pub fn window_close() {
    #[cfg(feature = "alloc-audit")]
    imp::ARMED.store(false, imp::relaxed());
}

/// Whether an allocation right now would count as a violation (armed
/// window, no pause guard live). Lets the audit allocator itself
/// capture diagnostics — e.g. a backtrace — at the violating site.
#[inline]
pub fn violation_imminent() -> bool {
    #[cfg(feature = "alloc-audit")]
    return imp::ARMED.load(imp::relaxed()) && imp::PAUSE_DEPTH.load(imp::relaxed()) == 0;
    #[cfg(not(feature = "alloc-audit"))]
    false
}

/// Violations: allocations seen while armed and unpaused.
#[inline]
pub fn span_allocs() -> u64 {
    #[cfg(feature = "alloc-audit")]
    return imp::SPAN_ALLOCS.load(imp::relaxed());
    #[cfg(not(feature = "alloc-audit"))]
    0
}

/// Declared allocations seen while armed (paused regions).
#[inline]
pub fn paused_allocs() -> u64 {
    #[cfg(feature = "alloc-audit")]
    return imp::PAUSED_ALLOCS.load(imp::relaxed());
    #[cfg(not(feature = "alloc-audit"))]
    0
}

/// All allocations since process start.
#[inline]
pub fn total_allocs() -> u64 {
    #[cfg(feature = "alloc-audit")]
    return imp::TOTAL_ALLOCS.load(imp::relaxed());
    #[cfg(not(feature = "alloc-audit"))]
    0
}
