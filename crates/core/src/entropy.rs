//! Window-based address-bit entropy (Section III).
//!
//! GPU-compute workloads are so concurrent that any entropy metric relying
//! on request *ordering* is unreliable — requests from different thread
//! blocks (TBs) interleave arbitrarily. The paper's metric instead:
//!
//! 1. computes, per TB and per address bit, the **Bit Value Ratio**
//!    ([`Bvr`]): the fraction of 1-values of that bit across the TB's
//!    memory requests (order-free);
//! 2. sorts TBs by identifier (the TB scheduler issues them in order);
//! 3. slides a window of `w` TBs (`w` ≈ the number of TBs co-executing,
//!    heuristically the SM count) and computes the Shannon entropy of the
//!    distinct BVR values inside each window, with logarithm base `v` =
//!    the number of distinct values (Equation 1, so H ∈ [0, 1]);
//! 4. averages the per-window entropies over all `n − w + 1` windows
//!    (Equation 2) to obtain the window-based entropy `H*` of the bit;
//! 5. combines kernels into an application profile by weighting each
//!    kernel's per-bit `H*` with its request count.

use crate::hash::FastBuildHasher;
use std::collections::HashMap;

type BvrCounts = HashMap<Bvr, u32, FastBuildHasher>;

/// A Bit Value Ratio: the fraction of requests in a TB for which a given
/// address bit is 1, kept as an exact reduced fraction so that equality
/// between windows is exact (floats would make "distinct BVR values"
/// fragile).
///
/// # Examples
///
/// ```
/// use valley_core::entropy::Bvr;
///
/// assert_eq!(Bvr::new(2, 4), Bvr::new(1, 2));
/// assert_eq!(Bvr::new(2, 4).value(), 0.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bvr {
    ones: u64,
    total: u64,
}

impl Bvr {
    /// Creates the ratio `ones / total`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or `ones > total`.
    pub fn new(ones: u64, total: u64) -> Self {
        assert!(total > 0, "BVR requires at least one request");
        assert!(ones <= total, "BVR cannot exceed 1");
        let g = gcd(ones.max(1), total);
        if ones == 0 {
            Bvr { ones: 0, total: 1 }
        } else {
            Bvr {
                ones: ones / g,
                total: total / g,
            }
        }
    }

    /// The ratio as a floating-point number in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.ones as f64 / self.total as f64
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Shannon entropy of a discrete distribution with logarithm base `v`
/// (= the number of outcomes), per Equation 1. Returns a value in `[0, 1]`;
/// a single outcome has zero entropy by convention.
///
/// # Examples
///
/// The paper's footnote 1: a window of three TBs where two have BVR 0 and
/// one has BVR 1 — two unique values with probabilities 2/3 and 1/3:
///
/// ```
/// use valley_core::entropy::shannon_entropy;
///
/// let h = shannon_entropy(&[2.0 / 3.0, 1.0 / 3.0]);
/// assert!((h - 0.92).abs() < 0.005);
/// ```
pub fn shannon_entropy(probs: &[f64]) -> f64 {
    let v = probs.len();
    if v <= 1 {
        return 0.0;
    }
    let ln_v = (v as f64).ln();
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * (p.ln() / ln_v))
        .sum::<f64>()
}

/// Per-TB, per-bit 1-value counts — the raw material of the BVR.
///
/// Build one per TB, feed it every (post-coalescing) request address the
/// TB issues, then hand the collection to [`kernel_entropy`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TbBitStats {
    tb_id: u64,
    requests: u64,
    ones: Vec<u64>,
}

impl TbBitStats {
    /// Creates empty statistics for TB `tb_id` over `addr_bits` address bits.
    pub fn new(tb_id: u64, addr_bits: u8) -> Self {
        TbBitStats {
            tb_id,
            requests: 0,
            ones: vec![0; addr_bits as usize],
        }
    }

    /// Builds statistics from an iterator of request addresses.
    pub fn from_addrs<I: IntoIterator<Item = u64>>(tb_id: u64, addr_bits: u8, addrs: I) -> Self {
        let mut s = TbBitStats::new(tb_id, addr_bits);
        for a in addrs {
            s.record(a);
        }
        s
    }

    /// Builds statistics from pre-accumulated per-bit 1-counts, e.g. the
    /// transposed-tile BVR sweep in `valley-compute`. `ones[b]` is the
    /// number of the `requests` addresses with bit `b` set.
    ///
    /// # Panics
    ///
    /// Panics if any count exceeds `requests`.
    pub fn from_counts(tb_id: u64, requests: u64, ones: Vec<u64>) -> Self {
        assert!(
            ones.iter().all(|&c| c <= requests),
            "per-bit 1-count exceeds the request count"
        );
        TbBitStats {
            tb_id,
            requests,
            ones,
        }
    }

    /// Records one request address.
    #[inline]
    pub fn record(&mut self, addr: u64) {
        self.requests += 1;
        for (b, count) in self.ones.iter_mut().enumerate() {
            *count += (addr >> b) & 1;
        }
    }

    /// The TB identifier (used for sorting into scheduler order).
    pub fn tb_id(&self) -> u64 {
        self.tb_id
    }

    /// Number of requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Number of address bits tracked.
    pub fn addr_bits(&self) -> u8 {
        self.ones.len() as u8
    }

    /// The raw 1-count of address bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[inline]
    pub fn ones(&self, bit: u8) -> u64 {
        self.ones[bit as usize]
    }

    /// The BVR of address bit `bit`, or `None` if no requests were recorded.
    pub fn bvr(&self, bit: u8) -> Option<Bvr> {
        if self.requests == 0 {
            None
        } else {
            Some(Bvr::new(self.ones[bit as usize], self.requests))
        }
    }
}

/// How the per-window entropy `H_W` of Equation 2 is computed from the
/// window's BVR values. The paper's worked examples (Figure 3 and
/// footnote 1) only exercise BVRs of exactly 0 or 1, where both
/// interpretations coincide; they differ for fractional BVRs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EntropyMethod {
    /// Binary entropy of the window-mean BVR: the probability that an
    /// in-flight request has this bit set is the average of the TBs'
    /// BVRs, and `H_W` is the entropy of that Bernoulli variable. This
    /// captures both intra-TB entropy (a bit toggling inside every TB
    /// gives BVR 0.5 → H 1) and inter-TB entropy, matching the paper's
    /// framing of the two entropy sources — the default.
    #[default]
    MixtureBvr,
    /// Shannon entropy (log base v) over the *distinct BVR values* in
    /// the window, exactly as written in the paper's footnote 1. With
    /// idealized synthetic traces, identical fractional BVRs collapse to
    /// a single value and score zero, so this variant underestimates
    /// intra-TB entropy on perfectly regular patterns.
    DistinctBvr,
}

/// Binary (Bernoulli) entropy of probability `p`, in bits.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Resolution of the [`binary_entropy_fast`] lookup table: knots at
/// multiples of 2⁻¹⁶. A power of two keeps every dyadic rational — which
/// is what window means of 0/1-valued BVRs produce — exactly on a knot,
/// so those inputs return the *exact* entropy, bit for bit.
const BE_TABLE_INTERVALS: usize = 1 << 16;

/// Outside `[1/16, 15/16]` the curvature of H(p) blows up (H″ ~ 1/p) and
/// linear interpolation degrades, so the fast path falls back to the
/// exact formula there. Inside, the interpolation error is bounded by
/// max|H″|·h²/8 ≈ 7.2e-10 (h = 2⁻¹⁶, |H″| ≤ 1/(ln2·(1/16)(15/16))).
const BE_EXACT_BELOW: f64 = 1.0 / 16.0;
const BE_EXACT_ABOVE: f64 = 15.0 / 16.0;

fn be_table() -> &'static [f64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..=BE_TABLE_INTERVALS)
            .map(|i| binary_entropy(i as f64 / BE_TABLE_INTERVALS as f64))
            .collect()
    })
}

/// Table-driven [`binary_entropy`]: linear interpolation over a 2¹⁶-knot
/// lookup table in the mid range, the exact two-`log2` formula near the
/// endpoints. Absolute error ≤ 1e-9 everywhere (property-tested against
/// the exact formula in `tests/props.rs`), and *exact* on knots —
/// including every multiple of 2⁻¹⁶, hence every window-mean of binary
/// BVRs with power-of-two window sizes.
///
/// This is the mixture method's small-window hot path: at w = 12 the
/// O(n) rolling scan is two table lookups per window instead of two
/// `log2` evaluations.
#[inline]
pub fn binary_entropy_fast(p: f64) -> f64 {
    if !(BE_EXACT_BELOW..=BE_EXACT_ABOVE).contains(&p) {
        return binary_entropy(p);
    }
    let table = be_table();
    let x = p * BE_TABLE_INTERVALS as f64;
    let i = x as usize; // p ≤ 15/16 < 1, so i + 1 stays in bounds
    let t = x - i as f64;
    table[i] + t * (table[i + 1] - table[i])
}

/// Window-based entropy of one address bit, per Equation 2:
/// the mean over all sliding windows of the window entropies, using the
/// default [`EntropyMethod::MixtureBvr`].
///
/// `bvrs` must be in ascending TB-identifier order. If there are fewer TBs
/// than the window size, a single window containing all TBs is used.
/// Returns 0 for an empty slice.
pub fn window_entropy(bvrs: &[Bvr], window: usize) -> f64 {
    window_entropy_method(bvrs, window, EntropyMethod::MixtureBvr)
}

/// Reusable buffers for [`window_entropy_with_scratch`]. One scratch can
/// serve any mix of bits, windows and methods; buffers grow to the largest
/// input seen and are then reused allocation-free, which is what lets the
/// `valley-compute` entropy sweep run with zero steady-state allocations.
#[derive(Clone, Debug, Default)]
pub struct EntropyScratch {
    prefix: Vec<f64>,
    counts: BvrCounts,
}

impl EntropyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`window_entropy`] with an explicit per-window entropy method.
///
/// Runs in O(n) for both methods (the naive per-window recomputation is
/// O(n·w)): [`EntropyMethod::MixtureBvr`] evaluates window means from a
/// prefix-sum array through the table-driven [`binary_entropy_fast`]
/// (lifting the small-window w=12 case that was bounded by two `log2`
/// calls per window), and [`EntropyMethod::DistinctBvr`] slides a value
/// count-map while rolling the `Σ c·ln c` term of the window entropy.
/// Results match [`window_entropy_naive_method`] to floating-point
/// round-off plus the ≤1e-9 table interpolation error (the property
/// tests in `tests/props.rs` pin this).
pub fn window_entropy_method(bvrs: &[Bvr], window: usize, method: EntropyMethod) -> f64 {
    window_entropy_with_scratch(bvrs, window, method, &mut EntropyScratch::new())
}

/// [`window_entropy_method`] with caller-provided scratch buffers. The
/// arithmetic is identical statement for statement — same prefix sums, same
/// rolling updates, same table lookups — so the result is bit-exactly equal
/// to the allocating variant; only the buffers' origin differs.
pub fn window_entropy_with_scratch(
    bvrs: &[Bvr],
    window: usize,
    method: EntropyMethod,
    scratch: &mut EntropyScratch,
) -> f64 {
    if bvrs.is_empty() {
        return 0.0;
    }
    let w = window.max(1).min(bvrs.len());
    let num_windows = bvrs.len() - w + 1;
    let sum = match method {
        EntropyMethod::MixtureBvr => {
            // Prefix sums: window sums are two lookups, and the bounded
            // cancellation error keeps results within round-off of the
            // naive per-window summation.
            let prefix = &mut scratch.prefix;
            prefix.clear();
            prefix.reserve(bvrs.len() + 1);
            let mut acc = 0.0f64;
            prefix.push(0.0);
            for v in bvrs {
                acc += v.value();
                prefix.push(acc);
            }
            let mut sum = 0.0;
            for start in 0..num_windows {
                let p = (prefix[start + w] - prefix[start]) / w as f64;
                sum += binary_entropy_fast(p);
            }
            sum
        }
        EntropyMethod::DistinctBvr => {
            // For a window with distinct-value counts c_i (Σ c_i = w) the
            // base-v Shannon entropy is (ln w − S/w) / ln v with
            // S = Σ c_i·ln c_i and v the number of distinct values. Both
            // S and v update in O(1) amortized as the window slides.
            let c_lnc = |c: u32| -> f64 {
                if c <= 1 {
                    0.0
                } else {
                    f64::from(c) * f64::from(c).ln()
                }
            };
            let counts = &mut scratch.counts;
            counts.clear();
            let mut s = 0.0f64; // Σ c·ln c over the current window
            for &v in &bvrs[..w] {
                let c = counts.entry(v).or_insert(0);
                s += -c_lnc(*c);
                *c += 1;
                s += c_lnc(*c);
            }
            let ln_w = (w as f64).ln();
            let window_h = |s: f64, v: usize| -> f64 {
                if v <= 1 {
                    0.0
                } else {
                    (ln_w - s / w as f64) / (v as f64).ln()
                }
            };
            let mut sum = window_h(s, counts.len());
            for start in 1..num_windows {
                let out = bvrs[start - 1];
                let c = counts
                    .get_mut(&out)
                    .expect("outgoing value is in the window");
                s -= c_lnc(*c);
                *c -= 1;
                s += c_lnc(*c);
                if *c == 0 {
                    counts.remove(&out);
                }
                let inc = bvrs[start + w - 1];
                let c = counts.entry(inc).or_insert(0);
                s -= c_lnc(*c);
                *c += 1;
                s += c_lnc(*c);
                sum += window_h(s, counts.len());
            }
            sum
        }
    };
    sum / num_windows as f64
}

/// The reference O(n·w) implementation of [`window_entropy_method`]:
/// recomputes every window from scratch. Kept as the oracle for the
/// rolling implementation's property tests and as an unambiguous
/// statement of the metric's definition.
pub fn window_entropy_naive_method(bvrs: &[Bvr], window: usize, method: EntropyMethod) -> f64 {
    if bvrs.is_empty() {
        return 0.0;
    }
    let w = window.max(1).min(bvrs.len());
    let num_windows = bvrs.len() - w + 1;
    let mut sum = 0.0;
    let mut counts = BvrCounts::default();
    for start in 0..num_windows {
        let win = &bvrs[start..start + w];
        sum += match method {
            EntropyMethod::MixtureBvr => {
                let p = win.iter().map(|v| v.value()).sum::<f64>() / w as f64;
                binary_entropy(p)
            }
            EntropyMethod::DistinctBvr => {
                counts.clear();
                for &v in win {
                    *counts.entry(v).or_insert(0) += 1;
                }
                // Sum the entropy terms in sorted order: a float sum in
                // map-iteration order would differ run to run under a
                // seeded hasher (and build to build under a fixed one).
                let mut probs: Vec<f64> = counts.values().map(|&c| c as f64 / w as f64).collect();
                probs.sort_by(f64::total_cmp);
                shannon_entropy(&probs)
            }
        };
    }
    sum / num_windows as f64
}

/// The per-bit window-based entropy distribution of one kernel, plus its
/// request count (used as the weight when combining kernels).
#[derive(Clone, Debug, PartialEq)]
pub struct EntropyProfile {
    per_bit: Vec<f64>,
    requests: u64,
}

impl EntropyProfile {
    /// Builds a profile directly from per-bit values (mainly for tests and
    /// synthetic profiles).
    pub fn from_per_bit(per_bit: Vec<f64>, requests: u64) -> Self {
        EntropyProfile { per_bit, requests }
    }

    /// Entropy of bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn bit(&self, bit: u8) -> f64 {
        self.per_bit[bit as usize]
    }

    /// All per-bit entropies, LSB first.
    pub fn per_bit(&self) -> &[f64] {
        &self.per_bit
    }

    /// Number of requests that contributed to the profile.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Mean entropy over the given bit positions.
    pub fn mean_over(&self, bits: &[u8]) -> f64 {
        if bits.is_empty() {
            return 0.0;
        }
        bits.iter().map(|&b| self.bit(b)).sum::<f64>() / bits.len() as f64
    }

    /// Valley score for a set of target bits: the mean entropy of the `k`
    /// highest-entropy bits *outside* the targets (within `candidate_bits`)
    /// minus the mean entropy of the target bits. Large positive values
    /// mean plenty of harvestable entropy exists elsewhere while the
    /// targets are starved — the paper's "entropy valley".
    pub fn valley_score(&self, target_bits: &[u8], candidate_bits: &[u8]) -> f64 {
        let k = target_bits.len().max(1);
        let mut others: Vec<f64> = candidate_bits
            .iter()
            .filter(|b| !target_bits.contains(b))
            .map(|&b| self.bit(b))
            .collect();
        others.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: Vec<f64> = others.into_iter().take(k).collect();
        if top.is_empty() {
            return 0.0;
        }
        let top_mean = top.iter().sum::<f64>() / top.len() as f64;
        top_mean - self.mean_over(target_bits)
    }

    /// Whether the profile has an entropy valley in `target_bits`:
    /// the valley score exceeds `threshold` (the paper's qualitative
    /// classification of Figure 5 corresponds to roughly 0.25).
    pub fn has_valley(&self, target_bits: &[u8], candidate_bits: &[u8], threshold: f64) -> bool {
        self.valley_score(target_bits, candidate_bits) > threshold
    }

    /// The `k` bits with the highest entropy among `candidate_bits`
    /// (used to derive RMP's source bits from a measured profile).
    pub fn top_bits(&self, candidate_bits: &[u8], k: usize) -> Vec<u8> {
        let mut bits: Vec<u8> = candidate_bits.to_vec();
        bits.sort_by(|&a, &b| self.bit(b).partial_cmp(&self.bit(a)).unwrap());
        let mut out: Vec<u8> = bits.into_iter().take(k).collect();
        out.sort_unstable();
        out
    }

    /// Renders the profile as a small ASCII bar chart (MSB on the left,
    /// like Figure 5), e.g. for the experiment binaries.
    pub fn ascii_chart(&self, lo_bit: u8, hi_bit: u8) -> String {
        let mut out = String::new();
        for level in (0..5).rev() {
            let threshold = (level as f64 + 0.5) / 5.0;
            for b in (lo_bit..=hi_bit).rev() {
                out.push(if self.bit(b) >= threshold { '#' } else { ' ' });
            }
            out.push('\n');
        }
        for b in (lo_bit..=hi_bit).rev() {
            out.push(char::from_digit((b % 10) as u32, 10).unwrap());
        }
        out.push('\n');
        out
    }
}

/// Computes the per-bit window-based entropy of one kernel from its TB
/// statistics (Equation 2) with the default method. TBs with zero
/// requests are skipped. The TBs are sorted by identifier internally,
/// matching the in-order TB scheduler.
pub fn kernel_entropy(tbs: &[TbBitStats], window: usize) -> EntropyProfile {
    kernel_entropy_method(tbs, window, EntropyMethod::MixtureBvr)
}

/// [`kernel_entropy`] with an explicit per-window entropy method.
pub fn kernel_entropy_method(
    tbs: &[TbBitStats],
    window: usize,
    method: EntropyMethod,
) -> EntropyProfile {
    let mut active: Vec<&TbBitStats> = tbs.iter().filter(|t| t.requests() > 0).collect();
    active.sort_by_key(|t| t.tb_id());
    let addr_bits = active.first().map_or(0, |t| t.addr_bits());
    let requests: u64 = active.iter().map(|t| t.requests()).sum();
    let per_bit = (0..addr_bits)
        .map(|b| {
            let bvrs: Vec<Bvr> = active.iter().map(|t| t.bvr(b).unwrap()).collect();
            window_entropy_method(&bvrs, window, method)
        })
        .collect();
    EntropyProfile::from_per_bit(per_bit, requests)
}

/// Combines per-kernel profiles into an application profile, weighting each
/// kernel by its request count (Section III-A: "the weight of each kernel is
/// the number of memory requests it contains").
pub fn application_entropy(kernels: &[EntropyProfile]) -> EntropyProfile {
    let total: u64 = kernels.iter().map(|k| k.requests()).sum();
    if total == 0 {
        return EntropyProfile::from_per_bit(Vec::new(), 0);
    }
    let bits = kernels.iter().map(|k| k.per_bit().len()).max().unwrap_or(0);
    let mut per_bit = vec![0.0; bits];
    for k in kernels {
        let w = k.requests() as f64 / total as f64;
        for (b, &h) in k.per_bit().iter().enumerate() {
            per_bit[b] += w * h;
        }
    }
    EntropyProfile::from_per_bit(per_bit, total)
}

/// Aggregates many application profiles into a global average profile
/// (used in Section IV-B to choose RMP's source bits across all
/// benchmarks). Each application contributes equally.
pub fn global_mean_profile(apps: &[EntropyProfile]) -> EntropyProfile {
    if apps.is_empty() {
        return EntropyProfile::from_per_bit(Vec::new(), 0);
    }
    let bits = apps.iter().map(|a| a.per_bit().len()).max().unwrap_or(0);
    let mut per_bit = vec![0.0; bits];
    for a in apps {
        for (b, &h) in a.per_bit().iter().enumerate() {
            per_bit[b] += h / apps.len() as f64;
        }
    }
    let requests = apps.iter().map(|a| a.requests()).sum();
    EntropyProfile::from_per_bit(per_bit, requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bvr_reduction_and_equality() {
        assert_eq!(Bvr::new(2, 4), Bvr::new(3, 6));
        assert_eq!(Bvr::new(0, 5), Bvr::new(0, 7));
        assert_eq!(Bvr::new(5, 5), Bvr::new(3, 3));
        assert_ne!(Bvr::new(1, 3), Bvr::new(1, 2));
        assert!((Bvr::new(3, 9).value() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn bvr_zero_total_panics() {
        let _ = Bvr::new(0, 0);
    }

    #[test]
    fn entropy_base_v_limits() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[1.0]), 0.0);
        // Uniform over v outcomes is exactly 1 for any v.
        for v in 2..6 {
            let probs = vec![1.0 / v as f64; v];
            assert!((shannon_entropy(&probs) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn footnote1_example() {
        // Two TBs with BVR 0 and one with BVR 1: p = 2/3, 1/3 -> 0.92.
        let h = shannon_entropy(&[2.0 / 3.0, 1.0 / 3.0]);
        assert!((h - 0.918295).abs() < 1e-5);
    }

    #[test]
    fn figure3_example_window2() {
        // 8 TBs, alternating pairs: BVRs 0 0 1 1 0 0 1 1 (half 0s, half 1s).
        let bvrs: Vec<Bvr> = [0, 0, 1, 1, 0, 0, 1, 1]
            .iter()
            .map(|&o| Bvr::new(o, 1))
            .collect();
        let h = window_entropy(&bvrs, 2);
        assert!((h - 3.0 / 7.0).abs() < 1e-12, "H* = {h}, expected 3/7");
    }

    #[test]
    fn figure3_example_window4() {
        let bvrs: Vec<Bvr> = [0, 0, 1, 1, 0, 0, 1, 1]
            .iter()
            .map(|&o| Bvr::new(o, 1))
            .collect();
        let h = window_entropy(&bvrs, 4);
        assert!((h - 1.0).abs() < 1e-12, "H* = {h}, expected 1");
    }

    #[test]
    fn window_larger_than_tbs_uses_single_window() {
        let bvrs = vec![Bvr::new(0, 1), Bvr::new(1, 1)];
        // w=12 clamps to 2 TBs: one window, two distinct values -> 1.
        assert_eq!(window_entropy(&bvrs, 12), 1.0);
    }

    #[test]
    fn constant_bit_has_zero_entropy() {
        let bvrs = vec![Bvr::new(1, 1); 50];
        assert_eq!(window_entropy(&bvrs, 12), 0.0);
    }

    #[test]
    fn intra_tb_entropy_counts() {
        // A TB whose addresses alternate bit 3 has BVR(3) = 1/2; mixed
        // with a constant TB the window-mean probability is 1/4.
        let a = TbBitStats::from_addrs(0, 8, [0b0000, 0b1000, 0b0000, 0b1000]);
        let b = TbBitStats::from_addrs(1, 8, [0b0000, 0b0000]);
        assert_eq!(a.bvr(3).unwrap(), Bvr::new(1, 2));
        assert_eq!(b.bvr(3).unwrap(), Bvr::new(0, 1));
        let p = kernel_entropy(&[a, b], 2);
        assert!((p.bit(3) - binary_entropy(0.25)).abs() < 1e-12);
        assert_eq!(p.bit(0), 0.0);
        assert_eq!(p.requests(), 6);
        // The distinct-BVR variant sees two unique values -> entropy 1.
        let a2 = TbBitStats::from_addrs(0, 8, [0b0000, 0b1000, 0b0000, 0b1000]);
        let b2 = TbBitStats::from_addrs(1, 8, [0b0000, 0b0000]);
        let pd = kernel_entropy_method(&[a2, b2], 2, EntropyMethod::DistinctBvr);
        assert!((pd.bit(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn methods_agree_on_binary_bvrs() {
        // With BVRs of exactly 0/1 (the paper's worked examples) the two
        // interpretations coincide. Tolerance: odd windows hit
        // non-dyadic means (1/3, 2/3), where the mixture path's lookup
        // table carries its ≤1e-9 interpolation error.
        let bvrs: Vec<Bvr> = [0, 0, 1, 1, 0, 0, 1, 1]
            .iter()
            .map(|&o| Bvr::new(o, 1))
            .collect();
        for w in [2, 3, 4] {
            let a = window_entropy_method(&bvrs, w, EntropyMethod::MixtureBvr);
            let b = window_entropy_method(&bvrs, w, EntropyMethod::DistinctBvr);
            assert!((a - b).abs() < 1e-9, "w={w}: {a} vs {b}");
        }
    }

    #[test]
    fn mixture_rewards_intra_tb_variability() {
        // Every TB toggles the bit internally: BVR 0.5 for all. The
        // mixture method reports full entropy; the strict distinct-value
        // method collapses to zero (one unique value).
        let bvrs = vec![Bvr::new(1, 2); 20];
        assert_eq!(
            window_entropy_method(&bvrs, 12, EntropyMethod::MixtureBvr),
            1.0
        );
        assert_eq!(
            window_entropy_method(&bvrs, 12, EntropyMethod::DistinctBvr),
            0.0
        );
    }

    #[test]
    fn binary_entropy_limits() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(1.0 / 3.0) - 0.918295).abs() < 1e-5);
    }

    #[test]
    fn fast_binary_entropy_is_exact_on_knots_and_endpoints() {
        // Dyadic rationals are table knots: the fast path must be
        // *bit-identical* there, which is what keeps window entropies of
        // 0/1-valued BVRs (the paper's worked examples) exact.
        for k in [0u32, 1, 2, 4096, 16384, 32768, 49152, 65535, 65536] {
            let p = f64::from(k) / 65536.0;
            assert_eq!(binary_entropy_fast(p), binary_entropy(p), "p = {p}");
        }
        assert_eq!(binary_entropy_fast(0.0), 0.0);
        assert_eq!(binary_entropy_fast(1.0), 0.0);
        assert_eq!(binary_entropy_fast(0.5), 1.0);
    }

    #[test]
    fn fast_binary_entropy_stays_close_between_knots() {
        for i in 0..10_000 {
            let p = (i as f64 + 0.37) / 10_000.0;
            let d = (binary_entropy_fast(p) - binary_entropy(p)).abs();
            assert!(d <= 1e-9, "p = {p}: err {d}");
        }
    }

    #[test]
    fn kernel_entropy_sorts_by_tb_id() {
        // Same data delivered out of order must give the same profile.
        let t0 = TbBitStats::from_addrs(0, 4, [0b0000]);
        let t1 = TbBitStats::from_addrs(1, 4, [0b0001]);
        let t2 = TbBitStats::from_addrs(2, 4, [0b0000]);
        let in_order = kernel_entropy(&[t0.clone(), t1.clone(), t2.clone()], 2);
        let shuffled = kernel_entropy(&[t2, t0, t1], 2);
        assert_eq!(in_order, shuffled);
    }

    #[test]
    fn empty_tbs_are_skipped() {
        let empty = TbBitStats::new(0, 4);
        let full = TbBitStats::from_addrs(1, 4, [0b1010]);
        let p = kernel_entropy(&[empty, full], 2);
        assert_eq!(p.requests(), 1);
    }

    #[test]
    fn application_weighting() {
        // Kernel A: bit0 entropy 1.0 with 300 requests;
        // kernel B: bit0 entropy 0.0 with 100 requests -> 0.75.
        let a = EntropyProfile::from_per_bit(vec![1.0], 300);
        let b = EntropyProfile::from_per_bit(vec![0.0], 100);
        let app = application_entropy(&[a, b]);
        assert!((app.bit(0) - 0.75).abs() < 1e-12);
        assert_eq!(app.requests(), 400);
    }

    #[test]
    fn valley_detection() {
        // Bits 8-13 starved, bits 18-29 rich: a textbook valley.
        let mut per_bit = vec![0.0; 30];
        per_bit[18..30].fill(0.9);
        per_bit[6..8].fill(0.8);
        let p = EntropyProfile::from_per_bit(per_bit, 1000);
        let targets: Vec<u8> = (8..14).collect();
        let candidates: Vec<u8> = (6..30).collect();
        assert!(p.valley_score(&targets, &candidates) > 0.8);
        assert!(p.has_valley(&targets, &candidates, 0.25));
        // A flat high profile has no valley.
        let flat = EntropyProfile::from_per_bit(vec![0.9; 30], 1000);
        assert!(!flat.has_valley(&targets, &candidates, 0.25));
    }

    #[test]
    fn top_bits_picks_highest() {
        let mut per_bit = vec![0.1; 30];
        for &b in &[8, 9, 10, 11, 15, 16] {
            per_bit[b] = 0.95;
        }
        let p = EntropyProfile::from_per_bit(per_bit, 1);
        let cand: Vec<u8> = (6..30).collect();
        assert_eq!(p.top_bits(&cand, 6), vec![8, 9, 10, 11, 15, 16]);
    }

    #[test]
    fn global_mean_is_unweighted() {
        let a = EntropyProfile::from_per_bit(vec![1.0], 1_000_000);
        let b = EntropyProfile::from_per_bit(vec![0.0], 1);
        let g = global_mean_profile(&[a, b]);
        assert!((g.bit(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ascii_chart_shape() {
        let p = EntropyProfile::from_per_bit(vec![1.0, 0.0, 0.5], 1);
        let chart = p.ascii_chart(0, 2);
        // 5 levels + axis line, each 3 chars wide + newline.
        assert_eq!(chart.lines().count(), 6);
        assert!(chart.lines().all(|l| l.len() == 3));
    }
}
