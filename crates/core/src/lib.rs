//! # valley-core
//!
//! The primary contribution of *"Get Out of the Valley: Power-Efficient
//! Address Mapping for GPUs"* (Liu et al., ISCA 2018), implemented as a
//! standalone library:
//!
//! * [`PhysAddr`] / [`BitField`] — physical addresses and bit-field
//!   manipulation over the 30-bit GDDR5 address space;
//! * [`GddrMap`] / [`StackedMap`] — the baseline Hynix GDDR5 address map
//!   (Figure 4) and the 3D-stacked variant of Section VI-D, behind the
//!   [`DramAddressMap`] trait;
//! * [`Bim`] — Binary Invertible Matrices over GF(2), the unified
//!   representation of all AND/XOR address mappings (Section IV-A);
//! * [`AddressMapper`] / [`SchemeKind`] — the six mapping schemes evaluated
//!   in the paper: BASE, PM, RMP, and the Broad-strategy schemes PAE, FAE
//!   and ALL (Section IV-B);
//! * [`entropy`] — the window-based entropy metric `H*` (Section III),
//!   with BVR computation, per-kernel profiles and application-level
//!   weighting.
//!
//! ## Quick start
//!
//! ```
//! use valley_core::{AddressMapper, DramAddressMap, GddrMap, PhysAddr, SchemeKind};
//!
//! let dram = GddrMap::baseline();
//! let pae = AddressMapper::build(SchemeKind::Pae, &dram, 1);
//!
//! // A column-major access stream that the BASE map would pin to channel 0:
//! let stride = 1u64 << 12; // strides only touch bank/column-high bits
//! let chan_of = |mapper: &AddressMapper, i: u64| {
//!     dram.controller_of(mapper.map(PhysAddr::new(i * stride)))
//! };
//! let base = AddressMapper::build(SchemeKind::Base, &dram, 0);
//! let base_chans: Vec<usize> = (0..8).map(|i| chan_of(&base, i)).collect();
//! assert!(base_chans.iter().all(|&c| c == base_chans[0]));
//!
//! // PAE spreads the same stream across channels.
//! let pae_chans: std::collections::HashSet<usize> =
//!     (0..8).map(|i| chan_of(&pae, i)).collect();
//! assert!(pae_chans.len() > 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod addr;
mod addrmap;
pub mod alloc_audit;
mod bim;
pub mod entropy;
pub mod hash;
mod schemes;

pub use addr::{BitField, PhysAddr};
pub use addrmap::{DramAddressMap, GddrMap, StackedMap};
pub use bim::{Bim, BimError};
pub use entropy::EntropyProfile;
pub use schemes::{AddressMapper, SchemeKind};
