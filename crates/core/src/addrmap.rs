//! DRAM address maps: how a flat physical address selects channel, bank,
//! row and column in the memory system.
//!
//! Two concrete maps are provided:
//!
//! * [`GddrMap`] — the paper's baseline 1 GB Hynix GDDR5 layout (Figure 4):
//!   4 channels, 16 banks/channel, 4 K rows/bank, 64 columns/row and a 64 B
//!   DRAM block. The exact figure in the paper source is typographically
//!   garbled; the layout below is reconstructed from the paper's explicit
//!   textual constraints (channel bits 8–9, lowest bank bit 10, RMP's six
//!   bank+channel bits; see `DESIGN.md` §2.1).
//! * [`StackedMap`] — the 3D-stacked configuration of Section VI-D:
//!   4 stacks × 16 vaults × 16 banks, where the mapping schemes randomize
//!   2 stack + 4 vault + 4 bank bits.

use crate::addr::{BitField, PhysAddr};

/// The geometry and bit layout of a DRAM system, as seen by address mapping.
///
/// The *controller* is the unit of fully independent request streams: a
/// GDDR5 channel, or a vault in the 3D-stacked organization. All mapping
/// schemes in the paper rewrite the [`target_field_bits`] (bank + controller
/// selection bits) of the output address while harvesting entropy from
/// scheme-specific input bits.
///
/// [`target_field_bits`]: DramAddressMap::target_field_bits
pub trait DramAddressMap: std::fmt::Debug {
    /// Total number of physical address bits (30 for the 1 GB baseline).
    fn addr_bits(&self) -> u8;

    /// Number of low-order block-offset bits that never participate in
    /// mapping (6 in the paper: offsets within a DRAM page segment).
    fn block_bits(&self) -> u8;

    /// The controller (channel/vault) index selected by `addr`.
    fn controller_of(&self, addr: PhysAddr) -> usize;

    /// The bank index *within its controller* selected by `addr`.
    fn bank_of(&self, addr: PhysAddr) -> usize;

    /// The DRAM row selected by `addr`.
    fn row_of(&self, addr: PhysAddr) -> usize;

    /// The column within the row selected by `addr`.
    fn column_of(&self, addr: PhysAddr) -> usize;

    /// Number of independent controllers (channels or vaults).
    fn num_controllers(&self) -> usize;

    /// Number of banks per controller.
    fn banks_per_controller(&self) -> usize;

    /// Number of rows per bank.
    fn rows_per_bank(&self) -> usize;

    /// Number of columns per row.
    fn columns_per_row(&self) -> usize;

    /// Absolute bit positions of the controller-selection field(s), LSB first.
    fn controller_bits(&self) -> Vec<u8>;

    /// Absolute bit positions of the bank-selection field(s), LSB first.
    fn bank_bits(&self) -> Vec<u8>;

    /// Absolute bit positions of the row field, LSB first.
    fn row_bits(&self) -> Vec<u8>;

    /// Absolute bit positions of the column field(s), LSB first.
    fn column_bits(&self) -> Vec<u8>;

    /// The output bits rewritten by the paper's mapping schemes:
    /// controller + bank selection bits, LSB first.
    fn target_field_bits(&self) -> Vec<u8> {
        let mut bits = self.controller_bits();
        bits.extend(self.bank_bits());
        bits.sort_unstable();
        bits
    }

    /// The DRAM *page address* bits (row + bank + controller), the input set
    /// of the PAE scheme, LSB first.
    fn page_address_bits(&self) -> Vec<u8> {
        let mut bits = self.target_field_bits();
        bits.extend(self.row_bits());
        bits.sort_unstable();
        bits
    }

    /// All non-block address bits (the input set of FAE and ALL), LSB first.
    fn non_block_bits(&self) -> Vec<u8> {
        (self.block_bits()..self.addr_bits()).collect()
    }

    /// Total capacity in bytes implied by the address width.
    fn capacity_bytes(&self) -> u64 {
        1u64 << self.addr_bits()
    }
}

/// The paper's baseline Hynix GDDR5 address map (Figure 4).
///
/// Layout (LSB → MSB):
///
/// ```text
/// | block[5:0] | col_lo[7:6] | channel[9:8] | bank[13:10] | col_hi[17:14] | row[29:18] |
/// ```
///
/// # Examples
///
/// ```
/// use valley_core::{DramAddressMap, GddrMap, PhysAddr};
///
/// let map = GddrMap::baseline();
/// let a = PhysAddr::new(0b01_0000_0000); // bit 8 set
/// assert_eq!(map.controller_of(a), 1);
/// assert_eq!(map.bank_of(a), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GddrMap {
    block: BitField,
    col_lo: BitField,
    channel: BitField,
    bank: BitField,
    col_hi: BitField,
    row: BitField,
}

impl GddrMap {
    /// The 1 GB baseline configuration used throughout the paper's
    /// evaluation (Table I): 4 channels, 16 banks, 4 K rows, 64 columns.
    pub const fn baseline() -> Self {
        GddrMap {
            block: BitField::new(0, 6),
            col_lo: BitField::new(6, 2),
            channel: BitField::new(8, 2),
            bank: BitField::new(10, 4),
            col_hi: BitField::new(14, 4),
            row: BitField::new(18, 12),
        }
    }

    /// The channel field (bits 9..=8 in the baseline).
    pub const fn channel_field(&self) -> BitField {
        self.channel
    }

    /// The bank field (bits 13..=10 in the baseline).
    pub const fn bank_field(&self) -> BitField {
        self.bank
    }

    /// The row field (bits 29..=18 in the baseline).
    pub const fn row_field(&self) -> BitField {
        self.row
    }

    /// The block-offset field (bits 5..=0 in the baseline).
    pub const fn block_field(&self) -> BitField {
        self.block
    }

    /// Reconstructs the full column index from its split low/high fields.
    pub const fn column_fields(&self) -> (BitField, BitField) {
        (self.col_lo, self.col_hi)
    }
}

impl Default for GddrMap {
    fn default() -> Self {
        GddrMap::baseline()
    }
}

impl DramAddressMap for GddrMap {
    fn addr_bits(&self) -> u8 {
        30
    }

    fn block_bits(&self) -> u8 {
        self.block.width()
    }

    fn controller_of(&self, addr: PhysAddr) -> usize {
        self.channel.extract(addr.raw()) as usize
    }

    fn bank_of(&self, addr: PhysAddr) -> usize {
        self.bank.extract(addr.raw()) as usize
    }

    fn row_of(&self, addr: PhysAddr) -> usize {
        self.row.extract(addr.raw()) as usize
    }

    fn column_of(&self, addr: PhysAddr) -> usize {
        let lo = self.col_lo.extract(addr.raw());
        let hi = self.col_hi.extract(addr.raw());
        ((hi << self.col_lo.width()) | lo) as usize
    }

    fn num_controllers(&self) -> usize {
        self.channel.cardinality() as usize
    }

    fn banks_per_controller(&self) -> usize {
        self.bank.cardinality() as usize
    }

    fn rows_per_bank(&self) -> usize {
        self.row.cardinality() as usize
    }

    fn columns_per_row(&self) -> usize {
        (self.col_lo.cardinality() * self.col_hi.cardinality()) as usize
    }

    fn controller_bits(&self) -> Vec<u8> {
        self.channel.bits().collect()
    }

    fn bank_bits(&self) -> Vec<u8> {
        self.bank.bits().collect()
    }

    fn row_bits(&self) -> Vec<u8> {
        self.row.bits().collect()
    }

    fn column_bits(&self) -> Vec<u8> {
        self.col_lo.bits().chain(self.col_hi.bits()).collect()
    }
}

/// The 3D-stacked memory address map of Section VI-D.
///
/// 4 stacks × 16 vaults/stack × 16 banks/vault; each vault is an independent
/// controller (64 controllers total). Layout (LSB → MSB):
///
/// ```text
/// | block[5:0] | stack[7:6] | vault[11:8] | bank[15:12] | col[19:16] | row[29:20] |
/// ```
///
/// The mapping schemes randomize the 2 stack + 4 vault + 4 bank bits, matching
/// the paper's "2 channel bits, 4 vault bits and 4 bank bits".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackedMap {
    block: BitField,
    stack: BitField,
    vault: BitField,
    bank: BitField,
    col: BitField,
    row: BitField,
}

impl StackedMap {
    /// The 4-stack configuration used in Figure 18 (rightmost bars).
    pub const fn baseline() -> Self {
        StackedMap {
            block: BitField::new(0, 6),
            stack: BitField::new(6, 2),
            vault: BitField::new(8, 4),
            bank: BitField::new(12, 4),
            col: BitField::new(16, 4),
            row: BitField::new(20, 10),
        }
    }

    /// The stack-selection field (bits 7..=6).
    pub const fn stack_field(&self) -> BitField {
        self.stack
    }

    /// The vault-selection field (bits 11..=8).
    pub const fn vault_field(&self) -> BitField {
        self.vault
    }

    /// The stack index selected by `addr` (0..4).
    pub fn stack_of(&self, addr: PhysAddr) -> usize {
        self.stack.extract(addr.raw()) as usize
    }

    /// The vault index within its stack selected by `addr` (0..16).
    pub fn vault_of(&self, addr: PhysAddr) -> usize {
        self.vault.extract(addr.raw()) as usize
    }
}

impl Default for StackedMap {
    fn default() -> Self {
        StackedMap::baseline()
    }
}

impl DramAddressMap for StackedMap {
    fn addr_bits(&self) -> u8 {
        30
    }

    fn block_bits(&self) -> u8 {
        self.block.width()
    }

    fn controller_of(&self, addr: PhysAddr) -> usize {
        // Global vault index: stack-major so that consecutive stacks
        // interleave at the coarser granularity.
        self.stack_of(addr) * self.vault.cardinality() as usize + self.vault_of(addr)
    }

    fn bank_of(&self, addr: PhysAddr) -> usize {
        self.bank.extract(addr.raw()) as usize
    }

    fn row_of(&self, addr: PhysAddr) -> usize {
        self.row.extract(addr.raw()) as usize
    }

    fn column_of(&self, addr: PhysAddr) -> usize {
        self.col.extract(addr.raw()) as usize
    }

    fn num_controllers(&self) -> usize {
        (self.stack.cardinality() * self.vault.cardinality()) as usize
    }

    fn banks_per_controller(&self) -> usize {
        self.bank.cardinality() as usize
    }

    fn rows_per_bank(&self) -> usize {
        self.row.cardinality() as usize
    }

    fn columns_per_row(&self) -> usize {
        self.col.cardinality() as usize
    }

    fn controller_bits(&self) -> Vec<u8> {
        self.stack.bits().chain(self.vault.bits()).collect()
    }

    fn bank_bits(&self) -> Vec<u8> {
        self.bank.bits().collect()
    }

    fn row_bits(&self) -> Vec<u8> {
        self.row.bits().collect()
    }

    fn column_bits(&self) -> Vec<u8> {
        self.col.bits().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometry_matches_table1() {
        let m = GddrMap::baseline();
        assert_eq!(m.num_controllers(), 4);
        assert_eq!(m.banks_per_controller(), 16);
        assert_eq!(m.rows_per_bank(), 4096);
        assert_eq!(m.columns_per_row(), 64);
        assert_eq!(m.capacity_bytes(), 1 << 30); // 1 GB
                                                 // Fields tile the 30-bit address exactly.
        let total: u32 = [
            m.block_field().width(),
            m.column_fields().0.width(),
            m.channel_field().width(),
            m.bank_field().width(),
            m.column_fields().1.width(),
            m.row_field().width(),
        ]
        .iter()
        .map(|&w| w as u32)
        .sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn baseline_bit_positions_match_paper_text() {
        let m = GddrMap::baseline();
        // "entropy valley for channel bits 8-9 and bank bit 10"
        assert_eq!(m.controller_bits(), vec![8, 9]);
        assert_eq!(m.bank_bits(), vec![10, 11, 12, 13]);
        assert_eq!(m.target_field_bits(), vec![8, 9, 10, 11, 12, 13]);
        assert_eq!(m.row_bits(), (18..30).collect::<Vec<u8>>());
    }

    #[test]
    fn field_extraction_is_consistent_with_bits() {
        let m = GddrMap::baseline();
        // Walking each bank bit changes the bank index by the right power
        // of two.
        for (i, bit) in m.bank_bits().into_iter().enumerate() {
            let a = PhysAddr::new(1u64 << bit);
            assert_eq!(m.bank_of(a), 1 << i);
            assert_eq!(m.controller_of(a), 0);
            assert_eq!(m.row_of(a), 0);
        }
    }

    #[test]
    fn column_is_split_across_two_fields() {
        let m = GddrMap::baseline();
        // col_lo at bits 7..6, col_hi at 17..14.
        let a = PhysAddr::new((0b11 << 6) | (0b1010 << 14));
        assert_eq!(m.column_of(a), (0b1010 << 2) | 0b11);
        assert_eq!(m.column_bits(), vec![6, 7, 14, 15, 16, 17]);
    }

    #[test]
    fn page_bits_are_row_bank_channel() {
        let m = GddrMap::baseline();
        let mut expect: Vec<u8> = (8..14).chain(18..30).collect();
        expect.sort_unstable();
        assert_eq!(m.page_address_bits(), expect);
        assert_eq!(m.non_block_bits(), (6..30).collect::<Vec<u8>>());
    }

    #[test]
    fn stacked_geometry() {
        let m = StackedMap::baseline();
        assert_eq!(m.num_controllers(), 64); // 4 stacks x 16 vaults
        assert_eq!(m.banks_per_controller(), 16);
        assert_eq!(m.target_field_bits(), (6..16).collect::<Vec<u8>>());
        assert_eq!(m.capacity_bytes(), 1 << 30);
    }

    #[test]
    fn stacked_controller_is_stack_major() {
        let m = StackedMap::baseline();
        let a = PhysAddr::new(1 << 6); // stack 1, vault 0
        assert_eq!(m.controller_of(a), 16);
        let b = PhysAddr::new(1 << 8); // stack 0, vault 1
        assert_eq!(m.controller_of(b), 1);
    }

    #[test]
    fn maps_are_exhaustive_partitions() {
        // Every address decodes to in-range coordinates.
        let m = GddrMap::baseline();
        for &raw in &[0u64, 0x3fff_ffff, 0x1234_5678, 0x2aaa_aaaa] {
            let a = PhysAddr::new(raw);
            assert!(m.controller_of(a) < m.num_controllers());
            assert!(m.bank_of(a) < m.banks_per_controller());
            assert!(m.row_of(a) < m.rows_per_bank());
            assert!(m.column_of(a) < m.columns_per_row());
        }
    }
}
