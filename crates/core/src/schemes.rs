//! The six address mapping schemes evaluated in the paper (Section IV/VI).
//!
//! | Scheme | Strategy | Input bits | Output bits rewritten |
//! |--------|----------|------------|-----------------------|
//! | BASE   | identity | —          | —                     |
//! | PM     | permutation-based \[4,5\] | one LSB row bit per target bit | channel + bank |
//! | RMP    | remap (permutation matrix) | highest-average-entropy bits | channel + bank |
//! | PAE    | Broad    | random page-address bits (row ∪ bank ∪ channel) | channel + bank |
//! | FAE    | Broad    | random non-block bits (full address) | channel + bank |
//! | ALL    | Broad    | random non-block bits | all non-block bits |
//!
//! Every scheme is realized as a [`Bim`] and wrapped in an
//! [`AddressMapper`], which also carries the 1-cycle mapping-unit latency
//! charged to all but the baseline scheme (Section V).

use crate::addr::PhysAddr;
use crate::addrmap::DramAddressMap;
use crate::bim::Bim;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Identifies one of the paper's six address mapping schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeKind {
    /// The Hynix GDDR5 baseline map (identity transformation).
    Base,
    /// Permutation-based mapping: XOR each channel/bank bit with one
    /// least-significant row bit (Zhang et al. / Chatterjee et al.).
    Pm,
    /// Remap: move the globally highest-average-entropy bits into the
    /// channel/bank positions (a pure permutation matrix).
    Rmp,
    /// Page Address Entropy: channel/bank output bits harvest entropy from
    /// random subsets of the DRAM page address (row, bank, channel bits).
    Pae,
    /// Full Address Entropy: like PAE but harvesting from the full
    /// (non-block) address, including column bits.
    Fae,
    /// Randomize all non-block output bits from full-address inputs.
    All,
}

impl SchemeKind {
    /// All six schemes in the paper's presentation order.
    pub const ALL_SCHEMES: [SchemeKind; 6] = [
        SchemeKind::Base,
        SchemeKind::Pm,
        SchemeKind::Rmp,
        SchemeKind::Pae,
        SchemeKind::Fae,
        SchemeKind::All,
    ];

    /// The scheme's name as printed in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Base => "BASE",
            SchemeKind::Pm => "PM",
            SchemeKind::Rmp => "RMP",
            SchemeKind::Pae => "PAE",
            SchemeKind::Fae => "FAE",
            SchemeKind::All => "ALL",
        }
    }

    /// Whether the scheme's BIM is drawn at random (PAE/FAE/ALL) rather
    /// than fixed by construction (BASE/PM/RMP).
    pub fn is_randomized(self) -> bool {
        matches!(self, SchemeKind::Pae | SchemeKind::Fae | SchemeKind::All)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A ready-to-use address mapping unit: a BIM plus its pipeline latency.
///
/// The mapper sits directly after the memory coalescer (Section IV); all
/// coalesced transactions pass through [`AddressMapper::map`] before touching
/// the LLC slice selector, NoC or DRAM.
///
/// # Examples
///
/// ```
/// use valley_core::{AddressMapper, GddrMap, PhysAddr, SchemeKind};
///
/// let map = GddrMap::baseline();
/// let pae = AddressMapper::build(SchemeKind::Pae, &map, 1);
/// let a = PhysAddr::new(0x1234_5678 & 0x3fff_ffff);
/// let mapped = pae.map(a);
/// // Block offset bits are never altered.
/// assert_eq!(mapped.raw() & 0x3f, a.raw() & 0x3f);
/// // The mapping is invertible.
/// assert_eq!(pae.unmap(mapped), a);
/// ```
#[derive(Clone, Debug)]
pub struct AddressMapper {
    kind: SchemeKind,
    bim: Bim,
    inverse: Bim,
    latency: u32,
    seed: u64,
}

impl AddressMapper {
    /// Builds the scheme `kind` for the given DRAM address map.
    ///
    /// `seed` selects the random BIM instance for PAE/FAE/ALL (the paper
    /// generates three per scheme and reports the best; see Figure 19) and
    /// is ignored by BASE/PM/RMP.
    ///
    /// # Panics
    ///
    /// Panics if a valid invertible BIM cannot be constructed, which for
    /// the supported address maps cannot happen (rejection sampling always
    /// terminates with probability 1 and is bounded generously).
    pub fn build(kind: SchemeKind, map: &dyn DramAddressMap, seed: u64) -> Self {
        let bim = match kind {
            SchemeKind::Base => Bim::identity(map.addr_bits()),
            SchemeKind::Pm => build_pm(map),
            SchemeKind::Rmp => build_rmp(map, &default_rmp_sources(map)),
            SchemeKind::Pae => build_broad(
                map,
                &map.page_address_bits(),
                &map.target_field_bits(),
                seed,
            ),
            SchemeKind::Fae => {
                build_broad(map, &map.non_block_bits(), &map.target_field_bits(), seed)
            }
            SchemeKind::All => build_broad(map, &map.non_block_bits(), &map.non_block_bits(), seed),
        };
        let inverse = bim
            .inverse()
            .expect("scheme construction must yield an invertible BIM");
        let latency = if kind == SchemeKind::Base { 0 } else { 1 };
        AddressMapper {
            kind,
            bim,
            inverse,
            latency,
            seed,
        }
    }

    /// Builds an RMP mapper from a measured entropy profile: the
    /// `target` bits are fed from the bits with the highest average
    /// entropy (Section IV-B derives these from the aggregate profile of
    /// all benchmarks).
    pub fn rmp_from_hot_bits(map: &dyn DramAddressMap, hot_bits: &[u8]) -> Self {
        let bim = build_rmp(map, hot_bits);
        let inverse = bim.inverse().expect("permutation matrices are invertible");
        AddressMapper {
            kind: SchemeKind::Rmp,
            bim,
            inverse,
            latency: 1,
            seed: 0,
        }
    }

    /// Builds the *minimalist open-page* remap of Kaseridis et al.
    /// (cited by the paper as a Remap-strategy instance): the channel and
    /// bank fields move just above the block offset, so consecutive
    /// cache lines interleave across channels/banks at the finest
    /// granularity while whole rows stay together. A pure permutation —
    /// helpful for streaming CPU-style access, but no help against
    /// entropy valleys.
    pub fn minimalist_open_page(map: &dyn DramAddressMap) -> Self {
        let targets = map.target_field_bits();
        let sources: Vec<u8> = (map.block_bits()..map.block_bits() + targets.len() as u8).collect();
        let bim = build_rmp(map, &sources);
        let inverse = bim.inverse().expect("permutation matrices are invertible");
        AddressMapper {
            kind: SchemeKind::Rmp,
            bim,
            inverse,
            latency: 1,
            seed: 0,
        }
    }

    /// Builds a PAE variant whose target rows each harvest exactly
    /// `density` randomly-chosen page-address bits (instead of an
    /// expected half of them). Used by the density ablation: too few
    /// inputs make the scheme fragile to where the entropy happens to
    /// sit; more inputs cost XOR gates (see `Bim::xor_gate_count`).
    ///
    /// # Panics
    ///
    /// Panics if `density` is zero or not strictly below the page-bit
    /// count (at full density every target row selects the same mask, so
    /// the matrix is singular by construction).
    pub fn pae_with_density(map: &dyn DramAddressMap, seed: u64, density: usize) -> Self {
        let inputs = map.page_address_bits();
        assert!(
            density >= 1 && density < inputs.len(),
            "density must be within the input-bit count (full density is singular)"
        );
        let bim = build_broad_density(map, &inputs, &map.target_field_bits(), seed, density);
        let inverse = bim.inverse().expect("density construction is invertible");
        AddressMapper {
            kind: SchemeKind::Pae,
            bim,
            inverse,
            latency: 1,
            seed,
        }
    }

    /// Builds a profile-guided Broad scheme: each candidate input bit is
    /// included with probability proportional to its *measured* window
    /// entropy (`weights[bit]`, e.g. from
    /// `valley_workloads::analysis::application_profile`). An extension
    /// of the paper's design space: instead of sampling page bits
    /// uniformly, harvest preferentially where the entropy actually is.
    ///
    /// `kind` selects the input field: [`SchemeKind::Pae`] restricts to
    /// page bits, [`SchemeKind::Fae`] uses the full non-block address.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not PAE or FAE, or `weights` is shorter than
    /// the address width.
    pub fn guided(kind: SchemeKind, map: &dyn DramAddressMap, weights: &[f64], seed: u64) -> Self {
        let inputs = match kind {
            SchemeKind::Pae => map.page_address_bits(),
            SchemeKind::Fae => map.non_block_bits(),
            other => panic!("guided construction supports PAE/FAE, not {other}"),
        };
        assert!(
            weights.len() >= map.addr_bits() as usize,
            "need one weight per address bit"
        );
        let bim = build_broad_weighted(map, &inputs, weights, &map.target_field_bits(), seed);
        let inverse = bim.inverse().expect("guided construction is invertible");
        AddressMapper {
            kind,
            bim,
            inverse,
            latency: 1,
            seed,
        }
    }

    /// Wraps an explicit invertible BIM (for experiments with hand-built
    /// matrices).
    ///
    /// # Panics
    ///
    /// Panics if `bim` is singular.
    pub fn from_bim(kind: SchemeKind, bim: Bim, latency: u32) -> Self {
        let inverse = bim.inverse().expect("BIM must be invertible");
        AddressMapper {
            kind,
            bim,
            inverse,
            latency,
            seed: 0,
        }
    }

    /// Applies the mapping to a physical address.
    #[inline]
    pub fn map(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(self.bim.apply(addr.raw()))
    }

    /// Applies the inverse mapping (decode direction).
    #[inline]
    pub fn unmap(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(self.inverse.apply(addr.raw()))
    }

    /// The scheme this mapper implements.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The pipeline latency of the mapping unit in core cycles
    /// (0 for BASE, 1 for everything else, per Section V).
    pub fn latency_cycles(&self) -> u32 {
        self.latency
    }

    /// The seed used for randomized construction (0 for fixed schemes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read access to the underlying matrix.
    pub fn bim(&self) -> &Bim {
        &self.bim
    }
}

/// Permutation-based mapping (Figure 8): the `k`-th target (channel/bank)
/// bit is XORed with the `k`-th least-significant row bit.
fn build_pm(map: &dyn DramAddressMap) -> Bim {
    let mut bim = Bim::identity(map.addr_bits());
    let targets = map.target_field_bits();
    let rows = map.row_bits();
    assert!(
        rows.len() >= targets.len(),
        "PM needs at least as many row bits as target bits"
    );
    for (k, &t) in targets.iter().enumerate() {
        bim.set_row(t, (1u64 << t) | (1u64 << rows[k]));
    }
    bim
}

/// The paper's RMP source bits for the baseline map: "the 6 bits with the
/// highest average entropy ... (i.e., bits 8-11, 15, and 16)".
fn default_rmp_sources(map: &dyn DramAddressMap) -> Vec<u8> {
    let targets = map.target_field_bits();
    if map.addr_bits() == 30 && targets == vec![8, 9, 10, 11, 12, 13] {
        vec![8, 9, 10, 11, 15, 16]
    } else {
        // For other maps (e.g. 3D-stacked) fall back to the lowest
        // non-block bits, which for streaming-style workloads carry the
        // most average entropy (Kaseridis et al.).
        let nb = map.non_block_bits();
        nb[..targets.len()].to_vec()
    }
}

/// Remap strategy: a permutation matrix that routes `sources[k]` into
/// `targets[k]` and the displaced bits back into the vacated positions.
fn build_rmp(map: &dyn DramAddressMap, sources: &[u8]) -> Bim {
    let targets = map.target_field_bits();
    assert_eq!(
        sources.len(),
        targets.len(),
        "RMP needs exactly one source bit per target bit"
    );
    let n = map.addr_bits() as usize;
    // perm[out] = in; start from identity and swap so the result is always
    // a permutation (hence invertible).
    let mut perm: Vec<u8> = (0..n as u8).collect();
    for (k, &t) in targets.iter().enumerate() {
        let s = sources[k];
        let cur = perm
            .iter()
            .position(|&p| p == s)
            .expect("source bit must exist");
        perm.swap(t as usize, cur);
    }
    let rows = perm.iter().map(|&p| 1u64 << p).collect();
    Bim::from_rows(rows).expect("permutation rows are valid")
}

/// Broad strategy (PAE/FAE/ALL): each output bit in `targets` becomes the
/// XOR of a random subset of `inputs`; all other bits pass through.
/// Rejection-samples until the resulting matrix is invertible.
fn build_broad(map: &dyn DramAddressMap, inputs: &[u8], targets: &[u8], seed: u64) -> Bim {
    assert!(!inputs.is_empty() && !targets.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    // A random square matrix over GF(2) is invertible with probability
    // ~0.289, so a few hundred attempts make failure astronomically
    // unlikely; we bound the loop to keep the panic reachable in theory
    // and silence none of the logic.
    for _ in 0..10_000 {
        let mut bim = Bim::identity(map.addr_bits());
        for &t in targets {
            let mut mask = 0u64;
            for &i in inputs {
                if rng.random::<bool>() {
                    mask |= 1u64 << i;
                }
            }
            // Guarantee each output row harvests at least two inputs so
            // no target bit degenerates to a copy or a constant.
            if mask.count_ones() < 2 {
                let a = inputs[rng.random_range(0..inputs.len())];
                let mut b = a;
                while b == a {
                    b = inputs[rng.random_range(0..inputs.len())];
                }
                mask |= (1u64 << a) | (1u64 << b);
            }
            bim.set_row(t, mask);
        }
        if bim.is_invertible() {
            return bim;
        }
    }
    panic!("failed to sample an invertible Broad BIM (astronomically unlikely)");
}

/// Broad strategy with a fixed number of inputs per target row.
fn build_broad_density(
    map: &dyn DramAddressMap,
    inputs: &[u8],
    targets: &[u8],
    seed: u64,
    density: usize,
) -> Bim {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xde75);
    for _ in 0..10_000 {
        let mut bim = Bim::identity(map.addr_bits());
        for &t in targets {
            // The row always contains its own bit (as in Figure 6d),
            // which keeps the target-column submatrix near-identity and
            // invertibility likely; then sample `density - 1` distinct
            // other inputs (partial Fisher-Yates).
            let mut pool: Vec<u8> = inputs.iter().copied().filter(|&b| b != t).collect();
            let mut mask = 1u64 << t;
            for k in 0..density - 1 {
                let j = k + rng.random_range(0..pool.len() - k);
                pool.swap(k, j);
                mask |= 1u64 << pool[k];
            }
            bim.set_row(t, mask);
        }
        if bim.is_invertible() {
            return bim;
        }
    }
    panic!("failed to sample an invertible density-constrained BIM");
}

/// Broad strategy with per-bit inclusion probabilities derived from a
/// measured entropy profile: `p(bit) = 0.08 + 0.84 * weight(bit)/max`.
fn build_broad_weighted(
    map: &dyn DramAddressMap,
    inputs: &[u8],
    weights: &[f64],
    targets: &[u8],
    seed: u64,
) -> Bim {
    let max_w = inputs
        .iter()
        .map(|&b| weights[b as usize])
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x91de);
    for _ in 0..10_000 {
        let mut bim = Bim::identity(map.addr_bits());
        for &t in targets {
            // Own bit always included (Figure 6d's Broad structure): the
            // target-column submatrix stays near-identity, so weights
            // concentrated far from the target bits still yield an
            // invertible matrix.
            let mut mask = 1u64 << t;
            for &i in inputs {
                let p = 0.08 + 0.84 * (weights[i as usize] / max_w);
                if i != t && rng.random_bool(p.clamp(0.0, 1.0)) {
                    mask |= 1u64 << i;
                }
            }
            if mask.count_ones() < 2 {
                let mut b = t;
                while b == t {
                    b = inputs[rng.random_range(0..inputs.len())];
                }
                mask |= 1u64 << b;
            }
            bim.set_row(t, mask);
        }
        if bim.is_invertible() {
            return bim;
        }
    }
    panic!("failed to sample an invertible weighted BIM");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrmap::{GddrMap, StackedMap};

    fn map() -> GddrMap {
        GddrMap::baseline()
    }

    #[test]
    fn base_is_identity_with_zero_latency() {
        let m = AddressMapper::build(SchemeKind::Base, &map(), 0);
        assert!(m.bim().is_identity());
        assert_eq!(m.latency_cycles(), 0);
        let a = PhysAddr::new(0x2f0f_1234);
        assert_eq!(m.map(a), a);
    }

    #[test]
    fn pm_xors_targets_with_low_row_bits() {
        let m = AddressMapper::build(SchemeKind::Pm, &map(), 0);
        assert_eq!(m.latency_cycles(), 1);
        // Flipping row bit 18 must flip target bit 8 in the output.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(1 << 18);
        let delta = m.map(a).raw() ^ m.map(b).raw();
        assert_eq!(delta, (1 << 18) | (1 << 8));
        // Row bits themselves are unchanged by PM.
        assert_eq!(m.map(b).raw() & (1 << 18), 1 << 18);
    }

    #[test]
    fn pm_matches_figure6c_structure() {
        // Each target row has exactly two ones: itself and one row bit.
        let m = AddressMapper::build(SchemeKind::Pm, &map(), 0);
        for &t in &map().target_field_bits() {
            let row = m.bim().row(t);
            assert_eq!(row.count_ones(), 2);
            assert_ne!(row & (1 << t), 0);
        }
    }

    #[test]
    fn rmp_is_permutation_using_paper_bits() {
        let m = AddressMapper::build(SchemeKind::Rmp, &map(), 0);
        // Every row has exactly one 1 (permutation matrix).
        for i in 0..30 {
            assert_eq!(m.bim().row(i).count_ones(), 1);
        }
        // Targets source from bits 8-11, 15, 16.
        let sources: Vec<u8> = map()
            .target_field_bits()
            .iter()
            .map(|&t| m.bim().row(t).trailing_zeros() as u8)
            .collect();
        assert_eq!(sources, vec![8, 9, 10, 11, 15, 16]);
        assert!(m.bim().is_invertible());
    }

    #[test]
    fn rmp_from_custom_hot_bits() {
        let m = AddressMapper::rmp_from_hot_bits(&map(), &[20, 21, 22, 23, 24, 25]);
        let sources: Vec<u8> = map()
            .target_field_bits()
            .iter()
            .map(|&t| m.bim().row(t).trailing_zeros() as u8)
            .collect();
        assert_eq!(sources, vec![20, 21, 22, 23, 24, 25]);
        assert!(m.bim().is_invertible());
    }

    #[test]
    fn pae_rows_stay_within_page_bits() {
        let dm = map();
        let page_mask: u64 = dm.page_address_bits().iter().map(|&b| 1u64 << b).sum();
        for seed in 0..20 {
            let m = AddressMapper::build(SchemeKind::Pae, &dm, seed);
            assert!(m.bim().is_invertible());
            for &t in &dm.target_field_bits() {
                let row = m.bim().row(t);
                assert_eq!(row & !page_mask, 0, "PAE row escapes page bits");
                assert!(row.count_ones() >= 2);
            }
            // Non-target rows are identity.
            for bit in 0..30u8 {
                if !dm.target_field_bits().contains(&bit) {
                    assert_eq!(m.bim().row(bit), 1u64 << bit);
                }
            }
        }
    }

    #[test]
    fn fae_rows_cover_full_non_block_address() {
        let dm = map();
        let nb_mask: u64 = dm.non_block_bits().iter().map(|&b| 1u64 << b).sum();
        let col_mask: u64 = dm.column_bits().iter().map(|&b| 1u64 << b).sum();
        // Across several seeds, FAE must sometimes pick column bits —
        // that is precisely what distinguishes it from PAE.
        let mut saw_column_input = false;
        for seed in 0..20 {
            let m = AddressMapper::build(SchemeKind::Fae, &dm, seed);
            assert!(m.bim().is_invertible());
            for &t in &dm.target_field_bits() {
                let row = m.bim().row(t);
                assert_eq!(row & !nb_mask, 0);
                if row & col_mask != 0 {
                    saw_column_input = true;
                }
            }
        }
        assert!(saw_column_input, "FAE never harvested column bits");
    }

    #[test]
    fn all_rewrites_every_non_block_bit() {
        let dm = map();
        let m = AddressMapper::build(SchemeKind::All, &dm, 7);
        assert!(m.bim().is_invertible());
        // Block bits stay identity.
        for bit in 0..6u8 {
            assert_eq!(m.bim().row(bit), 1u64 << bit);
        }
        // At least some row/column output bits are non-identity.
        let non_identity = (6..30u8).filter(|&b| m.bim().row(b) != 1u64 << b).count();
        assert!(non_identity > 12, "ALL should rewrite most non-block bits");
    }

    #[test]
    fn block_bits_always_preserved() {
        for kind in SchemeKind::ALL_SCHEMES {
            let m = AddressMapper::build(kind, &map(), 3);
            for raw in [0x3fu64, 0x15, 0x2a] {
                let a = PhysAddr::new(raw | (0x1234 << 14));
                assert_eq!(
                    m.map(a).raw() & 0x3f,
                    raw & 0x3f,
                    "{kind} altered block bits"
                );
            }
        }
    }

    #[test]
    fn map_unmap_roundtrip_all_schemes() {
        for kind in SchemeKind::ALL_SCHEMES {
            let m = AddressMapper::build(kind, &map(), 11);
            for &raw in &[0u64, 1, 0x3fff_ffff, 0x1357_9bdf & 0x3fff_ffff] {
                let a = PhysAddr::new(raw);
                assert_eq!(m.unmap(m.map(a)), a, "{kind} roundtrip failed");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_random_bims() {
        let a = AddressMapper::build(SchemeKind::Pae, &map(), 1);
        let b = AddressMapper::build(SchemeKind::Pae, &map(), 2);
        assert_ne!(a.bim(), b.bim());
        // And the same seed reproduces the same BIM (determinism).
        let c = AddressMapper::build(SchemeKind::Pae, &map(), 1);
        assert_eq!(a.bim(), c.bim());
    }

    #[test]
    fn schemes_build_for_stacked_map() {
        let sm = StackedMap::baseline();
        for kind in SchemeKind::ALL_SCHEMES {
            let m = AddressMapper::build(kind, &sm, 5);
            assert!(m.bim().is_invertible());
            // 10 target bits for 3D-stacked (2 stack + 4 vault + 4 bank).
            assert_eq!(sm.target_field_bits().len(), 10);
            let a = PhysAddr::new(0x0fed_cba9 & 0x3fff_ffff);
            assert_eq!(m.unmap(m.map(a)), a);
        }
    }

    #[test]
    fn minimalist_open_page_moves_targets_to_low_bits() {
        let dm = map();
        let m = AddressMapper::minimalist_open_page(&dm);
        assert!(m.bim().is_invertible());
        // The six target bits now source from bits 6..12 (just above the
        // block offset), and every row is a single-one permutation row.
        for (k, &t) in dm.target_field_bits().iter().enumerate() {
            let row = m.bim().row(t);
            assert_eq!(row.count_ones(), 1);
            assert_eq!(row.trailing_zeros() as u8, 6 + k as u8);
        }
        // Consecutive 64 B blocks alternate channels under this map.
        let a = m.map(PhysAddr::new(0));
        let b = m.map(PhysAddr::new(64));
        assert_ne!(dm.controller_of(a), dm.controller_of(b));
    }

    #[test]
    fn density_constructor_uses_exact_row_weight() {
        let dm = map();
        for density in [2usize, 4, 8, 16] {
            let m = AddressMapper::pae_with_density(&dm, 3, density);
            assert!(m.bim().is_invertible());
            for &t in &dm.target_field_bits() {
                assert_eq!(
                    m.bim().row(t).count_ones() as usize,
                    density,
                    "density {density} row has wrong weight"
                );
            }
            let a = PhysAddr::new(0x2468_ace0 & 0x3fff_ffff);
            assert_eq!(m.unmap(m.map(a)), a);
        }
    }

    #[test]
    #[should_panic(expected = "density must be within")]
    fn density_zero_rejected() {
        let _ = AddressMapper::pae_with_density(&map(), 1, 0);
    }

    #[test]
    fn guided_constructor_prefers_high_entropy_bits() {
        let dm = map();
        // Give all the weight to bits 24..=29: across seeds, guided rows
        // must select those bits far more often than the near-zero ones.
        let mut weights = vec![0.01f64; 30];
        weights[24..30].fill(1.0);
        let mut hot = 0u32;
        let mut cold = 0u32;
        for seed in 0..20 {
            let m = AddressMapper::guided(SchemeKind::Pae, &dm, &weights, seed);
            assert!(m.bim().is_invertible());
            for &t in &dm.target_field_bits() {
                let row = m.bim().row(t);
                hot += (row >> 24 & 0x3f).count_ones();
                cold += (row >> 18 & 0x3f).count_ones();
            }
        }
        assert!(hot > 3 * cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    #[should_panic(expected = "guided construction supports PAE/FAE")]
    fn guided_rejects_non_broad_kinds() {
        let _ = AddressMapper::guided(SchemeKind::Pm, &map(), &[0.5; 30], 1);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeKind::Pae.label(), "PAE");
        assert_eq!(SchemeKind::Pae.to_string(), "PAE");
        assert!(SchemeKind::Fae.is_randomized());
        assert!(!SchemeKind::Pm.is_randomized());
    }
}
