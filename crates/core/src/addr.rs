//! Physical addresses and bit-field manipulation.
//!
//! The paper models a 1 GB GDDR5 memory with a 30-bit physical address space
//! (Figure 4). Addresses are carried as [`PhysAddr`], a thin newtype over
//! `u64` so that raw integers and mapped/unmapped addresses are not confused
//! by accident.

use std::fmt;

/// A physical memory address.
///
/// The paper's address space is 30 bits (1 GB); we store addresses in a
/// `u64` so the same type also serves the 3D-stacked configuration and
/// synthetic workloads with headroom. Bits above the configured address
/// width are ignored by the mapping machinery.
///
/// # Examples
///
/// ```
/// use valley_core::PhysAddr;
///
/// let a = PhysAddr::new(0x1234_5678);
/// assert_eq!(a.raw(), 0x1234_5678);
/// assert!(a.bit(3));
/// assert!(!a.bit(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates an address from its raw integer value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw integer value of the address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the value of bit `bit` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[inline]
    pub const fn bit(self, bit: u8) -> bool {
        assert!(bit < 64);
        (self.0 >> bit) & 1 == 1
    }

    /// Returns the address with bit `bit` set to `value`.
    #[inline]
    pub const fn with_bit(self, bit: u8, value: bool) -> Self {
        let mask = 1u64 << bit;
        if value {
            PhysAddr(self.0 | mask)
        } else {
            PhysAddr(self.0 & !mask)
        }
    }

    /// Aligns the address down to a power-of-two `block` size.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    #[inline]
    pub fn align_down(self, block: u64) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        PhysAddr(self.0 & !(block - 1))
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> Self {
        a.0
    }
}

/// A contiguous range of address bits (`width` bits starting at `lsb`).
///
/// Address maps (Figure 4) are described as a sequence of named bit fields;
/// `BitField` provides extraction and insertion for one such field.
///
/// # Examples
///
/// ```
/// use valley_core::BitField;
///
/// // The paper's BASE channel field: bits 9..=8.
/// let ch = BitField::new(8, 2);
/// assert_eq!(ch.extract(0b11_0000_0000), 0b11);
/// assert_eq!(ch.insert(0, 0b10), 0b10_0000_0000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BitField {
    lsb: u8,
    width: u8,
}

impl BitField {
    /// Creates a field of `width` bits whose least-significant bit is `lsb`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not fit in 64 bits or has zero width.
    pub const fn new(lsb: u8, width: u8) -> Self {
        assert!(width > 0, "bit field must have non-zero width");
        assert!(lsb as u32 + width as u32 <= 64, "bit field exceeds 64 bits");
        BitField { lsb, width }
    }

    /// The position of the least-significant bit of the field.
    #[inline]
    pub const fn lsb(self) -> u8 {
        self.lsb
    }

    /// The position of the most-significant bit of the field.
    #[inline]
    pub const fn msb(self) -> u8 {
        self.lsb + self.width - 1
    }

    /// The number of bits in the field.
    #[inline]
    pub const fn width(self) -> u8 {
        self.width
    }

    /// The number of distinct values the field can take (`2^width`).
    #[inline]
    pub const fn cardinality(self) -> u64 {
        1u64 << self.width
    }

    /// A mask with ones in the field's bit positions.
    #[inline]
    pub const fn mask(self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            ((1u64 << self.width) - 1) << self.lsb
        }
    }

    /// Extracts the field's value from `raw`, right-justified.
    #[inline]
    pub const fn extract(self, raw: u64) -> u64 {
        (raw & self.mask()) >> self.lsb
    }

    /// Returns `raw` with the field replaced by `value` (low `width` bits).
    #[inline]
    pub const fn insert(self, raw: u64, value: u64) -> u64 {
        (raw & !self.mask()) | ((value << self.lsb) & self.mask())
    }

    /// Iterates over the absolute bit positions of the field, LSB first.
    pub fn bits(self) -> impl Iterator<Item = u8> {
        self.lsb..=self.msb()
    }

    /// Returns `true` if `bit` lies within this field.
    #[inline]
    pub const fn contains(self, bit: u8) -> bool {
        bit >= self.lsb && bit <= self.msb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_roundtrip() {
        let a = PhysAddr::new(0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(PhysAddr::from(42u64).raw(), 42);
    }

    #[test]
    fn phys_addr_bit_ops() {
        let a = PhysAddr::new(0b1010);
        assert!(a.bit(1));
        assert!(!a.bit(0));
        assert_eq!(a.with_bit(0, true).raw(), 0b1011);
        assert_eq!(a.with_bit(3, false).raw(), 0b0010);
        // Setting a bit to its current value is a no-op.
        assert_eq!(a.with_bit(1, true), a);
    }

    #[test]
    fn phys_addr_align() {
        assert_eq!(PhysAddr::new(0x12f).align_down(64).raw(), 0x100);
        assert_eq!(PhysAddr::new(0x100).align_down(64).raw(), 0x100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn phys_addr_align_requires_pow2() {
        let _ = PhysAddr::new(0).align_down(48);
    }

    #[test]
    fn bitfield_extract_insert_roundtrip() {
        let f = BitField::new(10, 4);
        for v in 0..16u64 {
            let raw = f.insert(0xffff_ffff, v);
            assert_eq!(f.extract(raw), v);
            // Bits outside the field are untouched.
            assert_eq!(raw & !f.mask(), 0xffff_ffff & !f.mask());
        }
    }

    #[test]
    fn bitfield_geometry() {
        let f = BitField::new(8, 2);
        assert_eq!(f.lsb(), 8);
        assert_eq!(f.msb(), 9);
        assert_eq!(f.width(), 2);
        assert_eq!(f.cardinality(), 4);
        assert_eq!(f.mask(), 0b11_0000_0000);
        assert_eq!(f.bits().collect::<Vec<_>>(), vec![8, 9]);
        assert!(f.contains(8) && f.contains(9));
        assert!(!f.contains(7) && !f.contains(10));
    }

    #[test]
    fn bitfield_insert_truncates_value() {
        let f = BitField::new(0, 2);
        assert_eq!(f.insert(0, 0b111), 0b11);
    }

    #[test]
    fn bitfield_full_width_mask() {
        let f = BitField::new(0, 64);
        assert_eq!(f.mask(), u64::MAX);
    }
}
