//! Property-based tests for the BIM algebra, mapping schemes and the
//! window-based entropy metric.

use proptest::prelude::*;
use valley_core::entropy::{
    binary_entropy, binary_entropy_fast, window_entropy, window_entropy_method,
    window_entropy_naive_method, Bvr, EntropyMethod,
};
use valley_core::{AddressMapper, Bim, DramAddressMap, GddrMap, PhysAddr, SchemeKind, StackedMap};

const ADDR_MASK: u64 = (1 << 30) - 1;

proptest! {
    /// Any scheme, any seed: the constructed BIM is invertible and
    /// map∘unmap is the identity on arbitrary addresses.
    #[test]
    fn schemes_are_bijections(seed in 0u64..1_000, raw in 0u64..=ADDR_MASK) {
        let map = GddrMap::baseline();
        for kind in SchemeKind::ALL_SCHEMES {
            let m = AddressMapper::build(kind, &map, seed % 16);
            prop_assert!(m.bim().is_invertible());
            let a = PhysAddr::new(raw);
            prop_assert_eq!(m.unmap(m.map(a)), a);
        }
    }

    /// Block-offset bits are never altered by any scheme.
    #[test]
    fn block_bits_preserved(seed in 0u64..16, raw in 0u64..=ADDR_MASK) {
        let map = GddrMap::baseline();
        for kind in SchemeKind::ALL_SCHEMES {
            let m = AddressMapper::build(kind, &map, seed);
            let mapped = m.map(PhysAddr::new(raw));
            prop_assert_eq!(mapped.raw() & 0x3f, raw & 0x3f);
        }
    }

    /// PAE never changes column bits: addresses differing only in column
    /// bits keep their relative difference (same-row groups move as one —
    /// the row-locality preservation behind Figure 15).
    #[test]
    fn pae_moves_same_row_groups_together(seed in 0u64..16, raw in 0u64..=ADDR_MASK) {
        let map = GddrMap::baseline();
        let m = AddressMapper::build(SchemeKind::Pae, &map, seed);
        // Flip a column bit (6,7,14..17): the mapped pair must differ in
        // exactly that bit.
        for col_bit in [6u8, 7, 14, 15, 16, 17] {
            let a = PhysAddr::new(raw);
            let b = PhysAddr::new(raw ^ (1 << col_bit));
            let delta = m.map(a).raw() ^ m.map(b).raw();
            prop_assert_eq!(delta, 1u64 << col_bit);
        }
    }

    /// Mapped addresses stay within the 30-bit physical space.
    #[test]
    fn mapping_stays_in_address_space(seed in 0u64..16, raw in 0u64..=ADDR_MASK) {
        for kind in SchemeKind::ALL_SCHEMES {
            let gddr = GddrMap::baseline();
            let m = AddressMapper::build(kind, &gddr, seed);
            prop_assert!(m.map(PhysAddr::new(raw)).raw() <= ADDR_MASK);
            let stacked = StackedMap::baseline();
            let m = AddressMapper::build(kind, &stacked, seed);
            prop_assert!(m.map(PhysAddr::new(raw)).raw() <= ADDR_MASK);
        }
    }

    /// A random invertible matrix composed with its inverse is identity.
    #[test]
    fn inverse_composition_is_identity(rows in proptest::collection::vec(0u64..(1 << 12), 12)) {
        if let Ok(bim) = Bim::from_rows(rows) {
            if let Some(inv) = bim.inverse() {
                prop_assert!(bim.compose(&inv).is_identity());
                prop_assert!(inv.compose(&bim).is_identity());
                // rank is full exactly when inverse exists
                prop_assert_eq!(bim.rank(), 12);
            } else {
                prop_assert!(bim.rank() < 12);
            }
        }
    }

    /// apply() distributes over XOR: BIMs are linear maps over GF(2).
    #[test]
    fn bim_is_linear(a in 0u64..(1 << 20), b in 0u64..(1 << 20), seed in 0u64..16) {
        let map = GddrMap::baseline();
        let m = AddressMapper::build(SchemeKind::Fae, &map, seed);
        let f = |x: u64| m.bim().apply(x);
        prop_assert_eq!(f(a ^ b), f(a) ^ f(b));
        prop_assert_eq!(f(0), 0);
    }

    /// Window-based entropy is always within [0, 1] for both methods.
    #[test]
    fn entropy_is_normalized(
        ones in proptest::collection::vec(0u64..=8, 1..40),
        window in 1usize..16,
    ) {
        let bvrs: Vec<Bvr> = ones.iter().map(|&o| Bvr::new(o, 8)).collect();
        for method in [EntropyMethod::MixtureBvr, EntropyMethod::DistinctBvr] {
            let h = window_entropy_method(&bvrs, window, method);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&h), "{method:?}: {h}");
        }
    }

    /// The O(n) rolling window entropy matches the naive O(n·w)
    /// reference on arbitrary BVR slices, for both methods and window
    /// sizes (including windows larger than the slice).
    #[test]
    fn rolling_entropy_matches_naive(
        pairs in proptest::collection::vec((0u64..=12, 1u64..=12), 1..120),
        window in 1usize..40,
    ) {
        let bvrs: Vec<Bvr> = pairs
            .iter()
            .map(|&(ones, total)| Bvr::new(ones.min(total), total))
            .collect();
        for method in [EntropyMethod::MixtureBvr, EntropyMethod::DistinctBvr] {
            let rolling = window_entropy_method(&bvrs, window, method);
            let naive = window_entropy_naive_method(&bvrs, window, method);
            prop_assert!(
                (rolling - naive).abs() < 1e-9,
                "{method:?} w={window}: rolling {rolling} vs naive {naive}"
            );
        }
    }

    /// The table-driven binary entropy matches the exact two-`log2`
    /// formula to 1e-9 on arbitrary probabilities, and exactly on dyadic
    /// knots (the values window means of binary BVRs actually take).
    #[test]
    fn table_binary_entropy_matches_exact(p in 0.0f64..=1.0, k in 0u32..=65536) {
        let d = (binary_entropy_fast(p) - binary_entropy(p)).abs();
        prop_assert!(d <= 1e-9, "p = {p}: err {d}");
        let knot = f64::from(k) / 65536.0;
        prop_assert_eq!(binary_entropy_fast(knot), binary_entropy(knot));
    }

    /// Entropy is invariant under reversing the TB order (windows slide
    /// symmetrically over the same multiset of windows).
    #[test]
    fn entropy_reversal_invariance(
        ones in proptest::collection::vec(0u64..=4, 2..30),
        window in 1usize..8,
    ) {
        let bvrs: Vec<Bvr> = ones.iter().map(|&o| Bvr::new(o, 4)).collect();
        let mut rev = bvrs.clone();
        rev.reverse();
        let a = window_entropy(&bvrs, window);
        let b = window_entropy(&rev, window);
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// Constant bit streams always yield zero entropy.
    #[test]
    fn constant_bits_have_zero_entropy(n in 1usize..50, window in 1usize..16, one in any::<bool>()) {
        let v = if one { Bvr::new(1, 1) } else { Bvr::new(0, 1) };
        let bvrs = vec![v; n];
        prop_assert_eq!(window_entropy(&bvrs, window), 0.0);
        prop_assert_eq!(
            window_entropy_method(&bvrs, window, EntropyMethod::DistinctBvr),
            0.0
        );
    }

    /// DRAM decode stays within the geometry for arbitrary addresses,
    /// for both address maps.
    #[test]
    fn decode_in_range(raw in 0u64..=ADDR_MASK) {
        let a = PhysAddr::new(raw);
        let g = GddrMap::baseline();
        prop_assert!(g.controller_of(a) < g.num_controllers());
        prop_assert!(g.bank_of(a) < g.banks_per_controller());
        prop_assert!(g.row_of(a) < g.rows_per_bank());
        prop_assert!(g.column_of(a) < g.columns_per_row());
        let s = StackedMap::baseline();
        prop_assert!(s.controller_of(a) < s.num_controllers());
        prop_assert!(s.bank_of(a) < s.banks_per_controller());
    }

    /// Two distinct addresses never collide after mapping (spot-check of
    /// bijectivity on pairs).
    #[test]
    fn no_pairwise_collisions(x in 0u64..=ADDR_MASK, y in 0u64..=ADDR_MASK, seed in 0u64..8) {
        prop_assume!(x != y);
        let map = GddrMap::baseline();
        for kind in [SchemeKind::Pae, SchemeKind::Fae, SchemeKind::All] {
            let m = AddressMapper::build(kind, &map, seed);
            prop_assert_ne!(m.map(PhysAddr::new(x)), m.map(PhysAddr::new(y)));
        }
    }
}
