//! DRAM activity counters consumed by the power model and the
//! row-buffer / parallelism figures.

/// Command and occupancy counters for one DRAM channel.
///
/// `row_hits / (row_hits + row_empties + row_conflicts)` is the row-buffer
/// hit rate of Figure 15; `activates` drives the activate-power component
/// of Figure 16.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued (row conflicts; auto-precharge is not used).
    pub precharges: u64,
    /// Read column commands.
    pub reads: u64,
    /// Write column commands.
    pub writes: u64,
    /// Column accesses that hit the open row.
    pub row_hits: u64,
    /// Column accesses to an idle (closed) bank.
    pub row_empties: u64,
    /// Column accesses that required closing another row first.
    pub row_conflicts: u64,
    /// DRAM cycles in which the channel had at least one request queued or
    /// in flight.
    pub busy_cycles: u64,
    /// DRAM cycles in which the data bus transferred data.
    pub data_bus_cycles: u64,
    /// Total DRAM cycles observed.
    pub total_cycles: u64,
    /// Sum over completed requests of (completion - arrival), in DRAM
    /// cycles; divide by `reads + writes` for the mean service latency.
    pub total_latency: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all column accesses, in `[0, 1]`.
    /// Returns 0 when no accesses completed.
    pub fn row_buffer_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_empties + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Completed column accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean request latency in DRAM cycles (0 when idle).
    pub fn mean_latency(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses() as f64
        }
    }

    /// Data-bus utilization in `[0, 1]` over the observed cycles.
    pub fn bus_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.data_bus_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Accumulates another channel's counters into this one
    /// (used to aggregate a whole memory system).
    pub fn merge(&mut self, other: &DramStats) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_empties += other.row_empties;
        self.row_conflicts += other.row_conflicts;
        self.busy_cycles += other.busy_cycles;
        self.data_bus_cycles += other.data_bus_cycles;
        self.total_cycles += other.total_cycles;
        self.total_latency += other.total_latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_latency() {
        let s = DramStats {
            row_hits: 6,
            row_empties: 2,
            row_conflicts: 2,
            reads: 8,
            writes: 2,
            total_latency: 200,
            ..Default::default()
        };
        assert!((s.row_buffer_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(s.accesses(), 10);
        assert!((s.mean_latency() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = DramStats::default();
        assert_eq!(s.row_buffer_hit_rate(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.bus_utilization(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DramStats {
            activates: 3,
            reads: 1,
            ..Default::default()
        };
        let b = DramStats {
            activates: 4,
            writes: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activates, 7);
        assert_eq!(a.accesses(), 3);
    }
}
