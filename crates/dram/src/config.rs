//! DRAM timing and channel configuration.

/// DRAM command timing parameters, in DRAM clock cycles.
///
/// Only the constraints that shape GPU memory behavior at the paper's
/// granularity are modeled; exotic constraints (tWTR, tRTW turnarounds)
/// are folded into the burst occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency: column command to first data.
    pub cl: u64,
    /// RAS-to-CAS delay: ACT to column command.
    pub trcd: u64,
    /// Row precharge time: PRE to ACT.
    pub trp: u64,
    /// Minimum row-open time: ACT to PRE.
    pub tras: u64,
    /// ACT-to-ACT delay between different banks of one channel.
    pub trrd: u64,
    /// Column-to-column delay within a bank.
    pub tccd: u64,
    /// Data-bus occupancy of one transaction (128 B at 32 B/cycle = 4).
    pub tburst: u64,
}

impl DramTiming {
    /// Hynix GDDR5 at 924 MHz with 12-12-12 (CL-tRCD-tRP) timing, as in
    /// Table I. One channel moves 32 B per DRAM cycle (118.3 GB/s over 4
    /// channels), so a 128 B transaction occupies the bus for 4 cycles.
    pub const fn gddr5() -> Self {
        DramTiming {
            cl: 12,
            trcd: 12,
            trp: 12,
            tras: 28,
            trrd: 6,
            tccd: 2,
            tburst: 4,
        }
    }

    /// A 3D-stacked vault (Section VI-D): 64 TSVs at 1.25 Gb/s per vault
    /// (~10 GB/s, 8 B/cycle at 1.25 GHz), so a 128 B transaction occupies
    /// the vault's TSV bus for 16 cycles. Array timings are DDR3-like.
    pub const fn stacked_vault() -> Self {
        DramTiming {
            cl: 11,
            trcd: 11,
            trp: 11,
            tras: 26,
            trrd: 5,
            tccd: 2,
            tburst: 16,
        }
    }
}

/// Memory-request scheduling policy of a channel's controller.
///
/// The paper's baseline is FR-FCFS (Rixner et al.); plain FCFS is
/// provided for the scheduling-orthogonality ablation — the paper argues
/// mapping and scheduling are orthogonal, so the mapping gains should
/// survive a scheduler change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// First-Ready First-Come-First-Served: oldest row-buffer hit first,
    /// then oldest request.
    #[default]
    FrFcfs,
    /// Strict arrival order (among requests whose bank is ready).
    Fcfs,
}

/// Configuration of one DRAM channel (or 3D-stacked vault).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Number of banks in the channel.
    pub banks: usize,
    /// Scheduling queue capacity.
    pub queue_capacity: usize,
    /// Request scheduling policy.
    pub policy: SchedulingPolicy,
    /// Command timing.
    pub timing: DramTiming,
    /// DRAM clock frequency in GHz (used by callers for clock-domain
    /// conversion and by the power model for cycle-to-time conversion).
    pub clock_ghz: f64,
}

impl DramConfig {
    /// A lower bound, in DRAM cycles, on the time between a request
    /// *arriving* at a channel and its completion event: even a
    /// row-buffer hit issued the moment it arrives needs the CAS latency
    /// plus its own data burst before the completion fires
    /// (`finish = column command + CL + tBURST`, and the column command
    /// never precedes arrival). ACT/PRE chains and bus contention only
    /// push completions later.
    ///
    /// The phase-parallel engine uses this to bound how soon a request
    /// enqueued *inside* an epoch could produce a completion (and hence
    /// a reply injection) — one term of the safe-horizon's emission
    /// gate; see `valley-sim`'s `par` module.
    pub const fn min_completion_latency(&self) -> u64 {
        self.timing.cl + self.timing.tburst
    }

    /// The paper's baseline GDDR5 channel: 16 banks, FR-FCFS with a
    /// 64-entry queue, 924 MHz.
    pub const fn gddr5() -> Self {
        DramConfig {
            banks: 16,
            queue_capacity: 64,
            policy: SchedulingPolicy::FrFcfs,
            timing: DramTiming::gddr5(),
            clock_ghz: 0.924,
        }
    }

    /// One vault of the 3D-stacked configuration: 16 banks, 1.25 GHz TSV
    /// clock, smaller per-vault queue.
    pub const fn stacked_vault() -> Self {
        DramConfig {
            banks: 16,
            queue_capacity: 16,
            policy: SchedulingPolicy::FrFcfs,
            timing: DramTiming::stacked_vault(),
            clock_ghz: 1.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gddr5_matches_table1() {
        let t = DramTiming::gddr5();
        assert_eq!((t.cl, t.trcd, t.trp), (12, 12, 12));
        let c = DramConfig::gddr5();
        assert_eq!(c.banks, 16);
        assert!((c.clock_ghz - 0.924).abs() < 1e-9);
        // 32 B/cycle x 0.924 GHz x 4 channels = 118.3 GB/s.
        let bw = 32.0 * c.clock_ghz * 4.0;
        assert!((bw - 118.3).abs() < 0.3);
    }

    #[test]
    fn stacked_bandwidth_is_640gbs() {
        let c = DramConfig::stacked_vault();
        // 8 B/cycle x 1.25 GHz x 64 vaults = 640 GB/s.
        let per_vault_bytes = 128.0 / c.timing.tburst as f64;
        let bw = per_vault_bytes * c.clock_ghz * 64.0;
        assert!((bw - 640.0).abs() < 1.0);
    }
}
