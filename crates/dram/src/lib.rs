//! # valley-dram
//!
//! A cycle-level DRAM model for the Valley GPU simulator: GDDR5 channels
//! with FR-FCFS scheduling, open-page row-buffer policy and a detailed
//! command-timing state machine (Table I: Hynix GDDR5, 924 MHz, 4
//! channels, 16 banks/channel, 12-12-12 CL-tRCD-tRP), plus the 3D-stacked
//! (stack/vault) configuration of Section VI-D.
//!
//! The model's command counters (activates, reads, writes, busy cycles)
//! feed the Micron-style power model in `valley-power`, and its row-buffer
//! and bank-occupancy statistics reproduce Figures 14c and 15.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod channel;
mod config;
mod stats;
mod system;

pub use channel::{DramChannel, DramCompletion, DramRequest, RowBufferOutcome};
pub use config::{DramConfig, DramTiming, SchedulingPolicy};
pub use stats::DramStats;
pub use system::DramSystem;
