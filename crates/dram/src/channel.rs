//! A single DRAM channel: banks, open-page row buffers and an FR-FCFS
//! scheduler (Rixner et al.), as configured in Table I.

use crate::config::DramConfig;
use crate::stats::DramStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A memory transaction presented to a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller-assigned token returned on completion.
    pub id: u64,
    /// Bank index within the channel.
    pub bank: usize,
    /// DRAM row.
    pub row: usize,
    /// Whether this is a write (writes return a completion when the data
    /// is accepted; reads when the data burst finishes).
    pub is_write: bool,
    /// Arrival time in DRAM cycles (for latency accounting).
    pub arrival: u64,
}

/// A finished transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramCompletion {
    /// The token from the originating [`DramRequest`].
    pub id: u64,
    /// DRAM cycle at which the data burst completed.
    pub finish: u64,
    /// Whether the access was a write.
    pub is_write: bool,
}

/// How a column access found the row buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle; only an ACT was needed.
    Empty,
    /// A different row was open; PRE + ACT were needed.
    Conflict,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<usize>,
    /// When the bank can accept its next column/PRE/ACT command.
    ready_at: u64,
    /// Time of the last ACT (for the tRAS constraint before PRE).
    act_at: u64,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    finish: u64,
    id: u64,
    bank: usize,
    is_write: bool,
    arrival: u64,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.id == other.id
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.id).cmp(&(other.finish, other.id))
    }
}

/// One DRAM channel with FR-FCFS scheduling and an open-page policy.
///
/// Drive it with [`DramChannel::try_enqueue`] and advance time with
/// [`DramChannel::tick`] once per DRAM cycle; completions come back with
/// the caller's request tokens.
///
/// # Examples
///
/// ```
/// use valley_dram::{DramChannel, DramConfig, DramRequest};
///
/// let mut ch = DramChannel::new(DramConfig::gddr5());
/// ch.try_enqueue(DramRequest { id: 1, bank: 0, row: 7, is_write: false, arrival: 0 });
/// let mut done = Vec::new();
/// for cycle in 0..200 {
///     done.extend(ch.tick(cycle));
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].id, 1);
/// ```
#[derive(Clone, Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    queue: VecDeque<DramRequest>,
    inflight: BinaryHeap<Reverse<InFlight>>,
    /// Earliest cycle the next ACT may issue (tRRD).
    next_act_at: u64,
    /// Cycle at which the shared data bus becomes free.
    bus_free_at: u64,
    stats: DramStats,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        DramChannel {
            banks: vec![Bank::default(); cfg.banks],
            queue: VecDeque::with_capacity(cfg.queue_capacity),
            inflight: BinaryHeap::new(),
            next_act_at: 0,
            bus_free_at: 0,
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Attempts to append a request to the scheduling queue; returns
    /// `false` (back-pressure) when the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the request's bank index is out of range.
    pub fn try_enqueue(&mut self, req: DramRequest) -> bool {
        assert!(req.bank < self.cfg.banks, "bank index out of range");
        if self.queue.len() >= self.cfg.queue_capacity {
            return false;
        }
        self.queue.push_back(req);
        true
    }

    /// Number of queued (not yet scheduled) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether any request is queued or in flight.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || !self.inflight.is_empty()
    }

    /// Total outstanding requests (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Number of distinct banks with at least one outstanding request —
    /// the paper's per-channel bank-level parallelism sample (Figure 14c).
    pub fn busy_banks(&self) -> usize {
        let mut mask = 0u64;
        for r in &self.queue {
            mask |= 1 << r.bank;
        }
        for f in &self.inflight {
            mask |= 1 << f.0.bank;
        }
        mask.count_ones() as usize
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Advances the channel to DRAM cycle `cycle`: retires finished
    /// transactions and schedules at most one new column access (FR-FCFS:
    /// oldest row-hit first, otherwise oldest).
    pub fn tick(&mut self, cycle: u64) -> Vec<DramCompletion> {
        self.stats.total_cycles += 1;
        if self.is_busy() {
            self.stats.busy_cycles += 1;
        }
        if self.bus_free_at > cycle {
            self.stats.data_bus_cycles += 1;
        }

        let mut done = Vec::new();
        while let Some(Reverse(f)) = self.inflight.peek() {
            if f.finish > cycle {
                break;
            }
            let Reverse(f) = self.inflight.pop().expect("peeked entry exists");
            self.stats.total_latency += f.finish.saturating_sub(f.arrival);
            done.push(DramCompletion {
                id: f.id,
                finish: f.finish,
                is_write: f.is_write,
            });
        }

        if let Some(idx) = self.pick_fr_fcfs(cycle) {
            let req = self.queue.remove(idx).expect("picked index is valid");
            self.issue(req, cycle);
        }
        done
    }

    /// Request arbitration. FR-FCFS: among requests whose bank can accept
    /// a command this cycle, prefer the oldest row-buffer hit, then the
    /// oldest request overall. FCFS: strictly the oldest ready request.
    fn pick_fr_fcfs(&self, cycle: u64) -> Option<usize> {
        let row_hit_first = self.cfg.policy == crate::config::SchedulingPolicy::FrFcfs;
        let mut oldest_ready: Option<usize> = None;
        for (i, r) in self.queue.iter().enumerate() {
            let bank = &self.banks[r.bank];
            if bank.ready_at > cycle {
                continue;
            }
            if row_hit_first && bank.open_row == Some(r.row) {
                return Some(i); // first (oldest) row hit wins
            }
            if oldest_ready.is_none() {
                oldest_ready = Some(i);
                if !row_hit_first {
                    return oldest_ready;
                }
            }
        }
        oldest_ready
    }

    /// Commits the command sequence for `req` starting no earlier than
    /// `cycle`, updating bank, bus and statistics state.
    fn issue(&mut self, req: DramRequest, cycle: u64) {
        let t = &self.cfg.timing;
        let bank = &mut self.banks[req.bank];
        let outcome = match bank.open_row {
            Some(r) if r == req.row => RowBufferOutcome::Hit,
            Some(_) => RowBufferOutcome::Conflict,
            None => RowBufferOutcome::Empty,
        };

        // Column-command time, honoring per-outcome command chains.
        let mut col_at = match outcome {
            RowBufferOutcome::Hit => cycle.max(bank.ready_at),
            RowBufferOutcome::Empty => {
                let act_at = cycle.max(bank.ready_at).max(self.next_act_at);
                bank.act_at = act_at;
                self.next_act_at = act_at + t.trrd;
                self.stats.activates += 1;
                act_at + t.trcd
            }
            RowBufferOutcome::Conflict => {
                // PRE must respect tRAS from the prior ACT.
                let pre_at = cycle.max(bank.ready_at).max(bank.act_at + t.tras);
                let act_at = (pre_at + t.trp).max(self.next_act_at);
                bank.act_at = act_at;
                self.next_act_at = act_at + t.trrd;
                self.stats.precharges += 1;
                self.stats.activates += 1;
                act_at + t.trcd
            }
        };

        // The data burst must find the shared bus free.
        if col_at + t.cl < self.bus_free_at {
            col_at = self.bus_free_at - t.cl;
        }
        let data_start = col_at + t.cl;
        let data_end = data_start + t.tburst;
        self.bus_free_at = data_end;

        bank.open_row = Some(req.row);
        bank.ready_at = col_at + t.tccd;

        match outcome {
            RowBufferOutcome::Hit => self.stats.row_hits += 1,
            RowBufferOutcome::Empty => self.stats.row_empties += 1,
            RowBufferOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        if req.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        self.inflight.push(Reverse(InFlight {
            finish: data_end,
            id: req.id,
            bank: req.bank,
            is_write: req.is_write,
            arrival: req.arrival,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> DramChannel {
        DramChannel::new(DramConfig::gddr5())
    }

    fn run(ch: &mut DramChannel, from: u64, to: u64) -> Vec<DramCompletion> {
        (from..to).flat_map(|c| ch.tick(c)).collect()
    }

    fn req(id: u64, bank: usize, row: usize) -> DramRequest {
        DramRequest {
            id,
            bank,
            row,
            is_write: false,
            arrival: 0,
        }
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let mut ch = chan();
        assert!(ch.try_enqueue(req(1, 0, 5)));
        let done = run(&mut ch, 0, 100);
        assert_eq!(done.len(), 1);
        // Issued at cycle 0: ACT@0, col@12, data 24..28.
        assert_eq!(done[0].finish, 28);
        assert_eq!(ch.stats().activates, 1);
        assert_eq!(ch.stats().row_empties, 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        // Same bank, same row twice vs same bank, two rows.
        let mut hit = chan();
        hit.try_enqueue(req(1, 0, 5));
        hit.try_enqueue(req(2, 0, 5));
        let hit_done = run(&mut hit, 0, 300);
        let mut conflict = chan();
        conflict.try_enqueue(req(1, 0, 5));
        conflict.try_enqueue(req(2, 0, 6));
        let conf_done = run(&mut conflict, 0, 300);
        assert!(hit_done[1].finish < conf_done[1].finish);
        assert_eq!(hit.stats().row_hits, 1);
        assert_eq!(conflict.stats().row_conflicts, 1);
        assert_eq!(conflict.stats().precharges, 1);
    }

    #[test]
    fn conflict_respects_tras() {
        let mut ch = chan();
        ch.try_enqueue(req(1, 0, 1));
        ch.try_enqueue(req(2, 0, 2));
        let done = run(&mut ch, 0, 300);
        // First: ACT@0..data@28. Second: PRE no earlier than ACT+tRAS=28,
        // ACT@40, col@52, data 64..68.
        assert_eq!(done[1].finish, 68);
    }

    #[test]
    fn banks_overlap_but_bus_serializes() {
        let mut ch = chan();
        for b in 0..4 {
            ch.try_enqueue(req(b as u64, b, 0));
        }
        let done = run(&mut ch, 0, 300);
        assert_eq!(done.len(), 4);
        // Bank-parallel ACTs (tRRD-spaced) overlap row activation, but each
        // data burst needs 4 exclusive bus cycles; bursts must not overlap.
        let mut finishes: Vec<u64> = done.iter().map(|d| d.finish).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            assert!(w[1] >= w[0] + 4, "bursts overlap: {finishes:?}");
        }
        // And the whole batch is much faster than 4 serialized misses.
        assert!(finishes[3] < 4 * 28);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_over_older_conflict() {
        let mut ch = chan();
        // Open row 1 in bank 0.
        ch.try_enqueue(req(1, 0, 1));
        let _ = run(&mut ch, 0, 40);
        // Now queue: old request to a different row, young request hitting
        // the open row. FR-FCFS must serve the hit first.
        ch.try_enqueue(DramRequest {
            id: 2,
            bank: 0,
            row: 9,
            is_write: false,
            arrival: 40,
        });
        ch.try_enqueue(DramRequest {
            id: 3,
            bank: 0,
            row: 1,
            is_write: false,
            arrival: 41,
        });
        let done = run(&mut ch, 40, 400);
        let order: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert_eq!(order, vec![3, 2]);
    }

    #[test]
    fn queue_backpressure() {
        let mut ch = chan();
        let cap = ch.config().queue_capacity;
        for i in 0..cap {
            assert!(ch.try_enqueue(req(i as u64, 0, 0)));
        }
        assert!(!ch.try_enqueue(req(999, 0, 0)));
        assert_eq!(ch.queue_len(), cap);
    }

    #[test]
    fn busy_banks_counts_distinct() {
        let mut ch = chan();
        ch.try_enqueue(req(1, 3, 0));
        ch.try_enqueue(req(2, 3, 1));
        ch.try_enqueue(req(3, 7, 0));
        assert_eq!(ch.busy_banks(), 2);
        assert_eq!(ch.outstanding(), 3);
        assert!(ch.is_busy());
    }

    #[test]
    fn writes_counted_separately() {
        let mut ch = chan();
        ch.try_enqueue(DramRequest {
            id: 1,
            bank: 0,
            row: 0,
            is_write: true,
            arrival: 0,
        });
        let done = run(&mut ch, 0, 100);
        assert!(done[0].is_write);
        assert_eq!(ch.stats().writes, 1);
        assert_eq!(ch.stats().reads, 0);
    }

    #[test]
    fn latency_accounting_uses_arrival() {
        let mut ch = chan();
        ch.try_enqueue(req(1, 0, 0));
        let _ = run(&mut ch, 0, 100);
        assert_eq!(ch.stats().total_latency, 28);
        assert!((ch.stats().mean_latency() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn idle_channel_reports_not_busy() {
        let mut ch = chan();
        let _ = run(&mut ch, 0, 10);
        assert!(!ch.is_busy());
        assert_eq!(ch.stats().busy_cycles, 0);
        assert_eq!(ch.stats().total_cycles, 10);
    }
}
