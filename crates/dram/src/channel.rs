//! A single DRAM channel: banks, open-page row buffers and an FR-FCFS
//! scheduler (Rixner et al.), as configured in Table I.
//!
//! The scheduler keeps **per-bank request queues** so arbitration only
//! examines banks that can accept a command this cycle, instead of
//! scanning one global queue; a global sequence number preserves the exact
//! FR-FCFS/FCFS ordering semantics of a single arrival-ordered queue.
//!
//! On top of the queues sit two **indexes** that make arbitration cheap:
//!
//! * a per-bank *row index* — for every (bank, row) with queued work, an
//!   intrusive chain of the queued requests to that row in arrival order —
//!   so the oldest row-buffer hit of a bank is one lookup instead of a
//!   queue-prefix scan, and an ACT needs no recount of the new row's hits;
//! * a *readiness heap* of `(ready_at, bank)` — banks whose next command
//!   time is still in the future wait in the heap and are promoted into a
//!   small ready set exactly when their `ready_at` arrives, so `pick` only
//!   walks banks that can actually accept a command this cycle.
//!
//! Both indexes are pure accelerators: the scheduling decision is
//! bit-identical to the linear scan they replaced, which is kept under
//! `#[cfg(test)]` as [`DramChannel::pick_linear`] and pinned by a
//! randomized-traffic property test.

use crate::config::DramConfig;
use crate::stats::DramStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A memory transaction presented to a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller-assigned token returned on completion.
    pub id: u64,
    /// Bank index within the channel.
    pub bank: usize,
    /// DRAM row.
    pub row: usize,
    /// Whether this is a write (writes return a completion when the data
    /// is accepted; reads when the data burst finishes).
    pub is_write: bool,
    /// Arrival time in DRAM cycles (for latency accounting).
    pub arrival: u64,
}

/// A finished transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramCompletion {
    /// The token from the originating [`DramRequest`].
    pub id: u64,
    /// DRAM cycle at which the data burst completed.
    pub finish: u64,
    /// Whether the access was a write.
    pub is_write: bool,
}

/// How a column access found the row buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle; only an ACT was needed.
    Empty,
    /// A different row was open; PRE + ACT were needed.
    Conflict,
}

/// Where a bank currently sits in the scheduler's readiness index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Sched {
    /// No queued work; the bank is invisible to arbitration.
    #[default]
    Idle,
    /// Queued work, but `ready_at` is in the future: one entry in the
    /// readiness heap.
    Heap,
    /// Queued work and `ready_at` has arrived: member of the ready set.
    Ready,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<usize>,
    /// When the bank can accept its next column/PRE/ACT command.
    ready_at: u64,
    /// Time of the last ACT (for the tRAS constraint before PRE).
    act_at: u64,
    /// Transactions issued from this bank and not yet completed.
    inflight: u32,
    /// Readiness-index membership (see [`Sched`]).
    sched: Sched,
}

/// Chain-link sentinel: no younger request to the same (bank, row).
const NO_SEQ: u64 = u64::MAX;

/// A queued request plus its global arrival order and its intrusive
/// same-row chain link (the row index's linked list runs through the
/// queue entries themselves, so the index needs no per-row allocation).
#[derive(Clone, Copy, Debug)]
struct Queued {
    seq: u64,
    req: DramRequest,
    /// Seq of the next younger queued request to the same bank and row,
    /// or [`NO_SEQ`].
    next_same_row: u64,
}

/// One (bank, row) chain of the row index: the queued requests to `row`,
/// oldest first, linked through [`Queued::next_same_row`].
#[derive(Clone, Copy, Debug)]
struct RowChain {
    row: usize,
    /// Oldest queued seq to this row (the FR-FCFS hit candidate).
    head: u64,
    /// Youngest queued seq (chain append point).
    tail: u64,
    len: u32,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    finish: u64,
    id: u64,
    bank: usize,
    is_write: bool,
    arrival: u64,
}

/// One DRAM channel with FR-FCFS scheduling and an open-page policy.
///
/// Drive it with [`DramChannel::try_enqueue`] and advance time with
/// [`DramChannel::tick`] once per DRAM cycle; completions come back with
/// the caller's request tokens in a caller-provided buffer (the hot loop
/// is allocation-free).
///
/// # Examples
///
/// ```
/// use valley_dram::{DramChannel, DramConfig, DramRequest};
///
/// let mut ch = DramChannel::new(DramConfig::gddr5());
/// ch.try_enqueue(DramRequest { id: 1, bank: 0, row: 7, is_write: false, arrival: 0 });
/// let mut done = Vec::new();
/// for cycle in 0..200 {
///     ch.tick(cycle, &mut done);
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].id, 1);
/// ```
#[derive(Clone, Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Per-bank scheduling queues, each in arrival order (seqs strictly
    /// increasing front to back).
    queues: Vec<VecDeque<Queued>>,
    /// Per-bank row index: one [`RowChain`] per row with queued work.
    /// Linear-searched by row — a bank rarely holds more than a handful
    /// of distinct rows, and the search runs on enqueue/issue, not per
    /// tick.
    row_chains: Vec<Vec<RowChain>>,
    /// Readiness heap: `(ready_at, bank)` for every bank in
    /// [`Sched::Heap`] state, min-first.
    sched_heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Banks whose `ready_at` has arrived and that still hold queued
    /// work ([`Sched::Ready`]); the only banks `pick` walks.
    ready: Vec<usize>,
    /// Total requests across all per-bank queues.
    queued: usize,
    /// Banks with at least one outstanding (queued or in-flight) request,
    /// maintained incrementally for the Figure 14c sampling hot path.
    busy_bank_count: u32,
    /// Next global arrival sequence number.
    next_seq: u64,
    /// Cached earliest cycle at which [`DramChannel::tick`] does real
    /// work (`u64::MAX` = empty channel); maintained by the evented tick
    /// path and invalidated by [`DramChannel::try_enqueue`].
    cached_next: u64,
    /// First cycle whose counter updates are still deferred.
    acct_from: u64,
    /// Conservative (never late) next-event hint left behind by `tick`,
    /// folded into the arbitration scan so the evented path needs no
    /// second pass over the banks.
    next_hint: u64,
    /// Issued-but-uncompleted transactions, in issue order. The shared
    /// data bus serializes bursts, so `finish` times are strictly
    /// increasing in issue order and the retire queue is a plain FIFO —
    /// no heap needed.
    inflight: VecDeque<InFlight>,
    /// Earliest cycle the next ACT may issue (tRRD).
    next_act_at: u64,
    /// Cycle at which the shared data bus becomes free.
    bus_free_at: u64,
    stats: DramStats,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        DramChannel {
            banks: vec![Bank::default(); cfg.banks],
            // Sized for steady state (the whole channel holds at most
            // `queue_capacity` queued requests): fresh channels otherwise
            // pay a per-bank realloc ladder on every simulation run.
            queues: vec![VecDeque::with_capacity(16); cfg.banks],
            row_chains: vec![Vec::with_capacity(8); cfg.banks],
            sched_heap: BinaryHeap::with_capacity(cfg.banks),
            ready: Vec::with_capacity(cfg.banks),
            queued: 0,
            busy_bank_count: 0,
            next_seq: 0,
            cached_next: 0,
            acct_from: 0,
            next_hint: 0,
            inflight: VecDeque::with_capacity(32),
            next_act_at: 0,
            bus_free_at: 0,
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Attempts to append a request to the scheduling queue; returns
    /// `false` (back-pressure) when the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the request's bank index is out of range.
    pub fn try_enqueue(&mut self, req: DramRequest) -> bool {
        assert!(req.bank < self.cfg.banks, "bank index out of range");
        if self.queued >= self.cfg.queue_capacity {
            return false;
        }
        // Counter deferral (evented path): the cycles before this arrival
        // must be accounted with the channel's *pre-enqueue* busy state.
        self.flush_deferred(req.arrival);
        let seq = self.next_seq;
        self.next_seq += 1;
        let b = req.bank;
        let was_empty = self.queues[b].is_empty();
        if was_empty && self.banks[b].inflight == 0 {
            self.busy_bank_count += 1;
        }
        // Queue growth is amortized pool growth toward the high-water
        // mark, not per-tick work; declare it to the allocation audit.
        let _audit_pause = (self.queues[b].len() == self.queues[b].capacity())
            .then(valley_core::alloc_audit::pause);
        self.queues[b].push_back(Queued {
            seq,
            req,
            next_same_row: NO_SEQ,
        });
        self.queued += 1;
        // Row index: append to the (bank, row) chain.
        match self.row_chains[b].iter().position(|c| c.row == req.row) {
            Some(i) => {
                let chain = &mut self.row_chains[b][i];
                let tail_seq = chain.tail;
                chain.tail = seq;
                chain.len += 1;
                // Same-row streams append right behind the chain tail, so
                // the tail is usually the queue's previous back entry.
                let q = &mut self.queues[b];
                let prev = q.len() - 2;
                let t = if q[prev].seq == tail_seq {
                    prev
                } else {
                    Self::index_of_seq(q, tail_seq)
                };
                q[t].next_same_row = seq;
            }
            None => {
                let _audit_pause = (self.row_chains[b].len() == self.row_chains[b].capacity())
                    .then(valley_core::alloc_audit::pause);
                self.row_chains[b].push(RowChain {
                    row: req.row,
                    head: seq,
                    tail: seq,
                    len: 1,
                });
            }
        }
        // Readiness index: a previously empty bank becomes schedulable at
        // its (possibly past) `ready_at`. A bank that is already ready by
        // the request's own arrival — the common case under spread
        // traffic, where banks drain and idle between requests — goes
        // straight to the ready set: every future pick cycle is at or
        // after `arrival`, so the promotion the heap would perform is a
        // foregone conclusion and both heap operations can be skipped.
        if was_empty {
            debug_assert_eq!(self.banks[b].sched, Sched::Idle);
            if self.banks[b].ready_at <= req.arrival {
                self.banks[b].sched = Sched::Ready;
                self.ready.push(b);
            } else {
                self.banks[b].sched = Sched::Heap;
                self.sched_heap.push(Reverse((self.banks[b].ready_at, b)));
            }
        }
        // Evented cache: the earliest cycle this request could issue is
        // when both it has arrived and its bank can take a command —
        // every other potential event was already covered by the hint the
        // last tick left behind, so the cache stays exact (never late)
        // without a rescan.
        let event = req.arrival.max(self.banks[b].ready_at);
        if event < self.cached_next {
            self.cached_next = event;
        }
        true
    }

    /// Position of `seq` within a bank queue (seqs are strictly
    /// increasing, so this is a binary search).
    #[inline]
    fn index_of_seq(queue: &VecDeque<Queued>, seq: u64) -> usize {
        let i = queue.partition_point(|q| q.seq < seq);
        debug_assert_eq!(queue[i].seq, seq);
        i
    }

    /// Number of queued (not yet scheduled) requests.
    pub fn queue_len(&self) -> usize {
        self.queued
    }

    /// Whether any request is queued or in flight.
    pub fn is_busy(&self) -> bool {
        self.queued > 0 || !self.inflight.is_empty()
    }

    /// Total outstanding requests (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queued + self.inflight.len()
    }

    /// Number of distinct banks with at least one outstanding request —
    /// the paper's per-channel bank-level parallelism sample (Figure 14c).
    pub fn busy_banks(&self) -> usize {
        self.busy_bank_count as usize
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The cached next-event cycle maintained by
    /// [`DramChannel::tick_evented`] (`u64::MAX` = empty channel).
    #[inline]
    pub fn cached_next_event(&self) -> u64 {
        self.cached_next
    }

    /// The earliest DRAM cycle at or after `now` at which [`tick`] would
    /// do real work (retire a completion or issue a command), or `None`
    /// when the channel is empty. Between `now` and that cycle, every
    /// `tick` is a pure counter update — callers may replace the calls
    /// with one [`DramChannel::skip_idle`].
    ///
    /// [`tick`]: DramChannel::tick
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        let mut next = self.inflight.front().map(|f| f.finish.max(now));
        for (bank, queue) in self.banks.iter().zip(&self.queues) {
            if queue.is_empty() {
                continue;
            }
            let ready = bank.ready_at.max(now);
            next = Some(next.map_or(ready, |n| n.min(ready)));
            if ready == now {
                break; // cannot get earlier than `now`
            }
        }
        next
    }

    /// Accounts `n` DRAM cycles starting at `from` during which the
    /// channel provably does nothing (see [`DramChannel::next_event_at`]),
    /// updating the same counters `n` dense [`tick`] calls would have.
    ///
    /// [`tick`]: DramChannel::tick
    pub fn skip_idle(&mut self, from: u64, n: u64) {
        self.stats.total_cycles += n;
        if self.is_busy() {
            self.stats.busy_cycles += n;
        }
        self.stats.data_bus_cycles += self.bus_free_at.saturating_sub(from).min(n);
        // These cycles are now accounted; keep the deferral cursor in
        // sync so a later flush cannot double-count them.
        self.acct_from = self.acct_from.max(from + n);
    }

    /// Brings the per-cycle counters up to date with `up_to` (exclusive),
    /// accounting every not-yet-ticked cycle exactly as the dense loop
    /// would have. Call before reading [`DramChannel::stats`] when
    /// driving the channel through [`DramChannel::tick_evented`].
    pub fn flush_deferred(&mut self, up_to: u64) {
        if up_to > self.acct_from {
            self.skip_idle(self.acct_from, up_to - self.acct_from);
        }
    }

    /// Event-gated [`DramChannel::tick`]: a no-op (with counters
    /// deferred) while the cached next-event cycle is in the future.
    /// Bit-identical to ticking densely every cycle.
    #[inline]
    pub fn tick_evented(&mut self, cycle: u64, done: &mut Vec<DramCompletion>) {
        if cycle < self.cached_next {
            return;
        }
        self.flush_deferred(cycle);
        self.tick(cycle, done);
        // `tick` leaves a conservative (never late) next-event hint, so no
        // second bank scan is needed here.
        self.cached_next = self.next_hint.max(cycle + 1);
    }

    /// Advances the channel to DRAM cycle `cycle`: retires finished
    /// transactions into `done` (which is *not* cleared) and schedules at
    /// most one new column access (FR-FCFS: oldest row-hit first,
    /// otherwise oldest).
    pub fn tick(&mut self, cycle: u64, done: &mut Vec<DramCompletion>) {
        // Count this cycle unless an out-of-band flush (an enqueue whose
        // arrival stamp ran ahead of the tick cursor) already settled it.
        if cycle >= self.acct_from {
            self.stats.total_cycles += 1;
            self.acct_from = cycle + 1;
            if self.is_busy() {
                self.stats.busy_cycles += 1;
                if self.bus_free_at > cycle {
                    self.stats.data_bus_cycles += 1;
                }
            }
        }
        if self.queued == 0 && self.inflight.is_empty() {
            // Idle: nothing to retire or schedule (and the bus went free
            // no later than the last retired burst).
            debug_assert!(self.bus_free_at <= cycle);
            self.next_hint = u64::MAX;
            return;
        }

        while let Some(f) = self.inflight.front() {
            if f.finish > cycle {
                break;
            }
            let f = self.inflight.pop_front().expect("peeked entry exists");
            self.banks[f.bank].inflight -= 1;
            if self.banks[f.bank].inflight == 0 && self.queues[f.bank].is_empty() {
                self.busy_bank_count -= 1;
            }
            self.stats.total_latency += f.finish.saturating_sub(f.arrival);
            done.push(DramCompletion {
                id: f.id,
                finish: f.finish,
                is_write: f.is_write,
            });
        }

        let (picked, min_ready) = self.pick(cycle);
        let mut hint = min_ready;
        if let Some((bank, idx)) = picked {
            let q = self.queues[bank]
                .remove(idx)
                .expect("picked index is valid");
            self.queued -= 1;
            self.unindex_picked(bank, &q);
            self.issue(q.req, cycle);
            // The issued bank's readiness changed; its pre-issue ready_at
            // in `min_ready` can only be early (conservative).
            hint = hint.min(self.banks[bank].ready_at);
            // Re-index the bank at its post-issue readiness.
            if self.queues[bank].is_empty() {
                self.banks[bank].sched = Sched::Idle;
            } else {
                self.banks[bank].sched = Sched::Heap;
                self.sched_heap
                    .push(Reverse((self.banks[bank].ready_at, bank)));
            }
        }
        if let Some(f) = self.inflight.front() {
            hint = hint.min(f.finish);
        }
        self.next_hint = hint;
    }

    /// Request arbitration over the per-bank queues. FR-FCFS: among
    /// requests whose bank can accept a command this cycle, the oldest
    /// row-buffer hit (global arrival order), then the oldest request
    /// overall. FCFS: strictly the oldest ready request. Returns the bank
    /// and position within that bank's queue, plus a next-event hint: a
    /// value `<= cycle` when an issue-capable bank exists, otherwise the
    /// earliest `ready_at` over all banks with queued work.
    ///
    /// Indexed: banks wait in the readiness heap until their `ready_at`
    /// arrives, then move to the ready set; only ready banks are walked,
    /// and each bank's oldest row hit is a row-index lookup instead of a
    /// queue-prefix scan. The decision is bit-identical to the linear
    /// reference scan ([`DramChannel::pick_linear`]).
    fn pick(&mut self, cycle: u64) -> (Option<(usize, usize)>, u64) {
        // Promote banks whose ready_at has arrived into the ready set.
        while let Some(&Reverse((t, b))) = self.sched_heap.peek() {
            if t > cycle {
                break;
            }
            self.sched_heap.pop();
            if self.banks[b].sched != Sched::Heap || self.banks[b].ready_at != t {
                // Defensive: the state machine keeps exactly one fresh
                // entry per Heap-state bank, so this never fires; lazy
                // invalidation keeps a stale entry harmless regardless.
                continue;
            }
            self.banks[b].sched = Sched::Ready;
            self.ready.push(b);
        }
        let row_hit_first = self.cfg.policy == crate::config::SchedulingPolicy::FrFcfs;
        let mut best_hit: Option<(u64, usize)> = None;
        let mut oldest_ready: Option<(u64, usize)> = None;
        for &b in &self.ready {
            debug_assert!(self.banks[b].ready_at <= cycle);
            let front = self.queues[b].front().expect("ready bank has queued work");
            if oldest_ready.is_none_or(|(seq, _)| front.seq < seq) {
                oldest_ready = Some((front.seq, b));
            }
            if row_hit_first {
                if let Some(open) = self.banks[b].open_row {
                    // The oldest hit of a bank is its open row's chain
                    // head (arrival order), if the row has queued work.
                    if let Some(c) = self.row_chains[b].iter().find(|c| c.row == open) {
                        if best_hit.is_none_or(|(seq, _)| c.head < seq) {
                            best_hit = Some((c.head, b));
                        }
                    }
                }
            }
        }
        // Next-event hint: a ready bank issues now (any value <= cycle
        // keeps the evented cache exact); otherwise the heap top is the
        // earliest bank readiness.
        let min_ready = if self.ready.is_empty() {
            self.sched_heap
                .peek()
                .map_or(u64::MAX, |&Reverse((t, _))| t)
        } else {
            cycle
        };
        let choice = match best_hit {
            Some((seq, b)) => {
                // The oldest hit is very often the bank's oldest request.
                let q = &self.queues[b];
                let idx = if q.front().is_some_and(|f| f.seq == seq) {
                    0
                } else {
                    Self::index_of_seq(q, seq)
                };
                Some((b, idx))
            }
            None => oldest_ready.map(|(_, b)| (b, 0)),
        };
        (choice, min_ready)
    }

    /// Removes a just-picked (and already dequeued) request from the row
    /// index and the ready set. The picked request is always the oldest
    /// queued request to its row within its bank — either the open row's
    /// chain head (FR-FCFS hit) or the bank's queue front — so the chain
    /// pop is a head pop.
    fn unindex_picked(&mut self, bank: usize, q: &Queued) {
        let pos = self
            .ready
            .iter()
            .position(|&b| b == bank)
            .expect("picked bank is in the ready set");
        self.ready.swap_remove(pos);
        let i = self.row_chains[bank]
            .iter()
            .position(|c| c.row == q.req.row)
            .expect("queued row has a chain");
        let chain = &mut self.row_chains[bank][i];
        debug_assert_eq!(chain.head, q.seq, "picked request is its row's oldest");
        if chain.len == 1 {
            debug_assert_eq!(q.next_same_row, NO_SEQ);
            self.row_chains[bank].swap_remove(i);
        } else {
            chain.len -= 1;
            chain.head = q.next_same_row;
            debug_assert_ne!(chain.head, NO_SEQ);
        }
    }

    /// Commits the command sequence for `req` starting no earlier than
    /// `cycle`, updating bank, bus and statistics state.
    fn issue(&mut self, req: DramRequest, cycle: u64) {
        let t = &self.cfg.timing;
        let bank = &mut self.banks[req.bank];
        let outcome = match bank.open_row {
            Some(r) if r == req.row => RowBufferOutcome::Hit,
            Some(_) => RowBufferOutcome::Conflict,
            None => RowBufferOutcome::Empty,
        };

        // Column-command time, honoring per-outcome command chains.
        let mut col_at = match outcome {
            RowBufferOutcome::Hit => cycle.max(bank.ready_at),
            RowBufferOutcome::Empty => {
                let act_at = cycle.max(bank.ready_at).max(self.next_act_at);
                bank.act_at = act_at;
                self.next_act_at = act_at + t.trrd;
                self.stats.activates += 1;
                act_at + t.trcd
            }
            RowBufferOutcome::Conflict => {
                // PRE must respect tRAS from the prior ACT.
                let pre_at = cycle.max(bank.ready_at).max(bank.act_at + t.tras);
                let act_at = (pre_at + t.trp).max(self.next_act_at);
                bank.act_at = act_at;
                self.next_act_at = act_at + t.trrd;
                self.stats.precharges += 1;
                self.stats.activates += 1;
                act_at + t.trcd
            }
        };

        // The data burst must find the shared bus free.
        if col_at + t.cl < self.bus_free_at {
            col_at = self.bus_free_at - t.cl;
        }
        let data_start = col_at + t.cl;
        let data_end = data_start + t.tburst;
        self.bus_free_at = data_end;

        // Remaining hits against the (possibly new) open row are whatever
        // the row index holds for `req.row` — no recount needed on an ACT.
        bank.open_row = Some(req.row);
        bank.ready_at = col_at + t.tccd;
        bank.inflight += 1;

        match outcome {
            RowBufferOutcome::Hit => self.stats.row_hits += 1,
            RowBufferOutcome::Empty => self.stats.row_empties += 1,
            RowBufferOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        if req.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        debug_assert!(
            self.inflight.back().is_none_or(|f| f.finish < data_end),
            "bus serialization keeps retire order FIFO"
        );
        self.inflight.push_back(InFlight {
            finish: data_end,
            id: req.id,
            bank: req.bank,
            is_write: req.is_write,
            arrival: req.arrival,
        });
    }
}

#[cfg(test)]
impl DramChannel {
    /// The pre-index linear arbitration — scans every bank and every
    /// queue prefix — kept verbatim as the oracle the indexed
    /// [`DramChannel::pick`] is property-tested against.
    pub(crate) fn pick_linear(&self, cycle: u64) -> (Option<(usize, usize)>, u64) {
        let row_hit_first = self.cfg.policy == crate::config::SchedulingPolicy::FrFcfs;
        let mut best_hit: Option<(u64, usize, usize)> = None;
        let mut oldest_ready: Option<(u64, usize)> = None;
        let mut min_ready = u64::MAX;
        for (b, (bank, queue)) in self.banks.iter().zip(&self.queues).enumerate() {
            let Some(front) = queue.front() else { continue };
            min_ready = min_ready.min(bank.ready_at);
            if bank.ready_at > cycle {
                continue;
            }
            if oldest_ready.is_none_or(|(seq, _)| front.seq < seq) {
                oldest_ready = Some((front.seq, b));
            }
            if row_hit_first {
                if let Some(open) = bank.open_row {
                    for (i, q) in queue.iter().enumerate() {
                        if q.req.row == open {
                            if best_hit.is_none_or(|(seq, _, _)| q.seq < seq) {
                                best_hit = Some((q.seq, b, i));
                            }
                            break;
                        }
                    }
                }
            }
        }
        let choice = best_hit
            .map(|(_, b, i)| (b, i))
            .or(oldest_ready.map(|(_, b)| (b, 0)));
        (choice, min_ready)
    }

    /// The indexed arbitration, exposed for the oracle comparison.
    /// Promotion is idempotent at a fixed cycle, so calling this and then
    /// [`DramChannel::tick`] (which picks again) yields the same choice.
    pub(crate) fn pick_indexed(&mut self, cycle: u64) -> (Option<(usize, usize)>, u64) {
        self.pick(cycle)
    }

    /// Checks every internal invariant of the row index and readiness
    /// index against a recompute from the plain queues.
    pub(crate) fn assert_index_invariants(&self) {
        use std::collections::HashMap;
        let mut total = 0;
        let mut busy = 0;
        for (b, (bank, queue)) in self.banks.iter().zip(&self.queues).enumerate() {
            total += queue.len();
            if !queue.is_empty() || bank.inflight > 0 {
                busy += 1;
            }
            // Queue is strictly arrival-ordered.
            for w in queue.iter().zip(queue.iter().skip(1)) {
                assert!(w.0.seq < w.1.seq, "bank {b}: queue out of arrival order");
            }
            // Row chains match a recompute, link by link.
            let mut expect: HashMap<usize, Vec<u64>> = HashMap::new();
            for q in queue {
                expect.entry(q.req.row).or_default().push(q.seq);
            }
            assert_eq!(
                self.row_chains[b].len(),
                expect.len(),
                "bank {b}: chain count"
            );
            for chain in &self.row_chains[b] {
                let seqs = expect.get(&chain.row).expect("chain for a queued row");
                assert_eq!(chain.head, seqs[0], "bank {b} row {}: head", chain.row);
                assert_eq!(
                    chain.tail,
                    *seqs.last().expect("nonempty"),
                    "bank {b} row {}: tail",
                    chain.row
                );
                assert_eq!(chain.len as usize, seqs.len(), "bank {b}: chain len");
                let mut cur = chain.head;
                for (k, &s) in seqs.iter().enumerate() {
                    assert_eq!(cur, s, "bank {b} row {}: link {k}", chain.row);
                    cur = self.queues[b][Self::index_of_seq(&self.queues[b], s)].next_same_row;
                }
                assert_eq!(cur, NO_SEQ, "bank {b} row {}: chain tail link", chain.row);
            }
            // Scheduling state matches queue occupancy.
            match bank.sched {
                Sched::Idle => assert!(queue.is_empty(), "bank {b}: Idle with queued work"),
                Sched::Heap | Sched::Ready => {
                    assert!(!queue.is_empty(), "bank {b}: indexed without queued work")
                }
            }
        }
        assert_eq!(self.queued, total, "queued counter");
        assert_eq!(self.busy_bank_count as usize, busy, "busy bank counter");
        // The ready set holds exactly the Ready-state banks, once each.
        let mut ready = self.ready.clone();
        ready.sort_unstable();
        ready.dedup();
        assert_eq!(ready.len(), self.ready.len(), "duplicate ready entries");
        for &b in &self.ready {
            assert_eq!(self.banks[b].sched, Sched::Ready, "ready set stale");
        }
        let ready_banks = self
            .banks
            .iter()
            .filter(|bk| bk.sched == Sched::Ready)
            .count();
        assert_eq!(self.ready.len(), ready_banks, "ready set incomplete");
        // The heap holds exactly one fresh entry per Heap-state bank.
        let entries: Vec<(u64, usize)> = self.sched_heap.iter().map(|&Reverse(e)| e).collect();
        let heap_banks: Vec<usize> = self
            .banks
            .iter()
            .enumerate()
            .filter(|(_, bk)| bk.sched == Sched::Heap)
            .map(|(b, _)| b)
            .collect();
        assert_eq!(entries.len(), heap_banks.len(), "stale heap entries");
        for b in heap_banks {
            assert_eq!(
                entries
                    .iter()
                    .filter(|&&(t, eb)| eb == b && t == self.banks[b].ready_at)
                    .count(),
                1,
                "bank {b}: heap entry missing or stale"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> DramChannel {
        DramChannel::new(DramConfig::gddr5())
    }

    fn run(ch: &mut DramChannel, from: u64, to: u64) -> Vec<DramCompletion> {
        let mut done = Vec::new();
        for c in from..to {
            ch.tick(c, &mut done);
        }
        done
    }

    fn req(id: u64, bank: usize, row: usize) -> DramRequest {
        DramRequest {
            id,
            bank,
            row,
            is_write: false,
            arrival: 0,
        }
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let mut ch = chan();
        assert!(ch.try_enqueue(req(1, 0, 5)));
        let done = run(&mut ch, 0, 100);
        assert_eq!(done.len(), 1);
        // Issued at cycle 0: ACT@0, col@12, data 24..28.
        assert_eq!(done[0].finish, 28);
        assert_eq!(ch.stats().activates, 1);
        assert_eq!(ch.stats().row_empties, 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        // Same bank, same row twice vs same bank, two rows.
        let mut hit = chan();
        hit.try_enqueue(req(1, 0, 5));
        hit.try_enqueue(req(2, 0, 5));
        let hit_done = run(&mut hit, 0, 300);
        let mut conflict = chan();
        conflict.try_enqueue(req(1, 0, 5));
        conflict.try_enqueue(req(2, 0, 6));
        let conf_done = run(&mut conflict, 0, 300);
        assert!(hit_done[1].finish < conf_done[1].finish);
        assert_eq!(hit.stats().row_hits, 1);
        assert_eq!(conflict.stats().row_conflicts, 1);
        assert_eq!(conflict.stats().precharges, 1);
    }

    #[test]
    fn conflict_respects_tras() {
        let mut ch = chan();
        ch.try_enqueue(req(1, 0, 1));
        ch.try_enqueue(req(2, 0, 2));
        let done = run(&mut ch, 0, 300);
        // First: ACT@0..data@28. Second: PRE no earlier than ACT+tRAS=28,
        // ACT@40, col@52, data 64..68.
        assert_eq!(done[1].finish, 68);
    }

    #[test]
    fn banks_overlap_but_bus_serializes() {
        let mut ch = chan();
        for b in 0..4 {
            ch.try_enqueue(req(b as u64, b, 0));
        }
        let done = run(&mut ch, 0, 300);
        assert_eq!(done.len(), 4);
        // Bank-parallel ACTs (tRRD-spaced) overlap row activation, but each
        // data burst needs 4 exclusive bus cycles; bursts must not overlap.
        let mut finishes: Vec<u64> = done.iter().map(|d| d.finish).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            assert!(w[1] >= w[0] + 4, "bursts overlap: {finishes:?}");
        }
        // And the whole batch is much faster than 4 serialized misses.
        assert!(finishes[3] < 4 * 28);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_over_older_conflict() {
        let mut ch = chan();
        // Open row 1 in bank 0.
        ch.try_enqueue(req(1, 0, 1));
        let _ = run(&mut ch, 0, 40);
        // Now queue: old request to a different row, young request hitting
        // the open row. FR-FCFS must serve the hit first.
        ch.try_enqueue(DramRequest {
            id: 2,
            bank: 0,
            row: 9,
            is_write: false,
            arrival: 40,
        });
        ch.try_enqueue(DramRequest {
            id: 3,
            bank: 0,
            row: 1,
            is_write: false,
            arrival: 41,
        });
        let done = run(&mut ch, 40, 400);
        let order: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert_eq!(order, vec![3, 2]);
    }

    #[test]
    fn fr_fcfs_oldest_hit_wins_across_banks() {
        let mut ch = chan();
        // Open row 1 in bank 0 and row 2 in bank 1.
        ch.try_enqueue(req(1, 0, 1));
        ch.try_enqueue(req(2, 1, 2));
        let _ = run(&mut ch, 0, 60);
        // Hits for both banks; the bank-1 hit arrived first and must win
        // the shared data bus.
        ch.try_enqueue(req(10, 1, 2));
        ch.try_enqueue(req(11, 0, 1));
        let done = run(&mut ch, 60, 400);
        let order: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert_eq!(order, vec![10, 11]);
    }

    #[test]
    fn queue_backpressure() {
        let mut ch = chan();
        let cap = ch.config().queue_capacity;
        for i in 0..cap {
            assert!(ch.try_enqueue(req(i as u64, 0, 0)));
        }
        assert!(!ch.try_enqueue(req(999, 0, 0)));
        assert_eq!(ch.queue_len(), cap);
    }

    #[test]
    fn busy_banks_counts_distinct() {
        let mut ch = chan();
        ch.try_enqueue(req(1, 3, 0));
        ch.try_enqueue(req(2, 3, 1));
        ch.try_enqueue(req(3, 7, 0));
        assert_eq!(ch.busy_banks(), 2);
        assert_eq!(ch.outstanding(), 3);
        assert!(ch.is_busy());
    }

    #[test]
    fn writes_counted_separately() {
        let mut ch = chan();
        ch.try_enqueue(DramRequest {
            id: 1,
            bank: 0,
            row: 0,
            is_write: true,
            arrival: 0,
        });
        let done = run(&mut ch, 0, 100);
        assert!(done[0].is_write);
        assert_eq!(ch.stats().writes, 1);
        assert_eq!(ch.stats().reads, 0);
    }

    #[test]
    fn latency_accounting_uses_arrival() {
        let mut ch = chan();
        ch.try_enqueue(req(1, 0, 0));
        let _ = run(&mut ch, 0, 100);
        assert_eq!(ch.stats().total_latency, 28);
        assert!((ch.stats().mean_latency() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn idle_channel_reports_not_busy() {
        let mut ch = chan();
        let _ = run(&mut ch, 0, 10);
        assert!(!ch.is_busy());
        assert_eq!(ch.stats().busy_cycles, 0);
        assert_eq!(ch.stats().total_cycles, 10);
    }

    #[test]
    fn next_event_tracks_inflight_and_bank_readiness() {
        let mut ch = chan();
        assert_eq!(ch.next_event_at(0), None);
        ch.try_enqueue(req(1, 0, 5));
        // Queued request, bank idle: the event is now.
        assert_eq!(ch.next_event_at(3), Some(3));
        let mut done = Vec::new();
        ch.tick(3, &mut done);
        // Issued at 3: in flight until 31, bank busy until col+tccd.
        let next = ch.next_event_at(4).expect("in-flight work");
        assert!(next > 4);
        // Skipping to the event and ticking there must complete it.
        ch.skip_idle(4, next - 4);
        ch.tick(next, &mut done);
        assert_eq!(done.len(), 1, "the skipped-to event retires the request");
    }

    #[test]
    fn skip_idle_matches_dense_counters() {
        // Drive one request, then compare dense ticking vs skipping over
        // the quiet window.
        let mut dense = chan();
        let mut skip = chan();
        dense.try_enqueue(req(1, 0, 5));
        skip.try_enqueue(req(1, 0, 5));
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        for c in 0..60 {
            dense.tick(c, &mut d1);
        }
        // Event-driven: tick cycle 0 (issue), skip to the completion.
        skip.tick(0, &mut d2);
        let ev = skip.next_event_at(1).unwrap();
        skip.skip_idle(1, ev - 1);
        skip.tick(ev, &mut d2);
        skip.skip_idle(ev + 1, 60 - ev - 1);
        assert_eq!(d1, d2);
        assert_eq!(dense.stats(), skip.stats());
    }

    mod indexed_pick_oracle {
        use super::*;
        use crate::config::SchedulingPolicy;
        use proptest::prelude::*;

        /// Drives a channel through randomized traffic (random banks,
        /// rows, arrival times and both scheduling policies), asserting
        /// before every tick that the indexed `pick` chooses exactly what
        /// the linear oracle would, and after every enqueue/tick (which
        /// covers issue and retire) that the row index, readiness heap
        /// and ready set match a recompute from the plain queues.
        fn drive(reqs: &[(usize, usize, bool, u64)], fcfs: bool) -> Result<(), TestCaseError> {
            let mut cfg = DramConfig::gddr5();
            if fcfs {
                cfg.policy = SchedulingPolicy::Fcfs;
            }
            let mut ch = DramChannel::new(cfg);
            let mut reqs: Vec<(usize, usize, bool, u64)> = reqs.to_vec();
            reqs.sort_by_key(|r| r.3);
            let mut next = 0;
            let mut accepted = 0u64;
            let mut done = Vec::new();
            for cycle in 0..100_000u64 {
                while next < reqs.len() && reqs[next].3 <= cycle {
                    let (bank, row, is_write, arrival) = reqs[next];
                    if ch.try_enqueue(DramRequest {
                        id: next as u64,
                        bank,
                        row,
                        is_write,
                        arrival,
                    }) {
                        accepted += 1;
                    }
                    ch.assert_index_invariants();
                    next += 1;
                }
                let expected = ch.pick_linear(cycle);
                let actual = ch.pick_indexed(cycle);
                prop_assert_eq!(actual.0, expected.0, "choice diverged at cycle {}", cycle);
                // The hint needs only its evented-cache meaning: equal
                // when in the future, both "now" when a bank is ready.
                if expected.1 <= cycle {
                    prop_assert!(actual.1 <= cycle, "hint late at cycle {}", cycle);
                } else {
                    prop_assert_eq!(actual.1, expected.1, "hint diverged at cycle {}", cycle);
                }
                ch.tick(cycle, &mut done);
                ch.assert_index_invariants();
                if next == reqs.len() && !ch.is_busy() {
                    break;
                }
            }
            prop_assert_eq!(done.len() as u64, accepted, "requests lost");
            Ok(())
        }

        proptest! {
            #[test]
            fn fr_fcfs_matches_linear_oracle(
                reqs in proptest::collection::vec(
                    (0usize..16, 0usize..6, any::<bool>(), 0u64..400), 1..80)
            ) {
                drive(&reqs, false)?;
            }

            #[test]
            fn fcfs_matches_linear_oracle(
                reqs in proptest::collection::vec(
                    (0usize..16, 0usize..6, any::<bool>(), 0u64..400), 1..80)
            ) {
                drive(&reqs, true)?;
            }

            /// Hot single-bank traffic maximizes queue depth and chain
            /// length — the regime the prefix scan used to pay for.
            #[test]
            fn hot_bank_matches_linear_oracle(
                reqs in proptest::collection::vec(
                    (0usize..2, 0usize..3, any::<bool>(), 0u64..100), 1..70)
            ) {
                drive(&reqs, false)?;
            }
        }
    }
}
