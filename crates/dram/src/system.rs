//! A complete DRAM memory system: one [`DramChannel`] per controller,
//! with addresses decoded through a [`DramAddressMap`].

use crate::channel::{DramChannel, DramCompletion, DramRequest};
use crate::config::DramConfig;
use crate::stats::DramStats;
use std::sync::Arc;
use valley_core::{DramAddressMap, PhysAddr};

/// A multi-controller DRAM system (4 GDDR5 channels in the baseline;
/// 64 vaults in the 3D-stacked configuration).
///
/// Addresses handed to [`DramSystem::try_enqueue`] must already be
/// *mapped* (post address-mapping-unit); the system only decodes them into
/// controller/bank/row coordinates.
///
/// # Examples
///
/// ```
/// use valley_core::GddrMap;
/// use valley_dram::{DramConfig, DramSystem};
/// use valley_core::PhysAddr;
///
/// let mut sys = DramSystem::new(std::sync::Arc::new(GddrMap::baseline()), DramConfig::gddr5());
/// assert!(sys.try_enqueue(PhysAddr::new(0x1234_5678 & 0x3fff_ffff), 1, false, 0));
/// let mut done = Vec::new();
/// for cycle in 0..200 {
///     sys.tick(cycle, &mut done);
/// }
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Debug)]
pub struct DramSystem {
    /// The (immutable) address map, shared by reference: every shard of
    /// the phase-parallel engine and every lane of the batched engine
    /// decodes through the *same* map object instead of a per-system
    /// clone.
    map: Arc<dyn DramAddressMap + Send + Sync>,
    channels: Vec<DramChannel>,
    /// Global controller index of each owned channel, ascending. For a
    /// full system this is the identity; a subset system (see
    /// [`DramSystem::for_controllers`]) owns a sparse selection.
    ctrls: Vec<usize>,
    /// Global controller index → position in `channels`
    /// (`usize::MAX` = not owned by this system).
    ctrl_local: Vec<usize>,
    /// Cached minimum of the channels' next-event cycles (evented path):
    /// lets [`DramSystem::tick_evented`] skip the whole per-channel walk
    /// on quiet cycles and makes [`DramSystem::cached_next_event`] O(1)
    /// instead of a scan — which matters at 64 stacked vaults.
    cached_min: u64,
}

impl DramSystem {
    /// Creates a system with one channel per controller of `map`.
    pub fn new(map: Arc<dyn DramAddressMap + Send + Sync>, cfg: DramConfig) -> Self {
        let all: Vec<usize> = (0..map.num_controllers()).collect();
        Self::for_controllers(map, cfg, &all)
    }

    /// Creates a system owning only the given (globally-indexed, strictly
    /// ascending) controllers of `map`. Each channel behaves exactly as
    /// the corresponding channel of a full system; the phase-parallel
    /// simulation engine uses this to give every shard its own
    /// independent slice of the memory system, all decoding through one
    /// shared address map.
    ///
    /// # Panics
    ///
    /// Panics if the bank counts disagree, `ctrls` is empty, unsorted or
    /// out of range.
    pub fn for_controllers(
        map: Arc<dyn DramAddressMap + Send + Sync>,
        cfg: DramConfig,
        ctrls: &[usize],
    ) -> Self {
        assert_eq!(
            cfg.banks,
            map.banks_per_controller(),
            "channel config and address map disagree on bank count"
        );
        assert!(
            !ctrls.is_empty(),
            "a DRAM system needs at least one channel"
        );
        assert!(
            ctrls.windows(2).all(|w| w[0] < w[1]),
            "controller subset must be strictly ascending"
        );
        assert!(
            ctrls.last().is_some_and(|&c| c < map.num_controllers()),
            "controller index out of range"
        );
        let mut ctrl_local = vec![usize::MAX; map.num_controllers()];
        for (local, &c) in ctrls.iter().enumerate() {
            ctrl_local[c] = local;
        }
        let channels = ctrls.iter().map(|_| DramChannel::new(cfg)).collect();
        DramSystem {
            map,
            channels,
            ctrls: ctrls.to_vec(),
            ctrl_local,
            cached_min: 0,
        }
    }

    /// Translates a global controller index into this system's channel
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if the controller is not owned by this system.
    #[inline]
    fn local(&self, ctrl: usize) -> usize {
        let local = self.ctrl_local[ctrl];
        debug_assert_ne!(local, usize::MAX, "controller {ctrl} not owned");
        local
    }

    /// The number of controllers (channels/vaults).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The address map used for decoding.
    pub fn map(&self) -> &dyn DramAddressMap {
        self.map.as_ref()
    }

    /// The per-channel configuration.
    pub fn config(&self) -> &DramConfig {
        self.channels[0].config()
    }

    /// The controller a mapped address is routed to.
    pub fn channel_of(&self, addr: PhysAddr) -> usize {
        self.map.controller_of(addr)
    }

    /// Decodes a mapped address into `(controller, bank, row)` once, so
    /// callers that may retry an enqueue for many cycles (the LLC's DRAM
    /// hand-off) can cache the coordinates instead of paying the address
    /// map's virtual decode on every attempt.
    pub fn decode(&self, addr: PhysAddr) -> (u32, u32, u32) {
        (
            self.map.controller_of(addr) as u32,
            self.map.bank_of(addr) as u32,
            self.map.row_of(addr) as u32,
        )
    }

    /// Attempts to enqueue a (mapped) transaction. Returns `false` if the
    /// target channel's queue is full.
    pub fn try_enqueue(&mut self, addr: PhysAddr, id: u64, is_write: bool, now: u64) -> bool {
        let (ctrl, bank, row) = self.decode(addr);
        self.try_enqueue_at(ctrl, bank, row, id, is_write, now)
    }

    /// [`DramSystem::try_enqueue`] with pre-decoded coordinates (see
    /// [`DramSystem::decode`]).
    pub fn try_enqueue_at(
        &mut self,
        ctrl: u32,
        bank: u32,
        row: u32,
        id: u64,
        is_write: bool,
        now: u64,
    ) -> bool {
        let req = DramRequest {
            id,
            bank: bank as usize,
            row: row as usize,
            is_write,
            arrival: now,
        };
        let local = self.local(ctrl as usize);
        let ok = self.channels[local].try_enqueue(req);
        if ok {
            // The channel's next-event cache may have moved earlier.
            self.cached_min = self
                .cached_min
                .min(self.channels[local].cached_next_event());
        }
        ok
    }

    /// Whether the channel serving `addr` can accept a request.
    pub fn can_accept(&self, addr: PhysAddr) -> bool {
        let ch = self.local(self.map.controller_of(addr));
        self.channels[ch].queue_len() < self.channels[ch].config().queue_capacity
    }

    /// Advances all channels one DRAM cycle, pushing the completions of
    /// every channel (tagged with the enqueue tokens) into `done`, which
    /// is *not* cleared.
    pub fn tick(&mut self, cycle: u64, done: &mut Vec<DramCompletion>) {
        for ch in &mut self.channels {
            ch.tick(cycle, done);
        }
    }

    /// The earliest DRAM cycle at or after `now` at which any channel
    /// would do real work, or `None` when the whole system is empty. See
    /// [`DramChannel::next_event_at`].
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        for ch in &self.channels {
            if let Some(t) = ch.next_event_at(now) {
                next = Some(next.map_or(t, |n| n.min(t)));
                if t == now {
                    break;
                }
            }
        }
        next
    }

    /// Accounts `n` provably event-free DRAM cycles starting at `from`
    /// on every channel (the bulk equivalent of `n` dense [`tick`]s).
    ///
    /// [`tick`]: DramSystem::tick
    pub fn skip_idle(&mut self, from: u64, n: u64) {
        for ch in &mut self.channels {
            ch.skip_idle(from, n);
        }
    }

    /// Event-gated [`DramSystem::tick`]: a single-branch no-op until the
    /// earliest channel event, then each channel no-ops (deferring its
    /// counters) until its own cached next-event cycle.
    #[inline]
    pub fn tick_evented(&mut self, cycle: u64, done: &mut Vec<DramCompletion>) {
        if cycle < self.cached_min {
            return;
        }
        let mut min = u64::MAX;
        for ch in &mut self.channels {
            ch.tick_evented(cycle, done);
            min = min.min(ch.cached_next_event());
        }
        self.cached_min = min;
    }

    /// The earliest cached next-event cycle over all channels
    /// (`u64::MAX` when every channel is empty). Exact under the evented
    /// tick discipline — see [`DramChannel::tick_evented`].
    pub fn cached_next_event(&self) -> u64 {
        self.cached_min
    }

    /// The cached next-event cycle of one channel, by *global*
    /// controller index — the per-channel wake query of the simulator's
    /// wake-gate subsystem: the LLC slice's DRAM back-pressure retry
    /// gate reasons about the individual channel blocking it, not the
    /// system-wide minimum (which the phase-parallel safe horizon reads
    /// via [`DramSystem::cached_next_event`]).
    ///
    /// # Panics
    ///
    /// Panics if `ctrl` is out of range or not owned by this system.
    #[inline]
    pub fn channel_next_event(&self, ctrl: usize) -> u64 {
        self.channels[self.local(ctrl)].cached_next_event()
    }

    /// Brings every channel's deferred counters up to date with `up_to`.
    pub fn flush_deferred(&mut self, up_to: u64) {
        for ch in &mut self.channels {
            ch.flush_deferred(up_to);
        }
    }

    /// Whether any channel has queued or in-flight work.
    pub fn is_busy(&self) -> bool {
        self.channels.iter().any(DramChannel::is_busy)
    }

    /// Number of channels with at least one outstanding request —
    /// the channel-level parallelism sample of Figure 14b.
    pub fn busy_channels(&self) -> usize {
        self.channels.iter().filter(|c| c.is_busy()).count()
    }

    /// Per-channel bank-level-parallelism samples: for each *busy*
    /// channel, the number of banks with outstanding requests
    /// (Figure 14c is the time-average of these).
    pub fn busy_banks_per_busy_channel(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.busy_banks_per_busy_channel_into(&mut out);
        out
    }

    /// Allocation-free variant of
    /// [`DramSystem::busy_banks_per_busy_channel`] for per-sample use in
    /// the simulator hot loop; clears and refills `out`.
    pub fn busy_banks_per_busy_channel_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.channels
                .iter()
                .filter(|c| c.is_busy())
                .map(DramChannel::busy_banks),
        );
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<DramStats> {
        self.channels.iter().map(DramChannel::stats).collect()
    }

    /// Statistics aggregated over all channels.
    pub fn total_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for c in &self.channels {
            total.merge(&c.stats());
        }
        total
    }

    /// Read access to one channel by *global* controller index (for
    /// tests, detailed metrics and the LLC's back-pressure gate).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range or not owned by this system.
    pub fn channel(&self, ch: usize) -> &DramChannel {
        &self.channels[self.local(ch)]
    }

    /// The global controller indices of the owned channels, ascending.
    pub fn controllers(&self) -> &[usize] {
        &self.ctrls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_core::GddrMap;

    fn sys() -> DramSystem {
        DramSystem::new(Arc::new(GddrMap::baseline()), DramConfig::gddr5())
    }

    #[test]
    fn routes_by_channel_bits() {
        let mut s = sys();
        // Channel bits are 9..8 in the baseline map.
        for ch in 0..4u64 {
            let addr = PhysAddr::new(ch << 8);
            assert_eq!(s.channel_of(addr), ch as usize);
            assert!(s.try_enqueue(addr, ch, false, 0));
        }
        assert_eq!(s.busy_channels(), 4);
        let mut done = Vec::new();
        for c in 0..100 {
            s.tick(c, &mut done);
        }
        assert_eq!(done.len(), 4);
        // All four channels saw exactly one read.
        for st in s.channel_stats() {
            assert_eq!(st.reads, 1);
        }
    }

    #[test]
    fn aggregation_sums_channels() {
        let mut s = sys();
        for i in 0..8u64 {
            s.try_enqueue(PhysAddr::new(i << 8), i, i % 2 == 0, 0);
        }
        let mut done = Vec::new();
        for c in 0..300 {
            s.tick(c, &mut done);
        }
        let total = s.total_stats();
        assert_eq!(total.accesses(), 8);
        assert_eq!(total.reads, 4);
        assert_eq!(total.writes, 4);
    }

    #[test]
    fn busy_banks_reported_per_busy_channel_only() {
        let mut s = sys();
        // Two banks on channel 0 only.
        s.try_enqueue(PhysAddr::new(0 << 10), 1, false, 0);
        s.try_enqueue(PhysAddr::new(1 << 10), 2, false, 0);
        let samples = s.busy_banks_per_busy_channel();
        assert_eq!(samples, vec![2]);
    }

    #[test]
    #[should_panic(expected = "disagree on bank count")]
    fn config_mismatch_is_rejected() {
        let mut bad = DramConfig::gddr5();
        bad.banks = 8;
        let _ = DramSystem::new(Arc::new(GddrMap::baseline()), bad);
    }
}
