//! A complete DRAM memory system: one [`DramChannel`] per controller,
//! with addresses decoded through a [`DramAddressMap`].

use crate::channel::{DramChannel, DramCompletion, DramRequest};
use crate::config::DramConfig;
use crate::stats::DramStats;
use valley_core::{DramAddressMap, PhysAddr};

/// A multi-controller DRAM system (4 GDDR5 channels in the baseline;
/// 64 vaults in the 3D-stacked configuration).
///
/// Addresses handed to [`DramSystem::try_enqueue`] must already be
/// *mapped* (post address-mapping-unit); the system only decodes them into
/// controller/bank/row coordinates.
///
/// # Examples
///
/// ```
/// use valley_core::GddrMap;
/// use valley_dram::{DramConfig, DramSystem};
/// use valley_core::PhysAddr;
///
/// let mut sys = DramSystem::new(Box::new(GddrMap::baseline()), DramConfig::gddr5());
/// assert!(sys.try_enqueue(PhysAddr::new(0x1234_5678 & 0x3fff_ffff), 1, false, 0));
/// let mut done = Vec::new();
/// for cycle in 0..200 {
///     done.extend(sys.tick(cycle));
/// }
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Debug)]
pub struct DramSystem {
    map: Box<dyn DramAddressMap + Send>,
    channels: Vec<DramChannel>,
}

impl DramSystem {
    /// Creates a system with one channel per controller of `map`.
    pub fn new(map: Box<dyn DramAddressMap + Send>, cfg: DramConfig) -> Self {
        assert_eq!(
            cfg.banks,
            map.banks_per_controller(),
            "channel config and address map disagree on bank count"
        );
        let channels = (0..map.num_controllers())
            .map(|_| DramChannel::new(cfg))
            .collect();
        DramSystem { map, channels }
    }

    /// The number of controllers (channels/vaults).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The address map used for decoding.
    pub fn map(&self) -> &dyn DramAddressMap {
        self.map.as_ref()
    }

    /// The per-channel configuration.
    pub fn config(&self) -> &DramConfig {
        self.channels[0].config()
    }

    /// The controller a mapped address is routed to.
    pub fn channel_of(&self, addr: PhysAddr) -> usize {
        self.map.controller_of(addr)
    }

    /// Attempts to enqueue a (mapped) transaction. Returns `false` if the
    /// target channel's queue is full.
    pub fn try_enqueue(&mut self, addr: PhysAddr, id: u64, is_write: bool, now: u64) -> bool {
        let ch = self.map.controller_of(addr);
        let req = DramRequest {
            id,
            bank: self.map.bank_of(addr),
            row: self.map.row_of(addr),
            is_write,
            arrival: now,
        };
        self.channels[ch].try_enqueue(req)
    }

    /// Whether the channel serving `addr` can accept a request.
    pub fn can_accept(&self, addr: PhysAddr) -> bool {
        let ch = self.map.controller_of(addr);
        self.channels[ch].queue_len() < self.channels[ch].config().queue_capacity
    }

    /// Advances all channels one DRAM cycle; returns the completions of
    /// every channel (tagged with the enqueue tokens).
    pub fn tick(&mut self, cycle: u64) -> Vec<DramCompletion> {
        let mut done = Vec::new();
        for ch in &mut self.channels {
            done.extend(ch.tick(cycle));
        }
        done
    }

    /// Whether any channel has queued or in-flight work.
    pub fn is_busy(&self) -> bool {
        self.channels.iter().any(DramChannel::is_busy)
    }

    /// Number of channels with at least one outstanding request —
    /// the channel-level parallelism sample of Figure 14b.
    pub fn busy_channels(&self) -> usize {
        self.channels.iter().filter(|c| c.is_busy()).count()
    }

    /// Per-channel bank-level-parallelism samples: for each *busy*
    /// channel, the number of banks with outstanding requests
    /// (Figure 14c is the time-average of these).
    pub fn busy_banks_per_busy_channel(&self) -> Vec<usize> {
        self.channels
            .iter()
            .filter(|c| c.is_busy())
            .map(DramChannel::busy_banks)
            .collect()
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<DramStats> {
        self.channels.iter().map(DramChannel::stats).collect()
    }

    /// Statistics aggregated over all channels.
    pub fn total_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for c in &self.channels {
            total.merge(&c.stats());
        }
        total
    }

    /// Read access to one channel (for tests and detailed metrics).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn channel(&self, ch: usize) -> &DramChannel {
        &self.channels[ch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_core::GddrMap;

    fn sys() -> DramSystem {
        DramSystem::new(Box::new(GddrMap::baseline()), DramConfig::gddr5())
    }

    #[test]
    fn routes_by_channel_bits() {
        let mut s = sys();
        // Channel bits are 9..8 in the baseline map.
        for ch in 0..4u64 {
            let addr = PhysAddr::new(ch << 8);
            assert_eq!(s.channel_of(addr), ch as usize);
            assert!(s.try_enqueue(addr, ch, false, 0));
        }
        assert_eq!(s.busy_channels(), 4);
        let done: Vec<_> = (0..100).flat_map(|c| s.tick(c)).collect();
        assert_eq!(done.len(), 4);
        // All four channels saw exactly one read.
        for st in s.channel_stats() {
            assert_eq!(st.reads, 1);
        }
    }

    #[test]
    fn aggregation_sums_channels() {
        let mut s = sys();
        for i in 0..8u64 {
            s.try_enqueue(PhysAddr::new(i << 8), i, i % 2 == 0, 0);
        }
        let _ = (0..300).flat_map(|c| s.tick(c)).count();
        let total = s.total_stats();
        assert_eq!(total.accesses(), 8);
        assert_eq!(total.reads, 4);
        assert_eq!(total.writes, 4);
    }

    #[test]
    fn busy_banks_reported_per_busy_channel_only() {
        let mut s = sys();
        // Two banks on channel 0 only.
        s.try_enqueue(PhysAddr::new(0 << 10), 1, false, 0);
        s.try_enqueue(PhysAddr::new(1 << 10), 2, false, 0);
        let samples = s.busy_banks_per_busy_channel();
        assert_eq!(samples, vec![2]);
    }

    #[test]
    #[should_panic(expected = "disagree on bank count")]
    fn config_mismatch_is_rejected() {
        let mut bad = DramConfig::gddr5();
        bad.banks = 8;
        let _ = DramSystem::new(Box::new(GddrMap::baseline()), bad);
    }
}
