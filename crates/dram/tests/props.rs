//! Property-based tests for the DRAM channel: conservation, bus
//! exclusivity and timing monotonicity under arbitrary request streams.

use proptest::prelude::*;
use valley_dram::{DramChannel, DramCompletion, DramConfig, DramRequest};

fn run_to_completion(ch: &mut DramChannel, n: usize) -> Vec<DramCompletion> {
    let mut done = Vec::new();
    let mut cycle = 0u64;
    while done.len() < n {
        ch.tick(cycle, &mut done);
        cycle += 1;
        assert!(cycle < 1_000_000, "DRAM made no progress");
    }
    done
}

proptest! {
    /// Every enqueued request completes exactly once, with its own id.
    #[test]
    fn conservation(reqs in proptest::collection::vec((0usize..16, 0usize..64, any::<bool>()), 1..60)) {
        let mut ch = DramChannel::new(DramConfig::gddr5());
        let mut accepted = Vec::new();
        for (i, &(bank, row, w)) in reqs.iter().enumerate() {
            if ch.try_enqueue(DramRequest {
                id: i as u64,
                bank,
                row,
                is_write: w,
                arrival: 0,
            }) {
                accepted.push(i as u64);
            }
        }
        let done = run_to_completion(&mut ch, accepted.len());
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, accepted);
        // Counters agree.
        let s = ch.stats();
        prop_assert_eq!(s.accesses() as usize, done.len());
        prop_assert_eq!(
            s.row_hits + s.row_empties + s.row_conflicts,
            s.accesses()
        );
    }

    /// Data bursts never overlap on the shared bus: completions are at
    /// least tburst cycles apart.
    #[test]
    fn bus_exclusivity(reqs in proptest::collection::vec((0usize..16, 0usize..8), 2..40)) {
        let mut ch = DramChannel::new(DramConfig::gddr5());
        let mut n = 0;
        for (i, &(bank, row)) in reqs.iter().enumerate() {
            if ch.try_enqueue(DramRequest {
                id: i as u64,
                bank,
                row,
                is_write: false,
                arrival: 0,
            }) {
                n += 1;
            }
        }
        let done = run_to_completion(&mut ch, n);
        let mut finishes: Vec<u64> = done.iter().map(|d| d.finish).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            prop_assert!(w[1] - w[0] >= 4, "bursts overlap: {:?}", w);
        }
    }

    /// Adding requests never makes previously queued ones finish earlier
    /// than the uncontended single-request latency.
    #[test]
    fn latency_lower_bound(reqs in proptest::collection::vec((0usize..16, 0usize..8), 1..30)) {
        let mut ch = DramChannel::new(DramConfig::gddr5());
        let mut n = 0;
        for (i, &(bank, row)) in reqs.iter().enumerate() {
            if ch.try_enqueue(DramRequest {
                id: i as u64,
                bank,
                row,
                is_write: false,
                arrival: 0,
            }) {
                n += 1;
            }
        }
        let done = run_to_completion(&mut ch, n);
        // ACT(12) + CL(12) + burst(4) = 28 cycles minimum for the first.
        for d in &done {
            prop_assert!(d.finish >= 16, "implausibly fast: {}", d.finish);
        }
    }

    /// Row-buffer hit rate is a proper fraction and single-row streams
    /// to one bank approach a perfect hit rate.
    #[test]
    fn hit_rate_bounds(n in 2usize..40) {
        let mut ch = DramChannel::new(DramConfig::gddr5());
        for i in 0..n {
            ch.try_enqueue(DramRequest {
                id: i as u64,
                bank: 0,
                row: 3,
                is_write: false,
                arrival: 0,
            });
        }
        let _ = run_to_completion(&mut ch, n.min(64));
        let s = ch.stats();
        let hr = s.row_buffer_hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
        prop_assert_eq!(s.activates, 1, "single-row stream needs one ACT");
        prop_assert!(hr > 0.9 || n < 12);
    }
}
