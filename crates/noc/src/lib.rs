//! # valley-noc
//!
//! A crossbar network-on-chip model for the Valley GPU simulator,
//! matching Table I: a 12×8 crossbar at 700 MHz (half the core clock)
//! with 32-byte channels, connecting the SMs to the LLC slices / memory
//! controllers.
//!
//! The model captures what matters for the paper's Figure 13a: per-output
//! serialization. Each destination port delivers one 32 B flit per NoC
//! cycle, so when address mapping concentrates traffic on one LLC slice,
//! the queue at that output port grows and packet latency explodes; when
//! traffic is balanced, the ports drain in parallel.
//!
//! Packets carry an opaque payload token. A read request is 1 flit
//! (header + address), a 128 B data packet is 5 flits (4 data + header).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Flit count of a request packet (header + address only).
pub const REQUEST_FLITS: u32 = 1;
/// Flit count of a packet carrying one 128 B cache line (4 × 32 B + header).
pub const DATA_FLITS: u32 = 5;

/// A packet traversing the crossbar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Opaque token returned on delivery.
    pub payload: u64,
    /// Source port index.
    pub src: usize,
    /// Destination port index.
    pub dst: usize,
    /// Packet size in flits ([`REQUEST_FLITS`] or [`DATA_FLITS`]).
    pub flits: u32,
    /// NoC cycle at which the packet was injected (set by the crossbar).
    pub injected_at: u64,
}

/// A delivered packet with its measured latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The packet's payload token.
    pub payload: u64,
    /// Destination port it arrived at.
    pub dst: usize,
    /// End-to-end latency in NoC cycles (injection to last flit).
    pub latency: u64,
}

/// Latency and utilization counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of packet latencies in NoC cycles.
    pub total_latency: u64,
    /// Flits transferred.
    pub flits: u64,
    /// NoC cycles observed.
    pub cycles: u64,
}

impl NocStats {
    /// Mean packet latency in NoC cycles (0 when nothing was delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

/// The immutable geometry of a [`Crossbar`]: port counts and router
/// latency. Split out from the crossbar's mutable queue/calendar state
/// so builders stamping out many identical networks (the batched
/// engine's lanes, the phase-parallel engine's per-shard sub-crossbars)
/// describe the geometry once and share it by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossbarConfig {
    /// Number of input ports.
    pub num_src: usize,
    /// Number of output ports.
    pub num_dst: usize,
    /// Fixed pipeline-traversal latency added to every packet.
    pub router_latency: u64,
}

/// A `sources × destinations` crossbar with output-port queuing.
///
/// Each output port moves one flit per NoC cycle. Input contention is
/// secondary for the paper's traffic (many SMs to few slices), so packets
/// are routed to their output queue at injection after a fixed router
/// latency, and the queue serializes delivery.
///
/// # Examples
///
/// ```
/// use valley_noc::{Crossbar, Packet, REQUEST_FLITS};
///
/// let mut xbar = Crossbar::new(12, 8, 4);
/// xbar.inject(Packet { payload: 42, src: 0, dst: 3, flits: REQUEST_FLITS, injected_at: 0 });
/// let mut out = Vec::new();
/// for cycle in 0..10 {
///     xbar.tick(cycle, &mut out);
/// }
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].payload, 42);
/// ```
#[derive(Clone, Debug)]
pub struct Crossbar {
    /// Immutable geometry (see [`CrossbarConfig`]).
    cfg: CrossbarConfig,
    /// Per destination: queued packets (front is in service).
    outputs: Vec<VecDeque<Packet>>,
    /// Flits remaining for the packet in service at each output.
    in_service: Vec<u32>,
    /// Total packets across all output queues (hot-loop early-out).
    queued: usize,
    /// Bitmask of output ports with at least one queued packet (only
    /// maintained for crossbars of ≤ 64 ports — all supported
    /// configurations). `tick` visits set bits instead of every port.
    active: u64,
    /// Per output port: the NoC cycle of its next flit movement
    /// (`u64::MAX` = nothing queued) — the event-queue view of the port.
    port_next: Vec<u64>,
    /// Ports that move a flit on the next effective cycle (mid-packet,
    /// or a head that chains on immediately). Saturated ports move every
    /// cycle, so they live in this bitmask instead of churning through
    /// the calendar once per flit; only *future* movements (router
    /// pipeline exits) pay a heap operation.
    streaming: u64,
    /// Calendar of future `(first-move cycle, port)` events, min-first.
    /// Together with `port_next` and `streaming` this makes
    /// [`Crossbar::tick_evented`] a true event queue: it jumps straight
    /// to the next flit movement instead of re-scanning the ports.
    events: BinaryHeap<Reverse<(u64, usize)>>,
    /// Set when a dense [`Crossbar::tick`] ran: the event queue no longer
    /// reflects the port state and is rebuilt on the next evented tick.
    events_dirty: bool,
    /// Cached earliest cycle at which the crossbar moves a flit
    /// (`u64::MAX` = empty) — the fresh minimum of `events`, maintained
    /// by [`Crossbar::tick_evented`] and [`Crossbar::inject`].
    cached_next: u64,
    /// First cycle whose counter update is still deferred (evented path).
    acct_from: u64,
    stats: NocStats,
}

impl Crossbar {
    /// Creates a crossbar with `num_src` input ports, `num_dst` output
    /// ports and a fixed `router_latency` (cycles of pipeline traversal
    /// added to every packet).
    pub fn new(num_src: usize, num_dst: usize, router_latency: u64) -> Self {
        Self::with_config(CrossbarConfig {
            num_src,
            num_dst,
            router_latency,
        })
    }

    /// [`Crossbar::new`] over a pre-built [`CrossbarConfig`] geometry.
    pub fn with_config(cfg: CrossbarConfig) -> Self {
        assert!(cfg.num_src > 0 && cfg.num_dst > 0);
        let num_dst = cfg.num_dst;
        Crossbar {
            cfg,
            // Sized for steady state: output queues grow from zero on
            // every fresh crossbar otherwise (one realloc ladder per run).
            outputs: vec![VecDeque::with_capacity(32); num_dst],
            in_service: vec![0; num_dst],
            queued: 0,
            active: 0,
            port_next: vec![u64::MAX; num_dst],
            streaming: 0,
            events: BinaryHeap::with_capacity(num_dst),
            events_dirty: false,
            cached_next: u64::MAX,
            acct_from: 0,
            stats: NocStats::default(),
        }
    }

    /// The immutable geometry.
    pub fn config(&self) -> CrossbarConfig {
        self.cfg
    }

    /// Number of input ports.
    pub fn num_sources(&self) -> usize {
        self.cfg.num_src
    }

    /// Number of output ports.
    pub fn num_destinations(&self) -> usize {
        self.outputs.len()
    }

    /// Injects a packet; `injected_at` is overwritten with the current
    /// injection timestamp by the caller's clock discipline (pass the
    /// current NoC cycle in the field).
    ///
    /// # Panics
    ///
    /// Panics if the source or destination port is out of range or the
    /// packet has zero flits.
    pub fn inject(&mut self, pkt: Packet) {
        assert!(pkt.src < self.cfg.num_src, "source port out of range");
        assert!(
            pkt.dst < self.outputs.len(),
            "destination port out of range"
        );
        assert!(pkt.flits > 0, "packets must have at least one flit");
        let dst = pkt.dst;
        let was_empty = self.outputs[dst].is_empty();
        let _audit_pause = (self.outputs[dst].len() == self.outputs[dst].capacity())
            .then(valley_core::alloc_audit::pause);
        self.outputs[dst].push_back(pkt);
        self.queued += 1;
        if dst < 64 {
            self.active |= 1 << dst;
        }
        if self.events_dirty {
            // Dense ticks ran since the last evented one; the event view
            // is rebuilt wholesale on the next evented tick.
            self.cached_next = 0;
            return;
        }
        if was_empty {
            // An idle port's first movement is this packet's head flit,
            // once the router pipeline has been traversed. A busy port's
            // schedule is unchanged (this packet waits its turn; its
            // start time is computed when it reaches the head).
            debug_assert_eq!(self.port_next[dst], u64::MAX);
            let start = pkt.injected_at + self.cfg.router_latency;
            self.port_next[dst] = start;
            self.events.push(Reverse((start, dst)));
            if start < self.cached_next {
                self.cached_next = start;
            }
        }
    }

    /// The earliest NoC cycle at or after `now` at which [`tick`] would
    /// move a flit, or `None` when every output queue is empty. Between
    /// `now` and that cycle, `tick` only counts cycles — callers may
    /// replace the calls with one [`Crossbar::skip_cycles`].
    ///
    /// [`tick`]: Crossbar::tick
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        if self.queued == 0 {
            return None;
        }
        // Any port mid-packet moves a flit every cycle: event now. This
        // scans a small contiguous counter array, much cheaper than
        // touching the queues.
        if self.in_service.iter().any(|&s| s > 0) {
            return Some(now);
        }
        let mut next: Option<u64> = None;
        for queue in &self.outputs {
            let Some(head) = queue.front() else { continue };
            let at = (head.injected_at + self.cfg.router_latency).max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
            if at == now {
                break;
            }
        }
        next
    }

    /// Brings the cycle counter up to date with `up_to` (exclusive):
    /// accounts every not-yet-ticked cycle the dense loop would have
    /// counted. Call before reading [`Crossbar::stats`] when driving the
    /// crossbar through [`Crossbar::tick_evented`].
    pub fn flush_deferred(&mut self, up_to: u64) {
        if up_to > self.acct_from {
            self.stats.cycles += up_to - self.acct_from;
            self.acct_from = up_to;
        }
    }

    /// Event-queue [`Crossbar::tick`]: returns immediately (deferring the
    /// cycle counter) while the next scheduled flit movement is in the
    /// future, otherwise settles counters and moves exactly the due
    /// ports' flits, popped from the calendar in ascending port order —
    /// the identical order the dense scan produces. Bit-identical to
    /// calling `tick` every cycle.
    #[inline]
    pub fn tick_evented(&mut self, cycle: u64, done: &mut Vec<Delivery>) {
        if cycle < self.cached_next {
            return;
        }
        if self.events_dirty {
            self.rebuild_events(cycle);
            if cycle < self.cached_next {
                return;
            }
        }
        self.flush_deferred(cycle);
        self.stats.cycles += 1;
        self.acct_from = cycle + 1;
        // Move every due port's flit in ascending port order — the
        // identical order the dense scan produces — merging the
        // streaming set with the calendar's due entries.
        let mut mask = self.streaming;
        loop {
            let stream_p = if mask == 0 {
                usize::MAX
            } else {
                mask.trailing_zeros() as usize
            };
            let heap_due = match self.events.peek() {
                Some(&Reverse((t, p))) if t <= cycle => Some((t, p)),
                _ => None,
            };
            match heap_due {
                Some((t, p)) if p < stream_p => {
                    self.events.pop();
                    if self.port_next[p] != t {
                        continue; // superseded entry (defensive)
                    }
                    debug_assert_eq!(t, cycle, "events fire on their scheduled cycle");
                    self.move_flit(p, cycle, done);
                }
                _ if stream_p != usize::MAX => {
                    mask &= mask - 1;
                    debug_assert_eq!(self.port_next[stream_p], cycle);
                    self.move_flit(stream_p, cycle, done);
                }
                _ => break,
            }
        }
        self.cached_next = if self.streaming != 0 {
            cycle + 1
        } else {
            self.events.peek().map_or(u64::MAX, |&Reverse((t, _))| t)
        };
    }

    /// Rebuilds the per-port schedule after dense ticks ran: a mid-packet
    /// port moves again at `cycle`; a waiting head starts at its
    /// router-pipeline exit (clamped to `cycle` — earlier cycles were
    /// already ticked densely).
    fn rebuild_events(&mut self, cycle: u64) {
        self.events.clear();
        self.streaming = 0;
        for dst in 0..self.outputs.len() {
            let next = match self.outputs[dst].front() {
                None => u64::MAX,
                Some(_) if self.in_service[dst] > 0 => cycle,
                Some(head) => (head.injected_at + self.cfg.router_latency).max(cycle),
            };
            self.port_next[dst] = next;
            if next == u64::MAX {
                continue;
            }
            if next == cycle && dst < 64 {
                self.streaming |= 1 << dst;
            } else {
                self.events.push(Reverse((next, dst)));
            }
        }
        self.events_dirty = false;
        self.cached_next = if self.streaming != 0 {
            cycle
        } else {
            self.events.peek().map_or(u64::MAX, |&Reverse((t, _))| t)
        };
    }

    /// Advances one NoC cycle: every output port moves one flit of its
    /// head packet (once the router latency has elapsed). Packets whose
    /// last flit arrived this cycle are pushed into `done`, which is
    /// *not* cleared.
    pub fn tick(&mut self, cycle: u64, done: &mut Vec<Delivery>) {
        debug_assert!(cycle >= self.acct_from, "ticking an already-counted cycle");
        self.stats.cycles += 1;
        self.acct_from = cycle + 1;
        // Dense ticks advance ports without maintaining the calendar.
        self.events_dirty = true;
        self.cached_next = 0;
        if self.queued == 0 {
            return;
        }
        if self.outputs.len() <= 64 {
            // Visit only occupied ports, in ascending order (identical
            // delivery order to the full scan).
            let mut mask = self.active;
            while mask != 0 {
                let dst = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.tick_port(dst, cycle, done);
            }
        } else {
            for dst in 0..self.outputs.len() {
                self.tick_port(dst, cycle, done);
            }
        }
    }

    #[inline]
    fn tick_port(&mut self, dst: usize, cycle: u64, done: &mut Vec<Delivery>) {
        let Some(head) = self.outputs[dst].front() else {
            return;
        };
        // Router pipeline: a packet only starts moving flits after
        // router_latency cycles from injection.
        if cycle < head.injected_at + self.cfg.router_latency {
            return;
        }
        self.transfer_flit(dst, cycle, done);
    }

    /// Moves one flit on a due port (head present, router pipeline
    /// traversed); delivers the packet if it was the last flit.
    #[inline]
    fn transfer_flit(&mut self, dst: usize, cycle: u64, done: &mut Vec<Delivery>) {
        let queue = &mut self.outputs[dst];
        let head = queue.front().expect("due port has a head packet");
        debug_assert!(cycle >= head.injected_at + self.cfg.router_latency);
        if self.in_service[dst] == 0 {
            self.in_service[dst] = head.flits;
        }
        self.in_service[dst] -= 1;
        self.stats.flits += 1;
        if self.in_service[dst] == 0 {
            let pkt = queue.pop_front().expect("head packet exists");
            self.queued -= 1;
            if queue.is_empty() && dst < 64 {
                self.active &= !(1 << dst);
            }
            let latency = cycle + 1 - pkt.injected_at;
            self.stats.delivered += 1;
            self.stats.total_latency += latency;
            done.push(Delivery {
                payload: pkt.payload,
                dst,
                latency,
            });
        }
    }

    /// [`Crossbar::transfer_flit`] plus rescheduling of the port's next
    /// movement — the evented path's per-event work. Ports that move
    /// again next cycle join the streaming set (no heap traffic); only
    /// genuinely future movements enter the calendar.
    fn move_flit(&mut self, dst: usize, cycle: u64, done: &mut Vec<Delivery>) {
        self.transfer_flit(dst, cycle, done);
        let next = match self.outputs[dst].front() {
            None => u64::MAX,
            // Mid-packet: the next flit moves next cycle.
            Some(_) if self.in_service[dst] > 0 => cycle + 1,
            // Fresh head: next cycle at the earliest, later if its router
            // pipeline has not been traversed yet.
            Some(head) => (head.injected_at + self.cfg.router_latency).max(cycle + 1),
        };
        self.port_next[dst] = next;
        if next == cycle + 1 && dst < 64 {
            self.streaming |= 1 << dst;
        } else {
            if dst < 64 {
                self.streaming &= !(1 << dst);
            }
            if next != u64::MAX {
                self.events.push(Reverse((next, dst)));
            }
        }
    }

    /// The earliest NoC cycle at which output port `dst` can *complete*
    /// a packet (push a [`Delivery`]), or `u64::MAX` when nothing is
    /// queued there — the per-port wake query of the simulator's
    /// wake-gate subsystem.
    ///
    /// Exact under the evented tick discipline: the head packet's next
    /// flit moves at the port's scheduled time and the remaining flits
    /// stream on consecutive cycles (a port with work moves one flit
    /// every cycle until the packet completes), so the last flit — the
    /// delivery — lands exactly `remaining - 1` cycles later. Packets
    /// queued behind the head complete strictly later and never lower
    /// the bound. After dense ticks the per-port schedule is stale and
    /// the query degrades to 0 (conservative, never late).
    ///
    /// This is deliberately *later* than [`Crossbar::cached_next_event`]
    /// (the next flit movement): a streaming reply port moves a flit
    /// every cycle, but the attached consumer only wakes when a packet
    /// completes. Gating consumers on deliveries instead of movements is
    /// what lets the phase-parallel engine run multi-cycle epochs while
    /// replies are in flight.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    #[inline]
    pub fn port_delivery_at(&self, dst: usize) -> u64 {
        if self.events_dirty {
            return 0;
        }
        let Some(head) = self.outputs[dst].front() else {
            return u64::MAX;
        };
        let remaining = if self.in_service[dst] > 0 {
            self.in_service[dst]
        } else {
            head.flits
        };
        debug_assert_ne!(self.port_next[dst], u64::MAX, "queued port has a schedule");
        self.port_next[dst] + u64::from(remaining) - 1
    }

    /// The earliest NoC cycle at which *any* output port completes a
    /// packet (`u64::MAX` = nothing queued anywhere): the minimum of
    /// [`Crossbar::port_delivery_at`] over all ports.
    pub fn delivery_gate(&self) -> u64 {
        if self.queued == 0 {
            return u64::MAX;
        }
        if self.events_dirty {
            return 0;
        }
        (0..self.outputs.len())
            .map(|dst| self.port_delivery_at(dst))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Total queued packets across all output ports.
    pub fn queued_packets(&self) -> usize {
        self.queued
    }

    /// Whether any packet is queued.
    pub fn is_busy(&self) -> bool {
        self.queued > 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// The cached next-event cycle maintained by
    /// [`Crossbar::tick_evented`] (`u64::MAX` = empty crossbar).
    #[inline]
    pub fn cached_next_event(&self) -> u64 {
        self.cached_next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> Crossbar {
        Crossbar::new(12, 8, 4)
    }

    fn drain(x: &mut Crossbar, n: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for c in 0..n {
            x.tick(c, &mut out);
        }
        out
    }

    #[test]
    fn single_packet_latency_is_router_plus_flits() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: REQUEST_FLITS,
            injected_at: 0,
        });
        let out = drain(&mut x, 20);
        assert_eq!(out.len(), 1);
        // 4 router cycles + 1 flit cycle.
        assert_eq!(out[0].latency, 5);
    }

    #[test]
    fn data_packets_occupy_five_cycles() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: DATA_FLITS,
            injected_at: 0,
        });
        let out = drain(&mut x, 20);
        assert_eq!(out[0].latency, 4 + 5);
    }

    #[test]
    fn same_destination_serializes() {
        let mut x = xbar();
        for i in 0..4 {
            x.inject(Packet {
                payload: i,
                src: i as usize,
                dst: 2,
                flits: DATA_FLITS,
                injected_at: 0,
            });
        }
        let out = drain(&mut x, 60);
        assert_eq!(out.len(), 4);
        let latencies: Vec<u64> = out.iter().map(|d| d.latency).collect();
        // Head-of-line: each successive packet waits 5 more flit cycles.
        assert_eq!(latencies, vec![9, 14, 19, 24]);
    }

    #[test]
    fn different_destinations_proceed_in_parallel() {
        let mut x = xbar();
        for i in 0..4 {
            x.inject(Packet {
                payload: i,
                src: 0,
                dst: i as usize,
                flits: DATA_FLITS,
                injected_at: 0,
            });
        }
        let out = drain(&mut x, 60);
        // No contention: all four have the uncontended latency.
        assert!(out.iter().all(|d| d.latency == 9));
    }

    #[test]
    fn balanced_traffic_beats_concentrated_traffic() {
        // The Figure 13a mechanism in miniature.
        let mut hot = xbar();
        let mut balanced = xbar();
        for i in 0..8u64 {
            hot.inject(Packet {
                payload: i,
                src: (i % 12) as usize,
                dst: 0,
                flits: DATA_FLITS,
                injected_at: 0,
            });
            balanced.inject(Packet {
                payload: i,
                src: (i % 12) as usize,
                dst: (i % 8) as usize,
                flits: DATA_FLITS,
                injected_at: 0,
            });
        }
        let _ = drain(&mut hot, 200);
        let _ = drain(&mut balanced, 200);
        assert!(hot.stats().mean_latency() > 2.0 * balanced.stats().mean_latency());
    }

    #[test]
    fn later_injection_timestamps_reduce_measured_latency() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: 1,
            injected_at: 10,
        });
        let out = drain(&mut x, 40);
        assert_eq!(out[0].latency, 5);
    }

    #[test]
    fn stats_track_flits_and_packets() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: 5,
            injected_at: 0,
        });
        let _ = drain(&mut x, 20);
        assert_eq!(x.stats().delivered, 1);
        assert_eq!(x.stats().flits, 5);
        assert!(!x.is_busy());
        assert_eq!(x.queued_packets(), 0);
    }

    #[test]
    #[should_panic(expected = "destination port out of range")]
    fn inject_validates_ports() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 0,
            src: 0,
            dst: 99,
            flits: 1,
            injected_at: 0,
        });
    }
}
