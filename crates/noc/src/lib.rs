//! # valley-noc
//!
//! A crossbar network-on-chip model for the Valley GPU simulator,
//! matching Table I: a 12×8 crossbar at 700 MHz (half the core clock)
//! with 32-byte channels, connecting the SMs to the LLC slices / memory
//! controllers.
//!
//! The model captures what matters for the paper's Figure 13a: per-output
//! serialization. Each destination port delivers one 32 B flit per NoC
//! cycle, so when address mapping concentrates traffic on one LLC slice,
//! the queue at that output port grows and packet latency explodes; when
//! traffic is balanced, the ports drain in parallel.
//!
//! Packets carry an opaque payload token. A read request is 1 flit
//! (header + address), a 128 B data packet is 5 flits (4 data + header).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;

/// Flit count of a request packet (header + address only).
pub const REQUEST_FLITS: u32 = 1;
/// Flit count of a packet carrying one 128 B cache line (4 × 32 B + header).
pub const DATA_FLITS: u32 = 5;

/// A packet traversing the crossbar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Opaque token returned on delivery.
    pub payload: u64,
    /// Source port index.
    pub src: usize,
    /// Destination port index.
    pub dst: usize,
    /// Packet size in flits ([`REQUEST_FLITS`] or [`DATA_FLITS`]).
    pub flits: u32,
    /// NoC cycle at which the packet was injected (set by the crossbar).
    pub injected_at: u64,
}

/// A delivered packet with its measured latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The packet's payload token.
    pub payload: u64,
    /// Destination port it arrived at.
    pub dst: usize,
    /// End-to-end latency in NoC cycles (injection to last flit).
    pub latency: u64,
}

/// Latency and utilization counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of packet latencies in NoC cycles.
    pub total_latency: u64,
    /// Flits transferred.
    pub flits: u64,
    /// NoC cycles observed.
    pub cycles: u64,
}

impl NocStats {
    /// Mean packet latency in NoC cycles (0 when nothing was delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

/// A `sources × destinations` crossbar with output-port queuing.
///
/// Each output port moves one flit per NoC cycle. Input contention is
/// secondary for the paper's traffic (many SMs to few slices), so packets
/// are routed to their output queue at injection after a fixed router
/// latency, and the queue serializes delivery.
///
/// # Examples
///
/// ```
/// use valley_noc::{Crossbar, Packet, REQUEST_FLITS};
///
/// let mut xbar = Crossbar::new(12, 8, 4);
/// xbar.inject(Packet { payload: 42, src: 0, dst: 3, flits: REQUEST_FLITS, injected_at: 0 });
/// let mut out = Vec::new();
/// for cycle in 0..10 {
///     out.extend(xbar.tick(cycle));
/// }
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].payload, 42);
/// ```
#[derive(Clone, Debug)]
pub struct Crossbar {
    num_src: usize,
    router_latency: u64,
    /// Per destination: queued packets (front is in service).
    outputs: Vec<VecDeque<Packet>>,
    /// Flits remaining for the packet in service at each output.
    in_service: Vec<u32>,
    stats: NocStats,
}

impl Crossbar {
    /// Creates a crossbar with `num_src` input ports, `num_dst` output
    /// ports and a fixed `router_latency` (cycles of pipeline traversal
    /// added to every packet).
    pub fn new(num_src: usize, num_dst: usize, router_latency: u64) -> Self {
        assert!(num_src > 0 && num_dst > 0);
        Crossbar {
            num_src,
            router_latency,
            outputs: vec![VecDeque::new(); num_dst],
            in_service: vec![0; num_dst],
            stats: NocStats::default(),
        }
    }

    /// Number of input ports.
    pub fn num_sources(&self) -> usize {
        self.num_src
    }

    /// Number of output ports.
    pub fn num_destinations(&self) -> usize {
        self.outputs.len()
    }

    /// Injects a packet; `injected_at` is overwritten with the current
    /// injection timestamp by the caller's clock discipline (pass the
    /// current NoC cycle in the field).
    ///
    /// # Panics
    ///
    /// Panics if the source or destination port is out of range or the
    /// packet has zero flits.
    pub fn inject(&mut self, pkt: Packet) {
        assert!(pkt.src < self.num_src, "source port out of range");
        assert!(pkt.dst < self.outputs.len(), "destination port out of range");
        assert!(pkt.flits > 0, "packets must have at least one flit");
        self.outputs[pkt.dst].push_back(pkt);
    }

    /// Advances one NoC cycle: every output port moves one flit of its
    /// head packet (once the router latency has elapsed). Returns the
    /// packets whose last flit arrived this cycle.
    pub fn tick(&mut self, cycle: u64) -> Vec<Delivery> {
        self.stats.cycles += 1;
        let mut done = Vec::new();
        for (dst, queue) in self.outputs.iter_mut().enumerate() {
            let Some(head) = queue.front() else { continue };
            // Router pipeline: a packet only starts moving flits after
            // router_latency cycles from injection.
            if cycle < head.injected_at + self.router_latency {
                continue;
            }
            if self.in_service[dst] == 0 {
                self.in_service[dst] = head.flits;
            }
            self.in_service[dst] -= 1;
            self.stats.flits += 1;
            if self.in_service[dst] == 0 {
                let pkt = queue.pop_front().expect("head packet exists");
                let latency = cycle + 1 - pkt.injected_at;
                self.stats.delivered += 1;
                self.stats.total_latency += latency;
                done.push(Delivery {
                    payload: pkt.payload,
                    dst,
                    latency,
                });
            }
        }
        done
    }

    /// Total queued packets across all output ports.
    pub fn queued_packets(&self) -> usize {
        self.outputs.iter().map(VecDeque::len).sum()
    }

    /// Whether any packet is queued.
    pub fn is_busy(&self) -> bool {
        self.outputs.iter().any(|q| !q.is_empty())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> Crossbar {
        Crossbar::new(12, 8, 4)
    }

    #[test]
    fn single_packet_latency_is_router_plus_flits() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: REQUEST_FLITS,
            injected_at: 0,
        });
        let out: Vec<_> = (0..20).flat_map(|c| x.tick(c)).collect();
        assert_eq!(out.len(), 1);
        // 4 router cycles + 1 flit cycle.
        assert_eq!(out[0].latency, 5);
    }

    #[test]
    fn data_packets_occupy_five_cycles() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: DATA_FLITS,
            injected_at: 0,
        });
        let out: Vec<_> = (0..20).flat_map(|c| x.tick(c)).collect();
        assert_eq!(out[0].latency, 4 + 5);
    }

    #[test]
    fn same_destination_serializes() {
        let mut x = xbar();
        for i in 0..4 {
            x.inject(Packet {
                payload: i,
                src: i as usize,
                dst: 2,
                flits: DATA_FLITS,
                injected_at: 0,
            });
        }
        let out: Vec<_> = (0..60).flat_map(|c| x.tick(c)).collect();
        assert_eq!(out.len(), 4);
        let latencies: Vec<u64> = out.iter().map(|d| d.latency).collect();
        // Head-of-line: each successive packet waits 5 more flit cycles.
        assert_eq!(latencies, vec![9, 14, 19, 24]);
    }

    #[test]
    fn different_destinations_proceed_in_parallel() {
        let mut x = xbar();
        for i in 0..4 {
            x.inject(Packet {
                payload: i,
                src: 0,
                dst: i as usize,
                flits: DATA_FLITS,
                injected_at: 0,
            });
        }
        let out: Vec<_> = (0..60).flat_map(|c| x.tick(c)).collect();
        // No contention: all four have the uncontended latency.
        assert!(out.iter().all(|d| d.latency == 9));
    }

    #[test]
    fn balanced_traffic_beats_concentrated_traffic() {
        // The Figure 13a mechanism in miniature.
        let mut hot = xbar();
        let mut balanced = xbar();
        for i in 0..8u64 {
            hot.inject(Packet {
                payload: i,
                src: (i % 12) as usize,
                dst: 0,
                flits: DATA_FLITS,
                injected_at: 0,
            });
            balanced.inject(Packet {
                payload: i,
                src: (i % 12) as usize,
                dst: (i % 8) as usize,
                flits: DATA_FLITS,
                injected_at: 0,
            });
        }
        let _: Vec<_> = (0..200).flat_map(|c| hot.tick(c)).collect();
        let _: Vec<_> = (0..200).flat_map(|c| balanced.tick(c)).collect();
        assert!(hot.stats().mean_latency() > 2.0 * balanced.stats().mean_latency());
    }

    #[test]
    fn later_injection_timestamps_reduce_measured_latency() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: 1,
            injected_at: 10,
        });
        let out: Vec<_> = (0..40).flat_map(|c| x.tick(c)).collect();
        assert_eq!(out[0].latency, 5);
    }

    #[test]
    fn stats_track_flits_and_packets() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 1,
            src: 0,
            dst: 0,
            flits: 5,
            injected_at: 0,
        });
        let _: Vec<_> = (0..20).flat_map(|c| x.tick(c)).collect();
        assert_eq!(x.stats().delivered, 1);
        assert_eq!(x.stats().flits, 5);
        assert!(!x.is_busy());
        assert_eq!(x.queued_packets(), 0);
    }

    #[test]
    #[should_panic(expected = "destination port out of range")]
    fn inject_validates_ports() {
        let mut x = xbar();
        x.inject(Packet {
            payload: 0,
            src: 0,
            dst: 99,
            flits: 1,
            injected_at: 0,
        });
    }
}
