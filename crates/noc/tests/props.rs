//! Property-based tests for the crossbar: packet conservation, per-port
//! FIFO ordering and latency bounds under arbitrary traffic.

use proptest::prelude::*;
use valley_noc::{Crossbar, Packet};

fn drain(xbar: &mut Crossbar, expected: usize) -> Vec<(u64, usize, u64)> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    let mut cycle = 0u64;
    while out.len() < expected {
        buf.clear();
        xbar.tick(cycle, &mut buf);
        for d in &buf {
            out.push((d.payload, d.dst, d.latency));
        }
        cycle += 1;
        assert!(cycle < 1_000_000, "NoC made no progress");
    }
    out
}

proptest! {
    /// Every injected packet is delivered exactly once, to its own
    /// destination.
    #[test]
    fn conservation(pkts in proptest::collection::vec((0usize..12, 0usize..8, 1u32..6), 1..80)) {
        let mut xbar = Crossbar::new(12, 8, 4);
        for (i, &(src, dst, flits)) in pkts.iter().enumerate() {
            xbar.inject(Packet {
                payload: i as u64,
                src,
                dst,
                flits,
                injected_at: 0,
            });
        }
        let out = drain(&mut xbar, pkts.len());
        let mut ids: Vec<u64> = out.iter().map(|&(p, _, _)| p).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..pkts.len() as u64).collect::<Vec<_>>());
        for &(p, dst, _) in &out {
            prop_assert_eq!(dst, pkts[p as usize].1);
        }
        prop_assert!(!xbar.is_busy());
        prop_assert_eq!(xbar.stats().delivered, pkts.len() as u64);
    }

    /// Packets to the same output port arrive in injection order (FIFO).
    #[test]
    fn per_port_fifo(pkts in proptest::collection::vec((0usize..12, 1u32..6), 2..60)) {
        let mut xbar = Crossbar::new(12, 4, 2);
        for (i, &(src, flits)) in pkts.iter().enumerate() {
            xbar.inject(Packet {
                payload: i as u64,
                src,
                dst: 1,
                flits,
                injected_at: 0,
            });
        }
        let out = drain(&mut xbar, pkts.len());
        let order: Vec<u64> = out.iter().map(|&(p, _, _)| p).collect();
        let sorted: Vec<u64> = (0..pkts.len() as u64).collect();
        prop_assert_eq!(order, sorted);
    }

    /// Latency is at least router latency + flit count, and total flits
    /// moved equals the sum of packet sizes.
    #[test]
    fn latency_and_flit_accounting(pkts in proptest::collection::vec((0usize..8, 0usize..8, 1u32..6), 1..50)) {
        let router = 3u64;
        let mut xbar = Crossbar::new(8, 8, router);
        let mut total_flits = 0u64;
        for (i, &(src, dst, flits)) in pkts.iter().enumerate() {
            total_flits += flits as u64;
            xbar.inject(Packet {
                payload: i as u64,
                src,
                dst,
                flits,
                injected_at: 0,
            });
        }
        let out = drain(&mut xbar, pkts.len());
        for &(p, _, lat) in &out {
            let flits = pkts[p as usize].2 as u64;
            prop_assert!(lat >= router + flits, "packet {p}: latency {lat} < {router}+{flits}");
        }
        prop_assert_eq!(xbar.stats().flits, total_flits);
    }

    /// The event-queue path delivers exactly what the dense per-cycle
    /// scan delivers — same packets, same cycles, same order, same
    /// stats — under arbitrary staggered injection schedules.
    #[test]
    fn evented_is_bit_identical_to_dense(
        pkts in proptest::collection::vec((0usize..12, 0usize..8, 1u32..6, 0u64..60), 1..60),
        latency in 0u64..5,
    ) {
        let mut pkts = pkts.clone();
        pkts.sort_by_key(|p| p.3);
        let mut dense = Crossbar::new(12, 8, latency);
        let mut evented = Crossbar::new(12, 8, latency);
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        let mut next = 0;
        let horizon = 600u64;
        for cycle in 0..horizon {
            // The simulator's discipline: injections carry the next NoC
            // cycle to tick as their timestamp.
            while next < pkts.len() && pkts[next].3 <= cycle {
                let (src, dst, flits, _) = pkts[next];
                let pkt = Packet { payload: next as u64, src, dst, flits, injected_at: cycle };
                dense.inject(pkt);
                evented.inject(pkt);
                next += 1;
            }
            dense.tick(cycle, &mut d1);
            evented.tick_evented(cycle, &mut d2);
            prop_assert_eq!(&d1, &d2, "deliveries diverged at cycle {}", cycle);
        }
        evented.flush_deferred(horizon);
        prop_assert_eq!(dense.stats(), evented.stats());
        prop_assert_eq!(dense.queued_packets(), evented.queued_packets());
    }

    /// Switching from dense ticks to evented ticks mid-run (the calendar
    /// rebuild path) stays bit-identical to an all-dense run.
    #[test]
    fn evented_after_dense_rebuild_is_bit_identical(
        pkts in proptest::collection::vec((0usize..8, 0usize..4, 1u32..6, 0u64..30), 1..40),
        switch_at in 1u64..50,
    ) {
        let mut pkts = pkts.clone();
        pkts.sort_by_key(|p| p.3);
        let mut dense = Crossbar::new(8, 4, 3);
        let mut mixed = Crossbar::new(8, 4, 3);
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        let mut next = 0;
        let horizon = 400u64;
        for cycle in 0..horizon {
            while next < pkts.len() && pkts[next].3 <= cycle {
                let (src, dst, flits, _) = pkts[next];
                let pkt = Packet { payload: next as u64, src, dst, flits, injected_at: cycle };
                dense.inject(pkt);
                mixed.inject(pkt);
                next += 1;
            }
            dense.tick(cycle, &mut d1);
            if cycle < switch_at {
                mixed.tick(cycle, &mut d2);
            } else {
                mixed.tick_evented(cycle, &mut d2);
            }
            prop_assert_eq!(&d1, &d2, "deliveries diverged at cycle {}", cycle);
        }
        mixed.flush_deferred(horizon);
        prop_assert_eq!(dense.stats(), mixed.stats());
    }

    /// The per-port delivery gates — the wake queries the simulator's
    /// phase-parallel safe horizon is built on — are *exact* under the
    /// evented discipline: no delivery ever lands before the announced
    /// gate (never late ⇒ the horizon is safe), and whenever the gate
    /// says "now" with no new injections since, a delivery does land
    /// (exactness ⇒ the horizon isn't needlessly short).
    #[test]
    fn delivery_gate_is_exact_under_evented_ticks(
        pkts in proptest::collection::vec((0usize..12, 0usize..8, 1u32..6, 0u64..60), 1..60),
        latency in 0u64..5,
    ) {
        let mut pkts = pkts.clone();
        pkts.sort_by_key(|p| p.3);
        let mut xbar = Crossbar::new(12, 8, latency);
        let mut done = Vec::new();
        let mut next = 0;
        for cycle in 0..600u64 {
            while next < pkts.len() && pkts[next].3 <= cycle {
                let (src, dst, flits, _) = pkts[next];
                xbar.inject(Packet { payload: next as u64, src, dst, flits, injected_at: cycle });
                next += 1;
            }
            let gate = xbar.delivery_gate();
            let port_gates: Vec<u64> =
                (0..8).map(|p| xbar.port_delivery_at(p)).collect();
            prop_assert_eq!(
                gate,
                port_gates.iter().copied().min().unwrap(),
                "gate is not the per-port minimum at cycle {}",
                cycle
            );
            done.clear();
            xbar.tick_evented(cycle, &mut done);
            for d in &done {
                prop_assert!(
                    gate <= cycle,
                    "delivery at cycle {} but gate said {} (late gate breaks \
                     the safe horizon)",
                    cycle,
                    gate
                );
                prop_assert_eq!(
                    port_gates[d.dst],
                    cycle,
                    "port {} delivered at cycle {} but its gate said {}",
                    d.dst,
                    cycle,
                    port_gates[d.dst]
                );
            }
            // Exactness: a port whose gate fires now must deliver now.
            for (p, &g) in port_gates.iter().enumerate() {
                if g == cycle {
                    prop_assert!(
                        done.iter().any(|d| d.dst == p),
                        "port {} promised a delivery at cycle {} and didn't",
                        p,
                        cycle
                    );
                }
            }
        }
    }

    /// One output port delivers at most one packet's last flit per
    /// `flits` cycles: spread destinations always finish no later than
    /// the single-destination hotspot.
    #[test]
    fn hotspot_never_faster(n in 2usize..24) {
        let run = |spread: bool| {
            let mut xbar = Crossbar::new(8, 8, 2);
            for i in 0..n {
                xbar.inject(Packet {
                    payload: i as u64,
                    src: i % 8,
                    dst: if spread { i % 8 } else { 0 },
                    flits: 5,
                    injected_at: 0,
                });
            }
            let out = drain(&mut xbar, n);
            out.iter().map(|&(_, _, l)| l).max().unwrap()
        };
        prop_assert!(run(true) <= run(false));
    }
}
