//! The bit-sliced CPU backend.
//!
//! Tile pipeline for a full [`TILE`]-address chunk of `bim_apply_batch`:
//!
//! 1. copy the 64 addresses into the scratch tile and [`transpose64`] it
//!    — word `j` now holds input bit-plane `j` (bit `t` = bit `j` of
//!    address `t`);
//! 2. for every input plane with any bits set, XOR it into the output
//!    planes that read it (the *column masks* of the matrix, built once
//!    per batch): parity over a row mask becomes plane XORs, 64
//!    addresses wide;
//! 3. transpose back and copy out.
//!
//! Sparse matrices — the mapping schemes rewrite only a handful of rows,
//! BASE none at all — stay on the scalar [`Bim::apply`] fast path, whose
//! identity-mask copy is already one AND per address; bit-slicing only
//! pays for itself once the XOR-tree work dominates the two transposes.
//! The cutoff is a backend parameter so benches can force either path.
//!
//! `bvr_sweep` reuses step 1 only: one transpose turns 64 per-address
//! bit-counter updates into one `count_ones` per plane.

use crate::bitslice::{transpose64, TILE};
use crate::{BvrTable, ComputeBackend, ComputeScratch};
use valley_core::entropy::{window_entropy_with_scratch, EntropyMethod};
use valley_core::{alloc_audit, Bim};

/// Below this many non-identity rows the scalar per-address path wins:
/// the two 64-word transposes cost ~2×380 shift/XOR ops per tile, so the
/// bit-sliced path needs enough XOR-tree work to amortize them. Measured
/// on the 1-CPU container: the mapping schemes (≤ 24 special rows of 2–7
/// taps) stay scalar, dense matrices go bit-sliced.
const SPARSE_CUTOFF: usize = 24;

/// The bit-sliced CPU implementation of [`ComputeBackend`].
#[derive(Clone, Copy, Debug)]
pub struct CpuBackend {
    sparse_cutoff: usize,
}

impl CpuBackend {
    /// The default backend: scalar fast path for sparse matrices, tiles
    /// for dense ones.
    pub const fn new() -> Self {
        CpuBackend {
            sparse_cutoff: SPARSE_CUTOFF,
        }
    }

    /// A backend with an explicit sparse/bit-sliced cutoff (number of
    /// non-identity rows at or below which the scalar path is used).
    /// `usize::MAX` forces the scalar path, `0` forces bit-slicing for
    /// every full tile — benches and the property batteries use both to
    /// pit the paths against each other.
    pub const fn with_sparse_cutoff(sparse_cutoff: usize) -> Self {
        CpuBackend { sparse_cutoff }
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ComputeBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu-bitsliced"
    }

    fn tile_width(&self) -> usize {
        TILE
    }

    fn bim_apply_batch(
        &self,
        bim: &Bim,
        addrs: &[u64],
        out: &mut Vec<u64>,
        scratch: &mut ComputeScratch,
    ) {
        out.clear();
        if out.capacity() < addrs.len() {
            // Buffer growth is warmup, not steady-state kernel work.
            let _g = alloc_audit::pause();
            out.reserve(addrs.len());
        }
        if bim.special_rows().len() <= self.sparse_cutoff || addrs.len() < TILE {
            for &a in addrs {
                out.push(bim.apply(a));
            }
            return;
        }
        // Column masks: columns[j] = the output bits whose row reads input
        // bit j. Built once per batch, shared by every tile. Identity rows
        // participate like any other single-tap row.
        let n = bim.n() as usize;
        scratch.columns.fill(0);
        for i in 0..n {
            let mut row = bim.row(i as u8);
            while row != 0 {
                let j = row.trailing_zeros() as usize;
                scratch.columns[j] |= 1u64 << i;
                row &= row - 1;
            }
        }
        let mut chunks = addrs.chunks_exact(TILE);
        for chunk in &mut chunks {
            scratch.tile_in.copy_from_slice(chunk);
            transpose64(&mut scratch.tile_in);
            scratch.tile_out.fill(0);
            for j in 0..n {
                let plane = scratch.tile_in[j];
                if plane == 0 {
                    continue;
                }
                let mut col = scratch.columns[j];
                while col != 0 {
                    let i = col.trailing_zeros() as usize;
                    scratch.tile_out[i] ^= plane;
                    col &= col - 1;
                }
            }
            transpose64(&mut scratch.tile_out);
            out.extend_from_slice(&scratch.tile_out);
        }
        for &a in chunks.remainder() {
            out.push(bim.apply(a));
        }
    }

    fn bvr_sweep(&self, addrs: &[u64], ones: &mut [u64], scratch: &mut ComputeScratch) {
        assert!(ones.len() <= TILE, "at most 64 address bits per sweep");
        let nbits = ones.len();
        let mut chunks = addrs.chunks_exact(TILE);
        for chunk in &mut chunks {
            scratch.tile_in.copy_from_slice(chunk);
            transpose64(&mut scratch.tile_in);
            for (count, plane) in ones.iter_mut().zip(&scratch.tile_in[..nbits]) {
                *count += u64::from(plane.count_ones());
            }
        }
        for &a in chunks.remainder() {
            for (b, count) in ones.iter_mut().enumerate() {
                *count += (a >> b) & 1;
            }
        }
    }

    fn window_entropy_sweep(
        &self,
        table: &BvrTable,
        window: usize,
        method: EntropyMethod,
        out: &mut Vec<f64>,
        scratch: &mut ComputeScratch,
    ) {
        out.clear();
        if out.capacity() < table.bits() {
            let _g = alloc_audit::pause();
            out.reserve(table.bits());
        }
        for b in 0..table.bits() {
            out.push(window_entropy_with_scratch(
                table.bit_row(b),
                window,
                method,
                &mut scratch.entropy,
            ));
        }
    }
}
