//! # valley-compute
//!
//! Vectorized implementations of the Valley analytics plane — the pure
//! data-parallel math behind the paper's entropy metric (Section III) and
//! BIM address mapping (Section IV): batch [`valley_core::Bim`]
//! application, per-bit BVR accumulation, and per-bit window-entropy
//! sweeps.
//!
//! Everything sits behind the [`ComputeBackend`] trait so a GPU (wgpu)
//! backend can slot in later; the first implementation is [`CpuBackend`],
//! a bit-sliced CPU path (see [`bitslice`](transpose64) for the tile
//! layout and `docs/compute.md` for the full design). The scalar code in
//! `valley-core` remains the semantic oracle: the property batteries in
//! `tests/props.rs` pin bit-exact equivalence — BVRs are exact reduced
//! fractions and the entropy sweep replays the scalar arithmetic
//! statement for statement, so equality is `==`, not "approximately".
//!
//! All kernels take caller-provided [`ComputeScratch`] and reach zero
//! steady-state allocations once buffers hit their high-water mark
//! (`tests/alloc_audit.rs` proves this with a counting allocator, the
//! same gate the sim tick loops use).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bitslice;
mod cpu;
pub mod matgen;

pub use bitslice::{transpose64, TILE};
pub use cpu::CpuBackend;

use valley_core::entropy::{Bvr, EntropyMethod, EntropyScratch, TbBitStats};
use valley_core::Bim;

/// Caller-provided scratch for the [`ComputeBackend`] kernels: two tile
/// buffers, the column masks of the matrix being applied, and the
/// window-entropy rolling-scan buffers. One scratch serves any sequence
/// of kernel calls; nothing is retained between calls except capacity.
#[derive(Clone, Debug)]
pub struct ComputeScratch {
    pub(crate) tile_in: [u64; TILE],
    pub(crate) tile_out: [u64; TILE],
    pub(crate) columns: [u64; TILE],
    pub(crate) entropy: EntropyScratch,
}

impl ComputeScratch {
    /// Creates an empty scratch; heap buffers grow on first use.
    pub fn new() -> Self {
        ComputeScratch {
            tile_in: [0; TILE],
            tile_out: [0; TILE],
            columns: [0; TILE],
            entropy: EntropyScratch::new(),
        }
    }
}

impl Default for ComputeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A bit-major table of BVR values: row `b` holds the BVRs of address bit
/// `b` across all active TBs, in ascending TB-identifier order (the
/// scheduler order Equation 2 assumes). This is the input layout of
/// [`ComputeBackend::window_entropy_sweep`] — bit-major so each sweep row
/// is contiguous, which is also the buffer a GPU backend would upload.
#[derive(Clone, Debug, PartialEq)]
pub struct BvrTable {
    bits: usize,
    tbs: usize,
    /// Row-major by bit: `values[b * tbs + t]`.
    values: Vec<Bvr>,
    requests: u64,
}

impl BvrTable {
    /// Builds the table from per-TB statistics, mirroring
    /// [`valley_core::entropy::kernel_entropy_method`]'s preamble: TBs
    /// with zero requests are skipped, the rest are sorted by identifier,
    /// and the bit count comes from the first active TB.
    pub fn from_tb_stats(tbs: &[TbBitStats]) -> Self {
        let mut active: Vec<&TbBitStats> = tbs.iter().filter(|t| t.requests() > 0).collect();
        active.sort_by_key(|t| t.tb_id());
        let bits = active.first().map_or(0, |t| t.addr_bits()) as usize;
        let requests: u64 = active.iter().map(|t| t.requests()).sum();
        let mut values = Vec::with_capacity(bits * active.len());
        for b in 0..bits {
            for t in &active {
                values.push(Bvr::new(t.ones(b as u8), t.requests()));
            }
        }
        BvrTable {
            bits,
            tbs: active.len(),
            values,
            requests,
        }
    }

    /// Builds the table from explicit per-bit BVR rows (each row already
    /// in TB order). All rows must have the same length.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_bit_rows(rows: &[Vec<Bvr>], requests: u64) -> Self {
        let tbs = rows.first().map_or(0, |r| r.len());
        assert!(
            rows.iter().all(|r| r.len() == tbs),
            "BvrTable rows must all have the same TB count"
        );
        let mut values = Vec::with_capacity(rows.len() * tbs);
        for row in rows {
            values.extend_from_slice(row);
        }
        BvrTable {
            bits: rows.len(),
            tbs,
            values,
            requests,
        }
    }

    /// Number of address bits (table rows).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of active TBs (table columns).
    pub fn tbs(&self) -> usize {
        self.tbs
    }

    /// Total requests across the active TBs (the kernel weight).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The BVRs of address bit `b` across TBs, in TB-identifier order.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn bit_row(&self, b: usize) -> &[Bvr] {
        &self.values[b * self.tbs..(b + 1) * self.tbs]
    }
}

/// A batch-analytics backend: the three data-parallel kernels of the
/// Valley analytics plane. Implementations must be semantically
/// bit-exact with the scalar `valley-core` code — consumers treat the
/// backends as interchangeable, and figure outputs are byte-compared.
pub trait ComputeBackend: Send + Sync {
    /// Backend name for telemetry (e.g. the `valley status` report).
    fn name(&self) -> &'static str;

    /// Addresses processed per internal tile (1 for a pure scalar
    /// backend).
    fn tile_width(&self) -> usize;

    /// Applies `bim` to every address in `addrs`, replacing the contents
    /// of `out` with the mapped addresses in order. Must equal
    /// `addrs.iter().map(|&a| bim.apply(a))` bit for bit.
    fn bim_apply_batch(
        &self,
        bim: &Bim,
        addrs: &[u64],
        out: &mut Vec<u64>,
        scratch: &mut ComputeScratch,
    );

    /// Accumulates per-bit 1-counts over `addrs`: `ones[b]` grows by the
    /// number of addresses with bit `b` set. Accumulation (`+=`) lets
    /// callers stream arbitrarily many batches into `u64` counters —
    /// totals past 2³² are exercised by the property battery.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ones.len() > 64`.
    fn bvr_sweep(&self, addrs: &[u64], ones: &mut [u64], scratch: &mut ComputeScratch);

    /// Computes the window-based entropy `H*` (Equation 2) of every bit
    /// row in `table`, replacing the contents of `out` with one value per
    /// bit. Must equal `window_entropy_method(table.bit_row(b), ..)` bit
    /// for bit.
    fn window_entropy_sweep(
        &self,
        table: &BvrTable,
        window: usize,
        method: EntropyMethod,
        out: &mut Vec<f64>,
        scratch: &mut ComputeScratch,
    );
}

/// The process-wide compute backend: the bit-sliced CPU path. Consumers
/// (figure binaries, the simulator's scheme-application path, the
/// workload profiler) route through this; a future GPU backend would be
/// selected here.
pub fn backend() -> &'static dyn ComputeBackend {
    static CPU: CpuBackend = CpuBackend::new();
    &CPU
}
