//! Deterministic random-matrix generators for benches and property
//! batteries.
//!
//! The mapping schemes only exercise the sparse fast path of
//! `bim_apply_batch` (a handful of non-identity rows), so measuring or
//! testing the bit-sliced path needs matrices that are dense *and*
//! invertible. These generators draw rows from a seeded splitmix64
//! stream and reroll until the matrix is full rank over GF(2) — a random
//! GF(2) matrix is invertible with probability ≈ 0.29, so a few rolls
//! suffice; the loop is bounded and deterministic per seed.

use valley_core::Bim;

/// A splitmix64 step — the same tiny generator the tile tests use.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn invertible_from(n: u8, seed: u64, mut row: impl FnMut(&mut u64, u64) -> u64) -> Bim {
    assert!((1..=64).contains(&n), "matrix dimension must be 1..=64");
    let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut state = seed ^ 0xa076_1d64_78bd_642f;
    for _ in 0..10_000 {
        let rows: Vec<u64> = (0..n).map(|_| row(&mut state, limit)).collect();
        if let Ok(m) = Bim::checked_invertible(rows) {
            return m;
        }
    }
    // Statistically unreachable (each roll succeeds with p ≈ 0.29).
    panic!("no invertible matrix of dimension {n} found for seed {seed}");
}

/// A random invertible matrix with entry density ≈ 1/2 — every row is a
/// uniform `n`-bit mask. This is the "half-dense" microbench case.
pub fn half_dense_invertible(n: u8, seed: u64) -> Bim {
    invertible_from(n, seed, |state, limit| splitmix(state) & limit)
}

/// A random invertible matrix with entry density ≈ 3/4 (the OR of two
/// uniform masks) — the "dense full-rank" microbench case, where every
/// output bit is a wide XOR tree and the scalar path does ~`n`/2 popcount
/// reductions per address.
pub fn dense_invertible(n: u8, seed: u64) -> Bim {
    invertible_from(n, seed, |state, limit| {
        (splitmix(state) | splitmix(state)) & limit
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_invertible() {
        for seed in 0..20u64 {
            for n in [1u8, 2, 7, 30, 63, 64] {
                let d = dense_invertible(n, seed);
                let h = half_dense_invertible(n, seed);
                assert!(d.is_invertible());
                assert!(h.is_invertible());
                assert_eq!(d, dense_invertible(n, seed), "dense n={n} seed={seed}");
                assert_eq!(h, half_dense_invertible(n, seed), "half n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn dense_is_denser_than_half() {
        let d = dense_invertible(30, 1);
        let h = half_dense_invertible(30, 1);
        // Expected ~675 vs ~450 ones out of 900 entries; a generous gap
        // check keeps the test robust across seeds.
        assert!(d.popcount() > h.popcount());
        assert!(d.special_rows().len() > 24, "dense must take the tile path");
    }
}
