//! Bit-sliced tile primitives.
//!
//! The analytics kernels operate on *tiles* of [`TILE`] addresses. A tile
//! is transposed in place — `tile[i]` stops being "address i" and becomes
//! "bit-plane i": bit j of plane i is bit i of address j. In plane form,
//! per-address bit arithmetic turns into whole-word operations across all
//! 64 addresses at once:
//!
//! * a GF(2) matrix row's parity reduction (`popcount(mask & addr) & 1`)
//!   becomes the XOR of the planes selected by the mask — output plane
//!   `i = ⊕ { plane j : row_i has bit j }`;
//! * a per-bit 1-counter update becomes one `count_ones` per plane.
//!
//! The transpose itself is the classic recursive block swap (Hacker's
//! Delight §7-3): swap the two off-diagonal 32×32 blocks, then the four
//! off-diagonal 16×16 blocks, and so on down to 1×1 — six passes of
//! shift/XOR/mask over the 64 words, no memory traffic beyond the tile.

/// Tile width: addresses per tile, and bit-planes per transposed tile.
pub const TILE: usize = 64;

/// In-place 64×64 bit-matrix transpose.
///
/// On input, word `i` is row `i` (bit `j` = column `j`); on output, word
/// `i` is the former column `i`. Involutive: applying it twice restores
/// the tile.
///
/// # Examples
///
/// ```
/// use valley_compute::{transpose64, TILE};
///
/// let mut tile = [0u64; TILE];
/// tile[3] = 1 << 7; // row 3, column 7
/// transpose64(&mut tile);
/// assert_eq!(tile[7], 1 << 3); // row 7, column 3
/// ```
pub fn transpose64(a: &mut [u64; TILE]) {
    let mut j: usize = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k: usize = 0;
        while k < TILE {
            // Hacker's Delight writes this block swap for MSB-first
            // columns; with our LSB-first convention (bit j of word i =
            // column j of row i) the swapped halves trade places: the
            // *high* bits of the low word exchange with the *low* bits of
            // the high word.
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_transpose(a: &[u64; TILE]) -> [u64; TILE] {
        let mut out = [0u64; TILE];
        for (i, row) in a.iter().enumerate() {
            for (j, out_row) in out.iter_mut().enumerate() {
                *out_row |= ((row >> j) & 1) << i;
            }
        }
        out
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn matches_naive_orientation() {
        let mut state = 0xdead_beefu64;
        for case in 0..50 {
            let mut tile = [0u64; TILE];
            for w in tile.iter_mut() {
                *w = splitmix(&mut state);
            }
            let expect = naive_transpose(&tile);
            let mut got = tile;
            transpose64(&mut got);
            assert_eq!(got, expect, "case {case}");
        }
    }

    #[test]
    fn involutive() {
        let mut state = 42u64;
        let mut tile = [0u64; TILE];
        for w in tile.iter_mut() {
            *w = splitmix(&mut state);
        }
        let orig = tile;
        transpose64(&mut tile);
        transpose64(&mut tile);
        assert_eq!(tile, orig);
    }

    #[test]
    fn identity_and_single_bits() {
        // The diagonal is a fixed point.
        let mut diag = [0u64; TILE];
        for (i, w) in diag.iter_mut().enumerate() {
            *w = 1u64 << i;
        }
        let orig = diag;
        transpose64(&mut diag);
        assert_eq!(diag, orig);
        // Every single (row, col) bit lands at (col, row).
        for (r, c) in [(0usize, 0usize), (0, 63), (63, 0), (17, 41), (63, 63)] {
            let mut tile = [0u64; TILE];
            tile[r] = 1u64 << c;
            transpose64(&mut tile);
            let mut expect = [0u64; TILE];
            expect[c] = 1u64 << r;
            assert_eq!(tile, expect, "bit ({r}, {c})");
        }
    }
}
