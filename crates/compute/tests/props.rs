//! Property batteries: the vectorized kernels against their scalar
//! `valley-core` oracles. Equality is exact (`==` on integers and on f64
//! bit patterns), not approximate — BVRs are exact reduced fractions and
//! the entropy sweep replays the scalar arithmetic statement for
//! statement. Failure messages carry reproducer coordinates (scheme,
//! seed, index) matching the existing batteries.

use proptest::prelude::*;
use valley_compute::matgen::{dense_invertible, half_dense_invertible};
use valley_compute::{backend, BvrTable, ComputeBackend, ComputeScratch, CpuBackend, TILE};
use valley_core::entropy::{
    kernel_entropy_method, window_entropy_method, Bvr, EntropyMethod, TbBitStats,
};
use valley_core::{AddressMapper, Bim, GddrMap, SchemeKind};

const ADDR_MASK: u64 = (1 << 30) - 1;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn addr_stream(seed: u64, len: usize, mask: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len).map(|_| splitmix(&mut state) & mask).collect()
}

/// Runs one batch through a backend and checks it against the scalar
/// per-address oracle, with reproducer coordinates on mismatch.
fn assert_batch_matches(
    be: &dyn ComputeBackend,
    bim: &Bim,
    addrs: &[u64],
    scratch: &mut ComputeScratch,
    out: &mut Vec<u64>,
    what: &str,
) -> Result<(), TestCaseError> {
    be.bim_apply_batch(bim, addrs, out, scratch);
    prop_assert_eq!(out.len(), addrs.len(), "{}: length mismatch", what);
    for (i, (&a, &got)) in addrs.iter().zip(out.iter()).enumerate() {
        let want = bim.apply(a);
        prop_assert_eq!(
            got,
            want,
            "{}: index {} addr {:#x}: batch {:#x} != scalar {:#x}",
            what,
            i,
            a,
            got,
            want
        );
    }
    Ok(())
}

proptest! {
    /// Every scheme's BIM, every tile shape (empty, sub-tile, exact
    /// multiples, ragged tails): batch application equals per-address
    /// `Bim::apply` on all three backend configurations — default,
    /// forced-scalar and forced-bit-sliced. One scratch and one output
    /// buffer are reused across all of them to catch stale-state bugs.
    #[test]
    fn bim_batch_matches_scalar_for_all_schemes(
        seed in 0u64..64,
        salt in any::<u64>(),
        len in 0usize..200,
    ) {
        let map = GddrMap::baseline();
        let addrs = addr_stream(salt, len, ADDR_MASK);
        let mut scratch = ComputeScratch::new();
        let mut out = Vec::new();
        let forced = CpuBackend::with_sparse_cutoff(0);
        let scalar = CpuBackend::with_sparse_cutoff(usize::MAX);
        for kind in SchemeKind::ALL_SCHEMES {
            let m = AddressMapper::build(kind, &map, seed % 16);
            for (be, cfg) in [
                (backend(), "default"),
                (&forced as &dyn ComputeBackend, "bitsliced"),
                (&scalar as &dyn ComputeBackend, "scalar"),
            ] {
                let what = format!("scheme {kind:?} seed {seed} salt {salt:#x} cfg {cfg}");
                assert_batch_matches(be, m.bim(), &addrs, &mut scratch, &mut out, &what)?;
            }
        }
    }

    /// Random invertible matrices of every dimension — dense (tile path)
    /// and half-dense — including addresses with garbage bits above the
    /// matrix dimension, which `apply` masks away.
    #[test]
    fn bim_batch_matches_scalar_random_invertible(
        n in 1u8..=64,
        seed in any::<u64>(),
        len in 0usize..300,
    ) {
        let addrs = addr_stream(seed ^ 0x5eed, len, u64::MAX);
        let mut scratch = ComputeScratch::new();
        let mut out = Vec::new();
        let forced = CpuBackend::with_sparse_cutoff(0);
        for (bim, shape) in [
            (dense_invertible(n, seed), "dense"),
            (half_dense_invertible(n, seed), "half-dense"),
        ] {
            let what = format!("{shape} n {n} seed {seed:#x}");
            assert_batch_matches(&forced, &bim, &addrs, &mut scratch, &mut out, &what)?;
        }
    }

    /// Transposed BVR accumulation equals 64 independent per-bit scans
    /// (the `TbBitStats::record` oracle), for every bit width and stream
    /// length, and is invariant to how the stream is split into batches.
    #[test]
    fn bvr_sweep_matches_per_bit_scans(
        seed in any::<u64>(),
        len in 0usize..300,
        bits in 1usize..=64,
        split in 0usize..300,
    ) {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let addrs = addr_stream(seed, len, mask);
        let oracle = TbBitStats::from_addrs(0, bits as u8, addrs.iter().copied());
        let mut scratch = ComputeScratch::new();
        let mut ones = vec![0u64; bits];
        backend().bvr_sweep(&addrs, &mut ones, &mut scratch);
        for (b, &got) in ones.iter().enumerate() {
            prop_assert_eq!(
                got,
                oracle.ones(b as u8),
                "bit {} seed {:#x} len {}: sweep {} != scalar {}",
                b,
                seed,
                len,
                got,
                oracle.ones(b as u8)
            );
        }
        // Splitting the stream anywhere must accumulate identically.
        let cut = split.min(len);
        let mut split_ones = vec![0u64; bits];
        backend().bvr_sweep(&addrs[..cut], &mut split_ones, &mut scratch);
        backend().bvr_sweep(&addrs[cut..], &mut split_ones, &mut scratch);
        prop_assert_eq!(&split_ones, &ones, "split at {} differs", cut);
    }

    /// The entropy sweep over a bit-major BVR table is bit-for-bit equal
    /// to the scalar rolling scan on every row, for both per-window
    /// methods and any window size.
    #[test]
    fn entropy_sweep_matches_scalar_rows(
        seed in any::<u64>(),
        bits in 0usize..40,
        tbs in 1usize..120,
        window in 1usize..20,
        distinct in any::<bool>(),
    ) {
        let method = if distinct {
            EntropyMethod::DistinctBvr
        } else {
            EntropyMethod::MixtureBvr
        };
        let mut state = seed;
        let rows: Vec<Vec<Bvr>> = (0..bits)
            .map(|_| {
                (0..tbs)
                    .map(|_| {
                        let total = splitmix(&mut state) % (1 << 40) + 1;
                        let ones = splitmix(&mut state) % (total + 1);
                        Bvr::new(ones, total)
                    })
                    .collect()
            })
            .collect();
        let table = BvrTable::from_bit_rows(&rows, 1);
        let mut scratch = ComputeScratch::new();
        let mut out = Vec::new();
        backend().window_entropy_sweep(&table, window, method, &mut out, &mut scratch);
        prop_assert_eq!(out.len(), bits);
        for (b, (row, &got)) in rows.iter().zip(out.iter()).enumerate() {
            let want = window_entropy_method(row, window, method);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "bit {} seed {:#x} w {} {:?}: sweep {} != scalar {}",
                b,
                seed,
                window,
                method,
                got,
                want
            );
        }
    }

    /// End-to-end: `BvrTable::from_tb_stats` + the sweep reproduce
    /// `kernel_entropy_method` exactly — same TB filtering, same sort,
    /// same per-bit values — including out-of-order and empty TBs.
    #[test]
    fn table_sweep_matches_kernel_entropy(
        seed in any::<u64>(),
        ntbs in 0usize..40,
        window in 1usize..16,
        distinct in any::<bool>(),
    ) {
        let method = if distinct {
            EntropyMethod::DistinctBvr
        } else {
            EntropyMethod::MixtureBvr
        };
        let mut state = seed;
        let mut tbs: Vec<TbBitStats> = (0..ntbs)
            .map(|i| {
                // Shuffled ids, occasional empty TBs (skipped by both paths).
                let id = (i as u64 * 37) % 41;
                let len = (splitmix(&mut state) % 20) as usize;
                TbBitStats::from_addrs(
                    id,
                    16,
                    (0..len).map(|_| splitmix(&mut state) & 0xffff),
                )
            })
            .collect();
        tbs.dedup_by_key(|t| t.tb_id());
        let oracle = kernel_entropy_method(&tbs, window, method);
        let table = BvrTable::from_tb_stats(&tbs);
        prop_assert_eq!(table.requests(), oracle.requests());
        let mut scratch = ComputeScratch::new();
        let mut out = Vec::new();
        backend().window_entropy_sweep(&table, window, method, &mut out, &mut scratch);
        prop_assert_eq!(out.len(), oracle.per_bit().len());
        for (b, (&got, &want)) in out.iter().zip(oracle.per_bit()).enumerate() {
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "bit {} seed {:#x} ntbs {} w {}: {} != {}",
                b,
                seed,
                ntbs,
                window,
                got,
                want
            );
        }
    }
}

/// Accumulating into preseeded counters: totals far past 2³² stay exact,
/// and the resulting BVRs reduce identically however the requests were
/// batched.
#[test]
fn bvr_accumulation_past_2_pow_32() {
    let mut scratch = ComputeScratch::new();
    // Pretend 3·2³³ earlier requests of which 2³³ had bit 0 set.
    let pre_ones = 1u64 << 33;
    let pre_total = 3u64 << 33;
    let mut ones = vec![pre_ones, 0];
    // Stream 192 more addresses: 64 with bit 0 set, all with bit 1 clear.
    let addrs: Vec<u64> = (0..192u64).map(|i| u64::from(i % 3 == 0)).collect();
    backend().bvr_sweep(&addrs, &mut ones, &mut scratch);
    let total = pre_total + addrs.len() as u64;
    assert_eq!(ones[0], pre_ones + 64);
    assert_eq!(ones[1], 0);
    // The reduced fraction is exact: (2³³+64)/(3·2³³+192) = 1/3.
    assert_eq!(Bvr::new(ones[0], total), Bvr::new(1, 3));
    assert_eq!(Bvr::new(ones[1], total), Bvr::new(0, 1));
}

/// The tile path must engage for dense matrices under the default
/// backend (otherwise the batteries above would only ever test the
/// scalar path against itself).
#[test]
fn default_backend_tiles_dense_matrices() {
    let bim = dense_invertible(30, 7);
    assert!(bim.special_rows().len() > 24);
    let addrs = addr_stream(7, 4 * TILE + 17, ADDR_MASK);
    let mut scratch = ComputeScratch::new();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    backend().bim_apply_batch(&bim, &addrs, &mut a, &mut scratch);
    CpuBackend::with_sparse_cutoff(usize::MAX).bim_apply_batch(&bim, &addrs, &mut b, &mut scratch);
    assert_eq!(a, b);
    assert_eq!(backend().tile_width(), TILE);
}
