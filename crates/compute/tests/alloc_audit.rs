//! Steady-state allocation audit for the compute kernels: a counting
//! global allocator proves that once the caller-provided scratch and
//! output buffers have reached their high-water mark, the kernels
//! allocate nothing — the same gate the sim tick loops pass.
//!
//! Unlike the sim audit there is no cycle clock here: the window is
//! armed directly around a second, fully-warmed round of kernel calls
//! on the same inputs. A paused canary allocation at the end proves the
//! window actually armed (the kernels themselves never pause in the
//! steady state — their only declared site is first-touch buffer
//! growth, which warmup exhausts).
//!
//! Requires `--features alloc-audit`; without it the hooks are empty
//! and this file compiles to nothing.
#![cfg(feature = "alloc-audit")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Mutex;
use valley_compute::matgen::dense_invertible;
use valley_compute::{backend, BvrTable, ComputeScratch, TILE};
use valley_core::alloc_audit;
use valley_core::entropy::{Bvr, EntropyMethod};

/// Counts every heap allocation into the audit before delegating to the
/// system allocator; prints a backtrace for the first few violations so
/// a failing run names the offending site.
struct CountingAlloc;

static TRACED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn trace_violation(size: usize) {
    if alloc_audit::violation_imminent() {
        let _p = alloc_audit::pause();
        if TRACED.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 6 {
            eprintln!(
                "steady-state allocation of {size} bytes:\n{}",
                std::backtrace::Backtrace::force_capture()
            );
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        trace_violation(layout.size());
        alloc_audit::on_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        trace_violation(layout.size());
        alloc_audit::on_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        trace_violation(layout.size());
        alloc_audit::on_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The audit counters are process-global; serialize (future) audit
/// tests in this binary the same way the sim audit does.
static AUDIT_LOCK: Mutex<()> = Mutex::new(());

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn warmed_kernels_allocate_nothing() {
    let _guard = AUDIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let bim = dense_invertible(30, 3);
    let mut state = 0x5eed_u64;
    let addrs: Vec<u64> = (0..8 * TILE + 17)
        .map(|_| splitmix(&mut state) & ((1 << 30) - 1))
        .collect();
    let rows: Vec<Vec<Bvr>> = (0..30)
        .map(|_| {
            (0..96)
                .map(|_| {
                    let total = splitmix(&mut state) % 1000 + 1;
                    Bvr::new(splitmix(&mut state) % (total + 1), total)
                })
                .collect()
        })
        .collect();
    let table = BvrTable::from_bit_rows(&rows, 1);

    let mut scratch = ComputeScratch::new();
    let mut mapped = Vec::new();
    let mut ones = vec![0u64; 30];
    let mut entropies = Vec::new();
    let be = backend();
    let round = |scratch: &mut ComputeScratch,
                 mapped: &mut Vec<u64>,
                 ones: &mut Vec<u64>,
                 entropies: &mut Vec<f64>| {
        be.bim_apply_batch(&bim, &addrs, mapped, scratch);
        be.bvr_sweep(&addrs, ones, scratch);
        for method in [EntropyMethod::MixtureBvr, EntropyMethod::DistinctBvr] {
            be.window_entropy_sweep(&table, 12, method, entropies, scratch);
        }
    };

    // Warmup: buffers (output vectors, entropy prefix/count scratch, the
    // binary-entropy lookup table) reach their high-water mark.
    round(&mut scratch, &mut mapped, &mut ones, &mut entropies);

    alloc_audit::set_window(0, 1);
    alloc_audit::note_cycle(0);
    round(&mut scratch, &mut mapped, &mut ones, &mut entropies);
    let span = alloc_audit::span_allocs();

    // Canary: a paused allocation proves the window was armed at all.
    {
        let _p = alloc_audit::pause();
        std::hint::black_box(Vec::<u64>::with_capacity(256));
    }
    let paused = alloc_audit::paused_allocs();
    alloc_audit::window_close();

    assert_eq!(span, 0, "warmed compute kernels allocated in steady state");
    assert!(paused > 0, "audit window never armed");
}
