//! # valley-power
//!
//! Power models for the Valley simulator:
//!
//! * [`DramPowerModel`] — a Micron-methodology DRAM power model (the
//!   paper uses Micron's DDR power calculator configured for Hynix
//!   GDDR5): background, activate/precharge, read and write components
//!   driven by the simulator's command counters. Address mapping mainly
//!   moves the **activate** component (Figure 16) via the row-buffer hit
//!   rate.
//! * [`GpuPowerModel`] — a GPUWattch-style whole-GPU substitute: static
//!   power plus SM activity-scaled dynamic power.
//!
//! Absolute Watts are calibrated to the paper's ballpark (total DRAM
//! power in the tens of Watts, DRAM up to ~40% of system power); the
//! paper's claims are about *relative* power across mapping schemes,
//! which these counters capture exactly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use valley_sim::SimReport;

/// Bytes moved per DRAM column access (one coalesced transaction).
const BYTES_PER_ACCESS: f64 = 128.0;

/// DRAM power broken into the paper's four components (Figure 16).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramPower {
    /// Always-on background power (clocking, refresh, standby), Watts.
    pub background: f64,
    /// Row activate + precharge power, Watts.
    pub activate: f64,
    /// Read burst power, Watts.
    pub read: f64,
    /// Write burst power, Watts.
    pub write: f64,
}

impl DramPower {
    /// Total DRAM power in Watts.
    pub fn total(&self) -> f64 {
        self.background + self.activate + self.read + self.write
    }
}

/// Micron-style DRAM power model: energy-per-event constants applied to
/// the simulator's command counters.
///
/// # Examples
///
/// ```
/// use valley_power::DramPowerModel;
///
/// let model = DramPowerModel::gddr5();
/// // 1e6 activates in 10 ms:
/// let act_w = model.activate_power(1_000_000, 0.01);
/// assert!(act_w > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramPowerModel {
    /// Background power per channel (device cluster), Watts.
    pub background_w_per_channel: f64,
    /// Energy of one ACT+PRE pair, nanojoules.
    pub act_energy_nj: f64,
    /// Read energy per byte, nanojoules.
    pub read_energy_nj_per_byte: f64,
    /// Write energy per byte, nanojoules.
    pub write_energy_nj_per_byte: f64,
}

impl DramPowerModel {
    /// Constants for the 1 GB Hynix GDDR5 configuration (Table I).
    pub const fn gddr5() -> Self {
        DramPowerModel {
            background_w_per_channel: 6.0,
            act_energy_nj: 25.0,
            read_energy_nj_per_byte: 0.08,
            write_energy_nj_per_byte: 0.09,
        }
    }

    /// Activate power for `activates` ACT commands over `seconds`.
    pub fn activate_power(&self, activates: u64, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        activates as f64 * self.act_energy_nj * 1e-9 / seconds
    }

    /// Evaluates the full breakdown from a simulation report.
    pub fn evaluate(&self, r: &SimReport) -> DramPower {
        let seconds = if r.dram_clock_ghz > 0.0 {
            r.dram_cycles as f64 / (r.dram_clock_ghz * 1e9)
        } else {
            0.0
        };
        if seconds <= 0.0 {
            return DramPower {
                background: self.background_w_per_channel * r.dram_channels as f64,
                ..DramPower::default()
            };
        }
        DramPower {
            background: self.background_w_per_channel * r.dram_channels as f64,
            activate: self.activate_power(r.dram.activates, seconds),
            read: r.dram.reads as f64 * BYTES_PER_ACCESS * self.read_energy_nj_per_byte * 1e-9
                / seconds,
            write: r.dram.writes as f64 * BYTES_PER_ACCESS * self.write_energy_nj_per_byte * 1e-9
                / seconds,
        }
    }
}

impl Default for DramPowerModel {
    fn default() -> Self {
        DramPowerModel::gddr5()
    }
}

/// GPUWattch-style whole-GPU power substitute: static leakage plus
/// activity-scaled SM dynamic power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuPowerModel {
    /// Static/idle GPU power (leakage, clocks, fans), Watts.
    pub idle_w: f64,
    /// Dynamic power of one fully-busy SM, Watts.
    pub sm_dynamic_w: f64,
}

impl GpuPowerModel {
    /// Constants for the 12-SM baseline GPU.
    pub const fn baseline() -> Self {
        GpuPowerModel {
            idle_w: 32.0,
            sm_dynamic_w: 4.5,
        }
    }

    /// GPU power for a simulation report.
    pub fn evaluate(&self, r: &SimReport) -> f64 {
        self.idle_w + self.sm_dynamic_w * r.num_sms as f64 * r.sm_busy_fraction
    }
}

impl Default for GpuPowerModel {
    fn default() -> Self {
        GpuPowerModel::baseline()
    }
}

/// Combined system power (GPU + DRAM) for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerSummary {
    /// GPU power in Watts.
    pub gpu_w: f64,
    /// DRAM power breakdown.
    pub dram: DramPower,
}

impl PowerSummary {
    /// Total system power in Watts.
    pub fn system_w(&self) -> f64 {
        self.gpu_w + self.dram.total()
    }
}

/// Evaluates both models with their default constants.
pub fn evaluate(r: &SimReport) -> PowerSummary {
    PowerSummary {
        gpu_w: GpuPowerModel::baseline().evaluate(r),
        dram: DramPowerModel::gddr5().evaluate(r),
    }
}

/// Normalized performance-per-Watt of `r` relative to `baseline`
/// (Figure 17): speedup × (baseline system power / this system power).
pub fn perf_per_watt(r: &SimReport, baseline: &SimReport) -> f64 {
    let pr = evaluate(r).system_w();
    let pb = evaluate(baseline).system_w();
    if pr <= 0.0 || r.cycles == 0 {
        return 0.0;
    }
    r.speedup_over(baseline) * pb / pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use valley_cache::CacheStats;
    use valley_dram::DramStats;

    fn report(cycles: u64, activates: u64, reads: u64) -> SimReport {
        SimReport {
            benchmark: "T".into(),
            scheme: "BASE".into(),
            cycles,
            truncated: false,
            warp_instructions: 1000,
            thread_instructions: 32000,
            memory_transactions: reads,
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            noc_latency: 0.0,
            llc_parallelism: 1.0,
            channel_parallelism: 1.0,
            bank_parallelism: 1.0,
            dram: DramStats {
                activates,
                reads,
                writes: reads / 4,
                ..Default::default()
            },
            kernels: 1,
            dram_cycles: (cycles as f64 * 0.66) as u64,
            dram_channels: 4,
            core_clock_ghz: 1.4,
            dram_clock_ghz: 0.924,
            num_sms: 12,
            sm_busy_fraction: 0.8,
            epoch_hist: valley_sim::EpochHist::default(),
        }
    }

    #[test]
    fn background_power_scales_with_channels() {
        let m = DramPowerModel::gddr5();
        let p = m.evaluate(&report(1_000_000, 0, 0));
        assert!((p.background - 24.0).abs() < 1e-9);
        assert_eq!(p.activate, 0.0);
    }

    #[test]
    fn activate_power_tracks_act_count() {
        let m = DramPowerModel::gddr5();
        let lo = m.evaluate(&report(1_000_000, 10_000, 50_000));
        let hi = m.evaluate(&report(1_000_000, 40_000, 50_000));
        assert!((hi.activate / lo.activate - 4.0).abs() < 1e-9);
        // Reads identical -> read power identical.
        assert!((hi.read - lo.read).abs() < 1e-12);
    }

    #[test]
    fn totals_compose() {
        let p = DramPower {
            background: 24.0,
            activate: 10.0,
            read: 5.0,
            write: 2.0,
        };
        assert!((p.total() - 41.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_power_tracks_activity() {
        let m = GpuPowerModel::baseline();
        let r = report(1_000_000, 0, 0);
        let p = m.evaluate(&r);
        assert!((p - (32.0 + 4.5 * 12.0 * 0.8)).abs() < 1e-9);
    }

    #[test]
    fn perf_per_watt_rewards_speed_and_efficiency() {
        let base = report(2_000_000, 50_000, 100_000);
        // Twice as fast with the same activity counters over less time:
        // higher power, but perf/W must still improve.
        let mut fast = report(1_000_000, 50_000, 100_000);
        fast.dram_cycles = base.dram_cycles / 2;
        let ppw = perf_per_watt(&fast, &base);
        assert!(ppw > 1.0, "ppw = {ppw}");
        assert!((perf_per_watt(&base, &base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_degrades_gracefully() {
        let mut r = report(0, 0, 0);
        r.dram_cycles = 0;
        let p = DramPowerModel::gddr5().evaluate(&r);
        assert!(p.activate == 0.0 && p.background > 0.0);
    }
}
