//! Integration tests for the sweep engine: resume semantics, store
//! persistence across processes-worth of reopens, determinism across
//! worker counts, and loud failure on schema drift.

use valley_core::SchemeKind;
use valley_harness::{
    run_sweep, ConfigId, JobSpec, ResultStore, StoreOptions, SweepOptions, SweepSpec, DEFAULT_SEED,
};
use valley_workloads::{Benchmark, Scale};

/// A fresh store directory that cleans itself up.
struct TempStore(std::path::PathBuf);

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let dir =
            std::env::temp_dir().join(format!("valley-harness-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempStore(dir)
    }

    fn open(&self) -> ResultStore {
        ResultStore::open(&self.0).expect("store opens")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn small_spec() -> SweepSpec {
    SweepSpec::new(
        &[Benchmark::Sp, Benchmark::Mt],
        &[SchemeKind::Base, SchemeKind::Pae],
        Scale::Test,
    )
}

#[test]
fn second_sweep_is_all_cache_hits_with_identical_results() {
    let tmp = TempStore::new("resume");
    let store = tmp.open();
    let spec = small_spec();

    let first = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    assert_eq!(first.jobs.len(), 4);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.executed, 4);

    let second = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    assert_eq!(second.cache_hits, 4);
    assert_eq!(second.executed, 0);
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.report, b.report, "{}: cached result differs", a.spec);
        assert!(b.cached);
    }
}

#[test]
fn store_survives_reopen_and_serves_across_sweep_shapes() {
    let tmp = TempStore::new("reopen");
    {
        let store = tmp.open();
        run_sweep(&small_spec(), &store, &SweepOptions::default()).unwrap();
    }
    // A different sweep over a superset reuses the overlapping jobs.
    let store = tmp.open();
    assert_eq!(store.len(), 4);
    let bigger = SweepSpec::new(
        &[Benchmark::Sp, Benchmark::Mt, Benchmark::Lu],
        &[SchemeKind::Base, SchemeKind::Pae],
        Scale::Test,
    );
    let out = run_sweep(&bigger, &store, &SweepOptions::default()).unwrap();
    assert_eq!(out.jobs.len(), 6);
    assert_eq!(out.cache_hits, 4);
    assert_eq!(out.executed, 2);
}

#[test]
fn results_are_deterministic_across_worker_counts() {
    let tmp1 = TempStore::new("det1");
    let tmp8 = TempStore::new("det8");
    let spec = small_spec();
    let serial = run_sweep(
        &spec,
        &tmp1.open(),
        &SweepOptions {
            workers: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    let parallel = run_sweep(
        &spec,
        &tmp8.open(),
        &SweepOptions {
            workers: Some(8),
            ..Default::default()
        },
    )
    .unwrap();
    for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(a.spec, b.spec, "job order depends on worker count");
        assert_eq!(
            a.report, b.report,
            "{}: report depends on worker count",
            a.spec
        );
    }
}

#[test]
fn batched_sweep_matches_sequential_results_and_store_state() {
    // Batch width is pure scheduling: a batched sweep must produce the
    // same reports under the same job keys as a sequential one, and a
    // later unbatched sweep over the batched store must be all cache
    // hits (the keys deliberately carry no batch width).
    let seq_tmp = TempStore::new("batch-seq");
    let bat_tmp = TempStore::new("batch-bat");
    // Two configs and seeds so the batcher has to group: same-machine
    // jobs batch together, different machines never share a batch.
    let spec = SweepSpec::new(
        &[Benchmark::Sp, Benchmark::Mt, Benchmark::Mum],
        &[SchemeKind::Base, SchemeKind::Pae],
        Scale::Test,
    )
    .with_seeds(&[1, 2])
    .with_configs(&[ConfigId::Table1, ConfigId::Stacked]);
    let sequential = run_sweep(
        &spec,
        &seq_tmp.open(),
        &SweepOptions {
            batch: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let bat_store = bat_tmp.open();
    for width in [2, 3, 5] {
        let batched = run_sweep(
            &spec,
            &bat_store,
            &SweepOptions {
                batch: width,
                force: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(batched.executed, sequential.jobs.len());
        for (a, b) in sequential.jobs.iter().zip(&batched.jobs) {
            assert_eq!(a.spec, b.spec, "job order depends on batching");
            assert_eq!(
                a.report.results_json(),
                b.report.results_json(),
                "{}: batch({width}) report differs from sequential",
                a.spec
            );
        }
    }
    // Resume from the batched store without batching: all hits.
    let resumed = run_sweep(
        &spec,
        &bat_store,
        &SweepOptions {
            batch: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.cache_hits, sequential.jobs.len());
    assert_eq!(resumed.executed, 0);
}

#[test]
fn scales_do_not_shadow_each_other_in_the_store() {
    let tmp = TempStore::new("scales");
    let store = tmp.open();
    let job = |scale| JobSpec {
        bench: Benchmark::Sp,
        scheme: SchemeKind::Base,
        seed: DEFAULT_SEED,
        scale,
        config: ConfigId::Table1,
    };
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
    run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    assert!(store.get(&job(Scale::Test)).is_some());
    assert!(store.get(&job(Scale::Small)).is_none());
    assert!(store.get(&job(Scale::Ref)).is_none());
}

#[test]
fn force_reexecutes_but_preserves_determinism() {
    let tmp = TempStore::new("force");
    let store = tmp.open();
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Pae], Scale::Test);
    let first = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    let forced = run_sweep(
        &spec,
        &store,
        &SweepOptions {
            force: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(forced.cache_hits, 0);
    assert_eq!(forced.jobs[0].report, first.jobs[0].report);
}

#[test]
fn unknown_store_version_fails_loudly() {
    let tmp = TempStore::new("version");
    {
        let store = tmp.open();
        run_sweep(
            &SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test),
            &store,
            &SweepOptions::default(),
        )
        .unwrap();
    }
    // Rewrite the populated shard's record to claim a future version.
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    std::fs::write(&shard, text.replacen("{\"v\":2,", "{\"v\":99,", 1)).unwrap();
    let err = ResultStore::open(&tmp.0).unwrap_err();
    assert!(err.to_string().contains("version 99"), "wrong error: {err}");
}

#[test]
fn truncated_final_line_is_dropped_not_fatal() {
    let tmp = TempStore::new("truncated");
    {
        let store = tmp.open();
        run_sweep(
            &SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test),
            &store,
            &SweepOptions::default(),
        )
        .unwrap();
    }
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    // Simulate a crash mid-append: keep half of the (only) record.
    std::fs::write(&shard, &text[..text.len() / 2]).unwrap();
    let store = ResultStore::open(&tmp.0).unwrap();
    assert_eq!(store.len(), 0, "truncated record must not be served");
    // And the sweep simply re-runs the job.
    let out = run_sweep(
        &SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test),
        &store,
        &SweepOptions::default(),
    )
    .unwrap();
    assert_eq!(out.executed, 1);
}

#[test]
fn corrupt_interior_line_is_fatal() {
    let tmp = TempStore::new("corrupt");
    {
        let store = tmp.open();
        // Two Test-scale jobs whose keys land in the same shard would be
        // ideal, but shard placement is hash-driven; instead append the
        // garbage line *before* a valid record in the same file.
        run_sweep(
            &SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test),
            &store,
            &SweepOptions::default(),
        )
        .unwrap();
    }
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    std::fs::write(&shard, format!("this is not json\n{text}")).unwrap();
    let err = ResultStore::open(&tmp.0).unwrap_err();
    assert!(err.to_string().contains("line 1"), "wrong error: {err}");
}

#[test]
fn interior_truncated_line_is_fatal() {
    // A line truncated by a crash is only tolerable as the *final*
    // unterminated line; the same fragment in the interior of a shard
    // (i.e. followed by more records) is real corruption and must fail
    // the open loudly, naming the line.
    let tmp = TempStore::new("interior-trunc");
    {
        let store = tmp.open();
        run_sweep(
            &SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test),
            &store,
            &SweepOptions::default(),
        )
        .unwrap();
    }
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    let record = text.trim_end();
    let half = &record[..record.len() / 2];
    // Shard layout: [truncated fragment]\n[valid record]\n — terminated.
    std::fs::write(&shard, format!("{half}\n{record}\n")).unwrap();
    let err = ResultStore::open(&tmp.0).unwrap_err();
    assert!(err.to_string().contains("line 1"), "wrong error: {err}");

    // The same fragment as the final line but *newline-terminated* is
    // interior-equivalent (the append that wrote the newline finished),
    // so it must also be fatal.
    std::fs::write(&shard, format!("{record}\n{half}\n")).unwrap();
    let err = ResultStore::open(&tmp.0).unwrap_err();
    assert!(err.to_string().contains("line 2"), "wrong error: {err}");
}

#[test]
fn truncated_tail_is_cut_so_later_appends_cannot_weld() {
    // Regression: `open` used to drop a truncated final line from the
    // index but leave it in the file. The next append then concatenated
    // a fresh record onto the fragment — one permanently corrupt
    // interior line that failed every later open.
    let tmp = TempStore::new("weld");
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
    {
        let store = tmp.open();
        run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    }
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    std::fs::write(&shard, &text[..text.len() / 2]).unwrap();

    // Open drops the fragment from the file itself...
    {
        let store = tmp.open();
        assert_eq!(store.len(), 0);
        assert_eq!(
            std::fs::metadata(&shard).unwrap().len(),
            0,
            "the partial line must be truncated from disk"
        );
        // ...so the re-run's append starts on a fresh line.
        run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    }
    // And the store keeps opening cleanly afterwards.
    let store = tmp.open();
    assert_eq!(store.len(), 1);
}

#[test]
fn gc_compacts_force_duplicates() {
    let tmp = TempStore::new("gc-dups");
    let spec = SweepSpec::new(
        &[Benchmark::Sp, Benchmark::Mt],
        &[SchemeKind::Base],
        Scale::Test,
    );
    let store = tmp.open();
    run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    let forced = SweepOptions {
        force: true,
        ..Default::default()
    };
    run_sweep(&spec, &store, &forced).unwrap();
    run_sweep(&spec, &store, &forced).unwrap();
    drop(store);

    let scan = valley_harness::scan(&tmp.0).unwrap();
    assert_eq!(scan.records.len(), 2);
    assert_eq!(scan.duplicates, 4, "two forced re-runs leave two dups each");

    let report = valley_harness::gc(&tmp.0).unwrap();
    assert_eq!(report.kept, 2);
    assert_eq!(report.duplicates_removed, 4);
    assert_eq!(report.orphans_removed, 0);
    assert!(report.bytes_after < report.bytes_before);

    // The compacted store serves the same (newest) results.
    let store = tmp.open();
    assert_eq!(store.len(), 2);
    let again = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    assert_eq!(again.cache_hits, 2);

    // A second gc is a no-op.
    let report = valley_harness::gc(&tmp.0).unwrap();
    assert_eq!(report.removed(), 0);
    assert_eq!(report.shards_rewritten, 0);
}

#[test]
fn gc_drops_orphaned_schema_records_and_truncated_tails() {
    let tmp = TempStore::new("gc-orphans");
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
    {
        let store = tmp.open();
        run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    }
    // Forge an orphan (a well-formed record whose stored hash no longer
    // matches its coordinates — the signature of a schema change) and a
    // truncated tail in the same shard.
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    let record = text.trim_end();
    let orphan = record.replacen("\"hash\":\"", "\"hash\":\"feed", 1);
    let half = &record[..record.len() / 2];
    std::fs::write(&shard, format!("{orphan}\n{record}\n{half}")).unwrap();

    // Strict open refuses the orphan; the lenient scan counts it.
    assert!(ResultStore::open(&tmp.0).is_err());
    let scan = valley_harness::scan(&tmp.0).unwrap();
    assert_eq!(
        (scan.records.len(), scan.orphans, scan.truncated),
        (1, 1, 1)
    );

    let report = valley_harness::gc(&tmp.0).unwrap();
    assert_eq!(report.kept, 1);
    assert_eq!(report.orphans_removed, 1);
    assert_eq!(report.truncated_removed, 1);

    // After compaction the strict open works again and the surviving
    // record is served.
    let store = tmp.open();
    assert_eq!(store.len(), 1);
    let out = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    assert_eq!(out.cache_hits, 1);
}

#[test]
fn gc_removes_cross_shard_duplicates_scan_reports() {
    // Same-key records normally share a shard, but a hand-edited or
    // partially restored store may not; `scan` counts such duplicates,
    // so `gc` must be able to remove them (keeping the globally newest)
    // or the two would disagree about the same store forever.
    let tmp = TempStore::new("gc-cross-shard");
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
    {
        let store = tmp.open();
        run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    }
    let shard = populated_shard(&tmp.0);
    let record = std::fs::read_to_string(&shard).unwrap();
    // Copy the record into a different (wrong, but parseable) shard.
    let other = if shard.ends_with("shard-00.jsonl") {
        tmp.0.join("shard-01.jsonl")
    } else {
        tmp.0.join("shard-00.jsonl")
    };
    std::fs::write(&other, &record).unwrap();

    let scan = valley_harness::scan(&tmp.0).unwrap();
    assert_eq!((scan.records.len(), scan.duplicates), (1, 1));

    let report = valley_harness::gc(&tmp.0).unwrap();
    assert_eq!(report.kept, 1);
    assert_eq!(report.duplicates_removed, 1);

    // After gc, scan and store agree the store is clean.
    let scan = valley_harness::scan(&tmp.0).unwrap();
    assert_eq!((scan.records.len(), scan.duplicates), (1, 0));
    let store = tmp.open();
    assert_eq!(store.len(), 1);
}

#[test]
fn max_shard_bytes_auto_gcs_on_open() {
    let tmp = TempStore::new("auto-gc");
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
    {
        let store = tmp.open();
        run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
        // Pile up `--force` duplicates — the removable mass auto-gc
        // exists to shed.
        let forced = SweepOptions {
            force: true,
            ..Default::default()
        };
        for _ in 0..3 {
            run_sweep(&spec, &store, &forced).unwrap();
        }
    }
    let shard = populated_shard(&tmp.0);
    let bloated = std::fs::metadata(&shard).unwrap().len();
    // Records differ slightly in length (the serialized `wall_ms` float
    // has a run-dependent digit count), so derive the trigger threshold
    // from the total only: half the bloated size is comfortably above
    // one surviving record (~a quarter, ± float digits) and below the
    // four-record pile.
    let limit = bloated / 2;

    // A generous limit leaves the store untouched.
    {
        let store = ResultStore::open_with_options(
            &tmp.0,
            StoreOptions {
                max_shard_bytes: Some(bloated + 1),
            },
        )
        .unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(std::fs::metadata(&shard).unwrap().len(), bloated);
    }

    // A limit under the bloat triggers compaction at open; the surviving
    // record is the newest, exactly as a plain `gc` would keep.
    {
        let store = ResultStore::open_with_options(
            &tmp.0,
            StoreOptions {
                max_shard_bytes: Some(limit),
            },
        )
        .unwrap();
        assert_eq!(store.len(), 1, "auto-gc must not drop live results");
        let after = std::fs::metadata(&shard).unwrap().len();
        assert!(
            after <= limit,
            "auto-gc left {after} bytes (> limit {limit})"
        );
        let out = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
        assert_eq!(out.cache_hits, 1, "compacted store still serves the job");
    }

    // A limit below even the live data compacts what it can, warns, and
    // still opens (live results are never sacrificed to the threshold).
    {
        let store = ResultStore::open_with_options(
            &tmp.0,
            StoreOptions {
                max_shard_bytes: Some(8),
            },
        )
        .unwrap();
        assert_eq!(store.len(), 1);
    }
}

#[test]
fn max_shard_bytes_auto_gc_keeps_truncated_tail_semantics() {
    // Auto-gc rides the same compaction as `valley gc`; a truncated tail
    // (crash mid-append) must still be dropped cleanly — alongside the
    // existing truncated-tail tests above — and interior corruption must
    // still fail loudly even when the limit triggers.
    let tmp = TempStore::new("auto-gc-trunc");
    let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
    {
        let store = tmp.open();
        run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
    }
    let shard = populated_shard(&tmp.0);
    let text = std::fs::read_to_string(&shard).unwrap();
    let record = text.trim_end();
    let half = &record[..record.len() / 2];
    std::fs::write(&shard, format!("{record}\n{half}")).unwrap();

    let store = ResultStore::open_with_options(
        &tmp.0,
        StoreOptions {
            max_shard_bytes: Some(1),
        },
    )
    .unwrap();
    assert_eq!(store.len(), 1);
    let after = std::fs::read_to_string(&shard).unwrap();
    assert!(
        after.ends_with('\n') && after.lines().count() == 1,
        "auto-gc must cut the truncated tail"
    );
    drop(store);

    // Interior garbage is real corruption: auto-gc must not paper over
    // it, whatever the limit says.
    std::fs::write(&shard, format!("{record}\nnot json at all\n{record}\n")).unwrap();
    let err = ResultStore::open_with_options(
        &tmp.0,
        StoreOptions {
            max_shard_bytes: Some(1),
        },
    );
    assert!(err.is_err(), "interior corruption must stay fatal");
}

fn populated_shard(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .expect("one shard is populated")
}
