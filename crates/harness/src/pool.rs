//! A std-only work-stealing thread pool for coarse simulation jobs.
//!
//! Each worker owns a deque seeded with a stripe of the job indices; it
//! pops work from its own front and, when empty, steals from the back of
//! the fullest other deque. Stealing matters here because jobs are wildly
//! uneven (a DRAM-saturated MUM run is ~10× an SP run): a static
//! partition would leave workers idle behind one slow stripe.
//!
//! Guarantees:
//!
//! * **Panic isolation** — a panicking job becomes an `Err` at its index;
//!   the worker that caught it keeps draining the queues.
//! * **Deterministic ordering** — results are addressed by job index, so
//!   the output is identical for any worker count or steal interleaving.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Progress notification for one finished job, delivered to the
/// `on_done` callback from the worker that ran it.
#[derive(Clone, Copy, Debug)]
pub struct JobDone<'a> {
    /// Index of the job in the submitted order.
    pub index: usize,
    /// `Err(panic message)` if the job panicked.
    pub error: Option<&'a str>,
    /// Wall time the job took.
    pub elapsed: Duration,
    /// Jobs finished so far (including this one).
    pub completed: usize,
    /// Total jobs submitted.
    pub total: usize,
    /// Worker that executed the job.
    pub worker: usize,
    /// Whether the job was stolen from another worker's deque.
    pub stolen: bool,
}

/// A sensible worker count for `jobs` independent jobs: all available
/// cores, but never more workers than jobs (and at least one).
pub fn default_workers(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs)
        .max(1)
}

/// Runs `total` jobs on `workers` threads with work stealing, returning
/// one result per job **in submission order** regardless of scheduling.
/// A job that panics yields `Err(message)` at its index.
pub fn run_jobs<T, F, C>(total: usize, workers: usize, run: F, on_done: C) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: Fn(JobDone<'_>) + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);

    // Striped initial distribution: job i starts in deque i % workers.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..total).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let completed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let completed = &completed;
            let run = &run;
            let on_done = &on_done;
            scope.spawn(move || {
                while let Some((job, stolen)) = next_job(deques, w) {
                    let start = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| run(job)))
                        .map_err(|panic| panic_message(panic.as_ref()));
                    let elapsed = start.elapsed();
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    on_done(JobDone {
                        index: job,
                        error: result.as_ref().err().map(String::as_str),
                        elapsed,
                        completed: done,
                        total,
                        worker: w,
                        stolen,
                    });
                    *slots[job].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was executed exactly once")
        })
        .collect()
}

/// Pops the next job for worker `w`: own deque front first, else steal
/// from the back of the fullest other deque.
fn next_job(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, bool)> {
    if let Some(job) = deques[w].lock().expect("deque poisoned").pop_front() {
        return Some((job, false));
    }
    loop {
        // Pick the currently fullest victim; re-check until every deque
        // is observed empty (a victim can drain between len() and lock).
        let victim = (0..deques.len())
            .filter(|&v| v != w)
            .map(|v| (deques[v].lock().expect("deque poisoned").len(), v))
            .max()?;
        if victim.0 == 0 {
            return None;
        }
        if let Some(job) = deques[victim.1].lock().expect("deque poisoned").pop_back() {
            return Some((job, true));
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|m| (*m).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let out = run_jobs(23, workers, |i| i * i, |_| {});
            let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_are_isolated_to_their_index() {
        let out = run_jobs(
            10,
            4,
            |i| {
                if i == 3 {
                    panic!("job {i} exploded");
                }
                i
            },
            |_| {},
        );
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(r.as_ref().unwrap_err(), "job 3 exploded");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Worker 0's stripe contains one long job; the short jobs behind
        // it must be stolen by the idle workers. With 2 workers and the
        // long job first in stripe 0, completion requires stealing.
        let stolen = AtomicUsize::new(0);
        let out = run_jobs(
            16,
            2,
            |i| {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(50));
                }
                i
            },
            |d| {
                if d.stolen {
                    stolen.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(out.len(), 16);
        assert!(
            stolen.load(Ordering::Relaxed) > 0,
            "no jobs were stolen from the blocked worker's deque"
        );
    }

    #[test]
    fn progress_reports_count_up_to_total() {
        let max_seen = AtomicUsize::new(0);
        run_jobs(
            7,
            3,
            |i| i,
            |d| {
                assert_eq!(d.total, 7);
                max_seen.fetch_max(d.completed, Ordering::Relaxed);
            },
        );
        assert_eq!(max_seen.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert!(run_jobs(0, 4, |i| i, |_| {}).is_empty());
        let one = run_jobs(1, 4, |i| i + 41, |_| {});
        assert_eq!(*one[0].as_ref().unwrap(), 41);
    }
}
