//! Sweep orchestration: expand a [`SweepSpec`], serve what the store
//! already has, run the rest on the work-stealing pool, persist every
//! fresh result, and hand back the full grid in deterministic order.

use crate::job::{execute_batch_timed, execute_job, JobSpec, SweepSpec, WallKind};
use crate::pool;
use crate::store::{ResultStore, StoreError};
use std::time::{Duration, Instant};
use valley_core::hash::FastMap;
use valley_sim::{Batching, SimReport};

/// Options controlling one sweep run.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker threads; `None` uses all available cores (capped at the
    /// job count).
    pub workers: Option<usize>,
    /// Print per-job progress and a summary to stderr.
    pub verbose: bool,
    /// Re-run every job even if a stored result exists (the fresh result
    /// overwrites the stored one).
    pub force: bool,
    /// Batch width for the lockstep many-sim engine: pending jobs that
    /// share a machine (config, scale, scheme) run through one
    /// [`valley_sim::BatchSim`] in groups of up to this many lanes.
    /// `0` defers to the `VALLEY_SIM_BATCH` environment knob; a width
    /// of 1 (either way) keeps the per-job sequential path. Batch width
    /// is pure scheduling — per-lane results are bit-identical to
    /// unbatched runs — so it is deliberately not part of job keys.
    pub batch: usize,
}

/// One job's outcome within a sweep.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job.
    pub spec: JobSpec,
    /// Its report (from the store or freshly computed).
    pub report: SimReport,
    /// Wall time in milliseconds: the original execution time for cache
    /// hits, this run's execution time for misses.
    pub wall_ms: f64,
    /// How `wall_ms` was obtained (see [`WallKind`]): a genuine per-job
    /// measurement, an equal share of a lockstep batch's wall, or ~0 for
    /// a lane cloned from an identical one.
    pub wall: WallKind,
    /// Whether the result came from the store.
    pub cached: bool,
}

/// The result of a sweep: every job of the spec, in expansion order
/// (independent of worker count and steal interleaving).
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-job outcomes in [`SweepSpec::expand`] order.
    pub jobs: Vec<JobOutcome>,
    /// Jobs served from the store.
    pub cache_hits: usize,
    /// Jobs executed by this run.
    pub executed: usize,
    /// Wall time of the whole sweep (lookup + execution + persistence).
    pub wall: Duration,
}

impl SweepOutcome {
    /// Fraction of jobs served from the store, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs.len() as f64
        }
    }

    /// The report for one (already-expanded) job spec, if present.
    pub fn report_of(&self, spec: &JobSpec) -> Option<&SimReport> {
        self.jobs
            .iter()
            .find(|j| j.spec == *spec)
            .map(|j| &j.report)
    }
}

/// Why one job of a sweep failed — machine-readable, so a consumer (the
/// distributed-fabric coordinator re-leasing a crashed job, `valley
/// status` attaching a reason) can act on the kind without parsing the
/// human message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The simulation panicked; the pool's per-job isolation caught it.
    Panic,
    /// The simulation finished but the result store rejected the write.
    StoreWrite,
}

impl FailureKind {
    /// Stable identifier, used on the fabric wire and in status output.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::StoreWrite => "store-write",
        }
    }

    /// Parses a [`FailureKind::name`] string.
    pub fn parse(s: &str) -> Option<FailureKind> {
        match s {
            "panic" => Some(FailureKind::Panic),
            "store-write" => Some(FailureKind::StoreWrite),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One job's structured failure: which job, what kind of failure, and
/// the human-readable detail (the panic payload or store error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFailure {
    /// The job that failed.
    pub spec: JobSpec,
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic message / store error text).
    pub message: String,
}

impl JobFailure {
    /// A panic-isolation failure.
    pub fn panic(spec: JobSpec, message: impl Into<String>) -> JobFailure {
        JobFailure {
            spec,
            kind: FailureKind::Panic,
            message: message.into(),
        }
    }

    /// A store-write failure.
    pub fn store_write(spec: JobSpec, message: impl Into<String>) -> JobFailure {
        JobFailure {
            spec,
            kind: FailureKind::StoreWrite,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.spec, self.kind, self.message)
    }
}

/// Errors from running a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// One or more jobs failed; every failure is listed with a
    /// structured [`JobFailure`]. The survivors were still executed and
    /// persisted, so a re-run only retries the failures.
    Failures(Vec<JobFailure>),
    /// The result store rejected a read or write.
    Store(StoreError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Failures(failures) => {
                writeln!(f, "{} sweep job(s) failed:", failures.len())?;
                for failure in failures {
                    writeln!(f, "  {failure}")?;
                }
                Ok(())
            }
            SweepError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

/// Persists one freshly computed report and slots its outcome; a store
/// write error becomes that job's failure.
#[allow(clippy::too_many_arguments)]
fn record_fresh(
    store: &ResultStore,
    opts: &SweepOptions,
    idx: usize,
    report: SimReport,
    wall_ms: f64,
    wall: WallKind,
    jobs: &[JobSpec],
    outcomes: &mut [Option<JobOutcome>],
    failures: &mut Vec<JobFailure>,
) {
    let job = jobs[idx];
    if let Err(e) = store.put(&job, &report, wall_ms, wall) {
        failures.push(JobFailure::store_write(job, e.to_string()));
        return;
    }
    if opts.verbose && report.truncated {
        eprintln!("  WARNING: {job} hit the cycle limit");
    }
    outcomes[idx] = Some(JobOutcome {
        spec: job,
        report,
        wall_ms,
        wall,
        cached: false,
    });
}

/// Runs a sweep against a store: cache hits are served without
/// simulation, misses run in parallel with per-job panic isolation
/// (per-batch when batching via [`SweepOptions::batch`]), and every
/// fresh result is persisted before the function returns.
pub fn run_sweep(
    spec: &SweepSpec,
    store: &ResultStore,
    opts: &SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    let start = Instant::now();
    let jobs = spec.expand();

    // Phase 1: serve from the store.
    let mut outcomes: Vec<Option<JobOutcome>> = Vec::with_capacity(jobs.len());
    let mut todo: Vec<usize> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match (!opts.force).then(|| store.get(job)).flatten() {
            Some(stored) => outcomes.push(Some(JobOutcome {
                spec: *job,
                report: stored.report,
                wall_ms: stored.wall_ms,
                wall: stored.wall,
                cached: true,
            })),
            None => {
                outcomes.push(None);
                todo.push(i);
            }
        }
    }
    let cache_hits = jobs.len() - todo.len();

    // Phase 2: execute the misses on the work-stealing pool — one pool
    // unit per job when unbatched, one per same-machine batch through
    // the lockstep engine when batching is on. Phase 3 persists and
    // assembles; failures are collected for a loud, full report (a
    // suite with holes would silently skew every figure). A store write
    // error becomes that job's failure rather than aborting the drain:
    // the remaining computed results still get persisted and every
    // failure is reported together.
    let width = if opts.batch == 0 {
        Batching::from_env().width()
    } else {
        opts.batch
    };
    let mut failures = Vec::new();
    if width <= 1 {
        let workers = opts
            .workers
            .unwrap_or_else(|| pool::default_workers(todo.len()));
        if opts.verbose && !todo.is_empty() {
            eprintln!(
                "sweep: {} jobs, {} cached, running {} on {} worker(s)",
                jobs.len(),
                cache_hits,
                todo.len(),
                workers.clamp(1, todo.len()),
            );
        }
        let results = pool::run_jobs(
            todo.len(),
            workers,
            |k| {
                let job = jobs[todo[k]];
                let t = Instant::now();
                let report = execute_job(&job);
                (report, t.elapsed())
            },
            |done| {
                if opts.verbose {
                    let job = &jobs[todo[done.index]];
                    let stolen = if done.stolen { ", stolen" } else { "" };
                    match done.error {
                        None => eprintln!(
                            "  [{}/{}] {job}: {:.2?} (worker {}{stolen})",
                            done.completed, done.total, done.elapsed, done.worker
                        ),
                        Some(msg) => eprintln!(
                            "  [{}/{}] {job}: PANIC after {:.2?}: {msg}",
                            done.completed, done.total, done.elapsed
                        ),
                    }
                }
            },
        );
        for (k, result) in results.into_iter().enumerate() {
            let idx = todo[k];
            match result {
                Ok((report, elapsed)) => {
                    let wall_ms = elapsed.as_secs_f64() * 1e3;
                    record_fresh(
                        store,
                        opts,
                        idx,
                        report,
                        wall_ms,
                        WallKind::Measured,
                        &jobs,
                        &mut outcomes,
                        &mut failures,
                    );
                }
                Err(msg) => failures.push(JobFailure::panic(jobs[idx], msg)),
            }
        }
    } else {
        // Group the pending jobs into same-machine batches: an
        // order-preserving group-by on (config, scale, scheme), each
        // group chunked to at most `width` lanes. Benchmarks and seeds
        // may mix freely within a batch — only the clocks must agree,
        // and those are fixed by the config.
        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut open: FastMap<
            (
                crate::job::ConfigId,
                valley_workloads::Scale,
                valley_core::SchemeKind,
            ),
            usize,
        > = FastMap::default();
        for &idx in &todo {
            let job = &jobs[idx];
            let key = (job.config, job.scale, job.scheme);
            match open.get(&key) {
                Some(&b) if batches[b].len() < width => batches[b].push(idx),
                _ => {
                    open.insert(key, batches.len());
                    batches.push(vec![idx]);
                }
            }
        }
        let workers = opts
            .workers
            .unwrap_or_else(|| pool::default_workers(batches.len()));
        if opts.verbose && !todo.is_empty() {
            eprintln!(
                "sweep: {} jobs, {} cached, running {} in {} batch(es) of <= {} on {} worker(s)",
                jobs.len(),
                cache_hits,
                todo.len(),
                batches.len(),
                width,
                workers.clamp(1, batches.len()),
            );
        }
        let results = pool::run_jobs(
            batches.len(),
            workers,
            |b| {
                let specs: Vec<JobSpec> = batches[b].iter().map(|&i| jobs[i]).collect();
                // Wall attribution happens inside: the executor knows
                // which lanes it measured, averaged or cloned.
                execute_batch_timed(&specs)
            },
            |done| {
                if opts.verbose {
                    let batch = &batches[done.index];
                    let lead = &jobs[batch[0]];
                    let stolen = if done.stolen { ", stolen" } else { "" };
                    match done.error {
                        None => eprintln!(
                            "  [{}/{}] batch x{} ({lead}, ...): {:.2?} (worker {}{stolen})",
                            done.completed,
                            done.total,
                            batch.len(),
                            done.elapsed,
                            done.worker
                        ),
                        Some(msg) => eprintln!(
                            "  [{}/{}] batch x{} ({lead}, ...): PANIC after {:.2?}: {msg}",
                            done.completed,
                            done.total,
                            batch.len(),
                            done.elapsed
                        ),
                    }
                }
            },
        );
        for (b, result) in results.into_iter().enumerate() {
            match result {
                Ok(lanes) => {
                    // A lane's individual wall is unobservable inside a
                    // lockstep batch; the executor attributes an equal
                    // share of the batch wall to each *unique* lane and
                    // flags it [`WallKind::Averaged`] (clones are ~0),
                    // so the stored record says what the number means.
                    for (&idx, lane) in batches[b].iter().zip(lanes) {
                        record_fresh(
                            store,
                            opts,
                            idx,
                            lane.report,
                            lane.wall_ms,
                            lane.wall,
                            &jobs,
                            &mut outcomes,
                            &mut failures,
                        );
                    }
                }
                Err(msg) => {
                    // The whole batch shares one panic: every lane in it
                    // needs a re-run, so every lane reports the failure.
                    for &idx in &batches[b] {
                        failures.push(JobFailure::panic(jobs[idx], format!("batched lane: {msg}")));
                    }
                }
            }
        }
    }
    if !failures.is_empty() {
        return Err(SweepError::Failures(failures));
    }

    let executed = jobs.len() - cache_hits;
    Ok(SweepOutcome {
        jobs: outcomes
            .into_iter()
            .map(|o| o.expect("every non-failed job has an outcome"))
            .collect(),
        cache_hits,
        executed,
        wall: start.elapsed(),
    })
}
