//! The job model: a [`SweepSpec`] expands the experiment grid
//! (benchmark × scheme × seed × scale × config) into deterministic,
//! content-hashed [`JobSpec`]s, and [`execute_job`] runs one of them.
//!
//! Every job has a canonical key string (see [`JobKey`]) that includes
//! the harness schema version; its FNV-1a hash addresses the result
//! store. Two jobs collide only if they are the same experiment, so a
//! stored result can be reused by any future sweep, figure or ablation
//! that asks for the same point of the grid.

use std::sync::Arc;
use valley_core::hash::FastMap;
use valley_core::{AddressMapper, DramAddressMap, GddrMap, SchemeKind, StackedMap};
use valley_sim::{BatchSim, GpuConfig, GpuSim, SimReport};
use valley_workloads::{Benchmark, Scale};

/// Version of the job-key schema. Bump when the canonical key format,
/// the simulator's observable semantics, or the stored record layout
/// changes incompatibly: old store entries then fail loudly on load
/// instead of silently serving stale results.
///
/// v2: stored reports gained the epoch-histogram engine diagnostics
/// (report schema v2), so v1 records no longer parse; run `valley gc`
/// to drop them and re-sweep.
pub const SCHEMA_VERSION: u32 = 2;

/// The BIM seed used for the headline results (the paper generates three
/// random BIMs per scheme and reports the best; Figure 19 shows the
/// spread).
pub const DEFAULT_SEED: u64 = 1;

/// Identifies the GPU/memory configuration a job runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConfigId {
    /// The paper's baseline GDDR5 GPU (Table I).
    Table1,
    /// The 3D-stacked memory configuration (Figure 18, rightmost group).
    Stacked,
    /// Table I with a different SM count (Figure 18's scaling sweep).
    Sms(u32),
}

impl ConfigId {
    /// Stable identifier used in job keys and CLI flags.
    pub fn name(self) -> String {
        match self {
            ConfigId::Table1 => "table1".to_string(),
            ConfigId::Stacked => "stacked".to_string(),
            ConfigId::Sms(n) => format!("sms{n}"),
        }
    }

    /// Parses a [`ConfigId::name`] string.
    pub fn parse(s: &str) -> Option<ConfigId> {
        match s {
            "table1" => Some(ConfigId::Table1),
            "stacked" => Some(ConfigId::Stacked),
            _ => {
                let n: u32 = s.strip_prefix("sms")?.parse().ok()?;
                (n > 0).then_some(ConfigId::Sms(n))
            }
        }
    }

    /// The simulator configuration this id denotes.
    pub fn gpu_config(self) -> GpuConfig {
        match self {
            ConfigId::Table1 => GpuConfig::table1(),
            ConfigId::Stacked => GpuConfig::stacked(),
            ConfigId::Sms(n) => GpuConfig::table1().with_sms(n as usize),
        }
    }

    /// Whether this configuration uses the 3D-stacked address map.
    pub fn is_stacked(self) -> bool {
        self == ConfigId::Stacked
    }
}

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// One point of the experiment grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// The workload.
    pub bench: Benchmark,
    /// The address-mapping scheme.
    pub scheme: SchemeKind,
    /// The BIM seed (ignored by the deterministic BASE/PM/RMP schemes,
    /// but still part of the key — keys describe the request, not the
    /// scheme's internals).
    pub seed: u64,
    /// The workload scale.
    pub scale: Scale,
    /// The GPU/memory configuration.
    pub config: ConfigId,
}

impl JobSpec {
    /// The job's content-addressed key.
    pub fn key(&self) -> JobKey {
        JobKey::of(self)
    }

    /// Short human-readable label for progress lines.
    pub fn label(&self) -> String {
        format!(
            "{}/{} s{} @{} {}",
            self.bench, self.scheme, self.seed, self.scale, self.config
        )
    }
}

impl std::fmt::Display for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The content-addressed identity of a job: a canonical key string (the
/// exact experiment coordinates plus [`SCHEMA_VERSION`]) and its 64-bit
/// FNV-1a hash, which addresses the store and selects the shard.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobKey {
    canonical: String,
    hash: u64,
}

impl JobKey {
    /// Builds the key of a job spec.
    pub fn of(spec: &JobSpec) -> JobKey {
        let canonical = format!(
            "schema={};bench={};scheme={};seed={};scale={};config={}",
            SCHEMA_VERSION,
            spec.bench.label(),
            spec.scheme.label(),
            spec.seed,
            spec.scale.name(),
            spec.config.name(),
        );
        let hash = fnv1a(canonical.as_bytes());
        JobKey { canonical, hash }
    }

    /// The canonical key string.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The hash in fixed-width hex (file-name and JSON friendly).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// Which of `shards` store shards this key lands in.
    pub fn shard(&self, shards: usize) -> usize {
        (self.hash % shards as u64) as usize
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sweep over the cross product of benchmarks × schemes × seeds ×
/// configs at one scale. Expansion order is deterministic (and
/// independent of how many workers later run the jobs): configs, then
/// benchmarks, then schemes, then seeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// The benchmarks to run.
    pub benches: Vec<Benchmark>,
    /// The mapping schemes to run.
    pub schemes: Vec<SchemeKind>,
    /// The BIM seeds to run (the paper uses best-of-3 for PAE/FAE/ALL).
    pub seeds: Vec<u64>,
    /// The workload scale.
    pub scale: Scale,
    /// The GPU/memory configurations.
    pub configs: Vec<ConfigId>,
}

impl SweepSpec {
    /// A single-seed, baseline-config sweep — the shape every figure
    /// consumes.
    pub fn new(benches: &[Benchmark], schemes: &[SchemeKind], scale: Scale) -> Self {
        SweepSpec {
            benches: benches.to_vec(),
            schemes: schemes.to_vec(),
            seeds: vec![DEFAULT_SEED],
            scale,
            configs: vec![ConfigId::Table1],
        }
    }

    /// Replaces the seed list (builder style).
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Replaces the config list (builder style).
    pub fn with_configs(mut self, configs: &[ConfigId]) -> Self {
        self.configs = configs.to_vec();
        self
    }

    /// Expands the grid into concrete jobs, deterministically ordered.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(
            self.configs.len() * self.benches.len() * self.schemes.len() * self.seeds.len(),
        );
        for &config in &self.configs {
            for &bench in &self.benches {
                for &scheme in &self.schemes {
                    for &seed in &self.seeds {
                        jobs.push(JobSpec {
                            bench,
                            scheme,
                            seed,
                            scale: self.scale,
                            config,
                        });
                    }
                }
            }
        }
        jobs
    }
}

/// Runs one job to completion and returns its report. This is the only
/// place the harness touches the simulator; everything above it deals in
/// keys and stored results.
pub fn execute_job(spec: &JobSpec) -> SimReport {
    let cfg = spec.config.gpu_config();
    let workload = Box::new(spec.bench.workload(spec.scale));
    if spec.config.is_stacked() {
        let map = StackedMap::baseline();
        let mapper = AddressMapper::build(spec.scheme, &map, spec.seed);
        GpuSim::new(cfg, mapper, map, workload).run()
    } else {
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(spec.scheme, &map, spec.seed);
        GpuSim::new(cfg, mapper, map, workload).run()
    }
}

/// How a result's `wall_ms` was obtained — stored with the record so
/// perf fingerprints (the bench gate, `valley status`) can tell genuine
/// measurements from batch-wall attributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WallKind {
    /// The job executed alone and was timed directly.
    Measured,
    /// The job ran as one lane of a lockstep batch: the batch wall was
    /// split evenly over the batch's *unique* simulations, so the value
    /// is an attribution, not a measurement.
    Averaged,
    /// The job's report was cloned from an identical lane (a
    /// deterministic scheme swept over seeds); its marginal cost is ~0
    /// and the stored value is 0.
    Cloned,
}

impl WallKind {
    /// Stable identifier used in stored records and wire messages.
    pub fn as_str(self) -> &'static str {
        match self {
            WallKind::Measured => "measured",
            WallKind::Averaged => "averaged",
            WallKind::Cloned => "cloned",
        }
    }

    /// Parses [`WallKind::as_str`].
    pub fn parse(s: &str) -> Option<WallKind> {
        match s {
            "measured" => Some(WallKind::Measured),
            "averaged" => Some(WallKind::Averaged),
            "cloned" => Some(WallKind::Cloned),
            _ => None,
        }
    }

    /// Whether the value is a genuine single-job measurement, usable as
    /// a perf fingerprint. Averaged and cloned walls describe scheduling
    /// economics, not simulation speed.
    pub fn is_measured(self) -> bool {
        self == WallKind::Measured
    }
}

/// One batched lane's outcome: the report plus the lane's wall-clock
/// attribution (see [`WallKind`]).
#[derive(Clone, Debug)]
pub struct LaneOutcome {
    /// The lane's simulation report.
    pub report: SimReport,
    /// Wall milliseconds attributed to this lane. Sums to the batch's
    /// measured wall across the lanes.
    pub wall_ms: f64,
    /// How `wall_ms` was obtained.
    pub wall: WallKind,
}

/// Runs a batch of same-machine jobs through the lockstep batched
/// engine ([`BatchSim`]) and returns their reports in `specs` order —
/// each bit-identical to what [`execute_job`] would have produced for
/// that spec alone. The lanes share one config and one address-map
/// allocation; batch width is pure scheduling and is deliberately not
/// part of any job key. See [`execute_batch_timed`] for the wall-clock
/// attribution.
pub fn execute_batch(specs: &[JobSpec]) -> Vec<SimReport> {
    execute_batch_timed(specs)
        .into_iter()
        .map(|o| o.report)
        .collect()
}

/// [`execute_batch`] with per-lane wall attribution.
///
/// Lanes that are the *same simulation* run once: BASE/PM/RMP build the
/// same BIM for every seed (the seed is part of the job key because keys
/// describe the request, but the deterministic schemes never read it),
/// so a multi-seed sweep slice collapses those lanes to one and clones
/// the report. This is where the batch engine wins big on multi-seed
/// groups — N seeds of a deterministic scheme cost one simulation.
///
/// Wall attribution is honest about what the engine can and cannot
/// measure: a lone job is [`WallKind::Measured`]; a collapsed group's
/// one executed lane is `Measured` and its clones are
/// [`WallKind::Cloned`] at ~0 cost; lockstep lanes interleave on one
/// clock, so each unique simulation gets an equal share of the batch
/// wall flagged [`WallKind::Averaged`]. The shares always sum to the
/// measured batch wall.
///
/// All specs must share the same [`ConfigId`] (the sweep batcher groups
/// on (config, scale, scheme)); [`BatchSim::new`] enforces the clock
/// agreement that actually matters.
pub fn execute_batch_timed(specs: &[JobSpec]) -> Vec<LaneOutcome> {
    if specs.len() == 1 {
        let start = std::time::Instant::now();
        let report = execute_job(&specs[0]);
        return vec![LaneOutcome {
            report,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            wall: WallKind::Measured,
        }];
    }
    debug_assert!(
        specs.iter().all(|s| s.config == specs[0].config),
        "batched jobs must share a machine configuration"
    );
    // Seed only reaches the simulation through the randomized schemes'
    // BIM construction; two lanes agreeing on everything else are
    // identical runs.
    let identity = |s: &JobSpec| {
        let effective_seed = if s.scheme.is_randomized() { s.seed } else { 0 };
        (s.bench, s.scheme, effective_seed, s.scale, s.config)
    };
    let mut seen: FastMap<_, usize> = FastMap::default();
    let mut unique: Vec<&JobSpec> = Vec::new();
    let lane_of: Vec<usize> = specs
        .iter()
        .map(|s| {
            *seen.entry(identity(s)).or_insert_with(|| {
                unique.push(s);
                unique.len() - 1
            })
        })
        .collect();
    if unique.len() == 1 {
        let start = std::time::Instant::now();
        let report = execute_job(unique[0]);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        return lane_of
            .iter()
            .enumerate()
            .map(|(i, _)| LaneOutcome {
                report: report.clone(),
                wall_ms: if i == 0 { wall_ms } else { 0.0 },
                wall: if i == 0 {
                    WallKind::Measured
                } else {
                    WallKind::Cloned
                },
            })
            .collect();
    }
    let cfg = Arc::new(specs[0].config.gpu_config());
    let map: Arc<dyn DramAddressMap + Send + Sync> = if specs[0].config.is_stacked() {
        Arc::new(StackedMap::baseline())
    } else {
        Arc::new(GddrMap::baseline())
    };
    let sims = unique
        .iter()
        .map(|spec| {
            let mapper = AddressMapper::build(spec.scheme, &*map, spec.seed);
            let workload = Box::new(spec.bench.workload(spec.scale));
            GpuSim::with_shared(Arc::clone(&cfg), mapper, Arc::clone(&map), workload)
        })
        .collect();
    let start = std::time::Instant::now();
    let reports = BatchSim::new(sims).run();
    let share_ms = start.elapsed().as_secs_f64() * 1e3 / unique.len() as f64;
    let mut attributed: Vec<bool> = vec![false; unique.len()];
    lane_of
        .into_iter()
        .map(|l| {
            let first = !attributed[l];
            attributed[l] = true;
            LaneOutcome {
                report: reports[l].clone(),
                wall_ms: if first { share_ms } else { 0.0 },
                wall: if first {
                    WallKind::Averaged
                } else {
                    WallKind::Cloned
                },
            }
        })
        .collect()
}

/// Parses a scheme label (case-insensitive) — the inverse of
/// [`SchemeKind::label`].
pub fn parse_scheme(s: &str) -> Option<SchemeKind> {
    SchemeKind::ALL_SCHEMES
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            bench: Benchmark::Mt,
            scheme: SchemeKind::Pae,
            seed: 1,
            scale: Scale::Test,
            config: ConfigId::Table1,
        }
    }

    #[test]
    fn keys_are_deterministic_and_canonical() {
        let k1 = spec().key();
        let k2 = spec().key();
        assert_eq!(k1, k2);
        assert_eq!(
            k1.canonical(),
            format!("schema={SCHEMA_VERSION};bench=MT;scheme=PAE;seed=1;scale=test;config=table1")
        );
        assert_eq!(k1.hash_hex().len(), 16);
        assert!(k1.shard(16) < 16);
    }

    #[test]
    fn keys_separate_every_grid_axis() {
        let base = spec();
        let variants = [
            JobSpec {
                bench: Benchmark::Lu,
                ..base
            },
            JobSpec {
                scheme: SchemeKind::Base,
                ..base
            },
            JobSpec { seed: 2, ..base },
            JobSpec {
                scale: Scale::Ref,
                ..base
            },
            JobSpec {
                config: ConfigId::Stacked,
                ..base
            },
            JobSpec {
                config: ConfigId::Sms(24),
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.key(), base.key(), "{v}");
            assert_ne!(v.key().hash(), base.key().hash(), "{v}");
        }
    }

    #[test]
    fn full_grid_has_no_hash_collisions() {
        use std::collections::HashMap;
        let spec = SweepSpec {
            benches: Benchmark::ALL.to_vec(),
            schemes: SchemeKind::ALL_SCHEMES.to_vec(),
            seeds: vec![1, 2, 3],
            scale: Scale::Ref,
            configs: vec![ConfigId::Table1, ConfigId::Stacked, ConfigId::Sms(24)],
        };
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 16 * 6 * 3 * 3);
        let mut seen: HashMap<u64, String> = HashMap::new();
        for j in jobs {
            let k = j.key();
            if let Some(prev) = seen.insert(k.hash(), k.canonical().to_string()) {
                panic!("hash collision: {prev} vs {}", k.canonical());
            }
        }
    }

    #[test]
    fn expansion_order_is_deterministic() {
        let s = SweepSpec::new(
            &[Benchmark::Mt, Benchmark::Sp],
            &[SchemeKind::Base, SchemeKind::Pae],
            Scale::Test,
        );
        let jobs = s.expand();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].bench, Benchmark::Mt);
        assert_eq!(jobs[0].scheme, SchemeKind::Base);
        assert_eq!(jobs[1].scheme, SchemeKind::Pae);
        assert_eq!(jobs[2].bench, Benchmark::Sp);
        assert_eq!(s.expand(), jobs);
    }

    #[test]
    fn config_names_round_trip() {
        for c in [ConfigId::Table1, ConfigId::Stacked, ConfigId::Sms(24)] {
            assert_eq!(ConfigId::parse(&c.name()), Some(c));
        }
        assert_eq!(ConfigId::parse("sms0"), None);
        assert_eq!(ConfigId::parse("nope"), None);
        assert_eq!(ConfigId::Sms(48).gpu_config().num_sms, 48);
    }

    #[test]
    fn scheme_labels_parse() {
        for k in SchemeKind::ALL_SCHEMES {
            assert_eq!(parse_scheme(k.label()), Some(k));
            assert_eq!(parse_scheme(&k.label().to_lowercase()), Some(k));
        }
        assert_eq!(parse_scheme("XYZ"), None);
    }
}
