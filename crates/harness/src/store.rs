//! The persistent, content-addressed result store.
//!
//! Results live under a directory (by default `results/`) as 16 JSON-
//! lines shard files, `shard-00.jsonl` … `shard-15.jsonl`, selected by
//! the job-key hash. Each line is one self-describing record:
//!
//! ```json
//! {"v":2,"hash":"9f3c…","bench":"MT","scheme":"PAE","seed":1,
//!  "scale":"ref","config":"table1","wall_ms":139.4,"wall":"measured",
//!  "report":{…}}
//! ```
//!
//! Appends are atomic per shard (a mutex per shard file — writers on
//! different shards never contend), so a sweep can pour results in from
//! every worker thread. On open, all shards are read into an in-memory
//! index; a re-run sweep then skips every job whose key is already
//! present (*resume*), and figure regeneration is a pure cache read.
//!
//! Failure policy — **loud**: a record with an unknown store version, a
//! report with a mismatched schema version, a hash that does not match
//! its own coordinates (the canonical key format changed), or corrupt
//! JSON anywhere but the final line of a shard all fail `open` with a
//! precise message. The one tolerated defect is a truncated *final*
//! line, the signature of a run killed mid-append; it is dropped with a
//! warning — and **physically truncated from the shard file**, so a
//! later append cannot weld a fresh record onto the partial line and
//! corrupt both permanently — and the job simply re-runs.
//!
//! Two append-only defects accumulate instead of failing: `--force`
//! re-runs append duplicate records for the same [`JobKey`] (only the
//! last wins on load), and a [`crate::job::SCHEMA_VERSION`] bump orphans
//! every stored record. [`scan`] reports both leniently and [`gc`]
//! compacts them away; `valley status` / `valley gc` expose them.

use crate::job::{parse_scheme, ConfigId, JobKey, JobSpec, WallKind};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use valley_core::hash::FastMap;
use valley_sim::json::{self, Json};
use valley_sim::SimReport;
use valley_workloads::{Benchmark, Scale};

/// Version of the store record layout (independent of the report schema
/// nested inside it). v2 added the `wall` attribution field (see
/// [`WallKind`]): v1 records silently mixed measured walls with batch
/// averages, so they are orphaned rather than reinterpreted.
pub const STORE_VERSION: u32 = 2;

/// Number of shard files. Also the modulus of [`JobKey::shard`].
pub const NUM_SHARDS: usize = 16;

/// One stored result: the job's coordinates, its report, and how long
/// the simulation took when it actually ran.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredResult {
    /// The job this result answers.
    pub spec: JobSpec,
    /// The simulation report.
    pub report: SimReport,
    /// Wall time of the original execution, in milliseconds.
    pub wall_ms: f64,
    /// How `wall_ms` was obtained (measured alone, averaged over a
    /// lockstep batch, or ~0 for a cloned duplicate lane).
    pub wall: WallKind,
}

/// Errors from opening or writing the store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A shard contains an invalid record; the message names the file,
    /// line and cause.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "result store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "result store is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The content-addressed result store. Cheap to share by reference
/// across sweep workers; all methods take `&self`.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    index: Mutex<FastMap<u64, StoredResult>>,
    shard_locks: Vec<Mutex<()>>,
}

/// Options for [`ResultStore::open_with_options`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreOptions {
    /// Auto-gc threshold: when any shard file exceeds this many bytes at
    /// open, the store is compacted ([`gc`]) before loading — `--force`
    /// duplicates, orphaned-schema records and truncated tails are the
    /// only removable mass, so live results are never dropped. A shard
    /// still over the limit after compaction is reported with a warning
    /// (its bytes are live data) but does not fail the open.
    pub max_shard_bytes: Option<u64>,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir` and loads its index.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultStore, StoreError> {
        Self::open_with_options(dir, StoreOptions::default())
    }

    /// [`ResultStore::open`] with explicit [`StoreOptions`] (the
    /// `--max-shard-bytes` auto-gc threshold).
    pub fn open_with_options(
        dir: impl Into<PathBuf>,
        opts: StoreOptions,
    ) -> Result<ResultStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if let Some(limit) = opts.max_shard_bytes {
            let oversized = |dir: &Path| {
                (0..NUM_SHARDS)
                    .any(|s| std::fs::metadata(shard_path(dir, s)).map_or(0, |m| m.len()) > limit)
            };
            if oversized(&dir) {
                let report = gc(&dir)?;
                eprintln!(
                    "note: store shard over {limit} bytes triggered auto-gc: \
                     {} record(s) removed, {} -> {} bytes",
                    report.removed(),
                    report.bytes_before,
                    report.bytes_after
                );
                if oversized(&dir) {
                    eprintln!(
                        "warning: a shard still exceeds {limit} bytes after gc; \
                         the excess is live results (raise the limit or prune jobs)"
                    );
                }
            }
        }
        let mut index = FastMap::default();
        for shard in 0..NUM_SHARDS {
            load_shard(&shard_path(&dir, shard), &mut index)?;
        }
        Ok(ResultStore {
            dir,
            index: Mutex::new(index),
            shard_locks: (0..NUM_SHARDS).map(|_| Mutex::new(())).collect(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.index.lock().expect("store index poisoned").len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the result of a job, if present.
    pub fn get(&self, spec: &JobSpec) -> Option<StoredResult> {
        let key = spec.key();
        let index = self.index.lock().expect("store index poisoned");
        let stored = index.get(&key.hash())?;
        // A 64-bit collision between different experiments is
        // astronomically unlikely but cheap to rule out entirely.
        (stored.spec == *spec).then(|| stored.clone())
    }

    /// Appends one result and updates the index. Writers on different
    /// shards do not contend.
    pub fn put(
        &self,
        spec: &JobSpec,
        report: &SimReport,
        wall_ms: f64,
        wall: WallKind,
    ) -> Result<(), StoreError> {
        let key = spec.key();
        let mut line = record_json(spec, &key, report, wall_ms, wall).to_json_string();
        line.push('\n');
        let shard = key.shard(NUM_SHARDS);
        {
            let _guard = self.shard_locks[shard].lock().expect("shard lock poisoned");
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(shard_path(&self.dir, shard))?;
            file.write_all(line.as_bytes())?;
        }
        self.index.lock().expect("store index poisoned").insert(
            key.hash(),
            StoredResult {
                spec: *spec,
                report: report.clone(),
                wall_ms,
                wall,
            },
        );
        Ok(())
    }

    /// All stored results, sorted by canonical key (stable across runs
    /// and insertion orders).
    pub fn entries(&self) -> Vec<StoredResult> {
        let index = self.index.lock().expect("store index poisoned");
        let mut all: Vec<StoredResult> = index.values().cloned().collect();
        all.sort_by_cached_key(|r| r.spec.key().canonical().to_string());
        all
    }

    /// Per-shard (file name, size in bytes) of the on-disk store.
    pub fn shard_sizes(&self) -> Vec<(String, u64)> {
        (0..NUM_SHARDS)
            .map(|s| {
                let path = shard_path(&self.dir, s);
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                (
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    bytes,
                )
            })
            .collect()
    }
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:02}.jsonl"))
}

fn record_json(
    spec: &JobSpec,
    key: &JobKey,
    report: &SimReport,
    wall_ms: f64,
    wall: WallKind,
) -> Json {
    Json::Obj(vec![
        ("v".into(), Json::UInt(u64::from(STORE_VERSION))),
        ("hash".into(), Json::Str(key.hash_hex())),
        ("bench".into(), Json::Str(spec.bench.label().into())),
        ("scheme".into(), Json::Str(spec.scheme.label().into())),
        ("seed".into(), Json::UInt(spec.seed)),
        ("scale".into(), Json::Str(spec.scale.name().into())),
        ("config".into(), Json::Str(spec.config.name())),
        ("wall_ms".into(), Json::Num(wall_ms)),
        ("wall".into(), Json::Str(wall.as_str().into())),
        ("report".into(), report.to_json_value()),
    ])
}

fn load_shard(path: &Path, index: &mut FastMap<u64, StoredResult>) -> Result<(), StoreError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    let lines: Vec<&str> = text.lines().collect();
    for (n, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok((hash, stored)) => {
                index.insert(hash, stored);
            }
            Err(cause) => {
                // A truncated final line is the signature of a run killed
                // mid-append; drop it (the job will re-run). Anything
                // else is real corruption and must not be papered over.
                let is_last = n + 1 == lines.len() && !text.ends_with('\n');
                if is_last {
                    eprintln!(
                        "warning: dropping truncated final record in {} ({cause})",
                        path.display()
                    );
                    // Cut the partial line off the file as well: the
                    // store appends, so leaving it would weld the next
                    // record onto the fragment — one permanently corrupt
                    // interior line that fails every later open. On a
                    // read-only store the repair is impossible but the
                    // weld hazard is moot (appends would fail too), so
                    // fall back to the old warn-and-skip behavior.
                    let keep = text.rfind('\n').map_or(0, |i| i + 1) as u64;
                    if let Err(e) = std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .and_then(|f| f.set_len(keep))
                    {
                        eprintln!(
                            "warning: could not truncate {} to {keep} bytes ({e}); \
                             run `valley gc` before the next append",
                            path.display()
                        );
                    }
                } else {
                    return Err(StoreError::Corrupt(format!(
                        "{} line {}: {cause}",
                        path.display(),
                        n + 1
                    )));
                }
            }
        }
    }
    Ok(())
}

/// What a lenient pass over a store directory found. Unlike
/// [`ResultStore::open`], the scan does not fail on records orphaned by
/// a schema change — it counts them, so `valley status` can report a
/// store that needs [`gc`] instead of erroring out.
#[derive(Clone, Debug, Default)]
pub struct StoreScan {
    /// Unique valid records (last write wins, like the in-memory index).
    pub records: Vec<StoredResult>,
    /// Valid records superseded by a later record with the same key
    /// (`sweep --force` re-runs append; they accumulate until `gc`).
    pub duplicates: usize,
    /// Well-formed JSON lines that are no longer valid records — the
    /// debris of a schema change (job-key format, benchmark/scheme/scale
    /// names, store or report version).
    pub orphans: usize,
    /// Truncated final lines (crash mid-append), at most one per shard.
    pub truncated: usize,
    /// On-disk size of each shard file in bytes (missing shard = 0),
    /// indexed by shard number — so consumers need not re-derive the
    /// shard file naming the store owns.
    pub shard_bytes: Vec<u64>,
}

/// Scans all shards of `dir` leniently. Interior non-JSON garbage is
/// still a hard error — it is not schema drift, and silently dropping it
/// would paper over real corruption.
pub fn scan(dir: &Path) -> Result<StoreScan, StoreError> {
    let mut out = StoreScan::default();
    let mut index: FastMap<u64, StoredResult> = FastMap::default();
    for shard in 0..NUM_SHARDS {
        let path = shard_path(dir, shard);
        let (records, stats) = scan_shard(&path)?;
        out.shard_bytes
            .push(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
        out.duplicates += stats.duplicates;
        out.orphans += stats.orphans;
        out.truncated += stats.truncated;
        for (hash, stored) in records {
            if index.insert(hash, stored).is_some() {
                // Same-key records always land in the same shard, but a
                // hand-edited store could violate that; count it anyway.
                out.duplicates += 1;
            }
        }
    }
    let mut records: Vec<StoredResult> = index.into_values().collect();
    records.sort_by_cached_key(|r| r.spec.key().canonical().to_string());
    out.records = records;
    Ok(out)
}

/// Per-shard lenient scan: classifies every line and returns the valid
/// records (latest occurrence per key) in first-seen order.
#[allow(clippy::type_complexity)]
fn scan_shard(path: &Path) -> Result<(Vec<(u64, StoredResult)>, StoreScan), StoreError> {
    let mut stats = StoreScan::default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), stats)),
        Err(e) => return Err(e.into()),
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut order: Vec<u64> = Vec::new();
    let mut latest: FastMap<u64, StoredResult> = FastMap::default();
    for (n, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok((hash, stored)) => {
                if latest.insert(hash, stored).is_some() {
                    stats.duplicates += 1;
                } else {
                    order.push(hash);
                }
            }
            Err(cause) => {
                let is_last = n + 1 == lines.len() && !text.ends_with('\n');
                if is_last {
                    stats.truncated += 1;
                } else if json::parse(line).is_ok() {
                    stats.orphans += 1;
                } else {
                    return Err(StoreError::Corrupt(format!(
                        "{} line {}: {cause}",
                        path.display(),
                        n + 1
                    )));
                }
            }
        }
    }
    let records = order
        .into_iter()
        .map(|h| (h, latest.remove(&h).expect("ordered hash was inserted")))
        .collect();
    Ok((records, stats))
}

/// The result of one [`gc`] compaction pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Records kept across all shards.
    pub kept: usize,
    /// Superseded duplicate records removed (`--force` debris).
    pub duplicates_removed: usize,
    /// Orphaned-schema records removed.
    pub orphans_removed: usize,
    /// Truncated final lines removed (at most one per shard).
    pub truncated_removed: usize,
    /// Shard files rewritten (clean shards are left untouched).
    pub shards_rewritten: usize,
    /// On-disk size before and after, in bytes.
    pub bytes_before: u64,
    /// See `bytes_before`.
    pub bytes_after: u64,
}

impl GcReport {
    /// Total records dropped by the pass.
    pub fn removed(&self) -> usize {
        self.duplicates_removed + self.orphans_removed + self.truncated_removed
    }
}

/// Compacts the store at `dir`: rewrites every shard that contains
/// duplicate keys (keeping the newest record), orphaned-schema records
/// or a truncated final line. Record order is otherwise preserved, and
/// each shard is replaced atomically (write to a temporary file, then
/// rename), so a crash mid-gc leaves either the old or the new shard.
/// Clean shards are not touched. Interior non-JSON corruption still
/// fails loudly, exactly as [`ResultStore::open`] would.
pub fn gc(dir: &Path) -> Result<GcReport, StoreError> {
    let mut report = GcReport::default();
    // Phase 1: read and classify every shard, tracking the globally last
    // occurrence of each key — same-key records normally share a shard,
    // but a hand-edited or partially restored store may not, and gc must
    // agree with [`scan`] (and the last-write-wins index) about which
    // record survives.
    let mut texts: Vec<Option<String>> = Vec::with_capacity(NUM_SHARDS);
    let mut classes: Vec<Vec<Option<u64>>> = Vec::with_capacity(NUM_SHARDS);
    let mut dirty: Vec<bool> = vec![false; NUM_SHARDS];
    let mut last_of: FastMap<u64, (usize, usize)> = FastMap::default();
    for shard in 0..NUM_SHARDS {
        let path = shard_path(dir, shard);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                texts.push(None);
                classes.push(Vec::new());
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        report.bytes_before += text.len() as u64;
        let lines: Vec<&str> = text.lines().collect();
        let mut shard_classes: Vec<Option<u64>> = Vec::with_capacity(lines.len());
        for (n, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                shard_classes.push(None);
                dirty[shard] = true;
                continue;
            }
            match parse_record(line) {
                Ok((hash, _)) => {
                    if let Some((ps, _)) = last_of.insert(hash, (shard, n)) {
                        report.duplicates_removed += 1;
                        dirty[ps] = true;
                        dirty[shard] = true;
                    }
                    shard_classes.push(Some(hash));
                }
                Err(cause) => {
                    let is_last = n + 1 == lines.len() && !text.ends_with('\n');
                    if is_last {
                        report.truncated_removed += 1;
                    } else if json::parse(line).is_ok() {
                        report.orphans_removed += 1;
                    } else {
                        return Err(StoreError::Corrupt(format!(
                            "{} line {}: {cause}",
                            path.display(),
                            n + 1
                        )));
                    }
                    shard_classes.push(None);
                    dirty[shard] = true;
                }
            }
        }
        texts.push(Some(text));
        classes.push(shard_classes);
    }
    report.kept = last_of.len();

    // Phase 2: rewrite the dirty shards, keeping each key's (globally)
    // last occurrence in its original position order.
    for shard in 0..NUM_SHARDS {
        let Some(text) = &texts[shard] else { continue };
        if !dirty[shard] {
            report.bytes_after += text.len() as u64;
            continue;
        }
        let path = shard_path(dir, shard);
        let mut compact = String::with_capacity(text.len());
        for (n, line) in text.lines().enumerate() {
            if classes[shard][n].is_some_and(|h| last_of[&h] == (shard, n)) {
                compact.push_str(line);
                compact.push('\n');
            }
        }
        let tmp = path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, &compact)?;
        std::fs::rename(&tmp, &path)?;
        report.bytes_after += compact.len() as u64;
        report.shards_rewritten += 1;
    }
    Ok(report)
}

/// Parses one stored record line into `(key hash, result)`.
fn parse_record(line: &str) -> Result<(u64, StoredResult), String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let version = v
        .get("v")
        .and_then(Json::as_u64)
        .ok_or("record has no version field")?;
    if version != u64::from(STORE_VERSION) {
        return Err(format!(
            "record version {version} is not the supported {STORE_VERSION}; \
             delete the store directory to regenerate"
        ));
    }
    let text = |key: &str| -> Result<String, String> {
        Ok(v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record field '{key}' missing or not a string"))?
            .to_string())
    };
    let bench_name = text("bench")?;
    let bench =
        Benchmark::parse(&bench_name).ok_or_else(|| format!("unknown benchmark '{bench_name}'"))?;
    let scheme_name = text("scheme")?;
    let scheme =
        parse_scheme(&scheme_name).ok_or_else(|| format!("unknown scheme '{scheme_name}'"))?;
    let scale_name = text("scale")?;
    let scale = Scale::parse(&scale_name).ok_or_else(|| format!("unknown scale '{scale_name}'"))?;
    let config_name = text("config")?;
    let config =
        ConfigId::parse(&config_name).ok_or_else(|| format!("unknown config '{config_name}'"))?;
    let seed = v
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("record field 'seed' missing or not an integer")?;
    let wall_ms = v
        .get("wall_ms")
        .and_then(Json::as_f64)
        .ok_or("record field 'wall_ms' missing or not a number")?;
    let wall_name = text("wall")?;
    let wall =
        WallKind::parse(&wall_name).ok_or_else(|| format!("unknown wall kind '{wall_name}'"))?;
    let spec = JobSpec {
        bench,
        scheme,
        seed,
        scale,
        config,
    };
    // Recompute the content hash from the coordinates: if it disagrees
    // with the stored one, the canonical key format changed under this
    // record and serving it would be silently wrong.
    let key = spec.key();
    let stored_hash = text("hash")?;
    if stored_hash != key.hash_hex() {
        return Err(format!(
            "stored hash {stored_hash} does not match recomputed {} for '{}' — \
             the job-key schema changed; delete the store directory to regenerate",
            key.hash_hex(),
            key.canonical()
        ));
    }
    let report = v.get("report").ok_or("record has no report")?;
    let report = SimReport::from_json_value(report)?;
    Ok((
        key.hash(),
        StoredResult {
            spec,
            report,
            wall_ms,
            wall,
        },
    ))
}
