//! # valley-harness
//!
//! The sharded, resumable sweep engine behind every figure, table and
//! ablation of the Valley reproduction:
//!
//! * a **job model** ([`SweepSpec`] → content-hashed [`JobSpec`]s /
//!   [`JobKey`]s) that expands the paper's experiment grid — benchmark ×
//!   scheme × BIM seed × scale × GPU config — deterministically;
//! * a **work-stealing thread pool** ([`pool`]) with per-job panic
//!   isolation, progress reporting, and result ordering that is
//!   independent of the worker count;
//! * a **persistent content-addressed result store** ([`ResultStore`]):
//!   16 JSON-lines shards under `results/`, keyed by job hash, so
//!   re-running a sweep skips completed jobs (*resume*) and figure
//!   regeneration is a pure cache read;
//! * the `valley` CLI (`sweep`, `status`, `query`, `figures`, `gc` —
//!   the latter compacts `--force` duplicates and orphaned-schema
//!   records out of the shards).
//!
//! `valley-bench`'s `run_suite` and the per-figure binaries are thin
//! consumers of [`run_sweep`]; see `docs/harness.md` for the store
//! format and resume semantics.
//!
//! ## Quick start
//!
//! ```
//! use valley_harness::{run_sweep, ResultStore, SweepOptions, SweepSpec};
//! use valley_core::SchemeKind;
//! use valley_workloads::{Benchmark, Scale};
//!
//! let dir = std::env::temp_dir().join(format!("valley-harness-doc-{}", std::process::id()));
//! let store = ResultStore::open(&dir).unwrap();
//! let spec = SweepSpec::new(&[Benchmark::Sp], &[SchemeKind::Base], Scale::Test);
//! let first = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
//! assert_eq!(first.executed + first.cache_hits, 1);
//! // The second run is a pure cache read.
//! let second = run_sweep(&spec, &store, &SweepOptions::default()).unwrap();
//! assert_eq!(second.cache_hits, 1);
//! assert_eq!(second.jobs[0].report, first.jobs[0].report);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod job;
pub mod pool;
mod store;
mod sweep;
pub mod util;

pub use job::{
    execute_batch, execute_batch_timed, execute_job, parse_scheme, ConfigId, JobKey, JobSpec,
    LaneOutcome, SweepSpec, WallKind, DEFAULT_SEED, SCHEMA_VERSION,
};
pub use store::{
    gc, scan, GcReport, ResultStore, StoreError, StoreOptions, StoreScan, StoredResult, NUM_SHARDS,
    STORE_VERSION,
};
pub use sweep::{
    run_sweep, FailureKind, JobFailure, JobOutcome, SweepError, SweepOptions, SweepOutcome,
};

use std::path::PathBuf;

/// The default result-store directory: `$VALLEY_RESULTS_DIR` if set,
/// otherwise `results/` under the current directory.
pub fn default_results_dir() -> PathBuf {
    std::env::var_os("VALLEY_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}
