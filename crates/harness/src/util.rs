//! Small statistics and fixed-width table helpers shared by the CLI,
//! `valley-bench`'s figure printers, and the per-figure binaries.

use valley_core::SchemeKind;

/// Arithmetic mean.
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Harmonic mean (the paper's HMEAN for speedups).
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        0.0
    } else {
        xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
    }
}

/// Renders one row of a fixed-width table.
pub fn row(label: &str, values: &[f64], width: usize, precision: usize) -> String {
    let mut s = format!("{label:<10}");
    for v in values {
        s.push_str(&format!("{v:>width$.precision$}"));
    }
    s
}

/// Prints a header row for a scheme-column table.
pub fn scheme_header(label: &str, schemes: &[SchemeKind], width: usize) -> String {
    let mut s = format!("{label:<10}");
    for sc in schemes {
        s.push_str(&format!("{:>width$}", sc.label()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((hmean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(hmean(&[2.0, 2.0]) > 1.99);
        assert_eq!(hmean(&[]), 0.0);
        assert_eq!(hmean(&[1.0, 0.0]), 0.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn formatting() {
        let h = scheme_header("bench", &[SchemeKind::Base, SchemeKind::Pae], 8);
        assert!(h.contains("BASE") && h.contains("PAE"));
        let r = row("MT", &[1.0, 2.5], 8, 2);
        assert!(r.contains("1.00") && r.contains("2.50"));
    }
}
