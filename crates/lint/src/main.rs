//! CLI entry point: `cargo run -p valley-lint -- [--expect-clean]
//! [--bless-schema] [--root <dir>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut expect_clean = false;
    let mut bless = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-clean" => expect_clean = true,
            "--bless-schema" => bless = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--version" => {
                println!(
                    "valley-lint {} (schema manifest fp={:016x})",
                    valley_lint::LINT_VERSION,
                    valley_lint::manifest_hash()
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match valley_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "valley-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if bless {
        return match valley_lint::bless_schema(&root) {
            Ok(path) => {
                println!("schema manifest re-pinned: {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("valley-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match valley_lint::run(&root) {
        Ok(outcome) => {
            for d in &outcome.diagnostics {
                println!("{}", d.render());
            }
            let verdict = if outcome.clean() { "clean" } else { "FAILED" };
            println!(
                "valley-lint {}: {} — {} files, {} diagnostics, {} suppressed by lint.toml",
                valley_lint::LINT_VERSION,
                verdict,
                outcome.files,
                outcome.diagnostics.len(),
                outcome.suppressed
            );
            if outcome.clean() {
                ExitCode::SUCCESS
            } else {
                if expect_clean {
                    eprintln!("valley-lint: --expect-clean failed");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("valley-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("valley-lint: {err}");
    }
    eprintln!(
        "usage: valley-lint [--expect-clean] [--bless-schema] [--root <dir>] [--version]\n\
         \n\
         Lints every .rs file in the workspace for determinism, schema-drift and\n\
         hygiene invariants. Suppressions live in lint.toml at the workspace root;\n\
         pinned wire/store shapes live in crates/lint/schema.manifest.\n\
         See docs/lint.md for the rule catalog."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
