//! `valley-lint` — workspace invariant checker.
//!
//! Statically enforces the properties the simulator's correctness
//! story rests on: determinism (no default-hasher maps, no unordered
//! iteration feeding results, no wall-clock in result-affecting
//! crates), schema stability (wire/store shapes fingerprinted against a
//! pinned manifest), and hygiene (zero `unsafe`, no panics in tick
//! paths). See `docs/lint.md` for the rule catalog.
//!
//! The library form exists so tests can lint virtual file sets and so
//! `valley status --lint` can report the invariant set (lint version +
//! schema manifest hash) a deployment is running under.

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod schema;

use std::fs;
use std::path::{Path, PathBuf};

use allow::AllowEntry;
use lexer::Lexed;
use rules::{Diagnostic, FileCtx};

/// Lint tool version; bump when rules are added/changed so stored
/// results can be traced to the invariant set they were produced under.
pub const LINT_VERSION: &str = "1.0.0";

/// The pinned schema manifest, embedded at build time (the on-disk copy
/// at `crates/lint/schema.manifest` takes precedence when linting, so a
/// fresh `--bless-schema` is honored without a rebuild).
pub const SCHEMA_MANIFEST: &str = include_str!("../schema.manifest");

/// FNV-1a hash of the embedded schema manifest — the value `valley
/// status --lint` reports.
pub fn manifest_hash() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in SCHEMA_MANIFEST.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of a lint run.
#[derive(Debug)]
pub struct LintOutcome {
    /// Unsuppressed findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings matched (and silenced) by `lint.toml` entries.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

impl LintOutcome {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints a virtual file set: `(repo-relative path, source)` pairs plus
/// the allowlist and schema-manifest contents. This is the pure core —
/// [`run`] feeds it the real tree, tests feed it fixtures.
pub fn lint_sources(
    files: &[(String, String)],
    allowlist_src: &str,
    manifest_src: &str,
) -> Result<LintOutcome, String> {
    let entries =
        allow::parse(allowlist_src).map_err(|e| format!("lint.toml:{}: {}", e.line, e.message))?;

    let lexed: Vec<(String, Lexed)> = files
        .iter()
        .map(|(p, src)| (p.clone(), lexer::lex(src)))
        .collect();

    let mut raw: Vec<Diagnostic> = Vec::new();
    for (path, lx) in &lexed {
        let ctx = FileCtx {
            path,
            lexed: lx,
            is_test_file: path.contains("/tests/")
                || path.contains("/benches/")
                || path.contains("/examples/"),
            krate: path
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next()),
        };
        rules::run_token_rules(&ctx, &mut raw);
    }
    schema::check(
        manifest_src,
        |p| lexed.iter().find(|(path, _)| path == p).map(|(_, l)| l),
        &mut raw,
    );

    let line_text = |path: &str, line: u32| -> String {
        if line == 0 {
            return String::new();
        }
        files
            .iter()
            .find(|(p, _)| p == path)
            .and_then(|(_, src)| src.lines().nth(line as usize - 1))
            .unwrap_or_default()
            .to_string()
    };

    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let text = line_text(&d.path, d.line);
        if entries.iter().any(|e| e.matches(d.rule, &d.path, &text)) {
            suppressed += 1;
        } else {
            diagnostics.push(d);
        }
    }
    for e in &entries {
        if !e.used() {
            diagnostics.push(Diagnostic {
                rule: "unused-allow",
                path: "lint.toml".to_string(),
                line: e.decl_line,
                message: format!(
                    "allowlist entry (rule `{}`, path `{}`) matches nothing; delete it so \
                     the allowlist cannot rot",
                    e.rule, e.path
                ),
            });
        }
    }
    diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(LintOutcome {
        diagnostics,
        suppressed,
        files: files.len(),
    })
}

/// Walks the workspace for `.rs` files, returning sorted
/// `(repo-relative path, source)` pairs. Skips build output, VCS
/// internals, result stores, and lint test fixtures (which contain
/// violations on purpose).
pub fn collect_workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | ".git" | "results" | "fixtures" | "node_modules"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                let src = fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                files.push((rel, src));
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Reads the allowlist (`lint.toml`) and manifest from disk under
/// `root` and lints the real tree. Missing allowlist = empty; missing
/// on-disk manifest falls back to the embedded copy.
pub fn run(root: &Path) -> Result<LintOutcome, String> {
    let files = collect_workspace_sources(root)?;
    let allowlist = fs::read_to_string(root.join("lint.toml")).unwrap_or_default();
    let manifest = fs::read_to_string(root.join("crates/lint/schema.manifest"))
        .unwrap_or_else(|_| SCHEMA_MANIFEST.to_string());
    lint_sources(&files, &allowlist, &manifest)
}

/// Re-pins `crates/lint/schema.manifest` from the live tree. Returns
/// the manifest path on success; refuses shape drift without a version
/// bump.
pub fn bless_schema(root: &Path) -> Result<PathBuf, String> {
    let files = collect_workspace_sources(root)?;
    let lexed: Vec<(String, Lexed)> = files
        .iter()
        .filter(|(p, _)| schema::TARGETS.iter().any(|t| t.path == *p))
        .map(|(p, src)| (p.clone(), lexer::lex(src)))
        .collect();
    let manifest_path = root.join("crates/lint/schema.manifest");
    let old = fs::read_to_string(&manifest_path).ok();
    let is_placeholder = old
        .as_deref()
        .is_some_and(|s| schema::parse_manifest(s).is_empty());
    let new = schema::bless(old.as_deref().filter(|_| !is_placeholder), |p| {
        lexed.iter().find(|(path, _)| path == p).map(|(_, l)| l)
    })?;
    fs::write(&manifest_path, &new).map_err(|e| format!("write schema.manifest: {e}"))?;
    Ok(manifest_path)
}

/// Locates the workspace root: the nearest ancestor of `start` holding
/// a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Allowlist entry re-export for doc purposes.
pub type Allow = AllowEntry;
