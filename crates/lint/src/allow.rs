//! The checked-in allowlist (`lint.toml` at the workspace root).
//!
//! Hand-parsed subset of TOML — `[[allow]]` tables with string values —
//! so the lint stays std-only. Every entry must carry a written `why`;
//! entries that stop matching anything become diagnostics themselves so
//! the allowlist cannot rot.
//!
//! Format:
//!
//! ```toml
//! [[allow]]
//! rule = "default-hasher"          # rule id, or "*" for any rule
//! path = "crates/harness/src/store.rs"   # suffix match on the repo-relative path
//! line-contains = "index: Mutex"   # optional substring the source line must contain
//! why = "lookup-only index; entries() sorts by canonical key before use"
//! ```

use std::cell::Cell;

/// One `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Line in `lint.toml` where the entry starts (for diagnostics).
    pub decl_line: u32,
    /// Rule id this entry suppresses, or `*` for any rule.
    pub rule: String,
    /// Repo-relative path suffix the diagnostic's file must match.
    pub path: String,
    /// Optional substring the flagged source line must contain.
    pub line_contains: Option<String>,
    /// Mandatory human justification.
    pub why: String,
    used: Cell<bool>,
}

impl AllowEntry {
    /// Whether this entry suppresses a diagnostic for `rule` at `path`,
    /// where `src_line` is the text of the flagged source line.
    pub fn matches(&self, rule: &str, path: &str, src_line: &str) -> bool {
        if self.rule != "*" && self.rule != rule {
            return false;
        }
        if !path_suffix_matches(path, &self.path) {
            return false;
        }
        if let Some(frag) = &self.line_contains {
            if !src_line.contains(frag.as_str()) {
                return false;
            }
        }
        self.used.set(true);
        true
    }

    /// Whether any diagnostic matched this entry.
    pub fn used(&self) -> bool {
        self.used.get()
    }
}

/// Suffix match on `/`-separated path components: `crates/sim/src/gpu.rs`
/// matches `sim/src/gpu.rs` but not `u.rs`.
fn path_suffix_matches(path: &str, suffix: &str) -> bool {
    let path = path.replace('\\', "/");
    if path == suffix {
        return true;
    }
    path.ends_with(&format!("/{suffix}"))
}

/// Parse errors carry the `lint.toml` line number.
#[derive(Debug)]
pub struct AllowParseError {
    pub line: u32,
    pub message: String,
}

/// Parses the allowlist file contents.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut cur: Option<(u32, Vec<(String, String)>)> = None;

    let mut finish =
        |cur: &mut Option<(u32, Vec<(String, String)>)>| -> Result<(), AllowParseError> {
            let Some((decl_line, kvs)) = cur.take() else {
                return Ok(());
            };
            let get = |k: &str| kvs.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
            for (key, _) in &kvs {
                if !matches!(key.as_str(), "rule" | "path" | "line-contains" | "why") {
                    return Err(AllowParseError {
                        line: decl_line,
                        message: format!("unknown key `{key}` in [[allow]] entry"),
                    });
                }
            }
            let missing = |k: &str| AllowParseError {
                line: decl_line,
                message: format!("[[allow]] entry is missing required key `{k}`"),
            };
            let why = get("why").ok_or_else(|| missing("why"))?;
            if why.trim().len() < 10 {
                return Err(AllowParseError {
                    line: decl_line,
                    message: "`why` must be a real justification (≥ 10 chars)".into(),
                });
            }
            entries.push(AllowEntry {
                decl_line,
                rule: get("rule").ok_or_else(|| missing("rule"))?,
                path: get("path").ok_or_else(|| missing("path"))?,
                line_contains: get("line-contains"),
                why,
                used: Cell::new(false),
            });
            Ok(())
        };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut cur)?;
            cur = Some((lineno, Vec::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowParseError {
                line: lineno,
                message: format!("unsupported table `{line}`; only [[allow]] is recognized"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let value = value.trim();
        let Some(value) = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .map(unescape)
        else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            });
        };
        match &mut cur {
            Some((_, kvs)) => kvs.push((key, value)),
            None => {
                return Err(AllowParseError {
                    line: lineno,
                    message: "key outside an [[allow]] entry".into(),
                });
            }
        }
    }
    finish(&mut cur)?;
    Ok(entries)
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let src = r#"
# comment
[[allow]]
rule = "default-hasher"
path = "crates/harness/src/store.rs"
line-contains = "index: Mutex"
why = "lookup-only; entries() sorts by canonical key"

[[allow]]
rule = "*"
path = "sim/tests/alloc_audit.rs"
why = "counting allocator requires GlobalAlloc"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches(
            "default-hasher",
            "crates/harness/src/store.rs",
            "    index: Mutex<HashMap<u64, StoredResult>>,"
        ));
        assert!(entries[0].used());
        assert!(!entries[0].matches(
            "default-hasher",
            "crates/harness/src/store.rs",
            "    latest: HashMap<u64, u64>,"
        ));
        assert!(!entries[0].matches("no-unsafe", "crates/harness/src/store.rs", "index: Mutex"));
        // Wildcard rule + suffix path.
        assert!(entries[1].matches(
            "no-unsafe",
            "crates/sim/tests/alloc_audit.rs",
            "unsafe impl"
        ));
        assert!(!entries[1].matches("no-unsafe", "crates/sim/tests/zalloc_audit.rs", "unsafe"));
    }

    #[test]
    fn missing_why_is_rejected() {
        let src = "[[allow]]\nrule = \"no-unsafe\"\npath = \"x.rs\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("why"));
    }

    #[test]
    fn short_why_is_rejected() {
        let src = "[[allow]]\nrule = \"no-unsafe\"\npath = \"x.rs\"\nwhy = \"ok\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("justification"));
    }

    #[test]
    fn unknown_key_is_rejected() {
        let src = "[[allow]]\nrule = \"x\"\npath = \"y\"\nwhy = \"0123456789\"\nextra = \"z\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown key"));
    }
}
