//! Token-stream lint rules: determinism, unsafe/panic hygiene.
//!
//! Each rule walks the attribute-stripped token stream from
//! [`crate::lexer`] and emits [`Diagnostic`]s. Schema-drift checking
//! lives in [`crate::schema`]; suppression via the allowlist happens in
//! the runner, not here.

use crate::lexer::{Lexed, Tok, TokKind};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (what allowlist entries name).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line, or 0 for file/workspace-level findings.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    /// The lexed token stream.
    pub lexed: &'a Lexed,
    /// True for integration tests / benches (`tests/`, `benches/`,
    /// `examples/` directories) — whole file is test code even without
    /// `cfg(test)` markers.
    pub is_test_file: bool,
    /// Workspace crate directory name (`sim` for `crates/sim/...`),
    /// if under `crates/`.
    pub krate: Option<&'a str>,
}

impl FileCtx<'_> {
    fn in_test(&self, tok: &Tok) -> bool {
        self.is_test_file || tok.in_test
    }
}

/// Crates whose simulation results must be bit-reproducible; wall-clock
/// reads there are lint failures. Harness/fabric timing (sweep wall_ms,
/// lease clocks) is measurement, not simulation, and stays exempt.
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "core",
    "cache",
    "compute",
    "dram",
    "noc",
    "sim",
    "workloads",
];

/// Hot tick-path files (suffix-matched): `unwrap`/`expect`/`panic!` are
/// forbidden outside tests so a malformed input degrades into an error
/// path instead of tearing down a long sweep.
pub const TICK_PATH_FILES: &[&str] = &[
    "crates/cache/src/mshr.rs",
    "crates/cache/src/setassoc.rs",
    "crates/compute/src/bitslice.rs",
    "crates/compute/src/cpu.rs",
    "crates/dram/src/channel.rs",
    "crates/dram/src/system.rs",
    "crates/noc/src/lib.rs",
    "crates/sim/src/sm.rs",
    "crates/sim/src/llc.rs",
    "crates/sim/src/gpu.rs",
    "crates/sim/src/batch.rs",
    "crates/sim/src/par.rs",
    "crates/sim/src/wake.rs",
    "crates/sim/src/txn.rs",
    "crates/sim/src/coalesce.rs",
];

/// Map methods whose results depend on iteration order.
const ORDER_SENSITIVE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Runs every token rule over one file.
pub fn run_token_rules(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    rule_default_hasher(ctx, out);
    rule_map_iteration(ctx, out);
    rule_wall_clock(ctx, out);
    rule_no_unsafe(ctx, out);
    rule_no_panic_tick(ctx, out);
}

// ---------------------------------------------------------------------
// determinism: default-hasher
// ---------------------------------------------------------------------

fn rule_default_hasher(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.toks;
    let mut in_use = false;
    for (i, tok) in toks.iter().enumerate() {
        match &tok.kind {
            TokKind::Ident(s) if s == "use" => in_use = true,
            TokKind::Punct(';') => in_use = false,
            TokKind::Ident(s) if s == "HashMap" || s == "HashSet" => {
                if in_use || ctx.in_test(tok) {
                    continue;
                }
                let want = if s == "HashMap" { 3 } else { 2 };
                if hasher_is_explicit(toks, i, want) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "default-hasher",
                    path: ctx.path.to_string(),
                    line: tok.line,
                    message: format!(
                        "{s} with default RandomState hasher: iteration order and capacity \
                         behavior are seeded per-process; use valley_core::hash::Fast{} \
                         (deterministic hasher) or name a hasher type explicitly",
                        if s == "HashMap" { "Map" } else { "Set" }
                    ),
                });
            }
            _ => {}
        }
    }
}

/// After `HashMap`/`HashSet` at `i`, decides whether a hasher is named:
/// either the generic list carries `want` arguments (`K, V, S`), or the
/// constructor is `::with_hasher` / `::with_capacity_and_hasher`.
fn hasher_is_explicit(toks: &[Tok], i: usize, want: usize) -> bool {
    let next = |off: usize| toks.get(i + off).map(|t| &t.kind);
    // `HashMap<..>` directly.
    if next(1).is_some_and(|k| k.is_punct('<')) {
        return generic_arg_count(toks, i + 1) == Some(want);
    }
    // `HashMap::<..>` turbofish or `HashMap::with_hasher(..)`.
    if next(1).is_some_and(|k| k.is_punct(':')) && next(2).is_some_and(|k| k.is_punct(':')) {
        if next(3).is_some_and(|k| k.is_punct('<')) {
            return generic_arg_count(toks, i + 3) == Some(want);
        }
        if let Some(TokKind::Ident(m)) = next(3) {
            return m == "with_hasher" || m == "with_capacity_and_hasher";
        }
    }
    false
}

/// Counts top-level generic arguments of the `<...>` list opening at
/// `open` (which must be a `<`). Handles nested angle brackets, `->`
/// arrows inside fn types, and commas nested in parentheses/brackets.
/// Returns `None` when no matching `>` is found nearby.
fn generic_arg_count(toks: &[Tok], open: usize) -> Option<usize> {
    let mut angle = 0isize;
    let mut round = 0isize;
    let mut commas = 0usize;
    let mut any = false;
    let limit = (open + 256).min(toks.len());
    for j in open..limit {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` return arrow: the `-` precedes the `>`.
                if j > 0 && toks[j - 1].kind.is_punct('-') {
                    continue;
                }
                angle -= 1;
                if angle == 0 {
                    return Some(if any { commas + 1 } else { 0 });
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') => round += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => round -= 1,
            TokKind::Punct(',') if angle == 1 && round == 0 => commas += 1,
            TokKind::Punct(';') | TokKind::Punct('{') => return None,
            _ => any = true,
        }
    }
    None
}

// ---------------------------------------------------------------------
// determinism: map-iteration
// ---------------------------------------------------------------------

/// Identifier names declared in this file with an unordered-map type
/// (`name: ..HashMap<..>..` or `let name = FastMap::..`).
fn collect_map_names(lexed: &Lexed) -> Vec<String> {
    const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FastMap", "FastSet"];
    let toks = &lexed.toks;
    let mut names: Vec<String> = Vec::new();
    let mut add = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for (i, tok) in toks.iter().enumerate() {
        let TokKind::Ident(s) = &tok.kind else {
            continue;
        };
        if !MAP_TYPES.contains(&s.as_str()) {
            continue;
        }
        // Walk back to the start of the declaration: `name :` (a single
        // colon — skip over intervening type constructors like
        // `Mutex<`) or `let [mut] name =`.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 48 {
            j -= 1;
            steps += 1;
            match &toks[j].kind {
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                TokKind::Punct(':') => {
                    // `::` path separator is two colons; a type ascription
                    // has an identifier directly before a lone `:`.
                    if j > 0 && toks[j - 1].kind.is_punct(':') {
                        j -= 1;
                        continue;
                    }
                    if let Some(TokKind::Ident(name)) = j.checked_sub(1).map(|k| &toks[k].kind) {
                        add(name);
                    }
                    break;
                }
                TokKind::Punct('=') => {
                    if let Some(TokKind::Ident(name)) = j.checked_sub(1).map(|k| &toks[k].kind) {
                        if name != "=" {
                            add(name);
                        }
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    names
}

fn rule_map_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let names = collect_map_names(ctx.lexed);
    if names.is_empty() {
        return;
    }
    let toks = &ctx.lexed.toks;
    let is_map = |k: &TokKind| matches!(k, TokKind::Ident(s) if names.iter().any(|n| n == s));

    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(tok) {
            continue;
        }
        match &tok.kind {
            // `recv.method(` where an unordered map appears in the call
            // chain before `method`.
            TokKind::Ident(m) if ORDER_SENSITIVE_METHODS.contains(&m.as_str()) => {
                if i < 2 || !toks[i - 1].kind.is_punct('.') {
                    continue;
                }
                if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct('(')) {
                    continue;
                }
                if let Some(name) = chain_map_receiver(toks, i - 1, &names) {
                    out.push(Diagnostic {
                        rule: "map-iteration",
                        path: ctx.path.to_string(),
                        line: tok.line,
                        message: format!(
                            "iteration over unordered map `{name}` via `.{m}()`: order can leak \
                             into counters, serialization or scheduling; collect-and-sort, use a \
                             BTreeMap, or allowlist with a justification that order cannot escape"
                        ),
                    });
                }
            }
            // `for .. in [&[mut]] path.to.map {`
            TokKind::Ident(kw) if kw == "in" => {
                if let Some((name, line)) = for_in_map(toks, i, &names) {
                    out.push(Diagnostic {
                        rule: "map-iteration",
                        path: ctx.path.to_string(),
                        line,
                        message: format!(
                            "`for` loop over unordered map `{name}`: order can leak into \
                             counters, serialization or scheduling; collect-and-sort, use a \
                             BTreeMap, or allowlist with a justification that order cannot escape"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    let _ = is_map;
}

/// Walks a method-call chain backwards from the `.` at `dot` looking for
/// a known map name in receiver position (`self.index.lock().unwrap()` →
/// `index`). Stops at statement boundaries.
fn chain_map_receiver(toks: &[Tok], dot: usize, names: &[String]) -> Option<String> {
    let mut j = dot;
    let mut steps = 0;
    while j > 0 && steps < 64 {
        j -= 1;
        steps += 1;
        match &toks[j].kind {
            TokKind::Ident(s) => {
                if names.iter().any(|n| n == s) {
                    return Some(s.clone());
                }
            }
            TokKind::Punct(')') => {
                // Skip to the matching `(`.
                let mut depth = 1isize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &toks[j].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
            }
            TokKind::Punct('.') | TokKind::Punct(':') | TokKind::Punct('&') => {}
            _ => break,
        }
    }
    None
}

/// Matches `for .. in [& [mut]] ident(.ident)* {` ending on a known map
/// name. Returns the name and the line of the `in` keyword.
fn for_in_map(toks: &[Tok], in_idx: usize, names: &[String]) -> Option<(String, u32)> {
    // Require a `for` within a few tokens back (pattern position).
    let back = in_idx.saturating_sub(12);
    if !toks[back..in_idx].iter().any(|t| t.kind.is_ident("for")) {
        return None;
    }
    let mut last_ident: Option<&str> = None;
    for t in toks.iter().skip(in_idx + 1).take(16) {
        match &t.kind {
            TokKind::Ident(s) if s == "mut" => {}
            TokKind::Ident(s) => last_ident = Some(s),
            TokKind::Punct('&') | TokKind::Punct('.') => {}
            TokKind::Punct('{') => {
                let name = last_ident?;
                if names.iter().any(|n| n == name) {
                    return Some((name.to_string(), toks[in_idx].line));
                }
                return None;
            }
            // Anything else (calls, ranges, indexing) — not a bare map
            // expression; the method rule covers `.iter()` chains.
            _ => return None,
        }
    }
    None
}

// ---------------------------------------------------------------------
// determinism: wall-clock
// ---------------------------------------------------------------------

fn rule_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(krate) = ctx.krate else { return };
    if !RESULT_AFFECTING_CRATES.contains(&krate) {
        return;
    }
    for tok in &ctx.lexed.toks {
        if ctx.in_test(tok) {
            continue;
        }
        if let TokKind::Ident(s) = &tok.kind {
            if s == "Instant" || s == "SystemTime" {
                out.push(Diagnostic {
                    rule: "wall-clock",
                    path: ctx.path.to_string(),
                    line: tok.line,
                    message: format!(
                        "`{s}` in result-affecting crate `{krate}`: wall-clock reads make \
                         reports irreproducible; move timing to the harness/fabric layer or \
                         allowlist a telemetry-only site"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// hygiene: no-unsafe
// ---------------------------------------------------------------------

fn rule_no_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for tok in &ctx.lexed.toks {
        if tok.kind.is_ident("unsafe") {
            out.push(Diagnostic {
                rule: "no-unsafe",
                path: ctx.path.to_string(),
                line: tok.line,
                message: "`unsafe` is banned workspace-wide (the workspace is 100% safe Rust); \
                          allowlist with a justification if genuinely unavoidable"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// hygiene: no-panic-tick
// ---------------------------------------------------------------------

fn rule_no_panic_tick(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !TICK_PATH_FILES
        .iter()
        .any(|f| ctx.path == *f || ctx.path.ends_with(&format!("/{f}")))
    {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(tok) {
            continue;
        }
        let TokKind::Ident(s) = &tok.kind else {
            continue;
        };
        let flagged = match s.as_str() {
            // `.unwrap()` / `.expect(`
            "unwrap" | "expect" => i > 0 && toks[i - 1].kind.is_punct('.'),
            // panicking macros
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                toks.get(i + 1).is_some_and(|t| t.kind.is_punct('!'))
            }
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                rule: "no-panic-tick",
                path: ctx.path.to_string(),
                line: tok.line,
                message: format!(
                    "`{s}` in a tick-path file: hot loops must degrade through error paths, \
                     not tear down a sweep; return an error/sentinel, or allowlist a site whose \
                     invariant is locally provable"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let krate = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next());
        let ctx = FileCtx {
            path,
            lexed: &lexed,
            is_test_file: path.contains("/tests/") || path.contains("/benches/"),
            krate,
        };
        let mut out = Vec::new();
        run_token_rules(&ctx, &mut out);
        out
    }

    #[test]
    fn default_hasher_flags_two_arg_hashmap() {
        let src = "struct S { m: HashMap<u64, u32>, }";
        let d = run("crates/sim/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "default-hasher");
    }

    #[test]
    fn default_hasher_accepts_explicit_hasher() {
        let src = "struct S { m: HashMap<u64, u32, FastBuildHasher>, s: HashSet<u64, B>, }\n\
                   fn f() { let m: HashMap<u64, Vec<u64>, FastBuildHasher> = HashMap::with_hasher(FastBuildHasher::default()); }";
        let d = run("crates/sim/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn default_hasher_skips_use_and_tests() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)] mod t { fn f() { let m: HashMap<u8, u8> = HashMap::new(); } }";
        let d = run("crates/sim/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn default_hasher_counts_nested_generics() {
        let src = "struct S { m: HashMap<u64, Vec<(u64, u32)>>, }";
        let d = run("crates/sim/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        // fn types with arrows inside the generics
        let src2 = "struct S { m: HashMap<u64, fn(u32, u8) -> u64, H>, }";
        assert!(run("crates/sim/src/x.rs", src2).is_empty());
    }

    #[test]
    fn map_iteration_flags_values_chain_and_for() {
        let src = "struct S { index: Mutex<HashMap<u64, R, H>>, }\n\
                   impl S { fn f(&self) -> Vec<R> { self.index.lock().unwrap().values().cloned().collect() } }\n\
                   fn g(m: &HashMap<u64, u32, H>) { for (k, v) in m { } }";
        let d = run("crates/harness/src/x.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["map-iteration", "map-iteration"], "{d:?}");
    }

    #[test]
    fn map_iteration_ignores_vec_and_lookups() {
        let src = "fn f(items: Vec<u64>, m: &HashMap<u64, u32, H>) -> u32 {\n\
                     for x in items.iter() { }\n\
                     *m.get(&3).unwrap_or(&0)\n\
                   }";
        let d = run("crates/harness/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wall_clock_only_in_result_affecting_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(run("crates/sim/src/x.rs", src).len(), 1);
        assert!(run("crates/harness/src/x.rs", src).is_empty());
        assert!(run("crates/fabric/src/x.rs", src).is_empty());
        // test scopes exempt
        let src_t = "#[cfg(test)] mod t { fn f() { Instant::now(); } }";
        assert!(run("crates/sim/src/x.rs", src_t).is_empty());
    }

    #[test]
    fn no_unsafe_flags_everywhere_even_tests() {
        let src = "#[cfg(test)] mod t { fn f() { unsafe { } } }";
        let d = run("crates/sim/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-unsafe");
    }

    #[test]
    fn no_panic_tick_scoped_to_tick_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let d = run("crates/sim/src/sm.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-panic-tick");
        assert!(run("crates/sim/src/metrics.rs", src).is_empty());
        // tests in tick files stay free
        let src_t = "#[test] fn t() { Some(1).unwrap(); panic!(\"x\"); }";
        assert!(run("crates/sim/src/sm.rs", src_t).is_empty());
    }
}
