//! Schema-drift detection.
//!
//! The serialized shapes that cross a process or filesystem boundary —
//! `SimReport` JSON, the `JobKey` canonical string, store record lines,
//! and every fabric `proto::Msg` variant — are fingerprinted from
//! source (field-name string literals in the serializer functions, plus
//! enum variant names) and pinned in `crates/lint/schema.manifest`
//! together with the schema version constant in force when they were
//! blessed. Changing a shape without bumping its version constant is a
//! lint failure; `--bless-schema` re-pins the manifest and refuses to
//! bless exactly that case.

use crate::lexer::{Lexed, TokKind};
use crate::rules::Diagnostic;

/// One fingerprinted wire/store shape.
pub struct SchemaTarget {
    /// Manifest key.
    pub name: &'static str,
    /// Repo-relative file the shape lives in.
    pub path: &'static str,
    /// The version constant that must be bumped when the shape changes.
    pub version_const: &'static str,
    /// Serializer functions whose space-free string literals form the
    /// field set (every function with a matching name contributes).
    pub fns: &'static [&'static str],
    /// Enum whose variant names join the fingerprint (the fabric `Msg`).
    pub enum_name: Option<&'static str>,
}

/// The pinned shapes. Order here is the manifest order.
pub const TARGETS: &[SchemaTarget] = &[
    SchemaTarget {
        name: "sim_report",
        path: "crates/sim/src/metrics.rs",
        version_const: "REPORT_SCHEMA_VERSION",
        fns: &["result_fields", "to_json_value"],
        enum_name: None,
    },
    SchemaTarget {
        name: "job_key",
        path: "crates/harness/src/job.rs",
        version_const: "SCHEMA_VERSION",
        fns: &["of"],
        enum_name: None,
    },
    SchemaTarget {
        name: "store_record",
        path: "crates/harness/src/store.rs",
        version_const: "STORE_VERSION",
        fns: &["record_json"],
        enum_name: None,
    },
    SchemaTarget {
        name: "fabric_msgs",
        path: "crates/fabric/src/proto.rs",
        version_const: "PROTOCOL_VERSION",
        fns: &[
            "to_json",
            "job_to_json",
            "record_to_json",
            "failure_to_json",
            "telemetry_to_json",
            "filters_to_json",
        ],
        enum_name: Some("Msg"),
    },
];

/// Where the `Msg` variants must each be exercised.
pub const WIRE_PROPS_PATH: &str = "crates/fabric/tests/wire_props.rs";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The measured state of one target in the live source tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measured {
    pub fingerprint: u64,
    pub version: u32,
    pub fields: usize,
}

/// Fingerprints `target` from its lexed file. Returns `None` when the
/// version constant or every serializer function is missing (that is
/// reported as its own diagnostic by [`check`]).
pub fn measure(target: &SchemaTarget, lexed: &Lexed) -> Option<Measured> {
    let version = find_const_u32(lexed, target.version_const)?;
    let mut parts: Vec<String> = Vec::new();
    if let Some(en) = target.enum_name {
        let variants = enum_variants(lexed, en);
        if variants.is_empty() {
            return None;
        }
        for v in variants {
            parts.push(format!("variant:{v}"));
        }
    }
    let mut found_fn = false;
    for f in target.fns {
        for lits in fn_literals(lexed, f) {
            found_fn = true;
            for lit in lits {
                parts.push(format!("lit:{lit}"));
            }
        }
    }
    if !found_fn {
        return None;
    }
    let mut h = FNV_OFFSET;
    for p in &parts {
        h = fnv1a(h, p.as_bytes());
        h = fnv1a(h, b";");
    }
    Some(Measured {
        fingerprint: h,
        version,
        fields: parts.len(),
    })
}

/// Finds `const NAME: u32 = <n>;` (also `pub const`).
fn find_const_u32(lexed: &Lexed, name: &str) -> Option<u32> {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if !toks[i].kind.is_ident(name) {
            continue;
        }
        if i == 0 || !toks[i - 1].kind.is_ident("const") {
            continue;
        }
        // NAME : u32 = <num> ;
        for t in toks.iter().skip(i + 1).take(8) {
            if let TokKind::Num(n) = &t.kind {
                let digits: String = n.chars().take_while(|c| c.is_ascii_digit()).collect();
                return digits.parse().ok();
            }
            if t.kind.is_punct(';') {
                break;
            }
        }
    }
    None
}

/// Collects, for every `fn name`, the space-free string literals inside
/// its body (field keys and canonical format strings are space-free;
/// messages for humans are not).
fn fn_literals(lexed: &Lexed, name: &str) -> Vec<Vec<String>> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].kind.is_ident("fn") && toks[i + 1].kind.is_ident(name) {
            // Find the body `{`, skipping the signature (and any
            // where-clause); default bodies in traits may be absent.
            let mut j = i + 2;
            let mut angle = 0isize;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') if !toks[j - 1].kind.is_punct('-') => angle -= 1,
                    TokKind::Punct('{') if angle <= 0 => break,
                    TokKind::Punct(';') if angle <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() || toks[j].kind.is_punct(';') {
                i = j;
                continue;
            }
            let mut depth = 0isize;
            let mut lits = Vec::new();
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Str(s) if !s.contains(' ') => lits.push(s.clone()),
                    _ => {}
                }
                j += 1;
            }
            out.push(lits);
            i = j;
        }
        i += 1;
    }
    out
}

/// Parses the variant names of `enum NAME { ... }`.
pub fn enum_variants(lexed: &Lexed, name: &str) -> Vec<String> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].kind.is_ident("enum") && toks[i + 1].kind.is_ident(name) {
            // Skip generics to the opening `{`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].kind.is_punct('{') {
                j += 1;
            }
            let mut depth = 0isize;
            let mut round = 0isize;
            let mut at_variant = true; // next depth-1 ident is a variant name
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('{') => {
                        depth += 1;
                        if depth > 1 {
                            at_variant = false;
                        }
                    }
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            return out;
                        }
                    }
                    TokKind::Punct('(') | TokKind::Punct('[') => round += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => round -= 1,
                    TokKind::Punct(',') if depth == 1 && round == 0 => at_variant = true,
                    TokKind::Ident(v) if depth == 1 && round == 0 && at_variant => {
                        out.push(v.clone());
                        at_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// One manifest line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    pub name: String,
    pub version: u32,
    pub fingerprint: u64,
    pub fields: usize,
}

/// Parses `schema.manifest` lines: `name v<ver> fp=<hex> fields=<n>`.
pub fn parse_manifest(src: &str) -> Vec<ManifestEntry> {
    let mut out = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(ver), Some(fp), Some(fields)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let (Some(ver), Some(fp), Some(fields)) = (
            ver.strip_prefix('v').and_then(|v| v.parse().ok()),
            fp.strip_prefix("fp=")
                .and_then(|v| u64::from_str_radix(v, 16).ok()),
            fields.strip_prefix("fields=").and_then(|v| v.parse().ok()),
        ) else {
            continue;
        };
        out.push(ManifestEntry {
            name: name.to_string(),
            version: ver,
            fingerprint: fp,
            fields,
        });
    }
    out
}

/// Renders a manifest from measured targets.
pub fn render_manifest(measured: &[(&SchemaTarget, Measured)]) -> String {
    let mut s = String::from(
        "# valley-lint schema manifest — pinned wire/store shapes.\n\
         # Regenerate with `cargo run -p valley-lint -- --bless-schema` AFTER bumping\n\
         # the relevant schema version constant; blessing refuses drift without a bump.\n",
    );
    for (t, m) in measured {
        s.push_str(&format!(
            "{} v{} fp={:016x} fields={}\n",
            t.name, m.version, m.fingerprint, m.fields
        ));
    }
    s
}

/// Checks every target against the pinned manifest, and `Msg` variant
/// coverage in `wire_props.rs`. `lookup` resolves a repo-relative path
/// to its lexed file.
pub fn check<'a>(
    manifest_src: &str,
    lookup: impl Fn(&str) -> Option<&'a Lexed>,
    out: &mut Vec<Diagnostic>,
) {
    let manifest = parse_manifest(manifest_src);
    for target in TARGETS {
        let Some(lexed) = lookup(target.path) else {
            out.push(Diagnostic {
                rule: "schema-drift",
                path: target.path.to_string(),
                line: 0,
                message: format!(
                    "schema target `{}` file not found in workspace scan",
                    target.name
                ),
            });
            continue;
        };
        let Some(m) = measure(target, lexed) else {
            out.push(Diagnostic {
                rule: "schema-drift",
                path: target.path.to_string(),
                line: 0,
                message: format!(
                    "cannot measure schema target `{}`: `{}` or its serializer fns \
                     ({}) not found — update crates/lint/src/schema.rs if they moved",
                    target.name,
                    target.version_const,
                    target.fns.join(", ")
                ),
            });
            continue;
        };
        let Some(pinned) = manifest.iter().find(|e| e.name == target.name) else {
            out.push(Diagnostic {
                rule: "schema-drift",
                path: target.path.to_string(),
                line: 0,
                message: format!(
                    "schema target `{}` missing from schema.manifest; run --bless-schema",
                    target.name
                ),
            });
            continue;
        };
        match (
            m.fingerprint == pinned.fingerprint,
            m.version == pinned.version,
        ) {
            (true, true) => {}
            (false, true) => out.push(Diagnostic {
                rule: "schema-drift",
                path: target.path.to_string(),
                line: 0,
                message: format!(
                    "serialized shape of `{}` changed ({} fields -> {}) without bumping \
                     `{}` (still v{}); bump the constant, then run --bless-schema",
                    target.name, pinned.fields, m.fields, target.version_const, m.version
                ),
            }),
            (fp_same, false) => out.push(Diagnostic {
                rule: "schema-drift",
                path: target.path.to_string(),
                line: 0,
                message: if fp_same {
                    format!(
                        "`{}` was bumped to v{} but the `{}` shape is unchanged from the \
                         pinned v{}; run --bless-schema to re-pin (or revert the bump)",
                        target.version_const, m.version, target.name, pinned.version
                    )
                } else {
                    format!(
                        "`{}` shape changed and `{}` bumped v{} -> v{}; run --bless-schema \
                         to re-pin the manifest",
                        target.name, target.version_const, pinned.version, m.version
                    )
                },
            }),
        }
    }
    check_msg_coverage(&lookup, out);
}

/// Every `proto::Msg` variant must be named (as an identifier) in the
/// wire round-trip property tests.
fn check_msg_coverage<'a>(lookup: &impl Fn(&str) -> Option<&'a Lexed>, out: &mut Vec<Diagnostic>) {
    let Some(proto) = lookup("crates/fabric/src/proto.rs") else {
        return; // already reported by the target loop
    };
    let variants = enum_variants(proto, "Msg");
    let Some(props) = lookup(WIRE_PROPS_PATH) else {
        out.push(Diagnostic {
            rule: "msg-coverage",
            path: WIRE_PROPS_PATH.to_string(),
            line: 0,
            message: "wire_props.rs not found; every proto::Msg variant must be exercised there"
                .to_string(),
        });
        return;
    };
    for v in variants {
        let covered = props.toks.iter().any(|t| t.kind.is_ident(&v));
        if !covered {
            out.push(Diagnostic {
                rule: "msg-coverage",
                path: WIRE_PROPS_PATH.to_string(),
                line: 0,
                message: format!(
                    "proto::Msg variant `{v}` is never named in wire_props.rs; add it to the \
                     round-trip generators so encode/decode stays exercised"
                ),
            });
        }
    }
}

/// Re-pins the manifest. Refuses the one dangerous case: a shape whose
/// fingerprint drifted while its version constant did not move.
pub fn bless<'a>(
    old_manifest: Option<&str>,
    lookup: impl Fn(&str) -> Option<&'a Lexed>,
) -> Result<String, String> {
    let old = old_manifest.map(parse_manifest).unwrap_or_default();
    let mut measured = Vec::new();
    for target in TARGETS {
        let lexed = lookup(target.path)
            .ok_or_else(|| format!("schema target `{}`: {} not found", target.name, target.path))?;
        let m = measure(target, lexed).ok_or_else(|| {
            format!(
                "schema target `{}`: cannot measure (missing `{}` or serializer fns)",
                target.name, target.version_const
            )
        })?;
        if let Some(pinned) = old.iter().find(|e| e.name == target.name) {
            if m.fingerprint != pinned.fingerprint && m.version == pinned.version {
                return Err(format!(
                    "refusing to bless `{}`: shape changed but `{}` is still v{}; \
                     bump the version constant first",
                    target.name, target.version_const, m.version
                ));
            }
        }
        measured.push((target, m));
    }
    Ok(render_manifest(&measured))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const METRICS_LIKE: &str = r#"
        pub const REPORT_SCHEMA_VERSION: u32 = 2;
        impl R {
            fn result_fields(&self) -> Vec<(String, J)> {
                vec![("v".into(), J::N), ("cycles".into(), J::N)]
            }
            fn to_json_value(&self) -> J {
                let mut f = self.result_fields();
                f.push(("epoch_hist".into(), J::N));
                J::Obj(f)
            }
        }
    "#;

    fn target() -> &'static SchemaTarget {
        TARGETS.iter().find(|t| t.name == "sim_report").unwrap()
    }

    #[test]
    fn measure_is_stable_and_version_parsed() {
        let a = measure(target(), &lex(METRICS_LIKE)).unwrap();
        let b = measure(target(), &lex(METRICS_LIKE)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.version, 2);
        assert_eq!(a.fields, 3); // v, cycles, epoch_hist
    }

    #[test]
    fn added_field_changes_fingerprint() {
        let a = measure(target(), &lex(METRICS_LIKE)).unwrap();
        let drifted = METRICS_LIKE.replace(
            "(\"cycles\".into(), J::N)",
            "(\"cycles\".into(), J::N), (\"new_metric\".into(), J::N)",
        );
        let b = measure(target(), &lex(&drifted)).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(b.fields, 4);
    }

    #[test]
    fn human_messages_do_not_count() {
        let a = measure(target(), &lex(METRICS_LIKE)).unwrap();
        let with_msg = METRICS_LIKE.replace(
            "J::Obj(f)",
            "{ debug_log(\"building the report now\"); J::Obj(f) }",
        );
        let b = measure(target(), &lex(&with_msg)).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn enum_variants_parsed_with_payloads() {
        let src = "pub enum Msg { Hello { version: u32, token: u64 }, Lease(JobSpec, u64), Drained, Ack, }";
        let v = enum_variants(&lex(src), "Msg");
        assert_eq!(v, vec!["Hello", "Lease", "Drained", "Ack"]);
    }

    #[test]
    fn manifest_round_trips() {
        let m = Measured {
            fingerprint: 0xdead_beef_0123_4567,
            version: 2,
            fields: 24,
        };
        let s = render_manifest(&[(target(), m.clone())]);
        let parsed = parse_manifest(&s);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "sim_report");
        assert_eq!(parsed[0].version, 2);
        assert_eq!(parsed[0].fingerprint, m.fingerprint);
        assert_eq!(parsed[0].fields, 24);
    }

    #[test]
    fn bless_refuses_drift_without_bump() {
        let lexed = lex(METRICS_LIKE);
        let m = measure(target(), &lexed).unwrap();
        let pinned = render_manifest(&[(target(), m)]);
        let drifted_src = METRICS_LIKE.replace(
            "(\"cycles\".into(), J::N)",
            "(\"cycles\".into(), J::N), (\"extra\".into(), J::N)",
        );
        let drifted = lex(&drifted_src);
        // Only exercise the sim_report target: stub the other paths to
        // the same file so bless can measure them is NOT possible (their
        // consts are missing) — so restrict via lookup returning None →
        // expect an error either way; check the refusal message comes
        // first for the drift case by querying measure directly.
        let m2 = measure(target(), &drifted).unwrap();
        let old = parse_manifest(&pinned);
        let pin = old.iter().find(|e| e.name == "sim_report").unwrap();
        assert_ne!(m2.fingerprint, pin.fingerprint);
        assert_eq!(m2.version, pin.version);
    }
}
