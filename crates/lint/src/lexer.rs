//! A lightweight hand-rolled Rust lexer for the lint rules.
//!
//! This is deliberately **not** a full Rust parser: the rules only need a
//! token stream with comments, string *contents* and attributes out of
//! the way, plus two pieces of scope information a plain `grep` cannot
//! provide — whether a token sits inside test-only code (`#[cfg(test)]`
//! scopes, `#[test]` functions) and the `mod` path it belongs to. String
//! literals are kept as opaque `Str` tokens (the schema fingerprints are
//! built from serialized-field-name literals); everything inside
//! comments and attribute bodies is stripped.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Whether the token sits in test-only code: under a `#[cfg(test)]`
    /// or `#[test]` item, or in a file whose inner attributes gate it on
    /// `test`.
    pub in_test: bool,
    /// Index into [`Lexed::mod_paths`] naming the enclosing module path.
    pub path_id: u32,
    /// The token itself.
    pub kind: TokKind,
}

/// Token kinds. Multi-character operators appear as consecutive
/// [`TokKind::Punct`] tokens (`::` is two `:`), which is all the
/// pattern-matching rules need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// String literal *content* (regular, raw or byte).
    Str(String),
    /// Numeric literal (verbatim, including suffix).
    Num(String),
    /// A single punctuation character.
    Punct(char),
    /// A lifetime or loop label (`'a`, `'outer`); char literals are
    /// dropped entirely.
    Lifetime,
}

impl TokKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokKind::Ident(s) if s == name)
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokKind::Punct(p) if *p == c)
    }
}

/// A fully lexed file: the attribute-stripped token stream plus the
/// module-path table the tokens index into.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// The token stream, comments/attributes stripped, test scopes and
    /// module paths resolved.
    pub toks: Vec<Tok>,
    /// Module paths, indexed by [`Tok::path_id`]; entry 0 is the crate
    /// root (empty path).
    pub mod_paths: Vec<String>,
}

// ---------------------------------------------------------------------
// Pass 1: raw tokens
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RawTok {
    line: u32,
    kind: TokKind,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into raw tokens: comments and char literals dropped,
/// strings collapsed to content tokens, everything else passed through.
fn raw_tokens(src: &str) -> Vec<RawTok> {
    let mut c = Cursor {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                let s = lex_plain_string(&mut c);
                out.push(RawTok {
                    line,
                    kind: TokKind::Str(s),
                });
            }
            b'\'' => lex_quote(&mut c, line, &mut out),
            b if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                let ident = &src[start..c.pos];
                // String-literal prefixes: r"", r#""#, b"", br#""#, c"".
                let is_prefix = matches!(ident, "r" | "b" | "c" | "br" | "rb" | "cr");
                match c.peek() {
                    Some(b'"') if is_prefix => {
                        let s = if ident.contains('r') && ident != "b" && ident != "c" {
                            lex_raw_string(&mut c, 0)
                        } else {
                            lex_plain_string(&mut c)
                        };
                        out.push(RawTok {
                            line,
                            kind: TokKind::Str(s),
                        });
                    }
                    Some(b'#') if is_prefix && ident.contains('r') => {
                        let mut hashes = 0usize;
                        while c.peek_at(hashes) == Some(b'#') {
                            hashes += 1;
                        }
                        if c.peek_at(hashes) == Some(b'"') {
                            for _ in 0..hashes {
                                c.bump();
                            }
                            let s = lex_raw_string(&mut c, hashes);
                            out.push(RawTok {
                                line,
                                kind: TokKind::Str(s),
                            });
                        } else {
                            out.push(RawTok {
                                line,
                                kind: TokKind::Ident(ident.to_string()),
                            });
                        }
                    }
                    _ => out.push(RawTok {
                        line,
                        kind: TokKind::Ident(ident.to_string()),
                    }),
                }
            }
            b if b.is_ascii_digit() => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                // Float continuation: `1.5`, but not the range `1..5`.
                if c.peek() == Some(b'.') && c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                    c.bump();
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                }
                out.push(RawTok {
                    line,
                    kind: TokKind::Num(src[start..c.pos].to_string()),
                });
            }
            other => {
                c.bump();
                if other.is_ascii() {
                    out.push(RawTok {
                        line,
                        kind: TokKind::Punct(other as char),
                    });
                }
                // Non-ASCII bytes only occur inside strings/comments in
                // this workspace; stray ones are simply dropped.
            }
        }
    }
    out
}

/// Lexes a `"..."` string body (cursor on the opening quote), returning
/// the raw content with escapes left verbatim minus the backslash
/// processing needed to find the closing quote.
fn lex_plain_string(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening quote
    let mut s = String::new();
    while let Some(b) = c.bump() {
        match b {
            b'"' => break,
            b'\\' => {
                if let Some(e) = c.bump() {
                    s.push('\\');
                    s.push(e as char);
                }
            }
            _ => s.push(b as char),
        }
    }
    s
}

/// Lexes a raw string opened with `hashes` hashes (cursor on the opening
/// quote).
fn lex_raw_string(c: &mut Cursor<'_>, hashes: usize) -> String {
    c.bump(); // opening quote
    let mut s = String::new();
    while let Some(b) = c.bump() {
        if b == b'"' {
            let mut n = 0usize;
            while n < hashes && c.peek_at(n) == Some(b'#') {
                n += 1;
            }
            if n == hashes {
                for _ in 0..hashes {
                    c.bump();
                }
                break;
            }
        }
        s.push(b as char);
    }
    s
}

/// Disambiguates `'` between lifetimes/labels (kept as [`TokKind::Lifetime`])
/// and char literals (dropped).
fn lex_quote(c: &mut Cursor<'_>, line: u32, out: &mut Vec<RawTok>) {
    c.bump(); // the quote
    match c.peek() {
        Some(b'\\') => {
            // Escaped char literal: '\n', '\\', '\u{..}'.
            c.bump();
            if c.peek() == Some(b'u') {
                while c.peek().is_some_and(|b| b != b'\'') {
                    c.bump();
                }
            } else {
                c.bump();
            }
            c.bump(); // closing quote
        }
        Some(b) if is_ident_start(b) => {
            let mut len = 1;
            while c.peek_at(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if c.peek_at(len) == Some(b'\'') {
                // 'a' — char literal; skip body and closing quote.
                for _ in 0..=len {
                    c.bump();
                }
            } else {
                // 'a / 'outer — lifetime or label.
                for _ in 0..len {
                    c.bump();
                }
                out.push(RawTok {
                    line,
                    kind: TokKind::Lifetime,
                });
            }
        }
        Some(_) => {
            // '.' and friends: char literal.
            c.bump();
            c.bump();
        }
        None => {}
    }
}

// ---------------------------------------------------------------------
// Pass 2: attribute stripping, cfg(test) scopes, module paths
// ---------------------------------------------------------------------

/// Lexes a file: raw tokens, then attribute stripping with `cfg(test)`
/// scope and module-path resolution.
pub fn lex(src: &str) -> Lexed {
    let raw = raw_tokens(src);
    let mut toks = Vec::with_capacity(raw.len());
    let mut mod_paths = vec![String::new()];
    let mut mod_stack: Vec<(String, usize)> = Vec::new(); // (name, close_depth)
    let mut test_stack: Vec<usize> = Vec::new(); // close depths
    let mut cur_path_id = 0u32;
    let mut depth = 0usize;
    // A `#[cfg(test)]`/`#[test]` attribute was seen and its item's body
    // has not opened yet.
    let mut pending_test = false;
    // Inner `#![cfg(test)]`-style attribute gates the whole file.
    let mut file_test = false;

    let mut i = 0usize;
    while i < raw.len() {
        // Attribute: `#[...]` or `#![...]`.
        if raw[i].kind.is_punct('#') {
            let (bracket_at, inner) = match raw.get(i + 1).map(|t| &t.kind) {
                Some(k) if k.is_punct('[') => (i + 1, false),
                Some(k)
                    if k.is_punct('!') && raw.get(i + 2).is_some_and(|t| t.kind.is_punct('[')) =>
                {
                    (i + 2, true)
                }
                _ => {
                    push_tok(
                        &mut toks,
                        &raw[i],
                        &test_stack,
                        pending_test,
                        file_test,
                        cur_path_id,
                    );
                    i += 1;
                    continue;
                }
            };
            // Collect the attribute body to the matching `]`.
            let mut j = bracket_at + 1;
            let mut brackets = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < raw.len() && brackets > 0 {
                match &raw[j].kind {
                    TokKind::Punct('[') => brackets += 1,
                    TokKind::Punct(']') => brackets -= 1,
                    TokKind::Ident(s) => idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = idents.first() == Some(&"test")
                || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                if inner {
                    file_test = true;
                } else {
                    pending_test = true;
                }
            }
            i = j;
            continue;
        }

        match &raw[i].kind {
            TokKind::Punct('{') => {
                // `mod NAME {` opens a module scope; the `mod` token was
                // emitted two tokens back.
                if i >= 2 && raw[i - 2].kind.is_ident("mod") {
                    if let TokKind::Ident(name) = &raw[i - 1].kind {
                        mod_stack.push((name.clone(), depth));
                        cur_path_id = intern_path(&mut mod_paths, &mod_stack);
                    }
                }
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
                push_tok(
                    &mut toks,
                    &raw[i],
                    &test_stack,
                    false,
                    file_test,
                    cur_path_id,
                );
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                if mod_stack.last().map(|(_, d)| *d) == Some(depth) {
                    mod_stack.pop();
                    cur_path_id = intern_path(&mut mod_paths, &mod_stack);
                }
                push_tok(
                    &mut toks,
                    &raw[i],
                    &test_stack,
                    pending_test,
                    file_test,
                    cur_path_id,
                );
            }
            TokKind::Punct(';') if pending_test && test_stack.len() < depth + 1 => {
                // `#[cfg(test)] use ...;` — the scope was just that item.
                push_tok(
                    &mut toks,
                    &raw[i],
                    &test_stack,
                    true,
                    file_test,
                    cur_path_id,
                );
                pending_test = false;
            }
            _ => push_tok(
                &mut toks,
                &raw[i],
                &test_stack,
                pending_test,
                file_test,
                cur_path_id,
            ),
        }
        i += 1;
    }

    Lexed { toks, mod_paths }
}

fn push_tok(
    toks: &mut Vec<Tok>,
    raw: &RawTok,
    test_stack: &[usize],
    pending_test: bool,
    file_test: bool,
    path_id: u32,
) {
    toks.push(Tok {
        line: raw.line,
        in_test: file_test || pending_test || !test_stack.is_empty(),
        path_id,
        kind: raw.kind.clone(),
    });
}

fn intern_path(paths: &mut Vec<String>, stack: &[(String, usize)]) -> u32 {
    let path = stack
        .iter()
        .map(|(n, _)| n.as_str())
        .collect::<Vec<_>>()
        .join("::");
    if let Some(i) = paths.iter().position(|p| *p == path) {
        return i as u32;
    }
    paths.push(path);
    (paths.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<(&str, bool)> {
        lexed
            .toks
            .iter()
            .filter_map(|t| t.kind.ident().map(|s| (s, t.in_test)))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let x = "HashMap in a string";
            let r = r#"raw HashMap"#;
            let c = 'H';
        "##;
        let lexed = lex(src);
        assert!(!idents(&lexed).iter().any(|(s, _)| *s == "HashMap"));
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["HashMap in a string", "raw HashMap"]);
    }

    #[test]
    fn cfg_test_scopes_mark_tokens() {
        let src = r#"
            fn live() { HashMap::new(); }
            #[cfg(test)]
            mod tests {
                fn helper() { HashMap::new(); }
            }
            fn live_again() { HashSet::new(); }
            #[test]
            fn a_test() { HashMap::new(); }
        "#;
        let lexed = lex(src);
        let maps: Vec<bool> = lexed
            .toks
            .iter()
            .filter(|t| t.kind.is_ident("HashMap") || t.kind.is_ident("HashSet"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(maps, vec![false, true, false, true]);
    }

    #[test]
    fn attributes_are_stripped_but_code_kept() {
        let src = r#"
            #[derive(Clone, Hash)]
            struct X;
            #[cfg(feature = "alloc-audit")]
            fn gated() { Instant::now(); }
        "#;
        let lexed = lex(src);
        let ids = idents(&lexed);
        assert!(!ids.iter().any(|(s, _)| *s == "derive" || *s == "Hash"));
        // Feature gates are NOT test scopes: the gated body stays live.
        assert!(ids.iter().any(|(s, t)| *s == "Instant" && !*t));
    }

    #[test]
    fn module_paths_are_tracked() {
        let src = r#"
            mod outer {
                mod inner {
                    fn f() { target(); }
                }
            }
            fn g() { other(); }
        "#;
        let lexed = lex(src);
        let t = lexed
            .toks
            .iter()
            .find(|t| t.kind.is_ident("target"))
            .unwrap();
        assert_eq!(lexed.mod_paths[t.path_id as usize], "outer::inner");
        let g = lexed
            .toks
            .iter()
            .find(|t| t.kind.is_ident("other"))
            .unwrap();
        assert_eq!(lexed.mod_paths[g.path_id as usize], "");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } let c = 'x'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 4); // 'a decl, 'a use, 'outer label, break 'outer
        assert!(!lexed.toks.iter().any(|t| t.kind.is_ident("x'")));
    }

    #[test]
    fn cfg_test_on_single_item_does_not_leak() {
        let src = r#"
            #[cfg(test)]
            use std::collections::HashMap;
            fn live() { HashSet::new(); }
        "#;
        let lexed = lex(src);
        let map = lexed
            .toks
            .iter()
            .find(|t| t.kind.is_ident("HashMap"))
            .unwrap();
        assert!(map.in_test);
        let set = lexed
            .toks
            .iter()
            .find(|t| t.kind.is_ident("HashSet"))
            .unwrap();
        assert!(!set.in_test);
    }
}
