//! Integration battery for `valley-lint`: every rule family is
//! demonstrated on a fixture (one firing case, one allowlisted case),
//! the schema fingerprints are shown to catch simulated drift in the
//! *real* workspace sources, and the workspace itself is asserted
//! clean — the same check CI runs via `--expect-clean`.
//!
//! Fixture sources live under `tests/fixtures/` (a directory the
//! workspace walker skips, since fixtures contain violations on
//! purpose) and are linted under virtual repo paths so crate-scoped
//! rules see them in the right crate.

use std::path::{Path, PathBuf};
use valley_lint::rules::Diagnostic;
use valley_lint::{lint_sources, LintOutcome};

const DEFAULT_HASHER: &str = include_str!("fixtures/default_hasher.rs");
const MAP_ITERATION: &str = include_str!("fixtures/map_iteration.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const UNSAFE_BLOCK: &str = include_str!("fixtures/unsafe_block.rs");
const PANIC_TICK: &str = include_str!("fixtures/panic_tick.rs");

fn lint_one(path: &str, src: &str, allowlist: &str) -> LintOutcome {
    lint_sources(&[(path.to_string(), src.to_string())], allowlist, "").expect("lint run")
}

fn rules_of(outcome: &LintOutcome) -> Vec<&'static str> {
    outcome.diagnostics.iter().map(|d| d.rule).collect()
}

/// An allowlist entry for `rule` covering the whole fixture `path`.
fn allow_entry(rule: &str, path: &str) -> String {
    format!(
        "[[allow]]\nrule = \"{rule}\"\npath = \"{path}\"\nwhy = \"fixture: \
         demonstrates that a justified allowlist entry suppresses this rule\"\n"
    )
}

#[test]
fn default_hasher_fires_in_engine_crates_and_allowlists() {
    let path = "crates/sim/src/fixture.rs";
    let out = lint_one(path, DEFAULT_HASHER, "");
    assert!(
        rules_of(&out).contains(&"default-hasher"),
        "expected default-hasher, got: {:?}",
        out.diagnostics
    );

    let allowed = lint_one(path, DEFAULT_HASHER, &allow_entry("default-hasher", path));
    assert!(
        !rules_of(&allowed).contains(&"default-hasher"),
        "allowlisted fixture still fired: {:?}",
        allowed.diagnostics
    );
    assert!(allowed.suppressed > 0, "suppression must be counted");
}

#[test]
fn map_iteration_fires_even_with_deterministic_hashers() {
    let path = "crates/sim/src/fixture.rs";
    let out = lint_one(path, MAP_ITERATION, "");
    assert!(
        rules_of(&out).contains(&"map-iteration"),
        "expected map-iteration, got: {:?}",
        out.diagnostics
    );

    let allowed = lint_one(path, MAP_ITERATION, &allow_entry("map-iteration", path));
    assert!(!rules_of(&allowed).contains(&"map-iteration"));
}

#[test]
fn wall_clock_fires_only_in_result_affecting_crates() {
    let out = lint_one("crates/core/src/fixture.rs", WALL_CLOCK, "");
    assert!(
        rules_of(&out).contains(&"wall-clock"),
        "expected wall-clock in crates/core, got: {:?}",
        out.diagnostics
    );

    // Harness timing (wall-clock telemetry, lease clocks) is exempt.
    let harness = lint_one("crates/harness/src/fixture.rs", WALL_CLOCK, "");
    assert!(
        !rules_of(&harness).contains(&"wall-clock"),
        "wall-clock must not fire outside result-affecting crates: {:?}",
        harness.diagnostics
    );

    let path = "crates/core/src/fixture.rs";
    let allowed = lint_one(path, WALL_CLOCK, &allow_entry("wall-clock", path));
    assert!(!rules_of(&allowed).contains(&"wall-clock"));
}

#[test]
fn unsafe_fires_everywhere_and_allowlists() {
    let path = "crates/harness/src/fixture.rs";
    let out = lint_one(path, UNSAFE_BLOCK, "");
    assert!(
        rules_of(&out).contains(&"no-unsafe"),
        "expected no-unsafe, got: {:?}",
        out.diagnostics
    );

    let allowed = lint_one(path, UNSAFE_BLOCK, &allow_entry("no-unsafe", path));
    assert!(!rules_of(&allowed).contains(&"no-unsafe"));
}

#[test]
fn panic_in_tick_path_fires_but_not_in_test_scopes() {
    // Linted under a real tick-path name so the rule applies; the
    // fixture's #[cfg(test)] unwrap must stay exempt, so exactly one
    // diagnostic fires.
    let path = "crates/sim/src/sm.rs";
    let out = lint_one(path, PANIC_TICK, "");
    let hits: Vec<&Diagnostic> = out
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-panic-tick")
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "one non-test unwrap in the fixture: {:?}",
        out.diagnostics
    );

    // The same source under a non-tick-path name is out of scope.
    let elsewhere = lint_one("crates/sim/src/metrics.rs", PANIC_TICK, "");
    assert!(!rules_of(&elsewhere).contains(&"no-panic-tick"));

    let allowed = lint_one(path, PANIC_TICK, &allow_entry("no-panic-tick", path));
    assert!(!rules_of(&allowed).contains(&"no-panic-tick"));
}

#[test]
fn unused_allowlist_entries_are_themselves_diagnostics() {
    let out = lint_one(
        "crates/sim/src/fixture.rs",
        "pub fn nothing() {}\n",
        &allow_entry("no-unsafe", "crates/sim/src/fixture.rs"),
    );
    assert!(
        rules_of(&out).contains(&"unused-allow"),
        "stale allowlist entries must rot loudly: {:?}",
        out.diagnostics
    );
}

// ---- Schema drift on the real sources ----

fn workspace_root() -> PathBuf {
    valley_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

/// The real schema-bearing sources plus the pinned manifest, with one
/// file's contents passed through `mutate`.
fn lint_schema_sources(mutate_path: &str, mutate: impl Fn(&str) -> String) -> LintOutcome {
    let root = workspace_root();
    let mut files = Vec::new();
    let mut paths: Vec<&str> = valley_lint::schema::TARGETS
        .iter()
        .map(|t| t.path)
        .collect();
    paths.push(valley_lint::schema::WIRE_PROPS_PATH);
    for p in paths {
        let src = std::fs::read_to_string(root.join(p)).expect("schema source");
        let src = if p == mutate_path { mutate(&src) } else { src };
        files.push((p.to_string(), src));
    }
    let manifest =
        std::fs::read_to_string(root.join("crates/lint/schema.manifest")).expect("manifest");
    lint_sources(&files, "", &manifest).expect("lint run")
}

fn schema_diags(outcome: &LintOutcome) -> Vec<&Diagnostic> {
    outcome
        .diagnostics
        .iter()
        .filter(|d| d.rule == "schema-drift" || d.rule == "msg-coverage")
        .collect()
}

#[test]
fn unmodified_schema_sources_match_the_pinned_manifest() {
    let out = lint_schema_sources("-", |s| s.to_string());
    assert!(
        schema_diags(&out).is_empty(),
        "pinned manifest must match the tree: {:?}",
        schema_diags(&out)
    );
}

#[test]
fn report_field_change_without_version_bump_is_drift() {
    // Renaming a serialized SimReport field simulates silent schema
    // drift; the fingerprint moves while REPORT_SCHEMA_VERSION stays.
    let out = lint_schema_sources("crates/sim/src/metrics.rs", |s| {
        assert!(s.contains("\"cycles\""), "fixture assumption");
        s.replace("\"cycles\"", "\"cycles_renamed\"")
    });
    let diags = schema_diags(&out);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "schema-drift" && d.message.contains("sim_report")),
        "expected sim_report drift, got: {diags:?}"
    );
}

#[test]
fn report_field_change_with_version_bump_is_clean() {
    let out = lint_schema_sources("crates/sim/src/metrics.rs", |s| {
        s.replace("\"cycles\"", "\"cycles_renamed\"").replace(
            "REPORT_SCHEMA_VERSION: u32 = 2",
            "REPORT_SCHEMA_VERSION: u32 = 3",
        )
    });
    assert!(
        !schema_diags(&out)
            .iter()
            .any(|d| d.message.contains("sim_report") && d.message.contains("without")),
        "bumped drift must pass: {:?}",
        schema_diags(&out)
    );
}

#[test]
fn new_msg_variant_must_be_exercised_by_wire_props() {
    let out = lint_schema_sources("crates/fabric/src/proto.rs", |s| {
        assert!(s.contains("pub enum Msg {"), "fixture assumption");
        s.replace("pub enum Msg {", "pub enum Msg {\n    Bogus,")
    });
    let diags = schema_diags(&out);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "msg-coverage" && d.message.contains("Bogus")),
        "expected msg-coverage for Bogus, got: {diags:?}"
    );
}

// ---- The workspace itself ----

#[test]
fn workspace_is_lint_clean() {
    let out = valley_lint::run(&workspace_root()).expect("lint run");
    assert!(
        out.clean(),
        "workspace must lint clean:\n{}",
        out.diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(out.files > 100, "walker should see the whole workspace");
}
