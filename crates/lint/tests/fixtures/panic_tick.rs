//! Fixture: `.unwrap()` in a tick-path file (linted under a virtual
//! tick-path name) — per-cycle code must not carry panic paths.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    // Unwraps inside test scopes are exempt even in tick-path files.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
