//! Fixture: iterating an unordered map straight into serialized output
//! — deterministic-hasher or not, the *iteration order* is arbitrary.

use std::collections::HashMap;
use valley_core::hash::FastBuildHasher;

pub fn serialize(xs: &[(u64, u32)]) -> String {
    let mut m: HashMap<u64, u32, FastBuildHasher> = HashMap::default();
    for &(k, v) in xs {
        m.insert(k, v);
    }
    let mut out = String::new();
    for (k, v) in m.iter() {
        out.push_str(&format!("{k}={v};"));
    }
    out
}
