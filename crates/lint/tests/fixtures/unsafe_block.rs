//! Fixture: an `unsafe` block — banned workspace-wide.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
