//! Fixture: wall-clock reads inside a result-affecting crate — timing
//! must never leak into simulation results.

use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
