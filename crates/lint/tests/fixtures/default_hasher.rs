//! Fixture: a default-`RandomState` `HashMap` in engine code — the
//! canonical determinism hazard `default-hasher` exists to catch.

use std::collections::HashMap;

pub fn histogram(xs: &[u64]) -> Vec<(u64, u32)> {
    let mut h: HashMap<u64, u32> = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    let mut out: Vec<(u64, u32)> = h.into_iter().collect();
    out.sort_unstable();
    out
}
