//! The full simulated GPU: SMs, the TB scheduler, request/reply crossbars,
//! LLC slices and the DRAM system, advanced cycle by cycle across their
//! three clock domains (core 1.4 GHz, NoC 700 MHz, DRAM 924 MHz).

use crate::config::GpuConfig;
use crate::llc::LlcSlice;
use crate::metrics::{ParallelismIntegrator, SimReport};
use crate::sm::{Sm, SmOutbound};
use crate::trace::{KernelSource, WorkloadSource};
use crate::txn::TxnTable;
use valley_cache::CacheStats;
use valley_core::{AddressMapper, DramAddressMap, PhysAddr};
use valley_dram::DramSystem;
use valley_noc::{Crossbar, Packet};

/// How often (in core cycles) the parallelism metrics are sampled.
const METRIC_SAMPLE_INTERVAL: u64 = 4;

/// The complete simulated GPU.
///
/// Build one with [`GpuSim::new`], then call [`GpuSim::run`] to execute the
/// workload to completion and collect a [`SimReport`].
///
/// # Examples
///
/// See `valley-workloads` and the `quickstart` example; a minimal run:
///
/// ```no_run
/// use valley_core::{AddressMapper, GddrMap, SchemeKind};
/// use valley_sim::{GpuConfig, GpuSim};
/// # fn workload() -> Box<dyn valley_sim::WorkloadSource> { unimplemented!() }
///
/// let map = GddrMap::baseline();
/// let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
/// let sim = GpuSim::new(GpuConfig::table1(), mapper, map, workload());
/// let report = sim.run();
/// println!("{} cycles", report.cycles);
/// ```
pub struct GpuSim {
    cfg: GpuConfig,
    mapper: AddressMapper,
    /// A second copy of the address map for slice routing (the other copy
    /// lives inside the DRAM system for coordinate decoding).
    map: Box<dyn DramAddressMap + Send>,
    dram: DramSystem,
    req_net: Crossbar,
    reply_net: Crossbar,
    sms: Vec<Sm>,
    slices: Vec<LlcSlice>,
    txns: TxnTable,
    workload: Box<dyn WorkloadSource>,
}

/// Kernel-serial TB scheduler state.
struct TbScheduler {
    kernel_idx: usize,
    num_kernels: usize,
    kernel: Option<Box<dyn KernelSource>>,
    next_tb: u64,
    total_tbs: u64,
    retired_base: u64,
    rr_sm: usize,
    age_counter: u64,
    /// Total retired TBs observed at the last `schedule_tbs` run. While a
    /// kernel is loaded and this is unchanged, no SM capacity was freed,
    /// so `schedule_tbs` would provably be a no-op and is skipped.
    retired_seen: u64,
}

/// Outcome of one fast-forward attempt.
enum FastForward {
    /// Simulation resumes densely at the current cycle.
    Resumed,
    /// The cycle safety limit was reached while skipping.
    Truncated,
}

/// One core cycle's worth of a slower clock domain's accumulator
/// arithmetic, exactly as the dense loop performs it (add the ratio,
/// then repeatedly subtract 1.0 — *not* `fract`/`floor`, whose float
/// rounding differs): returns the post-cycle accumulator and how many
/// domain ticks elapse. Shared by `fast_forward`'s pre-check and skip
/// loop so the two can never drift apart and break `run == run_dense`.
#[inline]
fn domain_ticks(acc: f64, per_core: f64) -> (f64, u64) {
    let mut a = acc + per_core;
    let mut ticks = 0u64;
    while a >= 1.0 {
        a -= 1.0;
        ticks += 1;
    }
    (a, ticks)
}

impl TbScheduler {
    fn new(num_kernels: usize) -> Self {
        TbScheduler {
            kernel_idx: 0,
            num_kernels,
            kernel: None,
            next_tb: 0,
            total_tbs: 0,
            retired_base: 0,
            rr_sm: 0,
            age_counter: 0,
            retired_seen: 0,
        }
    }

    fn finished(&self) -> bool {
        self.kernel.is_none() && self.kernel_idx >= self.num_kernels
    }
}

impl GpuSim {
    /// Creates a simulator for `workload` under the mapping scheme
    /// `mapper`, decoding DRAM coordinates through `map`.
    pub fn new<M>(
        cfg: GpuConfig,
        mapper: AddressMapper,
        map: M,
        workload: Box<dyn WorkloadSource>,
    ) -> Self
    where
        M: DramAddressMap + Clone + Send + 'static,
    {
        let dram = DramSystem::new(Box::new(map.clone()), cfg.dram);
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i as u32, &cfg)).collect();
        let slices = (0..cfg.llc_slices)
            .map(|i| LlcSlice::new(i as u16, &cfg))
            .collect();
        GpuSim {
            req_net: Crossbar::new(cfg.num_sms, cfg.llc_slices, cfg.noc_router_latency),
            reply_net: Crossbar::new(cfg.llc_slices, cfg.num_sms, cfg.noc_router_latency),
            sms,
            slices,
            txns: TxnTable::new(),
            workload,
            mapper,
            map: Box::new(map),
            dram,
            cfg,
        }
    }

    /// The LLC slice serving a mapped address: controller-interleaved,
    /// with the low bank bit distinguishing the two slices per controller.
    fn slice_of(map: &dyn DramAddressMap, llc_slices: usize, addr: PhysAddr) -> u16 {
        let nc = map.num_controllers();
        if nc >= llc_slices {
            (map.controller_of(addr) % llc_slices) as u16
        } else {
            let per = llc_slices / nc;
            (map.controller_of(addr) * per + (map.bank_of(addr) % per)) as u16
        }
    }

    /// Runs the workload to completion (or to the cycle safety limit) and
    /// returns the collected metrics, fast-forwarding over provably
    /// event-free cycle spans. The results — cycle count, DRAM statistics
    /// and cache statistics — are bit-identical to [`GpuSim::run_dense`];
    /// see `tests/event_driven_equivalence.rs`.
    pub fn run(self) -> SimReport {
        self.run_with_mode(true)
    }

    /// Runs the workload with the dense reference loop that advances every
    /// component one cycle at a time — the oracle the event-driven fast
    /// path is validated against (and the perf baseline it is measured
    /// against).
    pub fn run_dense(self) -> SimReport {
        self.run_with_mode(false)
    }

    fn run_with_mode(mut self, event_driven: bool) -> SimReport {
        // The event-driven gates translate DRAM-domain event times into
        // core cycles assuming the DRAM clock is no faster than the core
        // clock (true for every shipped config). A custom config that
        // violates it gets the dense loop, keeping run() == run_dense()
        // by construction instead of silently diverging.
        let event_driven = event_driven && self.cfg.dram_per_core() <= 1.0;
        let mut cycle: u64 = 0;
        let mut noc_acc = 0.0f64;
        let mut dram_acc = 0.0f64;
        let mut noc_cycle: u64 = 0;
        let mut dram_cycle: u64 = 0;
        let noc_per_core = self.cfg.noc_per_core();
        let dram_per_core = self.cfg.dram_per_core();

        let mut sched = TbScheduler::new(self.workload.num_kernels());
        let mut parallelism = ParallelismIntegrator::new();
        let mut outbound: Vec<SmOutbound> = Vec::new();
        let mut replies: Vec<u64> = Vec::new();
        // Reusable hot-loop buffers: the per-tick component APIs append to
        // caller-provided Vecs, so steady state allocates nothing.
        let mut deliveries: Vec<valley_noc::Delivery> = Vec::with_capacity(64);
        let mut completions: Vec<valley_dram::DramCompletion> = Vec::with_capacity(64);
        let mut banks_buf: Vec<usize> = Vec::with_capacity(self.dram.num_channels());
        let mut truncated = false;
        // Whether `sched_can_progress` is known to be false (cached by
        // `fast_forward`): exact while no SM ticked, no reply was
        // delivered and `schedule_tbs` did not run, since those are the
        // only ways SM capacity or kernel state can change.
        let mut sched_quiet = false;
        // Running minima of the SM and LLC-slice next-event caches,
        // recomputed whenever the corresponding walk runs and clamped to
        // zero by every out-of-band invalidation (delivery, DRAM fill,
        // reply, TB assignment). While `cycle` is below the minimum,
        // every per-component gate in the walk would no-op, so the walk
        // itself is skipped — and `fast_forward` reads the core-domain
        // horizon in O(1) instead of scanning every component.
        let mut sms_next = 0u64;
        let mut slices_next = 0u64;

        'outer: loop {
            // ---- Fast-forward over globally event-free cycles ----
            if event_driven {
                if let FastForward::Truncated = self.fast_forward(
                    &mut cycle,
                    &mut noc_acc,
                    &mut noc_cycle,
                    &mut dram_acc,
                    &mut dram_cycle,
                    noc_per_core,
                    dram_per_core,
                    &sched,
                    &mut sched_quiet,
                    sms_next.min(slices_next),
                    &mut parallelism,
                    &mut banks_buf,
                ) {
                    truncated = true;
                    break 'outer;
                }
            }
            // True once any SM's scheduling-relevant state may have
            // changed this cycle (reply delivered or tick ran).
            let mut sm_activity = false;

            // ---- NoC clock domain ----
            noc_acc += noc_per_core;
            while noc_acc >= 1.0 {
                noc_acc -= 1.0;
                deliveries.clear();
                if event_driven {
                    self.req_net.tick_evented(noc_cycle, &mut deliveries);
                } else {
                    self.req_net.tick(noc_cycle, &mut deliveries);
                }
                for d in &deliveries {
                    self.slices[d.dst].deliver(d.payload);
                    slices_next = 0;
                }
                deliveries.clear();
                if event_driven {
                    self.reply_net.tick_evented(noc_cycle, &mut deliveries);
                } else {
                    self.reply_net.tick(noc_cycle, &mut deliveries);
                }
                for d in &deliveries {
                    self.sms[d.dst].on_reply(d.payload, &self.txns, cycle);
                    sm_activity = true;
                    sms_next = 0;
                }
                noc_cycle += 1;
            }

            // ---- DRAM clock domain ----
            dram_acc += dram_per_core;
            while dram_acc >= 1.0 {
                dram_acc -= 1.0;
                completions.clear();
                if event_driven {
                    self.dram.tick_evented(dram_cycle, &mut completions);
                } else {
                    self.dram.tick(dram_cycle, &mut completions);
                }
                for c in &completions {
                    let t = self.txns.get(c.id);
                    if !t.is_store {
                        let slice = t.slice as usize;
                        self.slices[slice].on_dram_completion(
                            c.id,
                            cycle,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                        slices_next = 0;
                    }
                }
                dram_cycle += 1;
            }

            // ---- LLC slices ----
            // Below `slices_next` every slice's own gate would no-op;
            // skip the walk (the minimum is clamped to zero by every
            // out-of-band slice invalidation above).
            if !event_driven || cycle >= slices_next {
                let mut next = u64::MAX;
                for s in &mut self.slices {
                    if event_driven {
                        s.tick_evented(
                            cycle,
                            dram_cycle,
                            &self.cfg,
                            &mut self.dram,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                        next = next.min(s.cached_next_event());
                    } else {
                        s.tick(
                            cycle,
                            dram_cycle,
                            &self.cfg,
                            &mut self.dram,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                    }
                }
                slices_next = next;
            }
            for txn in replies.drain(..) {
                let t = self.txns.get(txn);
                self.reply_net.inject(Packet {
                    payload: txn,
                    src: t.slice as usize,
                    dst: t.sm as usize,
                    flits: valley_noc::DATA_FLITS,
                    injected_at: noc_cycle,
                });
            }

            // ---- SMs ----
            {
                let map = self.map.as_ref();
                let llc_slices = self.cfg.llc_slices;
                let slicer = move |addr: PhysAddr| Self::slice_of(map, llc_slices, addr);
                if !event_driven || cycle >= sms_next {
                    let mut next = u64::MAX;
                    for sm in &mut self.sms {
                        if event_driven {
                            sm_activity |= sm.tick_evented(
                                cycle,
                                &self.cfg,
                                &self.mapper,
                                &mut self.txns,
                                &slicer,
                                &mut outbound,
                            );
                            next = next.min(sm.cached_next_event());
                        } else {
                            sm.tick(
                                cycle,
                                &self.cfg,
                                &self.mapper,
                                &mut self.txns,
                                &slicer,
                                &mut outbound,
                            );
                        }
                    }
                    sms_next = next;
                }
            }
            for o in outbound.drain(..) {
                let t = self.txns.get(o.txn);
                self.req_net.inject(Packet {
                    payload: o.txn,
                    src: t.sm as usize,
                    dst: t.slice as usize,
                    flits: o.flits,
                    injected_at: noc_cycle,
                });
            }

            // ---- TB scheduler ----
            // With no SM activity and a kernel loaded, `schedule_tbs` is
            // provably a no-op (its retired-count early-out would fire);
            // skip the call and its per-SM retired sum. Dense mode keeps
            // the unconditional call of the reference loop.
            if !event_driven || sm_activity || sched.kernel.is_none() {
                self.schedule_tbs(&mut sched, cycle);
                sched_quiet = false;
                // `assign_tb` zeroes the assigned SM's next-event cache.
                sms_next = 0;
            }

            // ---- Metrics ----
            if cycle.is_multiple_of(METRIC_SAMPLE_INTERVAL) {
                let busy_slices = self.slices.iter().filter(|s| !s.is_idle()).count();
                let busy_channels = self.dram.busy_channels();
                self.dram.busy_banks_per_busy_channel_into(&mut banks_buf);
                parallelism.sample(busy_slices, busy_channels, &banks_buf);
            }

            cycle += 1;

            // ---- Termination ----
            if sched.finished() && self.is_drained() {
                break;
            }
            if cycle >= self.cfg.max_cycles {
                truncated = true;
                break;
            }
        }

        // Settle all deferred counters (no-ops after a dense run).
        self.req_net.flush_deferred(noc_cycle);
        self.reply_net.flush_deferred(noc_cycle);
        self.dram.flush_deferred(dram_cycle);
        for sm in &mut self.sms {
            sm.flush_idle(cycle);
        }
        for s in &mut self.slices {
            s.flush_stall(cycle);
        }
        self.report(cycle, dram_cycle, truncated, &parallelism, &sched)
    }

    /// Whether the TB scheduler could make progress this cycle: load the
    /// next kernel, place a pending TB on an SM with room, or advance past
    /// a fully-retired kernel. When `false`, `schedule_tbs` is a no-op
    /// until some SM state changes (which requires an SM or NoC event).
    fn sched_can_progress(&self, sched: &TbScheduler) -> bool {
        let Some(kernel) = sched.kernel.as_deref() else {
            return sched.kernel_idx < sched.num_kernels;
        };
        if sched.next_tb < sched.total_tbs {
            let wpb = kernel.warps_per_block();
            let limit = self.cfg.tbs_per_sm(wpb);
            if self.sms.iter().any(|sm| sm.can_accept_tb(wpb, limit)) {
                return true;
            }
        }
        if sched.next_tb == sched.total_tbs {
            let retired: u64 = self.sms.iter().map(Sm::retired_tbs).sum();
            if retired - sched.retired_base == sched.total_tbs {
                return true;
            }
        }
        false
    }

    /// Advances the simulation over cycles in which *no* component does
    /// any work, replaying exactly the clock-accumulator arithmetic of the
    /// dense loop (so all results stay bit-identical) without touching any
    /// component. Component counters need no attention here: the evented
    /// tick paths defer and settle them lazily. Stops at the earliest
    /// cycle at which any clock domain has a due event, the TB scheduler
    /// can progress, or the cycle safety limit is reached.
    #[allow(clippy::too_many_arguments)]
    fn fast_forward(
        &mut self,
        cycle: &mut u64,
        noc_acc: &mut f64,
        noc_cycle: &mut u64,
        dram_acc: &mut f64,
        dram_cycle: &mut u64,
        noc_per_core: f64,
        dram_per_core: f64,
        sched: &TbScheduler,
        sched_quiet: &mut bool,
        core_next: u64,
        parallelism: &mut ParallelismIntegrator,
        banks_buf: &mut Vec<usize>,
    ) -> FastForward {
        let noc_next = self
            .req_net
            .cached_next_event()
            .min(self.reply_net.cached_next_event());
        let dram_next = self.dram.cached_next_event();
        // Cheap pre-check: would skipping even one cycle run past a due
        // NoC or DRAM event? In memory-saturated phases (an event every
        // DRAM cycle) this bails before the per-SM/per-slice scans below,
        // with the exact outcome the full loop would reach — all early
        // returns here are mutation-free `Resumed`s.
        {
            let (_, nt) = domain_ticks(*noc_acc, noc_per_core);
            if *noc_cycle + nt > noc_next {
                return FastForward::Resumed;
            }
            let (_, dt) = domain_ticks(*dram_acc, dram_per_core);
            if *dram_cycle + dt > dram_next {
                return FastForward::Resumed;
            }
        }
        // Earliest core-domain event: the run loop's maintained minimum
        // over the SM and slice next-event caches. These are exact,
        // never-late hints: ticks recompute them and mutations (NoC
        // injects, DRAM enqueues, deliveries) *lower* them to the
        // mutation's own earliest consequence instead of
        // blanket-invalidating, so a burst of injections to a busy port
        // or bank no longer collapses the fast-forward window.
        if core_next <= *cycle {
            return FastForward::Resumed;
        }
        if !*sched_quiet {
            if self.sched_can_progress(sched) {
                return FastForward::Resumed;
            }
            // Cache the negative verdict; the run loop clears it on any
            // SM activity or `schedule_tbs` run.
            *sched_quiet = true;
        }

        let skip_start = *cycle;
        loop {
            if core_next <= *cycle {
                break;
            }
            // Replicate the dense loop's accumulator arithmetic on copies
            // so a rejected cycle leaves no trace.
            let (na, nt) = domain_ticks(*noc_acc, noc_per_core);
            if *noc_cycle + nt > noc_next {
                break;
            }
            let (da, dt) = domain_ticks(*dram_acc, dram_per_core);
            if *dram_cycle + dt > dram_next {
                break;
            }
            *noc_acc = na;
            *noc_cycle += nt;
            *dram_acc = da;
            *dram_cycle += dt;
            *cycle += 1;
            if *cycle >= self.cfg.max_cycles {
                break;
            }
        }

        let skipped = *cycle - skip_start;
        if skipped > 0 {
            // Sampling points that elapsed in [skip_start, cycle) all see
            // the same frozen state.
            let samples = (skip_start + skipped).div_ceil(METRIC_SAMPLE_INTERVAL)
                - skip_start.div_ceil(METRIC_SAMPLE_INTERVAL);
            if samples > 0 {
                let busy_slices = self.slices.iter().filter(|s| !s.is_idle()).count();
                let busy_channels = self.dram.busy_channels();
                self.dram.busy_banks_per_busy_channel_into(banks_buf);
                parallelism.sample_n(busy_slices, busy_channels, banks_buf, samples);
            }
        }
        if *cycle >= self.cfg.max_cycles {
            FastForward::Truncated
        } else {
            FastForward::Resumed
        }
    }

    fn is_drained(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
            && self.slices.iter().all(LlcSlice::is_idle)
            && !self.dram.is_busy()
            && !self.req_net.is_busy()
            && !self.reply_net.is_busy()
    }

    fn schedule_tbs(&mut self, sched: &mut TbScheduler, cycle: u64) {
        let retired: u64 = self.sms.iter().map(Sm::retired_tbs).sum();
        // Load the next kernel once the previous one fully retired.
        let mut just_loaded = false;
        if sched.kernel.is_none() {
            if sched.kernel_idx >= sched.num_kernels {
                return;
            }
            let k = self.workload.kernel(sched.kernel_idx);
            sched.total_tbs = k.num_thread_blocks();
            sched.next_tb = 0;
            sched.retired_base = retired;
            sched.kernel = Some(k);
            just_loaded = true;
        }
        // SM capacity only changes when a TB retires; with the kernel
        // already loaded and no retire since the last run, assignment and
        // the kernel-advance check below are provably no-ops.
        if !just_loaded && retired == sched.retired_seen {
            return;
        }
        sched.retired_seen = retired;
        let kernel = sched.kernel.as_deref().expect("kernel loaded above");
        let wpb = kernel.warps_per_block();
        let tbs_limit = self.cfg.tbs_per_sm(wpb);

        // Assign TBs round-robin while any SM has room.
        'assign: while sched.next_tb < sched.total_tbs {
            let n = self.sms.len();
            for probe in 0..n {
                let sm = (sched.rr_sm + probe) % n;
                if self.sms[sm].can_accept_tb(wpb, tbs_limit) {
                    self.sms[sm].assign_tb(kernel, sched.next_tb, sched.age_counter, cycle);
                    sched.age_counter += 1;
                    sched.next_tb += 1;
                    sched.rr_sm = (sm + 1) % n;
                    continue 'assign;
                }
            }
            break;
        }

        // Advance to the next kernel when every TB retired.
        if sched.next_tb == sched.total_tbs && retired - sched.retired_base == sched.total_tbs {
            sched.kernel = None;
            sched.kernel_idx += 1;
        }
    }

    fn report(
        &self,
        cycles: u64,
        dram_cycles: u64,
        truncated: bool,
        parallelism: &ParallelismIntegrator,
        sched: &TbScheduler,
    ) -> SimReport {
        let mut l1 = CacheStats::default();
        let mut warp_instructions = 0;
        let mut busy = 0u64;
        for sm in &self.sms {
            let s = sm.l1_stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.evictions += s.evictions;
            warp_instructions += sm.warp_instructions();
            busy += sm.busy_cycles();
        }
        let mut llc = CacheStats::default();
        for s in &self.slices {
            let st = s.stats();
            llc.hits += st.hits;
            llc.misses += st.misses;
            llc.evictions += st.evictions;
        }
        let req = self.req_net.stats();
        let rep = self.reply_net.stats();
        let delivered = req.delivered + rep.delivered;
        let noc_to_core = self.cfg.core_clock_ghz / self.cfg.noc_clock_ghz;
        let noc_latency = if delivered == 0 {
            0.0
        } else {
            (req.total_latency + rep.total_latency) as f64 / delivered as f64 * noc_to_core
        };
        SimReport {
            benchmark: self.workload.name(),
            scheme: self.mapper.kind().label().to_string(),
            cycles,
            truncated,
            warp_instructions,
            thread_instructions: warp_instructions * self.cfg.warp_size as u64,
            memory_transactions: self.txns.len(),
            l1,
            llc,
            noc_latency,
            llc_parallelism: parallelism.llc_parallelism(),
            channel_parallelism: parallelism.channel_parallelism(),
            bank_parallelism: parallelism.bank_parallelism(),
            dram: self.dram.total_stats(),
            kernels: sched.kernel_idx,
            dram_cycles,
            dram_channels: self.dram.num_channels(),
            core_clock_ghz: self.cfg.core_clock_ghz,
            dram_clock_ghz: self.dram_clock_ghz(),
            num_sms: self.cfg.num_sms,
            sm_busy_fraction: if cycles == 0 {
                0.0
            } else {
                busy as f64 / (cycles * self.sms.len() as u64) as f64
            },
        }
    }

    fn dram_clock_ghz(&self) -> f64 {
        self.cfg.dram.clock_ghz
    }
}
