//! The full simulated GPU: SMs, the TB scheduler, request/reply crossbars,
//! LLC slices and the DRAM system, advanced cycle by cycle across their
//! three clock domains (core 1.4 GHz, NoC 700 MHz, DRAM 924 MHz).

use crate::config::GpuConfig;
use crate::llc::LlcSlice;
use crate::metrics::{ParallelismIntegrator, SimReport};
use crate::sm::{Sm, SmOutbound};
use crate::trace::{KernelSource, WorkloadSource};
use crate::txn::TxnTable;
use valley_cache::CacheStats;
use valley_core::{AddressMapper, DramAddressMap, PhysAddr};
use valley_dram::DramSystem;
use valley_noc::{Crossbar, Packet};

/// How often (in core cycles) the parallelism metrics are sampled.
const METRIC_SAMPLE_INTERVAL: u64 = 4;

/// The complete simulated GPU.
///
/// Build one with [`GpuSim::new`], then call [`GpuSim::run`] to execute the
/// workload to completion and collect a [`SimReport`].
///
/// # Examples
///
/// See `valley-workloads` and the `quickstart` example; a minimal run:
///
/// ```no_run
/// use valley_core::{AddressMapper, GddrMap, SchemeKind};
/// use valley_sim::{GpuConfig, GpuSim};
/// # fn workload() -> Box<dyn valley_sim::WorkloadSource> { unimplemented!() }
///
/// let map = GddrMap::baseline();
/// let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
/// let sim = GpuSim::new(GpuConfig::table1(), mapper, map, workload());
/// let report = sim.run();
/// println!("{} cycles", report.cycles);
/// ```
pub struct GpuSim {
    cfg: GpuConfig,
    mapper: AddressMapper,
    /// A second copy of the address map for slice routing (the other copy
    /// lives inside the DRAM system for coordinate decoding).
    map: Box<dyn DramAddressMap + Send>,
    dram: DramSystem,
    req_net: Crossbar,
    reply_net: Crossbar,
    sms: Vec<Sm>,
    slices: Vec<LlcSlice>,
    txns: TxnTable,
    workload: Box<dyn WorkloadSource>,
}

/// Kernel-serial TB scheduler state.
struct TbScheduler {
    kernel_idx: usize,
    num_kernels: usize,
    kernel: Option<Box<dyn KernelSource>>,
    next_tb: u64,
    total_tbs: u64,
    retired_base: u64,
    rr_sm: usize,
    age_counter: u64,
}

impl TbScheduler {
    fn new(num_kernels: usize) -> Self {
        TbScheduler {
            kernel_idx: 0,
            num_kernels,
            kernel: None,
            next_tb: 0,
            total_tbs: 0,
            retired_base: 0,
            rr_sm: 0,
            age_counter: 0,
        }
    }

    fn finished(&self) -> bool {
        self.kernel.is_none() && self.kernel_idx >= self.num_kernels
    }
}

impl GpuSim {
    /// Creates a simulator for `workload` under the mapping scheme
    /// `mapper`, decoding DRAM coordinates through `map`.
    pub fn new<M>(
        cfg: GpuConfig,
        mapper: AddressMapper,
        map: M,
        workload: Box<dyn WorkloadSource>,
    ) -> Self
    where
        M: DramAddressMap + Clone + Send + 'static,
    {
        let dram = DramSystem::new(Box::new(map.clone()), cfg.dram);
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i as u32, &cfg)).collect();
        let slices = (0..cfg.llc_slices)
            .map(|i| LlcSlice::new(i as u16, &cfg))
            .collect();
        GpuSim {
            req_net: Crossbar::new(cfg.num_sms, cfg.llc_slices, cfg.noc_router_latency),
            reply_net: Crossbar::new(cfg.llc_slices, cfg.num_sms, cfg.noc_router_latency),
            sms,
            slices,
            txns: TxnTable::new(),
            workload,
            mapper,
            map: Box::new(map),
            dram,
            cfg,
        }
    }

    /// The LLC slice serving a mapped address: controller-interleaved,
    /// with the low bank bit distinguishing the two slices per controller.
    fn slice_of(map: &dyn DramAddressMap, llc_slices: usize, addr: PhysAddr) -> u16 {
        let nc = map.num_controllers();
        if nc >= llc_slices {
            (map.controller_of(addr) % llc_slices) as u16
        } else {
            let per = llc_slices / nc;
            (map.controller_of(addr) * per + (map.bank_of(addr) % per)) as u16
        }
    }

    /// Runs the workload to completion (or to the cycle safety limit) and
    /// returns the collected metrics.
    pub fn run(mut self) -> SimReport {
        let mut cycle: u64 = 0;
        let mut noc_acc = 0.0f64;
        let mut dram_acc = 0.0f64;
        let mut noc_cycle: u64 = 0;
        let mut dram_cycle: u64 = 0;
        let noc_per_core = self.cfg.noc_per_core();
        let dram_per_core = self.cfg.dram_per_core();

        let mut sched = TbScheduler::new(self.workload.num_kernels());
        let mut parallelism = ParallelismIntegrator::new();
        let mut outbound: Vec<SmOutbound> = Vec::new();
        let mut replies: Vec<u64> = Vec::new();
        let mut truncated = false;

        loop {
            // ---- NoC clock domain ----
            noc_acc += noc_per_core;
            while noc_acc >= 1.0 {
                noc_acc -= 1.0;
                for d in self.req_net.tick(noc_cycle) {
                    self.slices[d.dst].deliver(d.payload);
                }
                let delivered: Vec<_> = self.reply_net.tick(noc_cycle);
                for d in delivered {
                    self.sms[d.dst].on_reply(d.payload, &self.txns, cycle);
                }
                noc_cycle += 1;
            }

            // ---- DRAM clock domain ----
            dram_acc += dram_per_core;
            while dram_acc >= 1.0 {
                dram_acc -= 1.0;
                let completions = self.dram.tick(dram_cycle);
                for c in completions {
                    let t = self.txns.get(c.id);
                    if !t.is_store {
                        let slice = t.slice as usize;
                        self.slices[slice].on_dram_completion(
                            c.id,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                    }
                }
                dram_cycle += 1;
            }

            // ---- LLC slices ----
            for s in &mut self.slices {
                s.tick(
                    cycle,
                    dram_cycle,
                    &self.cfg,
                    &mut self.dram,
                    &mut self.txns,
                    &self.mapper,
                    &mut replies,
                );
            }
            for txn in replies.drain(..) {
                let t = self.txns.get(txn);
                self.reply_net.inject(Packet {
                    payload: txn,
                    src: t.slice as usize,
                    dst: t.sm as usize,
                    flits: valley_noc::DATA_FLITS,
                    injected_at: noc_cycle,
                });
            }

            // ---- SMs ----
            {
                let map = self.map.as_ref();
                let llc_slices = self.cfg.llc_slices;
                let slicer = move |addr: PhysAddr| Self::slice_of(map, llc_slices, addr);
                for sm in &mut self.sms {
                    sm.tick(cycle, &self.cfg, &self.mapper, &mut self.txns, &slicer, &mut outbound);
                }
            }
            for o in outbound.drain(..) {
                let t = self.txns.get(o.txn);
                self.req_net.inject(Packet {
                    payload: o.txn,
                    src: t.sm as usize,
                    dst: t.slice as usize,
                    flits: o.flits,
                    injected_at: noc_cycle,
                });
            }

            // ---- TB scheduler ----
            self.schedule_tbs(&mut sched);

            // ---- Metrics ----
            if cycle % METRIC_SAMPLE_INTERVAL == 0 {
                let busy_slices = self.slices.iter().filter(|s| !s.is_idle()).count();
                let busy_channels = self.dram.busy_channels();
                let banks = self.dram.busy_banks_per_busy_channel();
                parallelism.sample(busy_slices, busy_channels, &banks);
            }

            cycle += 1;

            // ---- Termination ----
            if sched.finished() && self.is_drained() {
                break;
            }
            if cycle >= self.cfg.max_cycles {
                truncated = true;
                break;
            }
        }

        self.report(cycle, dram_cycle, truncated, &parallelism, &sched)
    }

    fn is_drained(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
            && self.slices.iter().all(LlcSlice::is_idle)
            && !self.dram.is_busy()
            && !self.req_net.is_busy()
            && !self.reply_net.is_busy()
    }

    fn schedule_tbs(&mut self, sched: &mut TbScheduler) {
        // Load the next kernel once the previous one fully retired.
        if sched.kernel.is_none() {
            if sched.kernel_idx >= sched.num_kernels {
                return;
            }
            let k = self.workload.kernel(sched.kernel_idx);
            sched.total_tbs = k.num_thread_blocks();
            sched.next_tb = 0;
            sched.retired_base = self.sms.iter().map(Sm::retired_tbs).sum();
            sched.kernel = Some(k);
        }
        let kernel = sched.kernel.as_deref().expect("kernel loaded above");
        let wpb = kernel.warps_per_block();
        let tbs_limit = self.cfg.tbs_per_sm(wpb);

        // Assign TBs round-robin while any SM has room.
        'assign: while sched.next_tb < sched.total_tbs {
            let n = self.sms.len();
            for probe in 0..n {
                let sm = (sched.rr_sm + probe) % n;
                if self.sms[sm].can_accept_tb(wpb, tbs_limit) {
                    self.sms[sm].assign_tb(kernel, sched.next_tb, sched.age_counter);
                    sched.age_counter += 1;
                    sched.next_tb += 1;
                    sched.rr_sm = (sm + 1) % n;
                    continue 'assign;
                }
            }
            break;
        }

        // Advance to the next kernel when every TB retired.
        let retired: u64 = self.sms.iter().map(Sm::retired_tbs).sum();
        if sched.next_tb == sched.total_tbs && retired - sched.retired_base == sched.total_tbs {
            sched.kernel = None;
            sched.kernel_idx += 1;
        }
    }

    fn report(
        &self,
        cycles: u64,
        dram_cycles: u64,
        truncated: bool,
        parallelism: &ParallelismIntegrator,
        sched: &TbScheduler,
    ) -> SimReport {
        let mut l1 = CacheStats::default();
        let mut warp_instructions = 0;
        let mut busy = 0u64;
        for sm in &self.sms {
            let s = sm.l1_stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.evictions += s.evictions;
            warp_instructions += sm.warp_instructions();
            busy += sm.busy_cycles();
        }
        let mut llc = CacheStats::default();
        for s in &self.slices {
            let st = s.stats();
            llc.hits += st.hits;
            llc.misses += st.misses;
            llc.evictions += st.evictions;
        }
        let req = self.req_net.stats();
        let rep = self.reply_net.stats();
        let delivered = req.delivered + rep.delivered;
        let noc_to_core = self.cfg.core_clock_ghz / self.cfg.noc_clock_ghz;
        let noc_latency = if delivered == 0 {
            0.0
        } else {
            (req.total_latency + rep.total_latency) as f64 / delivered as f64 * noc_to_core
        };
        SimReport {
            benchmark: self.workload.name(),
            scheme: self.mapper.kind().label().to_string(),
            cycles,
            truncated,
            warp_instructions,
            thread_instructions: warp_instructions * self.cfg.warp_size as u64,
            memory_transactions: self.txns.len(),
            l1,
            llc,
            noc_latency,
            llc_parallelism: parallelism.llc_parallelism(),
            channel_parallelism: parallelism.channel_parallelism(),
            bank_parallelism: parallelism.bank_parallelism(),
            dram: self.dram.total_stats(),
            kernels: sched.kernel_idx,
            dram_cycles,
            dram_channels: self.dram.num_channels(),
            core_clock_ghz: self.cfg.core_clock_ghz,
            dram_clock_ghz: self.dram_clock_ghz(),
            num_sms: self.cfg.num_sms,
            sm_busy_fraction: if cycles == 0 {
                0.0
            } else {
                busy as f64 / (cycles * self.sms.len() as u64) as f64
            },
        }
    }

    fn dram_clock_ghz(&self) -> f64 {
        self.cfg.dram.clock_ghz
    }
}
