//! The full simulated GPU: SMs, the TB scheduler, request/reply crossbars,
//! LLC slices and the DRAM system, advanced cycle by cycle across their
//! three clock domains (core 1.4 GHz, NoC 700 MHz, DRAM 924 MHz).

use crate::config::GpuConfig;
use crate::llc::LlcSlice;
use crate::metrics::{EpochHist, ParallelismIntegrator, SimReport};
use crate::sm::{Sm, SmOutbound};
use crate::trace::{KernelSource, WorkloadSource};
use crate::txn::TxnTable;
use crate::wake::WakeGate;
use std::sync::Arc;
use valley_cache::CacheStats;
use valley_core::{AddressMapper, DramAddressMap, PhysAddr};
use valley_dram::{DramStats, DramSystem};
use valley_noc::{Crossbar, NocStats, Packet};

/// How often (in core cycles) the parallelism metrics are sampled.
pub(crate) const METRIC_SAMPLE_INTERVAL: u64 = 4;

/// Intra-simulation parallelism knob for [`GpuSim::run`].
///
/// `Shards(n)` partitions the SMs and the LLC-slice/DRAM-channel pairs
/// into `n` shards that tick concurrently between deterministic epoch
/// barriers (see `docs/harness.md`). The result is **bit-identical** to
/// the sequential engine for every configuration and shard count — the
/// shard count trades wall time, never results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded evented engine (the default).
    Off,
    /// Phase-parallel engine with this many shards; worker threads are
    /// capped at the machine's available parallelism.
    Shards(usize),
}

impl Parallelism {
    /// Reads `VALLEY_SIM_THREADS`: unset, empty, `0` or `1` mean
    /// [`Parallelism::Off`]; `n > 1` means [`Parallelism::Shards`]`(n)`.
    ///
    /// # Panics
    ///
    /// Panics on a value that is not a non-negative integer, so a typo'd
    /// environment cannot silently fall back to single-threaded runs.
    pub fn from_env() -> Self {
        match std::env::var("VALLEY_SIM_THREADS") {
            Err(_) => Parallelism::Off,
            Ok(s) if s.is_empty() => Parallelism::Off,
            Ok(s) => {
                let n: usize = s
                    .parse()
                    .unwrap_or_else(|_| panic!("VALLEY_SIM_THREADS={s} is not an integer"));
                if n <= 1 {
                    Parallelism::Off
                } else {
                    Parallelism::Shards(n)
                }
            }
        }
    }

    /// The shard count this knob requests (1 = sequential).
    pub fn shards(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Shards(n) => n.max(1),
        }
    }
}

/// The complete simulated GPU.
///
/// Build one with [`GpuSim::new`], then call [`GpuSim::run`] to execute the
/// workload to completion and collect a [`SimReport`].
///
/// # Examples
///
/// See `valley-workloads` and the `quickstart` example; a minimal run:
///
/// ```no_run
/// use valley_core::{AddressMapper, GddrMap, SchemeKind};
/// use valley_sim::{GpuConfig, GpuSim};
/// # fn workload() -> Box<dyn valley_sim::WorkloadSource> { unimplemented!() }
///
/// let map = GddrMap::baseline();
/// let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
/// let sim = GpuSim::new(GpuConfig::table1(), mapper, map, workload());
/// let report = sim.run();
/// println!("{} cycles", report.cycles);
/// ```
pub struct GpuSim {
    /// The immutable machine description, shared by reference: the
    /// batched engine's lanes and the harness's batch executor all point
    /// at one `GpuConfig` allocation instead of carrying per-sim copies.
    pub(crate) cfg: Arc<GpuConfig>,
    pub(crate) mapper: AddressMapper,
    /// The (immutable) address map for slice routing — the *same*
    /// allocation the DRAM system decodes coordinates through.
    pub(crate) map: Arc<dyn DramAddressMap + Send + Sync>,
    pub(crate) dram: DramSystem,
    pub(crate) req_net: Crossbar,
    pub(crate) reply_net: Crossbar,
    pub(crate) sms: Vec<Sm>,
    pub(crate) slices: Vec<LlcSlice>,
    pub(crate) txns: TxnTable,
    pub(crate) workload: Box<dyn WorkloadSource>,
}

/// Uniform access to the SM population for the TB scheduler, so the
/// identical scheduling code drives both the sequential `Vec<Sm>` and the
/// parallel engine's sharded SMs (any divergence here would break the
/// engines' bit-identity).
pub(crate) trait SmPool {
    fn num_sms(&self) -> usize;
    /// Sum of retired TBs over all SMs.
    fn retired_total(&self) -> u64;
    fn can_accept(&self, sm: usize, warps_per_block: usize, tbs_limit: usize) -> bool;
    fn assign(&mut self, sm: usize, kernel: &dyn KernelSource, tb: u64, age: u64, cycle: u64);
}

/// The sequential engine's pool: a plain slice of SMs.
pub(crate) struct SliceSmPool<'a>(pub(crate) &'a mut [Sm]);

impl SmPool for SliceSmPool<'_> {
    fn num_sms(&self) -> usize {
        self.0.len()
    }
    fn retired_total(&self) -> u64 {
        self.0.iter().map(Sm::retired_tbs).sum()
    }
    fn can_accept(&self, sm: usize, warps_per_block: usize, tbs_limit: usize) -> bool {
        self.0[sm].can_accept_tb(warps_per_block, tbs_limit)
    }
    fn assign(&mut self, sm: usize, kernel: &dyn KernelSource, tb: u64, age: u64, cycle: u64) {
        self.0[sm].assign_tb(kernel, tb, age, cycle);
    }
}

/// Kernel-serial TB scheduler state.
pub(crate) struct TbScheduler {
    pub(crate) kernel_idx: usize,
    num_kernels: usize,
    pub(crate) kernel: Option<Box<dyn KernelSource>>,
    next_tb: u64,
    total_tbs: u64,
    retired_base: u64,
    rr_sm: usize,
    age_counter: u64,
    /// Total retired TBs observed at the last `schedule_tbs` run. While a
    /// kernel is loaded and this is unchanged, no SM capacity was freed,
    /// so `schedule_tbs` would provably be a no-op and is skipped.
    retired_seen: u64,
}

/// Outcome of one fast-forward attempt.
enum FastForward {
    /// Simulation resumes densely at the current cycle.
    Resumed,
    /// The cycle safety limit was reached while skipping.
    Truncated,
}

/// One core cycle's worth of a slower clock domain's accumulator
/// arithmetic, exactly as the dense loop performs it (add the ratio,
/// then repeatedly subtract 1.0 — *not* `fract`/`floor`, whose float
/// rounding differs): returns the post-cycle accumulator and how many
/// domain ticks elapse. Shared by `fast_forward`'s pre-check and skip
/// loop so the two can never drift apart and break `run == run_dense`.
#[inline]
pub(crate) fn domain_ticks(acc: f64, per_core: f64) -> (f64, u64) {
    let mut a = acc + per_core;
    let mut ticks = 0u64;
    while a >= 1.0 {
        a -= 1.0;
        ticks += 1;
    }
    (a, ticks)
}

impl TbScheduler {
    pub(crate) fn new(num_kernels: usize) -> Self {
        TbScheduler {
            kernel_idx: 0,
            num_kernels,
            kernel: None,
            next_tb: 0,
            total_tbs: 0,
            retired_base: 0,
            rr_sm: 0,
            age_counter: 0,
            retired_seen: 0,
        }
    }

    pub(crate) fn finished(&self) -> bool {
        self.kernel.is_none() && self.kernel_idx >= self.num_kernels
    }

    /// Whether the scheduler could make progress this cycle: load the
    /// next kernel, place a pending TB on an SM with room, or advance
    /// past a fully-retired kernel. When `false`, [`TbScheduler::run`]
    /// is a no-op until some SM state changes (which requires an SM or
    /// NoC event).
    pub(crate) fn can_progress<P: SmPool>(&self, sms: &P, cfg: &GpuConfig) -> bool {
        let Some(kernel) = self.kernel.as_deref() else {
            return self.kernel_idx < self.num_kernels;
        };
        if self.next_tb < self.total_tbs {
            let wpb = kernel.warps_per_block();
            let limit = cfg.tbs_per_sm(wpb);
            if (0..sms.num_sms()).any(|i| sms.can_accept(i, wpb, limit)) {
                return true;
            }
        }
        if self.next_tb == self.total_tbs {
            let retired = sms.retired_total();
            if retired - self.retired_base == self.total_tbs {
                return true;
            }
        }
        false
    }

    /// One scheduling pass: load the next kernel if none is resident,
    /// assign pending TBs round-robin to SMs with room, and advance past
    /// the kernel once every TB retired. Identical logic drives the
    /// sequential and the phase-parallel engines via [`SmPool`].
    pub(crate) fn run<P: SmPool>(
        &mut self,
        sms: &mut P,
        workload: &dyn WorkloadSource,
        cfg: &GpuConfig,
        cycle: u64,
    ) {
        let retired = sms.retired_total();
        // Load the next kernel once the previous one fully retired.
        let mut just_loaded = false;
        if self.kernel.is_none() {
            if self.kernel_idx >= self.num_kernels {
                return;
            }
            let k = workload.kernel(self.kernel_idx);
            self.total_tbs = k.num_thread_blocks();
            self.next_tb = 0;
            self.retired_base = retired;
            self.kernel = Some(k);
            just_loaded = true;
        }
        // SM capacity only changes when a TB retires; with the kernel
        // already loaded and no retire since the last run, assignment and
        // the kernel-advance check below are provably no-ops.
        if !just_loaded && retired == self.retired_seen {
            return;
        }
        self.retired_seen = retired;
        let kernel = self.kernel.as_deref().expect("kernel loaded above");
        let wpb = kernel.warps_per_block();
        let tbs_limit = cfg.tbs_per_sm(wpb);

        // Assign TBs round-robin while any SM has room.
        'assign: while self.next_tb < self.total_tbs {
            let n = sms.num_sms();
            for probe in 0..n {
                let sm = (self.rr_sm + probe) % n;
                if sms.can_accept(sm, wpb, tbs_limit) {
                    sms.assign(sm, kernel, self.next_tb, self.age_counter, cycle);
                    self.age_counter += 1;
                    self.next_tb += 1;
                    self.rr_sm = (sm + 1) % n;
                    continue 'assign;
                }
            }
            break;
        }

        // Advance to the next kernel when every TB retired.
        if self.next_tb == self.total_tbs && retired - self.retired_base == self.total_tbs {
            self.kernel = None;
            self.kernel_idx += 1;
        }
    }
}

impl GpuSim {
    /// Creates a simulator for `workload` under the mapping scheme
    /// `mapper`, decoding DRAM coordinates through `map`.
    pub fn new<M>(
        cfg: GpuConfig,
        mapper: AddressMapper,
        map: M,
        workload: Box<dyn WorkloadSource>,
    ) -> Self
    where
        M: DramAddressMap + Send + Sync + 'static,
    {
        Self::with_shared(Arc::new(cfg), mapper, Arc::new(map), workload)
    }

    /// [`GpuSim::new`] over pre-shared immutable parts: the harness's
    /// batch executor builds N same-config lanes pointing at *one*
    /// `GpuConfig` and *one* address-map allocation, so the config cache
    /// lines are genuinely shared across lanes instead of duplicated
    /// per simulation.
    pub fn with_shared(
        cfg: Arc<GpuConfig>,
        mapper: AddressMapper,
        map: Arc<dyn DramAddressMap + Send + Sync>,
        workload: Box<dyn WorkloadSource>,
    ) -> Self {
        let dram = DramSystem::new(Arc::clone(&map), cfg.dram);
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i as u32, &cfg)).collect();
        let slices = (0..cfg.llc_slices)
            .map(|i| LlcSlice::new(i as u16, &cfg))
            .collect();
        GpuSim {
            req_net: Crossbar::new(cfg.num_sms, cfg.llc_slices, cfg.noc_router_latency),
            reply_net: Crossbar::new(cfg.llc_slices, cfg.num_sms, cfg.noc_router_latency),
            sms,
            slices,
            txns: TxnTable::new(),
            workload,
            mapper,
            map,
            dram,
            cfg,
        }
    }

    /// The LLC slice serving a mapped address: controller-interleaved,
    /// with the low bank bit distinguishing the two slices per controller.
    pub(crate) fn slice_of(map: &dyn DramAddressMap, llc_slices: usize, addr: PhysAddr) -> u16 {
        let nc = map.num_controllers();
        if nc >= llc_slices {
            (map.controller_of(addr) % llc_slices) as u16
        } else {
            let per = llc_slices / nc;
            (map.controller_of(addr) * per + (map.bank_of(addr) % per)) as u16
        }
    }

    /// Runs the workload to completion (or to the cycle safety limit) and
    /// returns the collected metrics, fast-forwarding over provably
    /// event-free cycle spans. The results — cycle count, DRAM statistics
    /// and cache statistics — are bit-identical to [`GpuSim::run_dense`];
    /// see `tests/event_driven_equivalence.rs`.
    ///
    /// Honors `VALLEY_SIM_THREADS` (see [`Parallelism::from_env`]): with
    /// `n > 1` the run executes on the phase-parallel engine, whose
    /// results are bit-identical to the sequential ones for every shard
    /// count.
    pub fn run(self) -> SimReport {
        let par = Parallelism::from_env();
        self.run_with(par)
    }

    /// [`GpuSim::run`] with an explicit [`Parallelism`] knob.
    pub fn run_with(self, par: Parallelism) -> SimReport {
        let shards = par.shards();
        // The parallel engine shares the evented gates' clock-domain
        // assumption (domain clocks no faster than the core clock); a
        // config outside it runs sequentially, keeping results identical
        // by construction instead of silently diverging.
        if shards >= 2 && self.cfg.noc_per_core() <= 1.0 && self.cfg.dram_per_core() <= 1.0 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(shards);
            crate::par::run_sharded(self, shards, threads)
        } else {
            self.run_with_mode(true)
        }
    }

    /// Runs on the phase-parallel engine with explicit shard and worker
    /// thread counts. Primarily for the cross-thread equivalence battery,
    /// which pins shard counts and the threaded transport independently
    /// of the machine's core count; `shards` must be ≥ 2.
    #[doc(hidden)]
    pub fn run_sharded(self, shards: usize, threads: usize) -> SimReport {
        assert!(shards >= 2, "the sharded engine needs at least 2 shards");
        assert!(
            self.cfg.noc_per_core() <= 1.0 && self.cfg.dram_per_core() <= 1.0,
            "the sharded engine requires domain clocks no faster than the core clock"
        );
        crate::par::run_sharded(self, shards, threads)
    }

    /// Runs the workload with the dense reference loop that advances every
    /// component one cycle at a time — the oracle the event-driven fast
    /// path is validated against (and the perf baseline it is measured
    /// against).
    pub fn run_dense(self) -> SimReport {
        self.run_with_mode(false)
    }

    fn run_with_mode(mut self, event_driven: bool) -> SimReport {
        // The event-driven gates translate DRAM-domain event times into
        // core cycles assuming the DRAM clock is no faster than the core
        // clock (true for every shipped config). A custom config that
        // violates it gets the dense loop, keeping run() == run_dense()
        // by construction instead of silently diverging.
        let event_driven = event_driven && self.cfg.dram_per_core() <= 1.0;
        let mut cycle: u64 = 0;
        let mut noc_acc = 0.0f64;
        let mut dram_acc = 0.0f64;
        let mut noc_cycle: u64 = 0;
        let mut dram_cycle: u64 = 0;
        let noc_per_core = self.cfg.noc_per_core();
        let dram_per_core = self.cfg.dram_per_core();

        let mut sched = TbScheduler::new(self.workload.num_kernels());
        let mut parallelism = ParallelismIntegrator::new();
        let mut outbound: Vec<SmOutbound> = Vec::new();
        let mut replies: Vec<u64> = Vec::new();
        // Reusable hot-loop buffers: the per-tick component APIs append to
        // caller-provided Vecs, so steady state allocates nothing.
        let mut deliveries: Vec<valley_noc::Delivery> = Vec::with_capacity(64);
        let mut completions: Vec<valley_dram::DramCompletion> = Vec::with_capacity(64);
        let mut banks_buf: Vec<usize> = Vec::with_capacity(self.dram.num_channels());
        let mut truncated = false;
        // Whether `sched_can_progress` is known to be false (cached by
        // `fast_forward`): exact while no SM ticked, no reply was
        // delivered and `schedule_tbs` did not run, since those are the
        // only ways SM capacity or kernel state can change.
        let mut sched_quiet = false;
        // Wake gates over the SM and LLC-slice populations (see
        // `crate::wake`): rebuilt from the per-unit next-event caches
        // whenever the corresponding walk runs, and clamped by every
        // out-of-band invalidation (delivery, DRAM fill, reply, TB
        // assignment). While `cycle` is below a gate, every per-unit
        // self-gate in that walk would no-op, so the walk itself is
        // skipped — and `fast_forward` reads the core-domain horizon in
        // O(1) instead of scanning every component.
        let mut sms_next = WakeGate::new();
        let mut slices_next = WakeGate::new();

        'outer: loop {
            crate::alloc_audit::note_cycle(cycle);
            // ---- Fast-forward over globally event-free cycles ----
            if event_driven {
                if let FastForward::Truncated = self.fast_forward(
                    &mut cycle,
                    &mut noc_acc,
                    &mut noc_cycle,
                    &mut dram_acc,
                    &mut dram_cycle,
                    noc_per_core,
                    dram_per_core,
                    &sched,
                    &mut sched_quiet,
                    sms_next.get().min(slices_next.get()),
                    &mut parallelism,
                    &mut banks_buf,
                ) {
                    truncated = true;
                    break 'outer;
                }
            }
            // True once any SM's scheduling-relevant state may have
            // changed this cycle (reply delivered or tick ran).
            let mut sm_activity = false;

            // ---- NoC clock domain ----
            noc_acc += noc_per_core;
            while noc_acc >= 1.0 {
                noc_acc -= 1.0;
                deliveries.clear();
                if event_driven {
                    self.req_net.tick_evented(noc_cycle, &mut deliveries);
                } else {
                    self.req_net.tick(noc_cycle, &mut deliveries);
                }
                for d in &deliveries {
                    self.slices[d.dst].deliver(d.payload);
                    slices_next.wake_now();
                }
                deliveries.clear();
                if event_driven {
                    self.reply_net.tick_evented(noc_cycle, &mut deliveries);
                } else {
                    self.reply_net.tick(noc_cycle, &mut deliveries);
                }
                for d in &deliveries {
                    self.sms[d.dst].on_reply(d.payload, &self.txns, cycle);
                    sm_activity = true;
                    sms_next.wake_now();
                }
                noc_cycle += 1;
            }

            // ---- DRAM clock domain ----
            dram_acc += dram_per_core;
            while dram_acc >= 1.0 {
                dram_acc -= 1.0;
                completions.clear();
                if event_driven {
                    self.dram.tick_evented(dram_cycle, &mut completions);
                } else {
                    self.dram.tick(dram_cycle, &mut completions);
                }
                for c in &completions {
                    let t = self.txns.get(c.id);
                    if !t.is_store {
                        let slice = t.slice as usize;
                        self.slices[slice].on_dram_completion(
                            c.id,
                            cycle,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                        slices_next.wake_now();
                    }
                }
                dram_cycle += 1;
            }

            // ---- LLC slices ----
            // Below `slices_next` every slice's own gate would no-op;
            // skip the walk (the minimum is clamped to zero by every
            // out-of-band slice invalidation above).
            if !event_driven || cycle >= slices_next.get() {
                let mut next = u64::MAX;
                for s in &mut self.slices {
                    if event_driven {
                        s.tick_evented(
                            cycle,
                            dram_cycle,
                            &self.cfg,
                            &mut self.dram,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                        next = next.min(s.cached_next_event());
                    } else {
                        s.tick(
                            cycle,
                            dram_cycle,
                            &self.cfg,
                            &mut self.dram,
                            &mut self.txns,
                            &self.mapper,
                            &mut replies,
                        );
                    }
                }
                slices_next.rebuild(next);
            }
            for txn in replies.drain(..) {
                let t = self.txns.get(txn);
                self.reply_net.inject(Packet {
                    payload: txn,
                    src: t.slice as usize,
                    dst: t.sm as usize,
                    flits: valley_noc::DATA_FLITS,
                    injected_at: noc_cycle,
                });
            }

            // ---- SMs ----
            {
                let map = self.map.as_ref();
                let llc_slices = self.cfg.llc_slices;
                let slicer = move |addr: PhysAddr| Self::slice_of(map, llc_slices, addr);
                if !event_driven || cycle >= sms_next.get() {
                    let mut next = u64::MAX;
                    for sm in &mut self.sms {
                        if event_driven {
                            sm_activity |= sm.tick_evented(
                                cycle,
                                &self.cfg,
                                &self.mapper,
                                &mut self.txns,
                                &slicer,
                                &mut outbound,
                            );
                            next = next.min(sm.cached_next_event());
                        } else {
                            sm.tick(
                                cycle,
                                &self.cfg,
                                &self.mapper,
                                &mut self.txns,
                                &slicer,
                                &mut outbound,
                            );
                        }
                    }
                    sms_next.rebuild(next);
                }
            }
            for o in outbound.drain(..) {
                let t = self.txns.get(o.txn);
                self.req_net.inject(Packet {
                    payload: o.txn,
                    src: t.sm as usize,
                    dst: t.slice as usize,
                    flits: o.flits,
                    injected_at: noc_cycle,
                });
            }

            // ---- TB scheduler ----
            // With no SM activity and a kernel loaded, `schedule_tbs` is
            // provably a no-op (its retired-count early-out would fire);
            // skip the call and its per-SM retired sum. Dense mode keeps
            // the unconditional call of the reference loop.
            if !event_driven || sm_activity || sched.kernel.is_none() {
                self.schedule_tbs(&mut sched, cycle);
                sched_quiet = false;
                // `assign_tb` zeroes the assigned SM's next-event cache.
                sms_next.wake_now();
            }

            // ---- Metrics ----
            if cycle.is_multiple_of(METRIC_SAMPLE_INTERVAL) {
                let busy_slices = self.slices.iter().filter(|s| !s.is_idle()).count();
                let busy_channels = self.dram.busy_channels();
                self.dram.busy_banks_per_busy_channel_into(&mut banks_buf);
                parallelism.sample(busy_slices, busy_channels, &banks_buf);
            }

            cycle += 1;

            // ---- Termination ----
            if sched.finished() && self.is_drained() {
                break;
            }
            if cycle >= self.cfg.max_cycles {
                truncated = true;
                break;
            }
        }

        crate::alloc_audit::window_close();
        // Settle all deferred counters (no-ops after a dense run).
        self.req_net.flush_deferred(noc_cycle);
        self.reply_net.flush_deferred(noc_cycle);
        self.dram.flush_deferred(dram_cycle);
        for sm in &mut self.sms {
            sm.flush_idle(cycle);
        }
        for s in &mut self.slices {
            s.flush_stall(cycle);
        }
        self.report(cycle, dram_cycle, truncated, &parallelism, &sched)
    }

    /// Whether the TB scheduler could make progress this cycle (see
    /// [`TbScheduler::can_progress`]).
    pub(crate) fn sched_can_progress(&mut self, sched: &TbScheduler) -> bool {
        sched.can_progress(&SliceSmPool(&mut self.sms), &self.cfg)
    }

    /// Advances the simulation over cycles in which *no* component does
    /// any work, replaying exactly the clock-accumulator arithmetic of the
    /// dense loop (so all results stay bit-identical) without touching any
    /// component. Component counters need no attention here: the evented
    /// tick paths defer and settle them lazily. Stops at the earliest
    /// cycle at which any clock domain has a due event, the TB scheduler
    /// can progress, or the cycle safety limit is reached.
    #[allow(clippy::too_many_arguments)]
    fn fast_forward(
        &mut self,
        cycle: &mut u64,
        noc_acc: &mut f64,
        noc_cycle: &mut u64,
        dram_acc: &mut f64,
        dram_cycle: &mut u64,
        noc_per_core: f64,
        dram_per_core: f64,
        sched: &TbScheduler,
        sched_quiet: &mut bool,
        core_next: u64,
        parallelism: &mut ParallelismIntegrator,
        banks_buf: &mut Vec<usize>,
    ) -> FastForward {
        let noc_next = self
            .req_net
            .cached_next_event()
            .min(self.reply_net.cached_next_event());
        let dram_next = self.dram.cached_next_event();
        // Cheap pre-check: would skipping even one cycle run past a due
        // NoC or DRAM event? In memory-saturated phases (an event every
        // DRAM cycle) this bails before the per-SM/per-slice scans below,
        // with the exact outcome the full loop would reach — all early
        // returns here are mutation-free `Resumed`s.
        {
            let (_, nt) = domain_ticks(*noc_acc, noc_per_core);
            if *noc_cycle + nt > noc_next {
                return FastForward::Resumed;
            }
            let (_, dt) = domain_ticks(*dram_acc, dram_per_core);
            if *dram_cycle + dt > dram_next {
                return FastForward::Resumed;
            }
        }
        // Earliest core-domain event: the run loop's maintained minimum
        // over the SM and slice next-event caches. These are exact,
        // never-late hints: ticks recompute them and mutations (NoC
        // injects, DRAM enqueues, deliveries) *lower* them to the
        // mutation's own earliest consequence instead of
        // blanket-invalidating, so a burst of injections to a busy port
        // or bank no longer collapses the fast-forward window.
        if core_next <= *cycle {
            return FastForward::Resumed;
        }
        if !*sched_quiet {
            if self.sched_can_progress(sched) {
                return FastForward::Resumed;
            }
            // Cache the negative verdict; the run loop clears it on any
            // SM activity or `schedule_tbs` run.
            *sched_quiet = true;
        }

        let skip_start = *cycle;
        loop {
            if core_next <= *cycle {
                break;
            }
            // Replicate the dense loop's accumulator arithmetic on copies
            // so a rejected cycle leaves no trace.
            let (na, nt) = domain_ticks(*noc_acc, noc_per_core);
            if *noc_cycle + nt > noc_next {
                break;
            }
            let (da, dt) = domain_ticks(*dram_acc, dram_per_core);
            if *dram_cycle + dt > dram_next {
                break;
            }
            *noc_acc = na;
            *noc_cycle += nt;
            *dram_acc = da;
            *dram_cycle += dt;
            *cycle += 1;
            if *cycle >= self.cfg.max_cycles {
                break;
            }
        }

        let skipped = *cycle - skip_start;
        if skipped > 0 {
            // Sampling points that elapsed in [skip_start, cycle) all see
            // the same frozen state.
            let samples = (skip_start + skipped).div_ceil(METRIC_SAMPLE_INTERVAL)
                - skip_start.div_ceil(METRIC_SAMPLE_INTERVAL);
            if samples > 0 {
                let busy_slices = self.slices.iter().filter(|s| !s.is_idle()).count();
                let busy_channels = self.dram.busy_channels();
                self.dram.busy_banks_per_busy_channel_into(banks_buf);
                parallelism.sample_n(busy_slices, busy_channels, banks_buf, samples);
            }
        }
        if *cycle >= self.cfg.max_cycles {
            FastForward::Truncated
        } else {
            FastForward::Resumed
        }
    }

    pub(crate) fn is_drained(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
            && self.slices.iter().all(LlcSlice::is_idle)
            && !self.dram.is_busy()
            && !self.req_net.is_busy()
            && !self.reply_net.is_busy()
    }

    pub(crate) fn schedule_tbs(&mut self, sched: &mut TbScheduler, cycle: u64) {
        sched.run(
            &mut SliceSmPool(&mut self.sms),
            self.workload.as_ref(),
            &self.cfg,
            cycle,
        );
    }

    pub(crate) fn report(
        &self,
        cycles: u64,
        dram_cycles: u64,
        truncated: bool,
        parallelism: &ParallelismIntegrator,
        sched: &TbScheduler,
    ) -> SimReport {
        build_report(ReportParts {
            cfg: &self.cfg,
            benchmark: self.workload.name(),
            scheme: self.mapper.kind().label().to_string(),
            cycles,
            dram_cycles,
            truncated,
            parallelism,
            kernels: sched.kernel_idx,
            sms: &mut self.sms.iter(),
            slices: &mut self.slices.iter(),
            dram: self.dram.total_stats(),
            dram_channels: self.dram.num_channels(),
            req: self.req_net.stats(),
            rep: self.reply_net.stats(),
            memory_transactions: self.txns.len(),
            epoch_hist: EpochHist::default(),
        })
    }
}

/// Everything [`build_report`] aggregates; both engines feed it their
/// components in global index order so every counter sums identically.
pub(crate) struct ReportParts<'a> {
    pub cfg: &'a GpuConfig,
    pub benchmark: String,
    pub scheme: String,
    pub cycles: u64,
    pub dram_cycles: u64,
    pub truncated: bool,
    pub parallelism: &'a ParallelismIntegrator,
    pub kernels: usize,
    pub sms: &'a mut dyn Iterator<Item = &'a Sm>,
    pub slices: &'a mut dyn Iterator<Item = &'a LlcSlice>,
    pub dram: DramStats,
    pub dram_channels: usize,
    pub req: NocStats,
    pub rep: NocStats,
    pub memory_transactions: u64,
    /// Engine diagnostics (empty for the sequential and dense engines).
    pub epoch_hist: EpochHist,
}

/// Assembles the final [`SimReport`] — the single aggregation routine
/// shared by the sequential and phase-parallel engines.
pub(crate) fn build_report(parts: ReportParts<'_>) -> SimReport {
    let mut l1 = CacheStats::default();
    let mut warp_instructions = 0;
    let mut busy = 0u64;
    let mut num_sms = 0u64;
    for sm in parts.sms {
        let s = sm.l1_stats();
        l1.hits += s.hits;
        l1.misses += s.misses;
        l1.evictions += s.evictions;
        warp_instructions += sm.warp_instructions();
        busy += sm.busy_cycles();
        num_sms += 1;
    }
    let mut llc = CacheStats::default();
    for s in parts.slices {
        let st = s.stats();
        llc.hits += st.hits;
        llc.misses += st.misses;
        llc.evictions += st.evictions;
    }
    let delivered = parts.req.delivered + parts.rep.delivered;
    let noc_to_core = parts.cfg.core_clock_ghz / parts.cfg.noc_clock_ghz;
    let noc_latency = if delivered == 0 {
        0.0
    } else {
        (parts.req.total_latency + parts.rep.total_latency) as f64 / delivered as f64 * noc_to_core
    };
    SimReport {
        benchmark: parts.benchmark,
        scheme: parts.scheme,
        cycles: parts.cycles,
        truncated: parts.truncated,
        warp_instructions,
        thread_instructions: warp_instructions * parts.cfg.warp_size as u64,
        memory_transactions: parts.memory_transactions,
        l1,
        llc,
        noc_latency,
        llc_parallelism: parts.parallelism.llc_parallelism(),
        channel_parallelism: parts.parallelism.channel_parallelism(),
        bank_parallelism: parts.parallelism.bank_parallelism(),
        dram: parts.dram,
        kernels: parts.kernels,
        dram_cycles: parts.dram_cycles,
        dram_channels: parts.dram_channels,
        core_clock_ghz: parts.cfg.core_clock_ghz,
        dram_clock_ghz: parts.cfg.dram.clock_ghz,
        num_sms: parts.cfg.num_sms,
        sm_busy_fraction: if parts.cycles == 0 {
            0.0
        } else {
            busy as f64 / (parts.cycles * num_sms) as f64
        },
        epoch_hist: parts.epoch_hist,
    }
}
