//! Simulation metrics: everything the paper's evaluation figures report.

use crate::json::{self, Json};
use valley_cache::CacheStats;
use valley_dram::DramStats;

/// Version of the [`SimReport`] JSON encoding. Bump whenever a field is
/// added, removed or changes meaning: stored results from an older schema
/// then fail loudly in [`SimReport::from_json`] instead of silently
/// misparsing into the new shape.
///
/// v2 added the [`EpochHist`] engine diagnostics.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// Histogram of the phase-parallel engine's epoch lengths (in core
/// cycles) — the observability half of the per-unit wake-gate subsystem.
///
/// This is **engine telemetry, not a simulation result**: it describes
/// how the run was *executed* (how many cycles each deterministic epoch
/// spanned), so it varies with the engine, shard count and horizon rule
/// while every scientific field of the report stays bit-identical.
/// Sequential and dense runs have no epochs and report an empty
/// histogram. Accordingly it is excluded from [`SimReport`]'s equality
/// (`PartialEq` compares *results*) and from
/// [`SimReport::results_json`], but serialized by [`SimReport::to_json`]
/// so stored sweeps and `bench_wall` can observe it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochHist {
    /// Epoch counts bucketed by length: bucket `i` counts epochs whose
    /// cycle count lies in `[2^i, 2^(i+1))` — 1, 2–3, 4–7, 8–15, … —
    /// with the last bucket open-ended (≥ 128).
    pub lengths: [u64; 8],
    /// Multi-cycle epochs planned while at least one reply-net packet
    /// was in flight. Before the per-unit wake gates this was
    /// structurally zero: any reply in flight collapsed the safe horizon
    /// to one cycle.
    pub in_flight_multi: u64,
}

impl EpochHist {
    /// Records one epoch of `len` cycles; `replies_in_flight` says
    /// whether any reply-net packet was queued when the epoch was
    /// planned.
    pub fn record(&mut self, len: u64, replies_in_flight: bool) {
        debug_assert!(len >= 1, "epochs span at least one cycle");
        let bucket = (63 - len.max(1).leading_zeros() as usize).min(self.lengths.len() - 1);
        self.lengths[bucket] += 1;
        if len > 1 && replies_in_flight {
            self.in_flight_multi += 1;
        }
    }

    /// Total epochs recorded.
    pub fn epochs(&self) -> u64 {
        self.lengths.iter().sum()
    }

    /// Epochs spanning more than one cycle.
    pub fn multi_cycle(&self) -> u64 {
        self.lengths[1..].iter().sum()
    }
}

/// Incrementally-integrated occupancy metrics (Figures 13–14).
///
/// The paper defines the parallelism metrics "as the number of outstanding
/// requests if at least one is outstanding": we sample the busy-unit count
/// every `interval` cycles and average over the samples in which at least
/// one unit was busy. Bank-level parallelism is per *busy channel*
/// (Figure 14c), giving the multiplier effect the paper describes.
#[derive(Clone, Debug, Default)]
pub struct ParallelismIntegrator {
    llc_busy_sum: u64,
    llc_samples: u64,
    chan_busy_sum: u64,
    chan_samples: u64,
    bank_busy_sum: u64,
    bank_samples: u64,
}

impl ParallelismIntegrator {
    /// Creates an empty integrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample: `busy_slices` LLC slices with outstanding
    /// requests, `busy_channels` DRAM channels with outstanding requests,
    /// and per-busy-channel busy-bank counts.
    pub fn sample(&mut self, busy_slices: usize, busy_channels: usize, banks_per_busy: &[usize]) {
        if busy_slices > 0 {
            self.llc_busy_sum += busy_slices as u64;
            self.llc_samples += 1;
        }
        if busy_channels > 0 {
            self.chan_busy_sum += busy_channels as u64;
            self.chan_samples += 1;
        }
        for &b in banks_per_busy {
            self.bank_busy_sum += b as u64;
            self.bank_samples += 1;
        }
    }

    /// Records the same sample `n` times — used by the event-driven fast
    /// path, where the sampled state is provably constant over a skipped
    /// window and each elapsed sampling point contributes one sample.
    pub fn sample_n(
        &mut self,
        busy_slices: usize,
        busy_channels: usize,
        banks_per_busy: &[usize],
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        if busy_slices > 0 {
            self.llc_busy_sum += busy_slices as u64 * n;
            self.llc_samples += n;
        }
        if busy_channels > 0 {
            self.chan_busy_sum += busy_channels as u64 * n;
            self.chan_samples += n;
        }
        for &b in banks_per_busy {
            self.bank_busy_sum += b as u64 * n;
            self.bank_samples += n;
        }
    }

    /// [`ParallelismIntegrator::sample_n`] in pre-summed form: one sample
    /// repeated `n` times where `bank_sum` is the total busy-bank count
    /// over the `bank_channels` busy channels. Exactly equivalent to the
    /// list form — the integrator only ever accumulates the list's sum
    /// and length — and what the phase-parallel engine uses to merge
    /// per-shard sample contributions without materializing a list.
    pub fn sample_sums_n(
        &mut self,
        busy_slices: u64,
        busy_channels: u64,
        bank_sum: u64,
        bank_channels: u64,
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        if busy_slices > 0 {
            self.llc_busy_sum += busy_slices * n;
            self.llc_samples += n;
        }
        if busy_channels > 0 {
            self.chan_busy_sum += busy_channels * n;
            self.chan_samples += n;
        }
        self.bank_busy_sum += bank_sum * n;
        self.bank_samples += bank_channels * n;
    }

    /// Reassembles an integrator from its six raw accumulators — used by
    /// the batched engine, which keeps the per-lane accumulators in
    /// cross-lane SoA stripes during the run and only materializes the
    /// integrator at report time. The accumulators must have been
    /// produced by the same arithmetic as [`ParallelismIntegrator::sample`]
    /// / [`ParallelismIntegrator::sample_n`] for the derived means to be
    /// bit-identical.
    pub(crate) fn from_parts(
        llc_busy_sum: u64,
        llc_samples: u64,
        chan_busy_sum: u64,
        chan_samples: u64,
        bank_busy_sum: u64,
        bank_samples: u64,
    ) -> Self {
        ParallelismIntegrator {
            llc_busy_sum,
            llc_samples,
            chan_busy_sum,
            chan_samples,
            bank_busy_sum,
            bank_samples,
        }
    }

    /// Mean number of busy LLC slices over busy samples (Figure 14a).
    pub fn llc_parallelism(&self) -> f64 {
        mean(self.llc_busy_sum, self.llc_samples)
    }

    /// Mean number of busy channels over busy samples (Figure 14b).
    pub fn channel_parallelism(&self) -> f64 {
        mean(self.chan_busy_sum, self.chan_samples)
    }

    /// Mean busy banks per busy channel (Figure 14c).
    pub fn bank_parallelism(&self) -> f64 {
        mean(self.bank_busy_sum, self.bank_samples)
    }
}

fn mean(sum: u64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

/// The complete result of one simulation run — the raw material for every
/// evaluation figure.
///
/// Equality compares the simulation *results* only; the
/// [`epoch_hist`](SimReport::epoch_hist) engine diagnostics are excluded
/// (they describe how the engine executed the run, and legitimately
/// differ between the sequential and phase-parallel engines whose
/// results are otherwise bit-identical).
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Workload name.
    pub benchmark: String,
    /// Address-mapping scheme label.
    pub scheme: String,
    /// Execution time in core cycles.
    pub cycles: u64,
    /// Whether the safety cycle limit truncated the run.
    pub truncated: bool,
    /// Warp-level instructions issued.
    pub warp_instructions: u64,
    /// Thread-level instructions (warp instructions × warp size).
    pub thread_instructions: u64,
    /// Coalesced memory transactions created.
    pub memory_transactions: u64,
    /// Aggregated L1 statistics over all SMs.
    pub l1: CacheStats,
    /// Aggregated LLC statistics over all slices.
    pub llc: CacheStats,
    /// Mean NoC packet latency in **core** cycles (request + reply nets).
    pub noc_latency: f64,
    /// Mean busy LLC slices (Figure 14a).
    pub llc_parallelism: f64,
    /// Mean busy DRAM channels (Figure 14b).
    pub channel_parallelism: f64,
    /// Mean busy banks per busy channel (Figure 14c).
    pub bank_parallelism: f64,
    /// Aggregated DRAM counters (feeds the power model, Figures 15/16).
    pub dram: DramStats,
    /// Number of kernels executed.
    pub kernels: usize,
    /// DRAM cycles elapsed (for power-model time conversion).
    pub dram_cycles: u64,
    /// Number of DRAM channels (for power-model per-device scaling).
    pub dram_channels: usize,
    /// Core clock in GHz (for time conversion).
    pub core_clock_ghz: f64,
    /// DRAM clock in GHz (for power-model time conversion).
    pub dram_clock_ghz: f64,
    /// Number of SMs (for the GPU power model).
    pub num_sms: usize,
    /// Fraction of cycles with at least one resident warp, averaged over
    /// SMs (GPU dynamic-power activity factor).
    pub sm_busy_fraction: f64,
    /// Engine diagnostics: the phase-parallel engine's epoch-length
    /// histogram (empty for sequential and dense runs). Excluded from
    /// equality and from [`SimReport::results_json`] — see [`EpochHist`].
    pub epoch_hist: EpochHist,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `epoch_hist` (engine telemetry — see the
        // struct docs). Listed explicitly so adding a result field
        // without extending the comparison is a compile error… it is
        // not, with a plain `&&` chain — so destructure instead.
        let SimReport {
            benchmark,
            scheme,
            cycles,
            truncated,
            warp_instructions,
            thread_instructions,
            memory_transactions,
            l1,
            llc,
            noc_latency,
            llc_parallelism,
            channel_parallelism,
            bank_parallelism,
            dram,
            kernels,
            dram_cycles,
            dram_channels,
            core_clock_ghz,
            dram_clock_ghz,
            num_sms,
            sm_busy_fraction,
            epoch_hist: _,
        } = self;
        benchmark == &other.benchmark
            && scheme == &other.scheme
            && cycles == &other.cycles
            && truncated == &other.truncated
            && warp_instructions == &other.warp_instructions
            && thread_instructions == &other.thread_instructions
            && memory_transactions == &other.memory_transactions
            && l1 == &other.l1
            && llc == &other.llc
            && noc_latency == &other.noc_latency
            && llc_parallelism == &other.llc_parallelism
            && channel_parallelism == &other.channel_parallelism
            && bank_parallelism == &other.bank_parallelism
            && dram == &other.dram
            && kernels == &other.kernels
            && dram_cycles == &other.dram_cycles
            && dram_channels == &other.dram_channels
            && core_clock_ghz == &other.core_clock_ghz
            && dram_clock_ghz == &other.dram_clock_ghz
            && num_sms == &other.num_sms
            && sm_busy_fraction == &other.sm_busy_fraction
    }
}

impl SimReport {
    /// Execution time in seconds at the configured core clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.core_clock_ghz * 1e9)
    }

    /// Warp instructions per cycle, aggregated over the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }

    /// LLC accesses per kilo (thread) instruction — Table II's APKI.
    pub fn apki(&self) -> f64 {
        per_kilo(self.llc.accesses(), self.thread_instructions)
    }

    /// LLC misses per kilo (thread) instruction — Table II's MPKI.
    pub fn mpki(&self) -> f64 {
        per_kilo(self.llc.misses, self.thread_instructions)
    }

    /// LLC miss rate (Figure 13b).
    pub fn llc_miss_rate(&self) -> f64 {
        self.llc.miss_rate()
    }

    /// DRAM row-buffer hit rate (Figure 15).
    pub fn row_buffer_hit_rate(&self) -> f64 {
        self.dram.row_buffer_hit_rate()
    }

    /// Speedup of this run relative to a baseline run of the same
    /// workload (baseline cycles / these cycles).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

fn per_kilo(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        events as f64 * 1000.0 / instructions as f64
    }
}

// --- JSON round trip (the harness's persistent result store) ---

fn cache_stats_json(s: &CacheStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::UInt(s.hits)),
        ("misses".into(), Json::UInt(s.misses)),
        ("evictions".into(), Json::UInt(s.evictions)),
    ])
}

fn dram_stats_json(s: &DramStats) -> Json {
    Json::Obj(vec![
        ("activates".into(), Json::UInt(s.activates)),
        ("precharges".into(), Json::UInt(s.precharges)),
        ("reads".into(), Json::UInt(s.reads)),
        ("writes".into(), Json::UInt(s.writes)),
        ("row_hits".into(), Json::UInt(s.row_hits)),
        ("row_empties".into(), Json::UInt(s.row_empties)),
        ("row_conflicts".into(), Json::UInt(s.row_conflicts)),
        ("busy_cycles".into(), Json::UInt(s.busy_cycles)),
        ("data_bus_cycles".into(), Json::UInt(s.data_bus_cycles)),
        ("total_cycles".into(), Json::UInt(s.total_cycles)),
        ("total_latency".into(), Json::UInt(s.total_latency)),
    ])
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("SimReport JSON is missing field '{key}'"))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("SimReport field '{key}' is not an unsigned integer"))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("SimReport field '{key}' is not a number"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, key)?).map_err(|_| format!("SimReport field '{key}' overflows"))
}

fn get_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("SimReport field '{key}' is not a string"))?
        .to_string())
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("SimReport field '{key}' is not a boolean"))
}

fn cache_stats_from(v: &Json, key: &str) -> Result<CacheStats, String> {
    let o = field(v, key)?;
    Ok(CacheStats {
        hits: get_u64(o, "hits")?,
        misses: get_u64(o, "misses")?,
        evictions: get_u64(o, "evictions")?,
    })
}

fn dram_stats_from(v: &Json, key: &str) -> Result<DramStats, String> {
    let o = field(v, key)?;
    Ok(DramStats {
        activates: get_u64(o, "activates")?,
        precharges: get_u64(o, "precharges")?,
        reads: get_u64(o, "reads")?,
        writes: get_u64(o, "writes")?,
        row_hits: get_u64(o, "row_hits")?,
        row_empties: get_u64(o, "row_empties")?,
        row_conflicts: get_u64(o, "row_conflicts")?,
        busy_cycles: get_u64(o, "busy_cycles")?,
        data_bus_cycles: get_u64(o, "data_bus_cycles")?,
        total_cycles: get_u64(o, "total_cycles")?,
        total_latency: get_u64(o, "total_latency")?,
    })
}

impl SimReport {
    /// Serializes the report as a versioned single-line JSON object,
    /// including the [`EpochHist`] engine diagnostics.
    ///
    /// The inverse is [`SimReport::from_json`]; the two are pinned by a
    /// round-trip property test. Every counter is written as an exact
    /// integer, so equality (not just approximation) survives storage.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json_string()
    }

    /// The simulation *results* as a single-line JSON string — every
    /// field of [`SimReport::to_json`] except the engine diagnostics.
    /// This is the canonical byte form the cross-engine equivalence
    /// battery compares: bit-identical results serialize to identical
    /// digit strings, while the epoch histogram (which legitimately
    /// differs per engine and shard count) stays out of the comparison.
    pub fn results_json(&self) -> String {
        Json::Obj(self.result_fields()).to_json_string()
    }

    /// The report as a [`Json`] value (for embedding in larger records).
    pub fn to_json_value(&self) -> Json {
        let mut fields = self.result_fields();
        fields.push((
            "epoch_hist".into(),
            Json::Obj(vec![
                (
                    "lengths".into(),
                    Json::Arr(
                        self.epoch_hist
                            .lengths
                            .iter()
                            .map(|&n| Json::UInt(n))
                            .collect(),
                    ),
                ),
                (
                    "in_flight_multi".into(),
                    Json::UInt(self.epoch_hist.in_flight_multi),
                ),
            ]),
        ));
        Json::Obj(fields)
    }

    /// Every result field in canonical order (shared by
    /// [`SimReport::to_json_value`] and [`SimReport::results_json`] so
    /// the two can never drift apart).
    fn result_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("v".into(), Json::UInt(u64::from(REPORT_SCHEMA_VERSION))),
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("scheme".into(), Json::Str(self.scheme.clone())),
            ("cycles".into(), Json::UInt(self.cycles)),
            ("truncated".into(), Json::Bool(self.truncated)),
            (
                "warp_instructions".into(),
                Json::UInt(self.warp_instructions),
            ),
            (
                "thread_instructions".into(),
                Json::UInt(self.thread_instructions),
            ),
            (
                "memory_transactions".into(),
                Json::UInt(self.memory_transactions),
            ),
            ("l1".into(), cache_stats_json(&self.l1)),
            ("llc".into(), cache_stats_json(&self.llc)),
            ("noc_latency".into(), Json::Num(self.noc_latency)),
            ("llc_parallelism".into(), Json::Num(self.llc_parallelism)),
            (
                "channel_parallelism".into(),
                Json::Num(self.channel_parallelism),
            ),
            ("bank_parallelism".into(), Json::Num(self.bank_parallelism)),
            ("dram".into(), dram_stats_json(&self.dram)),
            ("kernels".into(), Json::UInt(self.kernels as u64)),
            ("dram_cycles".into(), Json::UInt(self.dram_cycles)),
            (
                "dram_channels".into(),
                Json::UInt(self.dram_channels as u64),
            ),
            ("core_clock_ghz".into(), Json::Num(self.core_clock_ghz)),
            ("dram_clock_ghz".into(), Json::Num(self.dram_clock_ghz)),
            ("num_sms".into(), Json::UInt(self.num_sms as u64)),
            ("sm_busy_fraction".into(), Json::Num(self.sm_busy_fraction)),
        ]
    }

    /// Deserializes a report written by [`SimReport::to_json`].
    ///
    /// # Errors
    ///
    /// Fails loudly on malformed JSON, a missing/mistyped field, or — the
    /// case the version field exists for — a schema version other than
    /// [`REPORT_SCHEMA_VERSION`].
    pub fn from_json(text: &str) -> Result<SimReport, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        SimReport::from_json_value(&v)
    }

    /// Deserializes a report from an already-parsed [`Json`] value.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimReport::from_json`].
    pub fn from_json_value(v: &Json) -> Result<SimReport, String> {
        let version = get_u64(v, "v")?;
        if version != u64::from(REPORT_SCHEMA_VERSION) {
            return Err(format!(
                "SimReport schema version {version} is not the supported \
                 {REPORT_SCHEMA_VERSION}; re-run the sweep to regenerate stored results"
            ));
        }
        let hist = field(v, "epoch_hist")?;
        let lengths_json = field(hist, "lengths")?
            .as_arr()
            .ok_or("SimReport field 'epoch_hist.lengths' is not an array")?;
        let mut lengths = [0u64; 8];
        if lengths_json.len() != lengths.len() {
            return Err(format!(
                "SimReport field 'epoch_hist.lengths' has {} buckets, expected {}",
                lengths_json.len(),
                lengths.len()
            ));
        }
        for (slot, j) in lengths.iter_mut().zip(lengths_json) {
            *slot = j
                .as_u64()
                .ok_or("SimReport field 'epoch_hist.lengths' holds a non-integer")?;
        }
        let epoch_hist = EpochHist {
            lengths,
            in_flight_multi: get_u64(hist, "in_flight_multi")?,
        };
        Ok(SimReport {
            benchmark: get_str(v, "benchmark")?,
            scheme: get_str(v, "scheme")?,
            cycles: get_u64(v, "cycles")?,
            truncated: get_bool(v, "truncated")?,
            warp_instructions: get_u64(v, "warp_instructions")?,
            thread_instructions: get_u64(v, "thread_instructions")?,
            memory_transactions: get_u64(v, "memory_transactions")?,
            l1: cache_stats_from(v, "l1")?,
            llc: cache_stats_from(v, "llc")?,
            noc_latency: get_f64(v, "noc_latency")?,
            llc_parallelism: get_f64(v, "llc_parallelism")?,
            channel_parallelism: get_f64(v, "channel_parallelism")?,
            bank_parallelism: get_f64(v, "bank_parallelism")?,
            dram: dram_stats_from(v, "dram")?,
            kernels: get_usize(v, "kernels")?,
            dram_cycles: get_u64(v, "dram_cycles")?,
            dram_channels: get_usize(v, "dram_channels")?,
            core_clock_ghz: get_f64(v, "core_clock_ghz")?,
            dram_clock_ghz: get_f64(v, "dram_clock_ghz")?,
            num_sms: get_usize(v, "num_sms")?,
            sm_busy_fraction: get_f64(v, "sm_busy_fraction")?,
            epoch_hist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> SimReport {
        SimReport {
            benchmark: "T".into(),
            scheme: "BASE".into(),
            cycles,
            truncated: false,
            warp_instructions: 1000,
            thread_instructions: 32_000,
            memory_transactions: 100,
            l1: CacheStats::default(),
            llc: CacheStats {
                hits: 60,
                misses: 40,
                evictions: 0,
            },
            noc_latency: 50.0,
            llc_parallelism: 2.0,
            channel_parallelism: 1.5,
            bank_parallelism: 4.0,
            dram: DramStats::default(),
            kernels: 1,
            dram_cycles: 0,
            dram_channels: 4,
            core_clock_ghz: 1.4,
            dram_clock_ghz: 0.924,
            num_sms: 12,
            sm_busy_fraction: 0.9,
            epoch_hist: EpochHist::default(),
        }
    }

    #[test]
    fn epoch_hist_buckets_by_power_of_two() {
        let mut h = EpochHist::default();
        for len in [1, 2, 3, 4, 7, 8, 64, 127, 128, 1000] {
            h.record(len, false);
        }
        assert_eq!(h.lengths, [1, 2, 2, 1, 0, 0, 2, 2]);
        assert_eq!(h.epochs(), 10);
        assert_eq!(h.multi_cycle(), 9);
        assert_eq!(h.in_flight_multi, 0);
    }

    #[test]
    fn epoch_hist_counts_multi_cycle_epochs_under_replies() {
        let mut h = EpochHist::default();
        h.record(1, true); // one-cycle: never counts, replies or not
        h.record(5, false);
        h.record(5, true);
        h.record(9, true);
        assert_eq!(h.in_flight_multi, 2);
    }

    #[test]
    fn report_equality_ignores_engine_diagnostics() {
        let a = report(10);
        let mut b = report(10);
        b.epoch_hist.record(4, true);
        assert_eq!(a, b, "epoch telemetry must not break result equality");
        assert_eq!(a.results_json(), b.results_json());
        assert_ne!(
            a.to_json(),
            b.to_json(),
            "the full serialization does carry the histogram"
        );
        let mut c = report(10);
        c.cycles += 1;
        assert_ne!(a, c, "result fields still compare");
    }

    #[test]
    fn derived_rates() {
        let r = report(10_000);
        assert!((r.apki() - 100.0 / 32.0).abs() < 1e-9);
        assert!((r.mpki() - 40.0 / 32.0).abs() < 1e-9);
        assert!((r.llc_miss_rate() - 0.4).abs() < 1e-12);
        assert!((r.ipc() - 0.1).abs() < 1e-12);
        assert!(r.seconds() > 0.0);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let base = report(20_000);
        let fast = report(10_000);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integrator_averages_over_busy_samples() {
        let mut p = ParallelismIntegrator::new();
        p.sample(2, 1, &[4]);
        p.sample(0, 0, &[]); // idle sample: ignored
        p.sample(4, 3, &[2, 6, 4]);
        assert!((p.llc_parallelism() - 3.0).abs() < 1e-12);
        assert!((p.channel_parallelism() - 2.0).abs() < 1e-12);
        assert!((p.bank_parallelism() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_integrator_is_zero() {
        let p = ParallelismIntegrator::new();
        assert_eq!(p.llc_parallelism(), 0.0);
        assert_eq!(p.bank_parallelism(), 0.0);
    }
}
